// Hot-swap latency benchmark: does an index rollout cost the client
// anything? One serving pod under steady closed-loop /recommend load,
// measured in two phases of equal length:
//   phase A  steady state — no swaps
//   phase B  a POST /admin/reload every 500 ms, alternating between two
//            full-size index artifacts
// The RCU snapshot design predicts phase B's p99 stays within noise of
// phase A (the swap is a pointer store; in-flight requests keep their
// pinned snapshot), and zero requests may fail during rollouts.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "data/synthetic.h"
#include "index/snapshot.h"
#include "serving/server.h"

using namespace serenade;

namespace {

struct PhaseResult {
  Histogram latency_micros;   // client-observed request latency
  uint64_t requests = 0;
  uint64_t failures = 0;
  uint64_t swaps = 0;
};

// Closed-loop load from `threads` keep-alive connections for `seconds`,
// optionally swapping the index every `swap_interval_ms`.
PhaseResult RunPhase(uint16_t port, double seconds, size_t threads,
                     size_t num_items, const std::string& path_a,
                     const std::string& path_b, uint64_t swap_interval_ms) {
  PhaseResult result;
  ShardedHistogram latencies;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect(port).ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string target =
            "/recommend?session_id=bench-" + std::to_string(t) +
            "&item_id=" + std::to_string((t * 131 + i++) % num_items);
        const auto start = std::chrono::steady_clock::now();
        auto response = client.Get(target);
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
        } else {
          latencies.Record(static_cast<uint64_t>(micros));
        }
        requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  HttpClient admin;
  const bool swapping = swap_interval_ms > 0 && admin.Connect(port).ok();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000));
  bool use_b = true;
  while (std::chrono::steady_clock::now() < deadline) {
    if (swapping) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(swap_interval_ms));
      const std::string& target = use_b ? path_b : path_a;
      use_b = !use_b;
      auto response = admin.Post("/admin/reload?path=" + target, "");
      if (response.ok() && response->status == 200) {
        ++result.swaps;
      } else {
        std::fprintf(stderr, "reload failed: %s\n",
                     response.ok() ? response->body.c_str()
                                   : response.status().ToString().c_str());
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  stop.store(true);
  for (std::thread& worker : workers) worker.join();

  result.latency_micros = latencies.Merged();
  result.requests = requests.load();
  result.failures = failures.load();
  return result;
}

void PrintPhase(const char* name, const PhaseResult& result, double seconds) {
  std::printf(
      "%-18s %8llu req (%6.0f rps)  %3llu swaps  %llu failures  "
      "p50=%6llu us  p90=%6llu us  p99=%6llu us  p99.9=%7llu us\n",
      name, static_cast<unsigned long long>(result.requests),
      static_cast<double>(result.requests) / seconds,
      static_cast<unsigned long long>(result.swaps),
      static_cast<unsigned long long>(result.failures),
      static_cast<unsigned long long>(result.latency_micros.Percentile(0.50)),
      static_cast<unsigned long long>(result.latency_micros.Percentile(0.90)),
      static_cast<unsigned long long>(result.latency_micros.Percentile(0.99)),
      static_cast<unsigned long long>(
          result.latency_micros.Percentile(0.999)));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Index hot-swap", "Section 3 (index replication / rollout)",
      "p99 under periodic /admin/reload vs steady state on one pod.");
  const double scale = bench::ScaleFromEnv();

  // Two full-size artifacts to alternate between, as a nightly rollout
  // would (same corpus shape, different seeds).
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/serenade_swap_bench";
  std::filesystem::create_directories(dir);
  const std::string path_a = dir + "/rollout_a.index";
  const std::string path_b = dir + "/rollout_b.index";
  SyntheticConfig data_config;
  data_config.num_items = static_cast<size_t>(10000 * scale);
  data_config.num_sessions = static_cast<size_t>(40000 * scale);
  data_config.num_days = 30;
  uint64_t version = 1;
  for (const std::string& path : {path_a, path_b}) {
    data_config.seed = 0x5a50 + version;
    const Dataset dataset = GenerateDataset(data_config);
    IndexManifest manifest;
    manifest.version = version++;
    manifest.build_id = "swap-bench";
    manifest.source = "synthetic";
    auto written = WriteIndexWithManifest(
        path, SessionIndex::Build(dataset, 500), manifest);
    if (!written.ok()) {
      std::fprintf(stderr, "build %s: %s\n", path.c_str(),
                   written.status().ToString().c_str());
      return 1;
    }
    std::printf("artifact %s: %.1f MB, %llu postings\n", path.c_str(),
                static_cast<double>(written->index_bytes) / 1e6,
                static_cast<unsigned long long>(written->num_postings));
  }

  auto manager = IndexManager::CreateFromFile(path_a);
  if (!manager.ok()) {
    std::fprintf(stderr, "load: %s\n", manager.status().ToString().c_str());
    return 1;
  }
  ServiceConfig service_config;
  service_config.knn.m = 500;
  service_config.knn.k = 100;
  auto service = SerenadeService::Create(
      std::move(manager).value(),
      GenerateCatalog(data_config.num_items, 5), service_config);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  SerenadeServer server(std::move(service).value(), ServerConfig{});
  if (!server.Start().ok()) return 1;

  // CI smoke runs shrink the measured phases via SERENADE_BENCH_SECONDS.
  const double phase_seconds = bench::SecondsFromEnv(10.0);
  const size_t threads = 6;
  std::printf("\npod on port %u; %zu closed-loop connections, %.1fs per "
              "phase\n", server.port(), threads, phase_seconds);

  // Warmup fills the recommender pool and the session store.
  RunPhase(server.port(), std::min(2.0, phase_seconds), threads,
           data_config.num_items, path_a, path_b, 0);

  bench::PrintSection("measured");
  const PhaseResult steady = RunPhase(server.port(), phase_seconds, threads,
                                      data_config.num_items, path_a, path_b,
                                      /*swap_interval_ms=*/0);
  PrintPhase("steady state", steady, phase_seconds);
  const PhaseResult swapping = RunPhase(server.port(), phase_seconds, threads,
                                        data_config.num_items, path_a, path_b,
                                        /*swap_interval_ms=*/500);
  PrintPhase("swap every 500ms", swapping, phase_seconds);
  server.Stop();

  const double steady_p99 = steady.latency_micros.Percentile(0.99);
  const double swap_p99 = swapping.latency_micros.Percentile(0.99);
  const double ratio = steady_p99 > 0 ? swap_p99 / steady_p99 : 0.0;
  std::printf(
      "\nshape check (hot swap is a pointer store; rollouts must not move "
      "the tail):\n  p99 steady=%.0fus vs swapping=%.0fus (ratio %.2fx), "
      "%llu swaps, %llu failed requests -> %s\n",
      steady_p99, swap_p99, ratio,
      static_cast<unsigned long long>(swapping.swaps),
      static_cast<unsigned long long>(swapping.failures),
      (swapping.failures == 0 && ratio < 1.5) ? "REPRODUCED"
                                              : "see numbers above");

  // Machine-readable results for the CI bench-smoke artifact.
  bench::JsonResultWriter json("index_swap");
  json.Add("phase_seconds", phase_seconds);
  json.Add("steady_requests", static_cast<double>(steady.requests));
  json.Add("steady_p50_us",
           static_cast<double>(steady.latency_micros.Percentile(0.50)));
  json.Add("steady_p99_us", steady_p99);
  json.Add("swapping_requests", static_cast<double>(swapping.requests));
  json.Add("swapping_p50_us",
           static_cast<double>(swapping.latency_micros.Percentile(0.50)));
  json.Add("swapping_p99_us", swap_p99);
  json.Add("swaps", static_cast<double>(swapping.swaps));
  json.Add("failures", static_cast<double>(swapping.failures));
  json.Add("p99_ratio", ratio);
  const bool json_ok = json.WriteTo(bench::JsonPathFromEnv());

  std::filesystem::remove_all(dir);
  return json_ok ? 0 : 1;
}
