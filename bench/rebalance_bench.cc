// Live ring-rebalancing benchmark: what does an elastic fleet change cost
// the client? A simulated cluster (three pods + gateway, session
// replication managed) under steady closed-loop /v1/recommend load,
// measured in three phases of equal length:
//   phase A  steady state on three pods
//   phase B  cutover — a fourth pod joins mid-load via the
//            /v1/admin/cluster/join control plane; the donors hand off
//            every session whose ownership moves, with per-key cutover
//   phase C  steady state on four pods
// The hand-off design predicts phase B's p99 stays within a small factor
// of phase A (moves are per-key and writes divert via 307/proxy instead
// of failing), and zero requests may fail in any phase. The join's
// wall-clock duration is reported as handoff_ms.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "data/synthetic.h"
#include "serving/http.h"
#include "testing/sim_cluster.h"

using namespace serenade;

namespace {

struct PhaseResult {
  Histogram latency_micros;  // client-observed request latency
  uint64_t requests = 0;
  uint64_t errors = 0;  // transport failures + non-200 statuses
};

// Closed-loop load from `threads` keep-alive connections against the
// gateway for `seconds`. `during` (optional) runs once on the control
// thread shortly after the phase starts — the membership mutation under
// measurement.
PhaseResult RunPhase(uint16_t port, double seconds, size_t threads,
                     size_t key_space, size_t num_items,
                     const std::function<void()>& during) {
  PhaseResult result;
  ShardedHistogram latencies;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};

  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      HttpClient client;
      bool connected = client.Connect(port).ok();
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!connected) {
          connected = client.Connect(port).ok();
          if (!connected) {
            errors.fetch_add(1, std::memory_order_relaxed);
            requests.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            continue;
          }
        }
        const uint64_t n = t * 1013 + i++;
        const std::string target =
            "/v1/recommend?session_id=bench-" +
            std::to_string(n % key_space) +
            "&item_id=" + std::to_string(1 + n % (num_items - 1));
        const auto start = std::chrono::steady_clock::now();
        auto response = client.Get(target);
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (!response.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          connected = false;  // redial: the connection is poisoned
        } else if (response->status != 200) {
          errors.fetch_add(1, std::memory_order_relaxed);
        } else {
          latencies.Record(static_cast<uint64_t>(micros));
        }
        requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000));
  if (during) {
    // Let the phase reach steady state before the mutation lands, so the
    // measured window brackets the hand-off with live traffic.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(seconds * 150)));
    during();
  }
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (std::thread& worker : workers) worker.join();

  result.latency_micros = latencies.Merged();
  result.requests = requests.load();
  result.errors = errors.load();
  return result;
}

void PrintPhase(const char* name, const PhaseResult& result, double seconds) {
  std::printf(
      "%-20s %8llu req (%6.0f rps)  %llu errors  p50=%6llu us  "
      "p90=%6llu us  p99=%6llu us\n",
      name, static_cast<unsigned long long>(result.requests),
      static_cast<double>(result.requests) / seconds,
      static_cast<unsigned long long>(result.errors),
      static_cast<unsigned long long>(result.latency_micros.Percentile(0.50)),
      static_cast<unsigned long long>(result.latency_micros.Percentile(0.90)),
      static_cast<unsigned long long>(result.latency_micros.Percentile(0.99)));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Live ring rebalancing", "Section 4 (elastic fleet data plane)",
      "p99 while a fourth pod joins mid-load vs steady state; hand-off "
      "duration and client-visible errors.");
  const double scale = bench::ScaleFromEnv();
  const double phase_seconds = bench::SecondsFromEnv(6.0);

  SyntheticConfig data_config;
  data_config.num_items = static_cast<size_t>(2000 * scale);
  data_config.num_sessions = static_cast<size_t>(8000 * scale);
  data_config.num_days = 14;
  data_config.seed = 0x4eba;

  const std::string work_dir =
      std::filesystem::temp_directory_path().string() +
      "/serenade_rebalance_bench";
  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);

  SimClusterConfig config;
  config.num_pods = 3;
  config.train = GenerateDataset(data_config);
  config.knn.m = 100;
  config.knn.k = 21;
  config.work_dir = work_dir;
  config.store.sync_every_write = true;
  config.gateway.health.probe_interval_ms = 50;
  config.gateway.health.probe_timeout_ms = 500;
  config.replication.enabled = true;
  config.replication.pod.ship_interval_ms = 10;

  auto cluster = SimCluster::Start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }
  SimCluster& sim = **cluster;
  if (!sim.AwaitHealthy(3, 5000)) {
    std::fprintf(stderr, "fleet never became healthy\n");
    return 1;
  }

  const size_t threads = 6;
  const size_t key_space = 64;
  std::printf("\ngateway on port %u; 3 pods, %zu closed-loop connections, "
              "%zu-session key space, %.1fs per phase\n",
              sim.gateway().port(), threads, key_space, phase_seconds);

  // Warmup fills the session stores and the gateway's connection pools.
  RunPhase(sim.gateway().port(), std::min(2.0, phase_seconds), threads,
           key_space, data_config.num_items, nullptr);

  bench::PrintSection("measured");
  const PhaseResult steady =
      RunPhase(sim.gateway().port(), phase_seconds, threads, key_space,
               data_config.num_items, nullptr);
  PrintPhase("steady (3 pods)", steady, phase_seconds);

  double handoff_ms = 0.0;
  bool joined = false;
  const PhaseResult cutover = RunPhase(
      sim.gateway().port(), phase_seconds, threads, key_space,
      data_config.num_items, [&] {
        const auto start = std::chrono::steady_clock::now();
        auto added = sim.AddPod();
        handoff_ms =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count() /
            1000.0;
        joined = added.ok();
        if (!added.ok()) {
          std::fprintf(stderr, "join failed: %s\n",
                       added.status().ToString().c_str());
        }
      });
  PrintPhase("cutover (join)", cutover, phase_seconds);
  std::printf("%-20s join + hand-off completed in %.1f ms\n", "",
              handoff_ms);

  const PhaseResult post =
      RunPhase(sim.gateway().port(), phase_seconds, threads, key_space,
               data_config.num_items, nullptr);
  PrintPhase("steady (4 pods)", post, phase_seconds);

  const double steady_p99 = steady.latency_micros.Percentile(0.99);
  const double cutover_p99 = cutover.latency_micros.Percentile(0.99);
  const double post_p99 = post.latency_micros.Percentile(0.99);
  const double ratio = steady_p99 > 0 ? cutover_p99 / steady_p99 : 0.0;
  const uint64_t errors = steady.errors + cutover.errors + post.errors;
  std::printf(
      "\nshape check (per-key cutover; a rebalance must not fail requests "
      "or blow the tail):\n  p99 steady=%.0fus vs cutover=%.0fus (ratio "
      "%.2fx), hand-off %.1fms, %llu errors -> %s\n",
      steady_p99, cutover_p99, ratio, handoff_ms,
      static_cast<unsigned long long>(errors),
      (joined && errors == 0 && ratio < 8.0) ? "REPRODUCED"
                                             : "see numbers above");

  // Machine-readable results for the CI bench-smoke artifact.
  bench::JsonResultWriter json("rebalance");
  json.Add("phase_seconds", phase_seconds);
  json.Add("joined", joined ? 1.0 : 0.0);
  json.Add("handoff_ms", handoff_ms);
  json.Add("steady_requests", static_cast<double>(steady.requests));
  json.Add("steady_p50_us",
           static_cast<double>(steady.latency_micros.Percentile(0.50)));
  json.Add("steady_p99_us", steady_p99);
  json.Add("cutover_requests", static_cast<double>(cutover.requests));
  json.Add("cutover_p50_us",
           static_cast<double>(cutover.latency_micros.Percentile(0.50)));
  json.Add("cutover_p99_us", cutover_p99);
  json.Add("post_p99_us", post_p99);
  json.Add("p99_ratio", ratio);
  json.Add("steady_errors", static_cast<double>(steady.errors));
  json.Add("cutover_errors", static_cast<double>(cutover.errors));
  json.Add("post_errors", static_cast<double>(post.errors));
  json.Add("errors", static_cast<double>(errors));
  const bool json_ok = json.WriteTo(bench::JsonPathFromEnv());
  return joined && json_ok ? 0 : 1;
}
