// Micro-batching benchmark: throughput of the /v1 recommendation API
// with and without request batching, at several client concurrency
// levels (the ISSUE's acceptance bar is the concurrency-16 level).
//
// Per concurrency level, two phases over one shared synthetic index:
//   * serial    — one GET /v1/recommend per HTTP call: the pre-batching
//                 baseline, paying per-request HTTP framing, store
//                 round trip, and snapshot pin.
//   * batched   — 16-request POST /v1/recommend:batch calls: one HTTP
//                 round trip, one store MultiGet/MultiPut, and one
//                 snapshot pin amortised across the batch. The server
//                 runs the executor in pass-through (each client batch
//                 executes inline as one service batch — on small hosts
//                 the cross-connection coalescing queue only adds
//                 handoff cost; it is exercised by the serving tests and
//                 index_swap_bench instead).
//
// A final phase measures executor pass-through vs. a direct service
// call (no HTTP): what batch-size-1 costs over the plain path. The
// acceptance bar is within 5%.
//
// Acceptance: batched throughput >= 1.5x serial at concurrency 16.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "core/session_index.h"
#include "data/synthetic.h"
#include "serving/batch_executor.h"
#include "serving/server.h"

using namespace serenade;

namespace {

constexpr size_t kClientBatch = 16;
constexpr size_t kConcurrencyLevels[] = {4, 16};
constexpr size_t kAcceptanceConcurrency = 16;

struct LoadResult {
  uint64_t requests = 0;  // recommendations produced
  uint64_t errors = 0;
  double seconds = 0;
  Histogram latency;  // per HTTP call, micros

  double Rps() const { return seconds > 0 ? requests / seconds : 0; }
};

std::unique_ptr<SerenadeService> MakeService(
    const std::shared_ptr<SessionIndex>& index, const ItemCatalog& catalog) {
  ServiceConfig config;
  config.knn.m = std::min<size_t>(500, index->max_sessions_per_item());
  config.knn.k = std::min<size_t>(100, config.knn.m);
  auto service = SerenadeService::Create(index, catalog, config);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(service).value();
}

// Drives `server` from `concurrency` threads for `seconds`. When
// `batch_size` is 1 each thread issues single GETs; otherwise it POSTs
// client-side batches of that many requests.
LoadResult DriveLoad(SerenadeServer& server, size_t concurrency,
                     size_t batch_size, size_t num_items, double seconds) {
  std::atomic<bool> stop{false};
  std::vector<LoadResult> per_thread(concurrency);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < concurrency; ++t) {
    threads.emplace_back([&, t] {
      LoadResult& result = per_thread[t];
      HttpClient client;
      if (!client.Connect(server.port()).ok()) {
        result.errors = 1;
        return;
      }
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Stopwatch call;
        if (batch_size <= 1) {
          const std::string target =
              "/v1/recommend?session_id=bench-" + std::to_string(t) +
              "&item_id=" + std::to_string(1 + (t * 31 + i) % num_items);
          auto response = client.Get(target);
          if (!response.ok() || response->status != 200) {
            ++result.errors;
          } else {
            ++result.requests;
          }
        } else {
          std::string body = "{\"requests\":[";
          for (size_t j = 0; j < batch_size; ++j) {
            if (j > 0) body += ',';
            // Spread the batch over several sessions like concurrent
            // frontends would; duplicates exercise in-batch chaining.
            body += "{\"session_id\":\"bench-" + std::to_string(t) + "-" +
                    std::to_string(j % 4) + "\",\"item_id\":" +
                    std::to_string(1 + (t * 31 + i + j) % num_items) + "}";
          }
          body += "]}";
          auto response = client.Post("/v1/recommend:batch", body);
          if (!response.ok() || response->status != 200) {
            result.errors += batch_size;
          } else {
            result.requests += batch_size;
          }
        }
        result.latency.Record(call.ElapsedMicros());
        ++i;
      }
    });
  }

  Stopwatch wall;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<uint64_t>(seconds * 1000)));
  stop.store(true);
  for (auto& thread : threads) thread.join();

  LoadResult total;
  total.seconds = wall.ElapsedMicros() / 1e6;
  for (const LoadResult& result : per_thread) {
    total.requests += result.requests;
    total.errors += result.errors;
    total.latency.Merge(result.latency);
  }
  return total;
}

void PrintLoad(const char* label, const LoadResult& result) {
  std::printf("  %s: %llu requests in %.2fs -> %.0f req/s (%llu errors)\n",
              label, static_cast<unsigned long long>(result.requests),
              result.seconds, result.Rps(),
              static_cast<unsigned long long>(result.errors));
  std::printf("    per-call latency p50=%lluus p99=%lluus\n",
              static_cast<unsigned long long>(result.latency.Percentile(0.5)),
              static_cast<unsigned long long>(result.latency.Percentile(0.99)));
}

}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  const double seconds = bench::SecondsFromEnv(5.0);
  bench::PrintHeader(
      "recommend_batch_bench", "Section 4 (serving latency/throughput)",
      "micro-batched /v1 API vs the serial request path");

  SyntheticConfig data_config;
  data_config.num_items = static_cast<size_t>(2000 * scale);
  data_config.num_sessions = static_cast<size_t>(10000 * scale);
  const Dataset train = GenerateDataset(data_config);
  auto index = std::make_shared<SessionIndex>(SessionIndex::Build(train, 500));
  ItemCatalog catalog;
  catalog.available.assign(index->num_items(), true);
  catalog.adult.assign(index->num_items(), false);
  const size_t num_items = std::max<size_t>(1, index->num_items() - 1);

  bench::JsonResultWriter json("recommend_batch_bench");
  double acceptance_speedup = 0;
  uint64_t total_errors = 0;

  for (const size_t concurrency : kConcurrencyLevels) {
    bench::PrintSection(
        ("concurrency " + std::to_string(concurrency)).c_str());

    LoadResult serial;
    {
      SerenadeServer server(MakeService(index, catalog), ServerConfig{});
      if (!server.Start().ok()) return 1;
      serial = DriveLoad(server, concurrency, 1, num_items, seconds);
      server.Stop();
    }
    PrintLoad("serial (1 request per HTTP call)", serial);

    LoadResult batched;
    double coalescing = 0;
    {
      SerenadeServer server(MakeService(index, catalog), ServerConfig{});
      if (!server.Start().ok()) return 1;
      batched = DriveLoad(server, concurrency, kClientBatch, num_items,
                          seconds);
      const uint64_t batches = server.executor().batches_executed();
      coalescing =
          batches == 0
              ? 0
              : static_cast<double>(server.executor().requests_executed()) /
                    batches;
      server.Stop();
    }
    PrintLoad("batched (16-request :batch calls)", batched);
    std::printf("    coalescing %.1f req/batch\n", coalescing);

    const double speedup = serial.Rps() > 0 ? batched.Rps() / serial.Rps() : 0;
    std::printf("  throughput speedup over serial: %.2fx\n", speedup);
    if (concurrency == kAcceptanceConcurrency) {
      acceptance_speedup = speedup;
      std::printf("  (acceptance level: target >= 1.5x)\n");
    }
    total_errors += serial.errors + batched.errors;

    const std::string suffix = "_c" + std::to_string(concurrency);
    json.Add("serial_rps" + suffix, serial.Rps());
    json.Add("serial_p99_us" + suffix,
             static_cast<double>(serial.latency.Percentile(0.99)));
    json.Add("batched_rps" + suffix, batched.Rps());
    json.Add("batched_call_p99_us" + suffix,
             static_cast<double>(batched.latency.Percentile(0.99)));
    json.Add("speedup_x" + suffix, speedup);
    json.Add("coalescing_req_per_batch" + suffix, coalescing);
  }

  // --- pass-through overhead: executor(batch=1) vs direct service ----------
  bench::PrintSection("pass-through overhead (no HTTP)");
  double direct_us = 0, passthrough_us = 0;
  {
    auto service = MakeService(index, catalog);
    BatchExecutor executor(service.get(), BatchExecutorConfig{});
    if (!executor.Start().ok()) return 1;
    const size_t iterations =
        std::max<size_t>(2000, static_cast<size_t>(20000 * scale));

    // Alternate the two paths within one loop — and which goes first
    // each iteration — so cache warmth for the (shared) queried item is
    // split evenly; distinct sessions keep the store workload identical.
    uint64_t direct_total = 0, pass_total = 0;
    for (size_t i = 0; i < iterations; ++i) {
      const std::string suffix = std::to_string(i % 64);
      const ItemId item = static_cast<ItemId>(1 + i % num_items);
      const RecommendRequest direct_request{"direct-" + suffix, item, true};
      const RecommendRequest pass_request{"pass-" + suffix, item, true};
      auto run_direct = [&] {
        Stopwatch watch;
        (void)service->HandleUpdateAndRecommend(direct_request);
        direct_total += watch.ElapsedMicros();
      };
      auto run_pass = [&] {
        Stopwatch watch;
        (void)executor.Execute(pass_request);
        pass_total += watch.ElapsedMicros();
      };
      if (i % 2 == 0) {
        run_direct();
        run_pass();
      } else {
        run_pass();
        run_direct();
      }
    }
    direct_us = static_cast<double>(direct_total) / iterations;
    passthrough_us = static_cast<double>(pass_total) / iterations;
  }
  const double overhead_pct =
      direct_us > 0 ? (passthrough_us / direct_us - 1.0) * 100.0 : 0;
  std::printf(
      "  direct %.2fus/req, executor pass-through %.2fus/req -> %+.2f%% "
      "(target within 5%%)\n",
      direct_us, passthrough_us, overhead_pct);

  json.Add("speedup_x", acceptance_speedup);
  json.Add("errors", static_cast<double>(total_errors));
  json.Add("passthrough_overhead_pct", overhead_pct);
  if (!json.WriteTo(bench::JsonPathFromEnv())) return 1;
  return 0;
}
