// Gateway failover benchmark: measures client-visible latency and error
// rates through the ClusterGateway while one backend pod of three is
// killed mid-load — the fleet-tier counterpart of the paper's Figure 3(b)
// load test. The interesting numbers are the p99/p99.5 of the "after
// kill" window (failover + retry cost) and the 5xx count, which must be
// zero: requests either fail over to a ring successor or degrade to the
// popularity fallback.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/popularity.h"
#include "bench_common.h"
#include "cluster/gateway.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/session_index.h"
#include "data/synthetic.h"
#include "serving/server.h"

using namespace serenade;

namespace {

struct WorkerResult {
  Histogram before_kill;
  Histogram after_kill;
  uint64_t server_errors = 0;  // client-visible 5xx
  uint64_t transport_errors = 0;
  uint64_t requests = 0;
};

}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader("gateway_failover_bench", "Figure 1 / Section 4.2",
                     "p99 through the cluster gateway while one of three "
                     "backend pods is killed mid-load");

  SyntheticConfig data_config;
  data_config.num_items = static_cast<size_t>(2000 * scale);
  data_config.num_sessions = static_cast<size_t>(10000 * scale);
  const Dataset train = GenerateDataset(data_config);
  auto index = std::make_shared<SessionIndex>(SessionIndex::Build(train, 500));
  ItemCatalog catalog;
  catalog.available.assign(index->num_items(), true);
  catalog.adult.assign(index->num_items(), false);

  constexpr size_t kPods = 3;
  std::vector<std::unique_ptr<SerenadeServer>> pods;
  std::vector<BackendEndpoint> backends;
  for (size_t i = 0; i < kPods; ++i) {
    ServiceConfig service_config;
    service_config.knn.m = std::min<size_t>(500, index->max_sessions_per_item());
    service_config.knn.k = std::min<size_t>(100, service_config.knn.m);
    auto service = SerenadeService::Create(index, catalog, service_config);
    if (!service.ok()) {
      std::fprintf(stderr, "pod: %s\n", service.status().ToString().c_str());
      return 1;
    }
    auto pod = std::make_unique<SerenadeServer>(std::move(service).value(),
                                                ServerConfig{});
    if (!pod->Start().ok()) return 1;
    backends.push_back(BackendEndpoint{"pod-" + std::to_string(i), pod->port()});
    pods.push_back(std::move(pod));
  }

  GatewayConfig config;
  config.forward_timeout_ms = 250;
  config.max_attempts = 3;
  config.retry_backoff_ms = 1;
  config.health.probe_interval_ms = 50;
  config.health.probe_timeout_ms = 100;
  ClusterGateway gateway(backends, config,
                         std::make_unique<PopularityRecommender>(train));
  if (!gateway.Start().ok()) {
    std::fprintf(stderr, "gateway failed to start\n");
    return 1;
  }

  constexpr int kClients = 8;
  const int seconds_per_phase = std::max(1, static_cast<int>(2 * scale));
  std::atomic<int> phase{0};  // 0 = warm, 1 = all pods up, 2 = one pod down
  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(kClients);
  std::vector<std::thread> clients;

  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      HttpClientOptions options;
      options.connect_timeout_ms = 2000;
      options.io_timeout_ms = 2000;
      HttpClient client(options);
      if (!client.Connect(gateway.port()).ok()) return;
      WorkerResult& out = results[c];
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string session =
            "bench-" + std::to_string(c) + "-" + std::to_string(rng.Below(500));
        const std::string target = "/recommend?session_id=" + session +
                                   "&item_id=" +
                                   std::to_string(rng.Below(train.num_items()));
        Stopwatch stopwatch;
        auto response = client.Get(target);
        const uint64_t micros = stopwatch.ElapsedMicros();
        const int current_phase = phase.load(std::memory_order_relaxed);
        ++out.requests;
        if (!response.ok()) {
          ++out.transport_errors;
          continue;
        }
        if (response->status >= 500) ++out.server_errors;
        if (current_phase == 1) out.before_kill.Record(micros);
        if (current_phase == 2) out.after_kill.Record(micros);
      }
    });
  }

  // Warm-up, then measure with the full fleet, then kill pod-0 and keep
  // measuring through ejection + failover.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  phase.store(1);
  std::this_thread::sleep_for(std::chrono::seconds(seconds_per_phase));
  phase.store(0);
  std::printf("killing pod-0 (port %u)...\n", pods[0]->port());
  pods[0]->Stop();
  phase.store(2);
  std::this_thread::sleep_for(std::chrono::seconds(seconds_per_phase));
  stop.store(true);
  for (auto& thread : clients) thread.join();

  WorkerResult total;
  for (const WorkerResult& result : results) {
    total.before_kill.Merge(result.before_kill);
    total.after_kill.Merge(result.after_kill);
    total.server_errors += result.server_errors;
    total.transport_errors += result.transport_errors;
    total.requests += result.requests;
  }

  bench::PrintSection("client-visible latency (micros)");
  std::printf("all pods up : %s\n", total.before_kill.Summary().c_str());
  std::printf("one pod down: %s\n", total.after_kill.Summary().c_str());

  bench::PrintSection("availability");
  const GatewayCounters totals = gateway.counters();
  std::printf("requests=%llu 5xx=%llu transport_errors=%llu\n",
              static_cast<unsigned long long>(total.requests),
              static_cast<unsigned long long>(total.server_errors),
              static_cast<unsigned long long>(total.transport_errors));
  std::printf("gateway: forwarded=%llu degraded=%llu failed=%llu retries=%llu\n",
              static_cast<unsigned long long>(totals.forwarded_ok),
              static_cast<unsigned long long>(totals.degraded),
              static_cast<unsigned long long>(totals.failed),
              static_cast<unsigned long long>(totals.retries));
  for (const BackendCounters& backend : gateway.backend_counters()) {
    std::printf("  %-8s requests=%llu errors=%llu\n", backend.name.c_str(),
                static_cast<unsigned long long>(backend.requests),
                static_cast<unsigned long long>(backend.errors));
  }
  std::printf("\nexpectation: zero 5xx — requests fail over to ring "
              "successors or degrade to popularity.\n");

  gateway.Stop();
  for (auto& pod : pods) pod->Stop();
  return total.server_errors == 0 ? 0 : 1;
}
