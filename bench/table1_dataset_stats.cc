// Experiment E1 — reproduces Table 1: dataset statistics (clicks,
// sessions, items, days, clicks-per-session percentiles) for the public
// datasets and the proprietary ecom-* family. The proprietary datasets
// are synthesised (see DESIGN.md, Substitutions); the large ones are
// generated at a reduced scale and the scale factor is reported.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/stats.h"
#include "data/synthetic.h"

using namespace serenade;

namespace {

struct PaperRow {
  const char* name;
  const char* clicks;
  const char* sessions;
  const char* items;
  int p25, p50, p75, p99;
};

const PaperRow kPaperRows[] = {
    {"retailrocket", "86,635", "23,318", "21,276", 2, 2, 4, 19},
    {"rsc15", "31,708,461", "7,981,581", "37,483", 2, 3, 4, 19},
    {"ecom-1m", "1,152,438", "214,490", "110,988", 2, 4, 6, 28},
    {"ecom-60m", "67,017,367", "10,679,757", "1,760,602", 2, 4, 7, 36},
    {"ecom-90m", "89,883,761", "13,799,762", "2,263,670", 2, 4, 7, 38},
    {"ecom-180m", "189,317,506", "28,824,487", "3,305,412", 2, 4, 7, 39},
};

}  // namespace

int main() {
  bench::PrintHeader("Experiment E1", "Table 1",
                     "Dataset statistics: synthetic stand-ins for the "
                     "paper's public and proprietary datasets.");
  const double scale = bench::ScaleFromEnv();

  std::vector<DatasetProfile> profiles = {
      RetailRocketProfile(1.0 * scale),
      Rsc15Profile(0.02 * scale),
      Ecom1mProfile(1.0 * scale),
      EcomScaledProfile("ecom-60m", 67.0, 0.02 * scale),
      EcomScaledProfile("ecom-90m", 89.9, 0.015 * scale),
      EcomScaledProfile("ecom-180m", 189.3, 0.008 * scale),
  };

  bench::PrintSection("paper reference (Table 1)");
  std::printf("%-16s %12s %12s %10s %5s %5s %5s %5s\n", "dataset", "clicks",
              "sessions", "items", "p25", "p50", "p75", "p99");
  for (const PaperRow& row : kPaperRows) {
    std::printf("%-16s %12s %12s %10s %5d %5d %5d %5d\n", row.name,
                row.clicks, row.sessions, row.items, row.p25, row.p50,
                row.p75, row.p99);
  }

  bench::PrintSection("measured (synthetic stand-ins, scaled)");
  std::vector<DatasetStats> rows;
  for (const DatasetProfile& profile : profiles) {
    // Keep sessions of length 1 for statistics purposes (the paper's
    // percentile rows include them; p25=2 implies minimum length 2 after
    // their preprocessing, which our generator matches by construction).
    Dataset dataset = Dataset::FromClicks(GenerateClicks(profile.config), 1);
    DatasetStats stats = ComputeStats(profile.name, dataset);
    rows.push_back(stats);
  }
  std::printf("%s", FormatStatsTable(rows).c_str());

  bench::PrintSection("scale factors vs. the paper's datasets");
  for (const DatasetProfile& profile : profiles) {
    std::printf("%-16s generated at %.3fx of the paper's size\n",
                profile.name, profile.scale);
  }
  std::printf(
      "\nShape check: percentile rows should match the paper almost "
      "exactly\n(they are scale-free); click/session/item counts scale "
      "with the factor.\n");
  return 0;
}
