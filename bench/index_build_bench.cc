// Experiment E12 (extension) — offline index generation throughput and
// artifact sizes (the paper's Spark job builds from 2.3B interactions in
// ~40 minutes on 75 machines; its serving-side index needs ~13 GB). This
// bench measures our builder's single-machine throughput across dataset
// scales and m values, plus the on-disk (compressed) vs in-memory sizes
// per indexed click — numbers a capacity planner would extrapolate from.
#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/compressed_index.h"
#include "data/synthetic.h"
#include "index/index_builder.h"
#include "index/index_format.h"

using namespace serenade;

int main() {
  bench::PrintHeader("Experiment E12 (extension)",
                     "Section 4.2 offline index generation",
                     "Index build throughput and artifact sizes.");
  const double scale = bench::ScaleFromEnv();

  std::printf("\n%10s %8s %12s %12s %14s %14s %14s\n", "sessions", "m",
              "build(s)", "Mclicks/s", "in-mem bytes", "on-disk bytes",
              "compr in-mem");
  for (size_t sessions : {20000u, 80000u, 200000u}) {
    SyntheticConfig config;
    config.seed = 0xb11d;
    config.num_sessions = static_cast<size_t>(sessions * scale);
    config.num_items = config.num_sessions / 5;
    config.num_days = 30;
    Dataset dataset = GenerateDataset(config);

    for (size_t m : {100u, 500u}) {
      IndexBuilderOptions options;
      options.max_sessions_per_item = m;
      Stopwatch build_timer;
      SessionIndex index = BuildIndexParallel(dataset, options);
      const double build_seconds = build_timer.ElapsedSeconds();

      const std::string serialized = SerializeIndex(index);
      const CompressedSessionIndex compressed =
          CompressedSessionIndex::FromIndex(index);

      std::printf("%10zu %8zu %12.3f %12.1f %14zu %14zu %14zu\n",
                  dataset.num_sessions(), m, build_seconds,
                  static_cast<double>(dataset.num_clicks()) / 1e6 /
                      build_seconds,
                  index.MemoryBytes(), serialized.size(),
                  compressed.MemoryBytes());
    }
  }

  std::printf(
      "\nreading: build time scales linearly with clicks; the on-disk "
      "format\nand the compressed in-memory index are both substantially "
      "smaller than\nthe flat CSR representation. The paper's 2.3B-click "
      "build needs ~13 GB\nserving-side — consistent with our bytes/click "
      "once extrapolated.\n");
  return 0;
}
