// Experiment E11 (extension) — index freshness / incremental maintenance.
// Section 4.1 notes the daily batch build means new sessions (and new
// items) reach the index with a one-day delay; Section 7 proposes
// incremental maintenance as future work. This bench quantifies both:
//
//   stale       index built without the most recent day (production today)
//   incremental stale index + the most recent day ingested via
//               UpdatableSessionIndex (the future-work design)
//   rebuilt     full batch rebuild including the most recent day (upper
//               bound, what the nightly job would eventually produce)
//   streaming   stale index + the most recent day streamed through the
//               freshness pipeline (DESIGN.md §9): DeltaBuilder ->
//               serialized delta artifact -> IndexManager::ApplyDelta,
//               exactly the bytes-on-the-wire path the fleet runs
//
// all evaluated on the held-out final day, plus the ingest throughput of
// the incremental path and the click->servable latency distribution of
// the streaming path (the freshness SLO this repo's pipeline targets).
// Honours SERENADE_BENCH_SCALE; writes key metrics to the path in
// SERENADE_BENCH_JSON for the CI bench-smoke artifact.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/vmis_knn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "freshness/delta_builder.h"
#include "index/index_format.h"
#include "index/snapshot.h"
#include "index/updatable_index.h"

namespace {

double PercentileMs(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(p * (values.size() - 1));
  return values[rank];
}

}  // namespace

using namespace serenade;

int main() {
  bench::PrintHeader("Experiment E11 (extension)",
                     "Section 4.1 cold start + Section 7 future work",
                     "Prediction quality: stale vs incrementally maintained "
                     "vs fully rebuilt index.");
  const double scale = bench::ScaleFromEnv();

  SyntheticConfig data_config;
  data_config.seed = 0xf2e5;
  data_config.num_items = static_cast<size_t>(4000 * scale);
  data_config.num_sessions = static_cast<size_t>(30000 * scale);
  data_config.num_days = 12;
  data_config.cluster_size = 60;
  // Interest drift makes recent sessions genuinely more predictive —
  // this is the regime where index freshness matters on real platforms.
  data_config.cluster_drift_per_day = 0.08;
  Dataset dataset = GenerateDataset(data_config);

  // Final day = evaluation; day before = the "fresh" data the nightly
  // batch job has not yet seen.
  TrainTestSplit eval_split = SplitLastDays(dataset, 1);
  TrainTestSplit fresh_split = SplitLastDays(eval_split.train, 1);
  const Dataset& stale_train = fresh_split.train;   // days 1..N-2
  const Dataset& fresh_day = fresh_split.test;      // day N-1
  const Dataset& eval_day = eval_split.test;        // day N
  std::printf("stale train: %zu sessions | fresh day: %zu sessions | "
              "eval day: %zu sessions\n",
              stale_train.num_sessions(), fresh_day.num_sessions(),
              eval_day.num_sessions());

  KnnConfig config;
  config.m = 500;
  config.k = 100;

  // (a) stale. Shared so the streaming pipeline below can pin it as its
  // delta base without rebuilding.
  auto stale_index = std::make_shared<const SessionIndex>(
      SessionIndex::Build(stale_train, config.m));
  VmisKnn stale_model(stale_index.get(), config);

  // (b) incremental: ingest the fresh day.
  UpdatableSessionIndex incremental_index(
      SessionIndex::Build(stale_train, config.m));
  Stopwatch ingest_timer;
  for (const SessionData& session : fresh_day.sessions()) {
    incremental_index.Ingest(session.items, session.end_time);
  }
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  VmisKnnT<UpdatableSessionIndex> incremental_model(&incremental_index,
                                                    config);

  // (c) full rebuild including the fresh day.
  SessionIndex rebuilt_index = SessionIndex::Build(eval_split.train, config.m);
  VmisKnn rebuilt_model(&rebuilt_index, config);

  // (d) streaming: the fresh day arrives as a click stream through the
  // freshness pipeline — sessionized by a DeltaBuilder, compacted into
  // versioned artifacts, round-tripped through the wire codec, and layered
  // over the pinned stale base by IndexManager::ApplyDelta. Each round
  // models one compaction cadence; its wall time is the click->servable
  // latency those sessions experienced.
  DeltaBuilderConfig stream_config;
  stream_config.base_version = 1;
  stream_config.base_max_timestamp = stale_train.max_timestamp();
  stream_config.min_session_length = 2;
  stream_config.seal_idle_ms = 1;
  DeltaBuilder delta_builder(stream_config);
  auto manager = IndexManager::CreateFromIndex(stale_index, /*version=*/1);

  const size_t rounds = 16;
  const auto& fresh_sessions = fresh_day.sessions();
  const size_t per_round = (fresh_sessions.size() + rounds - 1) / rounds;
  std::vector<double> click_to_servable_ms;
  double codec_bytes = 0.0;
  size_t streamed = 0;
  Stopwatch stream_timer;
  for (size_t r = 0; r < rounds && streamed < fresh_sessions.size(); ++r) {
    Stopwatch round_timer;
    const size_t end =
        std::min(fresh_sessions.size(), streamed + per_round);
    for (; streamed < end; ++streamed) {
      const SessionData& session = fresh_sessions[streamed];
      const std::string key = "fresh-" + std::to_string(streamed);
      for (ItemId item : session.items) {
        delta_builder.Ingest(key, item, NowUnixMs());
      }
    }
    const uint64_t now = NowUnixMs() + 10;  // everything just went idle
    delta_builder.SealIdle(now);
    auto delta = delta_builder.Compact(now);
    if (!delta.has_value()) continue;
    // Round-trip the real artifact codec: the fleet applies bytes, not
    // in-memory structs.
    const std::string bytes = SerializeDelta(*delta);
    codec_bytes = static_cast<double>(bytes.size());
    auto decoded = DeserializeDelta(bytes);
    if (!decoded.ok()) {
      std::fprintf(stderr, "delta codec: %s\n",
                   decoded.status().ToString().c_str());
      return 1;
    }
    if (Status applied = manager->ApplyDelta(*decoded);
        !applied.ok() && applied.code() != StatusCode::kAlreadyExists) {
      std::fprintf(stderr, "apply delta: %s\n", applied.ToString().c_str());
      return 1;
    }
    click_to_servable_ms.push_back(round_timer.ElapsedSeconds() * 1000.0);
  }
  const double stream_seconds = stream_timer.ElapsedSeconds();
  const auto overlay = manager->Current();  // pins the merged index
  VmisKnn streaming_model(&overlay->index(), config);

  EvalOptions options;
  options.max_sessions = 1200;
  options.record_latency = true;

  struct Row {
    const char* name;
    EvalResult result;
  };
  Row rows[] = {
      {"stale (1-day-old batch)",
       EvaluateRecommender(stale_model, eval_day, options)},
      {"incremental (ingested)",
       EvaluateRecommender(incremental_model, eval_day, options)},
      {"rebuilt (full batch)",
       EvaluateRecommender(rebuilt_model, eval_day, options)},
      {"streaming (delta overlay)",
       EvaluateRecommender(streaming_model, eval_day, options)},
  };

  bench::PrintSection("prediction quality on the held-out day");
  std::printf("%-26s %8s %8s %8s %12s\n", "index", "MRR@20", "HR@20", "P@20",
              "p90 query us");
  for (const Row& row : rows) {
    std::printf("%-26s %8.4f %8.4f %8.4f %12llu\n", row.name,
                row.result.metrics.Mrr(), row.result.metrics.HitRate(),
                row.result.metrics.Precision(),
                static_cast<unsigned long long>(
                    row.result.latency_micros.Percentile(0.9)));
  }

  bench::PrintSection("incremental maintenance cost");
  std::printf("ingested %zu sessions in %.3fs (%.0f sessions/sec)\n",
              fresh_day.num_sessions(), ingest_seconds,
              fresh_day.num_sessions() / std::max(ingest_seconds, 1e-9));

  const double p50_ms = PercentileMs(click_to_servable_ms, 0.50);
  const double p99_ms = PercentileMs(click_to_servable_ms, 0.99);
  bench::PrintSection("streaming freshness pipeline (DESIGN.md §9)");
  std::printf(
      "streamed %zu sessions in %zu compaction rounds (%.3fs total)\n"
      "deltas applied: %llu (final version %llu, %.0f KB cumulative "
      "artifact)\n"
      "click->servable latency: p50 %.2f ms, p99 %.2f ms\n"
      "quality lift vs stale: %+.4f MRR (rebuilt upper bound %+.4f)\n",
      streamed, click_to_servable_ms.size(), stream_seconds,
      static_cast<unsigned long long>(manager->deltas_applied_total()),
      static_cast<unsigned long long>(manager->applied_delta_version()),
      codec_bytes / 1024.0, p50_ms, p99_ms,
      rows[3].result.metrics.Mrr() - rows[0].result.metrics.Mrr(),
      rows[2].result.metrics.Mrr() - rows[0].result.metrics.Mrr());

  const bool ordering =
      rows[1].result.metrics.Mrr() >= rows[0].result.metrics.Mrr() - 1e-3 &&
      rows[2].result.metrics.Mrr() >= rows[0].result.metrics.Mrr() - 1e-3 &&
      rows[3].result.metrics.Mrr() >= rows[0].result.metrics.Mrr() - 1e-3 &&
      std::abs(rows[1].result.metrics.Mrr() - rows[2].result.metrics.Mrr()) <
          0.01;
  std::printf(
      "\nshape check (fresh data helps; incremental ~= rebuilt; streaming "
      "overlay closes the gap): %s\n",
      ordering ? "REPRODUCED" : "NOT reproduced on this run");

  bench::JsonResultWriter json("index_freshness");
  json.Add("stale_mrr", rows[0].result.metrics.Mrr());
  json.Add("incremental_mrr", rows[1].result.metrics.Mrr());
  json.Add("rebuilt_mrr", rows[2].result.metrics.Mrr());
  json.Add("streaming_mrr", rows[3].result.metrics.Mrr());
  json.Add("streaming_lift_vs_stale",
           rows[3].result.metrics.Mrr() - rows[0].result.metrics.Mrr());
  json.Add("ingest_sessions_per_sec",
           fresh_day.num_sessions() / std::max(ingest_seconds, 1e-9));
  json.Add("click_to_servable_p50_ms", p50_ms);
  json.Add("click_to_servable_p99_ms", p99_ms);
  json.Add("deltas_applied",
           static_cast<double>(manager->deltas_applied_total()));
  if (!json.WriteTo(bench::JsonPathFromEnv())) return 1;
  return 0;
}
