// Experiment E11 (extension) — index freshness / incremental maintenance.
// Section 4.1 notes the daily batch build means new sessions (and new
// items) reach the index with a one-day delay; Section 7 proposes
// incremental maintenance as future work. This bench quantifies both:
//
//   stale       index built without the most recent day (production today)
//   incremental stale index + the most recent day ingested via
//               UpdatableSessionIndex (the future-work design)
//   rebuilt     full batch rebuild including the most recent day (upper
//               bound, what the nightly job would eventually produce)
//
// all evaluated on the held-out final day, plus the ingest throughput of
// the incremental path.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/vmis_knn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "index/updatable_index.h"

using namespace serenade;

int main() {
  bench::PrintHeader("Experiment E11 (extension)",
                     "Section 4.1 cold start + Section 7 future work",
                     "Prediction quality: stale vs incrementally maintained "
                     "vs fully rebuilt index.");
  const double scale = bench::ScaleFromEnv();

  SyntheticConfig data_config;
  data_config.seed = 0xf2e5;
  data_config.num_items = static_cast<size_t>(4000 * scale);
  data_config.num_sessions = static_cast<size_t>(30000 * scale);
  data_config.num_days = 12;
  data_config.cluster_size = 60;
  // Interest drift makes recent sessions genuinely more predictive —
  // this is the regime where index freshness matters on real platforms.
  data_config.cluster_drift_per_day = 0.08;
  Dataset dataset = GenerateDataset(data_config);

  // Final day = evaluation; day before = the "fresh" data the nightly
  // batch job has not yet seen.
  TrainTestSplit eval_split = SplitLastDays(dataset, 1);
  TrainTestSplit fresh_split = SplitLastDays(eval_split.train, 1);
  const Dataset& stale_train = fresh_split.train;   // days 1..N-2
  const Dataset& fresh_day = fresh_split.test;      // day N-1
  const Dataset& eval_day = eval_split.test;        // day N
  std::printf("stale train: %zu sessions | fresh day: %zu sessions | "
              "eval day: %zu sessions\n",
              stale_train.num_sessions(), fresh_day.num_sessions(),
              eval_day.num_sessions());

  KnnConfig config;
  config.m = 500;
  config.k = 100;

  // (a) stale.
  SessionIndex stale_index = SessionIndex::Build(stale_train, config.m);
  VmisKnn stale_model(&stale_index, config);

  // (b) incremental: ingest the fresh day.
  UpdatableSessionIndex incremental_index(
      SessionIndex::Build(stale_train, config.m));
  Stopwatch ingest_timer;
  for (const SessionData& session : fresh_day.sessions()) {
    incremental_index.Ingest(session.items, session.end_time);
  }
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  VmisKnnT<UpdatableSessionIndex> incremental_model(&incremental_index,
                                                    config);

  // (c) full rebuild including the fresh day.
  SessionIndex rebuilt_index = SessionIndex::Build(eval_split.train, config.m);
  VmisKnn rebuilt_model(&rebuilt_index, config);

  EvalOptions options;
  options.max_sessions = 1200;
  options.record_latency = true;

  struct Row {
    const char* name;
    EvalResult result;
  };
  Row rows[] = {
      {"stale (1-day-old batch)",
       EvaluateRecommender(stale_model, eval_day, options)},
      {"incremental (ingested)",
       EvaluateRecommender(incremental_model, eval_day, options)},
      {"rebuilt (full batch)",
       EvaluateRecommender(rebuilt_model, eval_day, options)},
  };

  bench::PrintSection("prediction quality on the held-out day");
  std::printf("%-26s %8s %8s %8s %12s\n", "index", "MRR@20", "HR@20", "P@20",
              "p90 query us");
  for (const Row& row : rows) {
    std::printf("%-26s %8.4f %8.4f %8.4f %12llu\n", row.name,
                row.result.metrics.Mrr(), row.result.metrics.HitRate(),
                row.result.metrics.Precision(),
                static_cast<unsigned long long>(
                    row.result.latency_micros.Percentile(0.9)));
  }

  bench::PrintSection("incremental maintenance cost");
  std::printf("ingested %zu sessions in %.3fs (%.0f sessions/sec)\n",
              fresh_day.num_sessions(), ingest_seconds,
              fresh_day.num_sessions() / std::max(ingest_seconds, 1e-9));

  const bool ordering =
      rows[1].result.metrics.Mrr() >= rows[0].result.metrics.Mrr() - 1e-3 &&
      rows[2].result.metrics.Mrr() >= rows[0].result.metrics.Mrr() - 1e-3 &&
      std::abs(rows[1].result.metrics.Mrr() - rows[2].result.metrics.Mrr()) <
          0.01;
  std::printf(
      "\nshape check (fresh data helps; incremental ~= rebuilt): %s\n",
      ordering ? "REPRODUCED" : "NOT reproduced on this run");
  return 0;
}
