// Experiment E14 (extension) — the ANN retrieval family's cost/quality
// envelope. Serenade's VMIS-kNN retrieves by session co-occurrence; the
// second family (DESIGN.md §13) retrieves by item2vec geometry through
// an HNSW graph. Before an A/B split sends live traffic there, this
// bench pins what the trade actually is:
//
//   train      item2vec skip-gram over the synthetic clickstream
//              (deterministic: the artifact CRC is reproducible)
//   build      HNSW graph construction over the trained vectors
//   recall@20  HNSW top-20 vs brute-force exact top-20 on held-out
//              session queries (the differential oracle's gate, here
//              measured instead of asserted)
//   latency    per-query p50/p99 of the exact scan vs the graph search
//              — the reason ANN exists: sublinear search at high recall
//
// Honours SERENADE_BENCH_SCALE; writes key metrics to the path in
// SERENADE_BENCH_JSON for the CI bench-smoke artifact
// (tools/check_bench_regression.py gates recall and failure counts).
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "baselines/item2vec.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/embedding.h"
#include "core/hnsw.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace {

double PercentileUs(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(p * (values.size() - 1));
  return values[rank];
}

}  // namespace

using namespace serenade;

int main() {
  bench::PrintHeader("Experiment E14 (extension)",
                     "DESIGN.md §13 second retrieval family",
                     "item2vec + HNSW: build cost, recall@20 vs exact, "
                     "query latency vs brute force.");
  const double scale = bench::ScaleFromEnv();

  SyntheticConfig data_config;
  data_config.seed = 0xa22;
  data_config.num_items = static_cast<size_t>(4000 * scale);
  data_config.num_sessions = static_cast<size_t>(30000 * scale);
  const Dataset dataset = GenerateDataset(data_config);
  const TrainTestSplit split = SplitLastDays(dataset, 1);
  std::printf("clickstream: %zu train sessions, %zu items, %zu query "
              "sessions held out\n",
              split.train.num_sessions(), split.train.num_items(),
              split.test.num_sessions());

  // (a) train: the deterministic artifact the nightly rollout would ship.
  Item2VecConfig train_config;
  train_config.dim = 32;
  train_config.epochs = 2;
  train_config.num_threads = 4;
  Stopwatch train_timer;
  auto embeddings = TrainItemEmbeddings(split.train, train_config);
  if (!embeddings.ok()) {
    std::fprintf(stderr, "training: %s\n",
                 embeddings.status().ToString().c_str());
    return 1;
  }
  const double train_seconds = train_timer.ElapsedSeconds();
  std::printf("trained %zu x %zu embeddings in %.2fs\n",
              embeddings->num_items, embeddings->dim, train_seconds);

  // (b) build: the per-reload cost EmbeddingManager pays at publish time.
  HnswConfig hnsw_config;
  Stopwatch build_timer;
  const HnswIndex ann(&*embeddings, hnsw_config);
  const double build_seconds = build_timer.ElapsedSeconds();
  std::printf("built HNSW (M=%zu, efc=%zu) in %.2fs, digest %016llx\n",
              hnsw_config.M, hnsw_config.ef_construction, build_seconds,
              static_cast<unsigned long long>(ann.GraphDigest()));

  // (c)+(d) recall and latency on session-folded queries — the exact
  // vector the serving path searches with.
  constexpr size_t kTopK = 20;
  const size_t max_queries =
      std::min<size_t>(split.test.num_sessions(), 2000);
  std::vector<float> query(embeddings->dim);
  std::vector<double> exact_us, ann_us;
  exact_us.reserve(max_queries);
  ann_us.reserve(max_queries);
  double recall_sum = 0.0;
  size_t queries = 0;
  for (const SessionData& session : split.test.sessions()) {
    if (queries >= max_queries) break;
    EvolvingSession evolving;
    for (ItemId item : session.items) {
      if (item < embeddings->num_items) evolving.push_back(item);
    }
    if (evolving.empty()) continue;
    if (!SessionQueryVector(*embeddings, evolving, /*window=*/8,
                            /*decay=*/0.8f, query.data())) {
      continue;
    }

    Stopwatch exact_timer;
    const std::vector<ScoredItem> exact =
        ExactNearest(*embeddings, query.data(), kTopK);
    exact_us.push_back(exact_timer.ElapsedSeconds() * 1e6);

    Stopwatch ann_timer;
    const std::vector<ScoredItem> approx = ann.Search(query.data(), kTopK);
    ann_us.push_back(ann_timer.ElapsedSeconds() * 1e6);

    std::set<ItemId> truth;
    for (const ScoredItem& scored : exact) truth.insert(scored.item);
    size_t hits = 0;
    for (const ScoredItem& scored : approx) {
      if (truth.count(scored.item) > 0) ++hits;
    }
    recall_sum +=
        truth.empty() ? 1.0
                      : static_cast<double>(hits) /
                            static_cast<double>(truth.size());
    ++queries;
  }
  if (queries == 0) {
    std::fprintf(stderr, "no usable queries at this scale\n");
    return 1;
  }
  const double recall = recall_sum / static_cast<double>(queries);
  const double exact_p50 = PercentileUs(exact_us, 0.50);
  const double exact_p99 = PercentileUs(exact_us, 0.99);
  const double ann_p50 = PercentileUs(ann_us, 0.50);
  const double ann_p99 = PercentileUs(ann_us, 0.99);

  bench::PrintSection("recall and latency");
  std::printf("%zu session queries, top-%zu\n", queries, kTopK);
  std::printf("recall@%zu vs exact: %.4f\n", kTopK, recall);
  std::printf("%-12s %10s %10s\n", "path", "p50 us", "p99 us");
  std::printf("%-12s %10.1f %10.1f\n", "exact scan", exact_p50, exact_p99);
  std::printf("%-12s %10.1f %10.1f\n", "hnsw", ann_p50, ann_p99);
  std::printf("\nspeedup p50: %.1fx (the sublinear-search payoff the "
              "recall gate licenses)\n",
              exact_p50 / std::max(ann_p50, 1e-9));

  bench::JsonResultWriter json("ann_retrieval");
  json.Add("train_seconds", train_seconds);
  json.Add("build_seconds", build_seconds);
  json.Add("queries", static_cast<double>(queries));
  json.Add("recall_at_20", recall);
  json.Add("exact_p50_us", exact_p50);
  json.Add("exact_p99_us", exact_p99);
  json.Add("ann_p50_us", ann_p50);
  json.Add("ann_p99_us", ann_p99);
  json.Add("speedup_p50", exact_p50 / std::max(ann_p50, 1e-9));
  if (!json.WriteTo(bench::JsonPathFromEnv())) return 1;
  return 0;
}
