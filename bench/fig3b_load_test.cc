// Experiment E6 — reproduces Figure 3(b): the offline load test. Two
// stateful serving instances ("pods") share a replicated index; a load
// generator ramps the request rate beyond 1,000 requests per second and
// we report, per time bucket: request rate, core usage, and the p75 /
// p90 / p99.5 response latency.
//
// Paper shape to reproduce: Serenade absorbs >1,000 rps with p90 < 7 ms
// and p99.5 < 15 ms; core usage scales roughly linearly with load (the
// paper used 2 pods x 3 provisioned cores and needed ~1 core each).
// Note: this harness runs servers AND the load generator in one process,
// so the core-usage column includes client-side work.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "benchutil/load_generator.h"
#include "benchutil/workload.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "serving/server.h"

using namespace serenade;

int main() {
  bench::PrintHeader("Experiment E6", "Figure 3(b)",
                     "Load test: >1,000 rps against two serving pods.");
  const double scale = bench::ScaleFromEnv();

  // Index from a scaled click history.
  SyntheticConfig data_config;
  data_config.seed = 0x10ad;
  data_config.num_items = static_cast<size_t>(20000 * scale);
  data_config.num_sessions = static_cast<size_t>(80000 * scale);
  data_config.num_days = 30;
  Dataset historical = GenerateDataset(data_config);
  auto index = std::make_shared<SessionIndex>(
      SessionIndex::Build(historical, 500));
  std::printf("index: %zu sessions, %zu items, %zu postings (%.1f MB)\n",
              index->num_sessions(), index->num_items(),
              index->num_postings(),
              static_cast<double>(index->MemoryBytes()) / 1e6);

  // Two serving pods (paper: two Kubernetes pods, 3 cores each).
  const ItemCatalog catalog = GenerateCatalog(historical.num_items(), 5);
  ServiceConfig service_config;
  service_config.knn.m = 500;
  service_config.knn.k = 500;  // production setting of the A/B test
  std::vector<std::unique_ptr<SerenadeServer>> servers;
  std::vector<uint16_t> ports;
  for (int pod = 0; pod < 2; ++pod) {
    auto service = SerenadeService::Create(index, catalog, service_config);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    ServerConfig server_config;
    server_config.janitor_interval_ms = 2000;
    servers.push_back(std::make_unique<SerenadeServer>(
        std::move(service).value(), server_config));
    if (!servers.back()->Start().ok()) return 1;
    ports.push_back(servers.back()->port());
  }

  // Ramp from 200 to 1,200 requests per second over the test window
  // (the paper's load test runs for hours; we compress to ~35s).
  WorkloadOptions workload_options;
  workload_options.duration_seconds = 35.0;
  workload_options.seed = 4;
  const auto events = BuildWorkload(historical, RateProfile::Ramp(200, 1200),
                                    workload_options);
  std::printf("workload: %zu requests over %.0fs (ramp 200 -> 1200 rps)\n",
              events.size(), workload_options.duration_seconds);

  LoadGeneratorOptions load_options;
  load_options.connections_per_server = 8;
  load_options.bucket_seconds = 2.5;
  const LoadResult result = RunLoad(events, ports, load_options);

  bench::PrintSection("measured (per 2.5s bucket)");
  std::printf("%s", result.FormatTable().c_str());

  uint64_t served = 0;
  for (auto& server : servers) {
    served += server->requests_served();
    server->Stop();
  }
  std::printf("\npods served %llu requests total\n",
              static_cast<unsigned long long>(served));

  const double p90_ms = result.total_latency_micros.Percentile(0.90) / 1000.0;
  const double p995_ms =
      result.total_latency_micros.Percentile(0.995) / 1000.0;
  std::printf(
      "\nshape check (paper: p90 < 7 ms, p99.5 < 15 ms at 1000+ rps): "
      "p90=%.2f ms, p99.5=%.2f ms -> %s\n",
      p90_ms, p995_ms,
      (p90_ms < 7.0 && result.total_errors == 0) ? "REPRODUCED"
                                                 : "see numbers above");
  return 0;
}
