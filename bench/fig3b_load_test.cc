// Experiment E6 — reproduces Figure 3(b): the offline load test. Two
// stateful serving instances ("pods") share a replicated index; a load
// generator ramps the request rate beyond 1,000 requests per second and
// we report, per time bucket: request rate, core usage, and the p75 /
// p90 / p99.5 response latency.
//
// Paper shape to reproduce: Serenade absorbs >1,000 rps with p90 < 7 ms
// and p99.5 < 15 ms; core usage scales roughly linearly with load (the
// paper used 2 pods x 3 provisioned cores and needed ~1 core each).
// Note: this harness runs servers AND the load generator in one process,
// so the core-usage column includes client-side work.
//
// A second arm exercises the epoll reactor's raison d'être: the same
// constant-rate workload is measured twice, once against idle pods and
// once while ~10,000 established-but-idle keep-alive connections are
// parked on them (SERENADE_BENCH_CONNECTIONS overrides the target;
// RLIMIT_NOFILE caps it — both connection ends live in this process).
// With readiness-driven I/O the parked mass must not move the active
// requests' p99.
#include <sys/resource.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "benchutil/load_generator.h"
#include "benchutil/workload.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "serving/server.h"

using namespace serenade;

namespace {

// Raises the fd soft limit to the hard limit; returns the resulting soft
// limit.
size_t RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 1024;
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &limit);
    ::getrlimit(RLIMIT_NOFILE, &limit);
  }
  return static_cast<size_t>(limit.rlim_cur);
}

int ConnectIdle(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

uint64_t OpenConnections(
    const std::vector<std::unique_ptr<SerenadeServer>>& servers) {
  uint64_t open = 0;
  for (const auto& server : servers) open += server->http_stats().open_connections;
  return open;
}

}  // namespace

int main() {
  bench::PrintHeader("Experiment E6", "Figure 3(b)",
                     "Load test: >1,000 rps against two serving pods.");
  const double scale = bench::ScaleFromEnv();

  // Index from a scaled click history.
  SyntheticConfig data_config;
  data_config.seed = 0x10ad;
  data_config.num_items = static_cast<size_t>(20000 * scale);
  data_config.num_sessions = static_cast<size_t>(80000 * scale);
  data_config.num_days = 30;
  Dataset historical = GenerateDataset(data_config);
  auto index = std::make_shared<SessionIndex>(
      SessionIndex::Build(historical, 500));
  std::printf("index: %zu sessions, %zu items, %zu postings (%.1f MB)\n",
              index->num_sessions(), index->num_items(),
              index->num_postings(),
              static_cast<double>(index->MemoryBytes()) / 1e6);

  // Two serving pods (paper: two Kubernetes pods, 3 cores each). The
  // reactor options leave room for the high-concurrency arm's parked
  // connections: a cap above the target and an idle timeout that outlives
  // the measured phases.
  const ItemCatalog catalog = GenerateCatalog(historical.num_items(), 5);
  ServiceConfig service_config;
  service_config.knn.m = 500;
  service_config.knn.k = 500;  // production setting of the A/B test
  std::vector<std::unique_ptr<SerenadeServer>> servers;
  std::vector<uint16_t> ports;
  for (int pod = 0; pod < 2; ++pod) {
    auto service = SerenadeService::Create(index, catalog, service_config);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    ServerConfig server_config;
    server_config.janitor_interval_ms = 2000;
    server_config.http.max_connections = 60000;
    server_config.http.idle_timeout_ms = 10 * 60 * 1000;
    servers.push_back(std::make_unique<SerenadeServer>(
        std::move(service).value(), server_config));
    if (!servers.back()->Start().ok()) return 1;
    ports.push_back(servers.back()->port());
  }

  bench::JsonResultWriter json("fig3b_load_test");

  // --- arm 1: the paper's rate ramp -----------------------------------------
  // Ramp from 200 to 1,200 requests per second over the test window
  // (the paper's load test runs for hours; we compress to ~35s).
  WorkloadOptions workload_options;
  workload_options.duration_seconds = bench::SecondsFromEnv(35.0);
  workload_options.seed = 4;
  const auto events = BuildWorkload(historical, RateProfile::Ramp(200, 1200),
                                    workload_options);
  std::printf("workload: %zu requests over %.0fs (ramp 200 -> 1200 rps)\n",
              events.size(), workload_options.duration_seconds);

  LoadGeneratorOptions load_options;
  load_options.connections_per_server = 8;
  load_options.bucket_seconds = 2.5;
  const LoadResult result = RunLoad(events, ports, load_options);

  bench::PrintSection("measured (per 2.5s bucket)");
  std::printf("%s", result.FormatTable().c_str());

  uint64_t served = 0;
  for (auto& server : servers) served += server->requests_served();
  std::printf("\npods served %llu requests total\n",
              static_cast<unsigned long long>(served));

  const double p90_ms = result.total_latency_micros.Percentile(0.90) / 1000.0;
  const double p995_ms =
      result.total_latency_micros.Percentile(0.995) / 1000.0;
  std::printf(
      "\nshape check (paper: p90 < 7 ms, p99.5 < 15 ms at 1000+ rps): "
      "p90=%.2f ms, p99.5=%.2f ms -> %s\n",
      p90_ms, p995_ms,
      (p90_ms < 7.0 && result.total_errors == 0) ? "REPRODUCED"
                                                 : "see numbers above");
  json.Add("ramp_p90_ms", p90_ms);
  json.Add("ramp_p995_ms", p995_ms);
  json.Add("ramp_requests", static_cast<double>(result.total_requests));
  json.Add("ramp_errors", static_cast<double>(result.total_errors));

  // --- arm 2: p99 under ~10k parked keep-alive connections ------------------
  bench::PrintSection("high-concurrency keep-alive arm");
  const size_t fd_limit = RaiseFdLimit();
  size_t target = 10000;
  if (const char* env = std::getenv("SERENADE_BENCH_CONNECTIONS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) target = static_cast<size_t>(parsed);
  }
  // Client and server ends both count against this process's fd limit;
  // keep headroom for the load generator, the index, and stdio.
  const size_t affordable = fd_limit > 4096 ? (fd_limit - 2048) / 2 : 512;
  if (target > affordable) {
    std::printf("capping parked connections to %zu (RLIMIT_NOFILE %zu)\n",
                affordable, fd_limit);
    target = affordable;
  }

  WorkloadOptions flat_options;
  flat_options.duration_seconds = bench::SecondsFromEnv(10.0);
  flat_options.seed = 5;
  const auto flat_events =
      BuildWorkload(historical, RateProfile::Constant(600), flat_options);
  LoadGeneratorOptions flat_load = load_options;
  flat_load.bucket_seconds = flat_options.duration_seconds;

  const LoadResult baseline = RunLoad(flat_events, ports, flat_load);
  const double baseline_p99_ms =
      baseline.total_latency_micros.Percentile(0.99) / 1000.0;
  std::printf("baseline  : %6zu parked conns, %llu requests, p99=%.2f ms\n",
              static_cast<size_t>(0),
              static_cast<unsigned long long>(baseline.total_requests),
              baseline_p99_ms);

  std::vector<int> parked;
  parked.reserve(target);
  while (parked.size() < target) {
    const int fd = ConnectIdle(ports[parked.size() % ports.size()]);
    if (fd < 0) break;
    parked.push_back(fd);
  }
  // Wait until the reactors have admitted the parked mass (accept runs on
  // the event loop; give it a bounded moment).
  const auto admit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (OpenConnections(servers) < parked.size() &&
         std::chrono::steady_clock::now() < admit_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const uint64_t admitted = OpenConnections(servers);

  const LoadResult loaded = RunLoad(flat_events, ports, flat_load);
  const double loaded_p99_ms =
      loaded.total_latency_micros.Percentile(0.99) / 1000.0;
  std::printf("high-conc : %6zu parked conns, %llu requests, p99=%.2f ms\n",
              parked.size(),
              static_cast<unsigned long long>(loaded.total_requests),
              loaded_p99_ms);
  for (const int fd : parked) ::close(fd);

  const double ratio =
      baseline_p99_ms > 0.0 ? loaded_p99_ms / baseline_p99_ms : 0.0;
  std::printf(
      "p99 with %zu parked keep-alive connections is %.2fx the "
      "100-connection-scale baseline -> %s\n",
      parked.size(), ratio,
      (ratio < 2.0 && loaded.total_errors == 0) ? "FLAT" : "see numbers above");
  json.Add("parked_connections", static_cast<double>(parked.size()));
  json.Add("admitted_connections", static_cast<double>(admitted));
  json.Add("baseline_p99_ms", baseline_p99_ms);
  json.Add("highconc_p99_ms", loaded_p99_ms);
  json.Add("highconc_p99_ratio", ratio);
  json.Add("highconc_errors", static_cast<double>(loaded.total_errors));

  for (auto& server : servers) server->Stop();
  if (!json.WriteTo(bench::JsonPathFromEnv())) return 1;
  return 0;
}
