// Shared helpers for the experiment harness. Every bench binary
// regenerates one table or figure of the paper on synthetic data (see
// DESIGN.md for the per-experiment index) and prints:
//   * the paper's reference numbers (shape to compare against), and
//   * the measured values from this machine.
//
// Dataset sizes are scaled to laptop budgets; set SERENADE_BENCH_SCALE
// (default 1.0) to grow or shrink every dataset proportionally. CI smoke
// runs additionally set SERENADE_BENCH_SECONDS (shorter measured phases)
// and SERENADE_BENCH_JSON (machine-readable results uploaded as a build
// artifact).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace serenade::bench {

/// Global scale knob from the environment (default 1.0).
inline double ScaleFromEnv() {
  const char* env = std::getenv("SERENADE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

/// Measured-phase duration override (SERENADE_BENCH_SECONDS); benches
/// pass their full-run default.
inline double SecondsFromEnv(double fallback) {
  const char* env = std::getenv("SERENADE_BENCH_SECONDS");
  if (env == nullptr) return fallback;
  const double seconds = std::atof(env);
  return seconds > 0.0 ? seconds : fallback;
}

/// Where to write machine-readable results ("" = don't). Used by the CI
/// bench-smoke job; google-benchmark binaries use --benchmark_out
/// instead.
inline std::string JsonPathFromEnv() {
  const char* env = std::getenv("SERENADE_BENCH_JSON");
  return env == nullptr ? "" : env;
}

// --- provenance --------------------------------------------------------------
// Every bench JSON is self-describing: the regression gate refuses to
// compare a Debug run against a Release baseline, and an uploaded
// artifact names the commit and CPU that produced it.

/// CMake build type compiled into the binary (bench/CMakeLists.txt).
inline const char* BuildType() {
#if defined(SERENADE_BUILD_TYPE)
  return SERENADE_BUILD_TYPE;
#else
  return "unknown";
#endif
}

/// Commit under test: SERENADE_GIT_SHA (local override) or GITHUB_SHA
/// (Actions); "unknown" outside CI.
inline std::string GitSha() {
  for (const char* var : {"SERENADE_GIT_SHA", "GITHUB_SHA"}) {
    if (const char* env = std::getenv(var)) {
      if (env[0] != '\0') return env;
    }
  }
  return "unknown";
}

/// Vector ISA levels this CPU offers ("+"-joined), independent of what
/// the build compiled in.
inline std::string CpuFeatures() {
  std::string features;
  const auto add = [&features](const char* name, bool supported) {
    if (!supported) return;
    if (!features.empty()) features += "+";
    features += name;
  };
#if defined(__x86_64__) || defined(__i386__)
  add("sse4.2", __builtin_cpu_supports("sse4.2"));
  add("avx", __builtin_cpu_supports("avx"));
  add("avx2", __builtin_cpu_supports("avx2"));
#elif defined(__aarch64__)
  add("neon", true);
#endif
  return features.empty() ? "baseline" : features;
}

/// Whether the tree compiled the vector kernels (-DSERENADE_SIMD).
inline const char* SimdBuild() {
#if defined(SERENADE_SIMD_ENABLED)
  return "on";
#else
  return "off";
#endif
}

/// Collects flat name/value metrics and writes them as one JSON object:
///   {"benchmark":"index_swap",
///    "meta":{"git_sha":"...","build_type":"Release",
///            "cpu_features":"sse4.2+avx+avx2","simd_build":"on"},
///    "metrics":{"steady_p99_us":123.0,...}}
/// Tiny on purpose — CI plots and regression checks only need key/value;
/// the meta block is provenance, never compared numerically.
class JsonResultWriter {
 public:
  explicit JsonResultWriter(std::string benchmark_name)
      : benchmark_name_(std::move(benchmark_name)) {}

  void Add(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Writes the collected metrics; returns false (after a perror) on IO
  /// failure. No-op returning true when `path` is empty.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::perror(("bench json: " + path).c_str());
      return false;
    }
    std::fprintf(file,
                 "{\"benchmark\":\"%s\",\"meta\":{\"git_sha\":\"%s\","
                 "\"build_type\":\"%s\",\"cpu_features\":\"%s\","
                 "\"simd_build\":\"%s\"},\"metrics\":{",
                 benchmark_name_.c_str(), GitSha().c_str(), BuildType(),
                 CpuFeatures().c_str(), SimdBuild());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(file, "%s\"%s\":%.6g", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(file, "}}\n");
    std::fclose(file);
    return true;
  }

 private:
  std::string benchmark_name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* description) {
  std::printf("==========================================================\n");
  std::printf("%s — reproduces %s\n", experiment, paper_ref);
  std::printf("%s\n", description);
  std::printf("==========================================================\n");
}

inline void PrintSection(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

}  // namespace serenade::bench
