// Shared helpers for the experiment harness. Every bench binary
// regenerates one table or figure of the paper on synthetic data (see
// DESIGN.md for the per-experiment index) and prints:
//   * the paper's reference numbers (shape to compare against), and
//   * the measured values from this machine.
//
// Dataset sizes are scaled to laptop budgets; set SERENADE_BENCH_SCALE
// (default 1.0) to grow or shrink every dataset proportionally. CI smoke
// runs additionally set SERENADE_BENCH_SECONDS (shorter measured phases)
// and SERENADE_BENCH_JSON (machine-readable results uploaded as a build
// artifact).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace serenade::bench {

/// Global scale knob from the environment (default 1.0).
inline double ScaleFromEnv() {
  const char* env = std::getenv("SERENADE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

/// Measured-phase duration override (SERENADE_BENCH_SECONDS); benches
/// pass their full-run default.
inline double SecondsFromEnv(double fallback) {
  const char* env = std::getenv("SERENADE_BENCH_SECONDS");
  if (env == nullptr) return fallback;
  const double seconds = std::atof(env);
  return seconds > 0.0 ? seconds : fallback;
}

/// Where to write machine-readable results ("" = don't). Used by the CI
/// bench-smoke job; google-benchmark binaries use --benchmark_out
/// instead.
inline std::string JsonPathFromEnv() {
  const char* env = std::getenv("SERENADE_BENCH_JSON");
  return env == nullptr ? "" : env;
}

/// Collects flat name/value metrics and writes them as one JSON object:
///   {"benchmark":"index_swap","metrics":{"steady_p99_us":123.0,...}}
/// Tiny on purpose — CI plots and regression checks only need key/value.
class JsonResultWriter {
 public:
  explicit JsonResultWriter(std::string benchmark_name)
      : benchmark_name_(std::move(benchmark_name)) {}

  void Add(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Writes the collected metrics; returns false (after a perror) on IO
  /// failure. No-op returning true when `path` is empty.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::perror(("bench json: " + path).c_str());
      return false;
    }
    std::fprintf(file, "{\"benchmark\":\"%s\",\"metrics\":{",
                 benchmark_name_.c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(file, "%s\"%s\":%.6g", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(file, "}}\n");
    std::fclose(file);
    return true;
  }

 private:
  std::string benchmark_name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* description) {
  std::printf("==========================================================\n");
  std::printf("%s — reproduces %s\n", experiment, paper_ref);
  std::printf("%s\n", description);
  std::printf("==========================================================\n");
}

inline void PrintSection(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

}  // namespace serenade::bench
