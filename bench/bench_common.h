// Shared helpers for the experiment harness. Every bench binary
// regenerates one table or figure of the paper on synthetic data (see
// DESIGN.md for the per-experiment index) and prints:
//   * the paper's reference numbers (shape to compare against), and
//   * the measured values from this machine.
//
// Dataset sizes are scaled to laptop budgets; set SERENADE_BENCH_SCALE
// (default 1.0) to grow or shrink every dataset proportionally.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace serenade::bench {

/// Global scale knob from the environment (default 1.0).
inline double ScaleFromEnv() {
  const char* env = std::getenv("SERENADE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* description) {
  std::printf("==========================================================\n");
  std::printf("%s — reproduces %s\n", experiment, paper_ref);
  std::printf("%s\n", description);
  std::printf("==========================================================\n");
}

inline void PrintSection(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

}  // namespace serenade::bench
