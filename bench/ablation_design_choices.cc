// Experiment E9 — ablation study of the design choices Section 3 calls
// out for VMIS-kNN:
//   * early stopping on sorted posting lists (on/off)
//   * heap arity (binary / quaternary / octonary)
//   * the scoring simplifications: log-idf vs (1 + log)-idf vs none
//   * the evolving-session length cap
// Reports per-prediction latency for the performance knobs and MRR@20 /
// Prec@20 for the quality knobs.
//
// Paper reference: early stopping + octonary heaps together buy 6-12%
// over the no-opt variant (Section 5.1.3); using log instead of 1+log
// "gives us better results in offline evaluations" (Section 3).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

using namespace serenade;

namespace {

uint64_t MeasureMedianLatency(VmisKnn& model,
                              const std::vector<EvolvingSession>& queries,
                              int repetitions) {
  Histogram latency;
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const EvolvingSession& query : queries) {
      Stopwatch stopwatch;
      const auto result = model.NeighborSessions(query);
      latency.Record(stopwatch.ElapsedNanos());
      (void)result;
    }
  }
  return latency.Percentile(0.5);
}

}  // namespace

int main() {
  bench::PrintHeader("Experiment E9", "Section 3 design choices (ablation)",
                     "Early stopping, heap arity, IDF variant, session cap.");
  const double scale = bench::ScaleFromEnv();

  SyntheticConfig data_config;
  data_config.seed = 0xab1a;
  data_config.num_items = static_cast<size_t>(5000 * scale);
  data_config.num_sessions = static_cast<size_t>(30000 * scale);
  data_config.num_days = 14;
  Dataset dataset = GenerateDataset(data_config);
  TrainTestSplit split = SplitLastDays(dataset, 1);
  SessionIndex index = SessionIndex::Build(split.train, 1000);

  // Query stream for the latency knobs.
  std::vector<EvolvingSession> queries;
  for (const SessionData& session : split.test.sessions()) {
    if (queries.size() >= 300) break;
    queries.push_back(session.items);
  }

  // ---------- performance knobs ----------
  bench::PrintSection("latency: early stopping x heap arity (m=1000,k=100)");
  std::printf("%-14s %10s %10s %10s\n", "early stop", "binary", "4-ary",
              "octonary");
  for (bool early : {false, true}) {
    std::printf("%-14s", early ? "on" : "off");
    for (size_t arity : {2u, 4u, 8u}) {
      KnnConfig config;
      config.m = 1000;
      config.k = 100;
      config.early_stopping = early;
      config.heap_arity = arity;
      VmisKnn model(&index, config);
      std::printf(" %8llu n",
                  static_cast<unsigned long long>(
                      MeasureMedianLatency(model, queries, 3)));
    }
    std::printf("   (median ns/query)\n");
  }

  // ---------- quality knobs ----------
  EvalOptions eval_options;
  eval_options.max_sessions = 800;

  bench::PrintSection("quality: IDF weighting variant (m=500, k=100)");
  std::printf("%-14s %8s %8s\n", "idf", "MRR@20", "P@20");
  for (IdfWeighting idf : {IdfWeighting::kNone, IdfWeighting::kLog,
                           IdfWeighting::kOnePlusLog}) {
    KnnConfig config;
    config.m = 500;
    config.k = 100;
    config.idf = idf;
    VmisKnn model(&index, config);
    const EvalResult result =
        EvaluateRecommender(model, split.test, eval_options);
    std::printf("%-14s %8.4f %8.4f\n", IdfWeightingName(idf),
                result.metrics.Mrr(), result.metrics.Precision());
  }

  bench::PrintSection("quality: evolving-session length cap (m=500, k=100)");
  std::printf("%-14s %8s %8s\n", "cap", "MRR@20", "P@20");
  for (size_t cap : {1u, 2u, 5u, 10u, 30u}) {
    KnnConfig config;
    config.m = 500;
    config.k = 100;
    config.max_session_length = cap;
    VmisKnn model(&index, config);
    const EvalResult result =
        EvaluateRecommender(model, split.test, eval_options);
    std::printf("%-14zu %8.4f %8.4f\n", cap, result.metrics.Mrr(),
                result.metrics.Precision());
  }

  bench::PrintSection("quality: decay function pi (m=500, k=100)");
  std::printf("%-14s %8s %8s\n", "decay", "MRR@20", "P@20");
  for (DecayType decay :
       {DecayType::kSame, DecayType::kLinear, DecayType::kQuadratic,
        DecayType::kHarmonic, DecayType::kLogarithmic}) {
    KnnConfig config;
    config.m = 500;
    config.k = 100;
    config.decay = decay;
    VmisKnn model(&index, config);
    const EvalResult result =
        EvaluateRecommender(model, split.test, eval_options);
    std::printf("%-14s %8.4f %8.4f\n", DecayTypeName(decay),
                result.metrics.Mrr(), result.metrics.Precision());
  }

  bench::PrintSection("quality: match-weight function (m=500, k=100)");
  std::printf("%-24s %8s %8s\n", "lambda", "MRR@20", "P@20");
  for (MatchWeightType mw :
       {MatchWeightType::kConstant, MatchWeightType::kPaperInsertionOrder,
        MatchWeightType::kStepsFromEnd}) {
    KnnConfig config;
    config.m = 500;
    config.k = 100;
    config.match_weight = mw;
    VmisKnn model(&index, config);
    const EvalResult result =
        EvaluateRecommender(model, split.test, eval_options);
    std::printf("%-24s %8.4f %8.4f\n", MatchWeightTypeName(mw),
                result.metrics.Mrr(), result.metrics.Precision());
  }

  std::printf(
      "\npaper shape: the fully-optimised configuration (early stopping, "
      "octonary\nheaps) is fastest; log-idf at least matches 1+log; "
      "capping the session\nhelps latency at little quality cost.\n");
  return 0;
}
