// Experiment E10 (extension) — the paper's future-work question from
// Section 7: "whether we can run our similarity computations on a
// compressed version of the index". Compares the flat CSR index against
// the delta+varint compressed index on (a) resident memory and (b)
// per-query latency of the identical VMIS-kNN computation, across m.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "core/compressed_index.h"
#include "core/vmis_knn.h"
#include "data/split.h"
#include "data/synthetic.h"

using namespace serenade;

namespace {

template <typename Index>
uint64_t MedianQueryNanos(const Index& index, const KnnConfig& config,
                          const std::vector<EvolvingSession>& queries) {
  VmisKnnT<Index> model(&index, config);
  Histogram latency;
  for (int rep = 0; rep < 3; ++rep) {
    for (const EvolvingSession& query : queries) {
      Stopwatch stopwatch;
      const auto result = model.NeighborSessions(query);
      latency.Record(stopwatch.ElapsedNanos());
      (void)result;
    }
  }
  return latency.Percentile(0.5);
}

}  // namespace

int main() {
  bench::PrintHeader("Experiment E10 (extension)", "Section 7 future work",
                     "VMIS-kNN on a compressed index: memory vs latency.");
  const double scale = bench::ScaleFromEnv();

  SyntheticConfig data_config;
  data_config.seed = 0xc0de;
  data_config.num_items = static_cast<size_t>(8000 * scale);
  data_config.num_sessions = static_cast<size_t>(60000 * scale);
  data_config.num_days = 20;
  Dataset dataset = GenerateDataset(data_config);
  TrainTestSplit split = SplitLastDays(dataset, 1);

  std::vector<EvolvingSession> queries;
  for (const SessionData& session : split.test.sessions()) {
    if (queries.size() >= 250) break;
    queries.push_back(session.items);
  }

  std::printf("\n%6s %14s %14s %8s %14s %14s %9s\n", "m", "flat bytes",
              "compr bytes", "ratio", "flat med(ns)", "compr med(ns)",
              "slowdown");
  for (size_t m : {100u, 500u, 1000u}) {
    SessionIndex flat = SessionIndex::Build(split.train, m);
    CompressedSessionIndex compressed =
        CompressedSessionIndex::FromIndex(flat);

    KnnConfig config;
    config.m = m;
    config.k = 100;
    const uint64_t flat_ns = MedianQueryNanos(flat, config, queries);
    const uint64_t compressed_ns =
        MedianQueryNanos(compressed, config, queries);

    std::printf("%6zu %14zu %14zu %7.2fx %14llu %14llu %8.2fx\n", m,
                flat.MemoryBytes(), compressed.MemoryBytes(),
                static_cast<double>(flat.MemoryBytes()) /
                    static_cast<double>(compressed.MemoryBytes()),
                static_cast<unsigned long long>(flat_ns),
                static_cast<unsigned long long>(compressed_ns),
                flat_ns == 0 ? 0.0
                             : static_cast<double>(compressed_ns) / flat_ns);
  }

  std::printf(
      "\nreading: the compressed index shrinks the resident footprint by "
      "the\nratio column at the cost of the slowdown column per query — "
      "the\nquantified answer to the paper's future-work question.\n");
  return 0;
}
