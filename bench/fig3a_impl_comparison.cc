// Experiment E4 — reproduces Figure 3(a), top: median and 90th-percentile
// per-prediction computation time across implementation strategies, on
// datasets of growing scale. The engines of the paper (Python/pandas,
// Differential Dataflow, Java, DuckDB SQL) are represented by C++
// variants with the same execution strategy (see DESIGN.md):
//   VS-Py      -> MaterializingVsKnn  (full join materialised, then sample)
//   VMIS-Diff  -> IncrementalVmisKnn  (indexed incremental arrangements)
//   VMIS-Java  -> BoxedVmisKnn        (node-based boxed structures)
//   VMIS-SQL   -> JoinAggregateVmisKnn (operator-at-a-time with sorts)
//   VMIS-kNN   -> VmisKnn             (this paper's index + heaps)
//
// Paper shape to reproduce: VMIS-kNN is fastest on every dataset by one
// to two orders of magnitude over the materializing strategies, and the
// gap grows with dataset size; p90 of VMIS-kNN stays in the hundreds of
// microseconds.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "core/session_index.h"
#include "core/variants.h"
#include "core/vmis_knn.h"
#include "data/split.h"
#include "data/synthetic.h"

using namespace serenade;

namespace {

struct VariantResult {
  std::string name;
  uint64_t median_micros = 0;
  uint64_t p90_micros = 0;
  size_t peak_state_bytes = 0;
};

// Replays growing test sessions through a recommender, measuring each
// RecommendNext call.
VariantResult MeasureVariant(const std::string& name, Recommender& model,
                             const Dataset& test, size_t max_sessions,
                             IncrementalVmisKnn* incremental = nullptr) {
  Histogram latency;
  size_t session_count = 0;
  size_t peak_state = 0;
  for (const SessionData& session : test.sessions()) {
    if (session_count++ >= max_sessions) break;
    EvolvingSession evolving;
    for (ItemId item : session.items) {
      evolving.push_back(item);
      Stopwatch stopwatch;
      const auto result = model.RecommendNext(evolving, 20);
      latency.Record(stopwatch.ElapsedMicros());
      (void)result;
    }
    if (incremental != nullptr) {
      peak_state = std::max(peak_state, incremental->ArrangementBytes());
    }
  }
  return VariantResult{name, latency.Percentile(0.5), latency.Percentile(0.9),
                       peak_state};
}

void RunForScale(const char* label, size_t num_items, size_t num_sessions,
                 size_t max_eval_sessions) {
  SyntheticConfig config;
  config.seed = 0xf16a;
  config.num_items = num_items;
  config.num_sessions = num_sessions;
  config.num_days = 14;
  Dataset dataset = GenerateDataset(config);
  TrainTestSplit split = SplitLastDays(dataset, 1);

  KnnConfig knn_config;
  knn_config.m = 500;
  knn_config.k = 100;

  // Only VMIS-kNN reads the capped index; the other strategies scan the
  // full postings, exactly as their engines (pandas / differential /
  // DuckDB) would scan the raw session tables.
  SessionIndex capped = SessionIndex::Build(split.train, knn_config.m);
  SessionIndex full =
      SessionIndex::Build(split.train, split.train.num_sessions());

  VmisKnn vmis(&capped, knn_config);
  BoxedVmisKnn java(&capped, knn_config);
  JoinAggregateVmisKnn sql(&full, knn_config);
  MaterializingVsKnn python(&full, knn_config);
  IncrementalVmisKnn diff(&full, knn_config);

  std::printf("\n=== %s: %zu train sessions, %zu items, %zu postings ===\n",
              label, split.train.num_sessions(), split.train.num_items(),
              full.num_postings());
  std::printf("%-26s %12s %12s %16s\n", "variant", "median(us)", "p90(us)",
              "peak state");

  std::vector<VariantResult> results;
  results.push_back(MeasureVariant("vs-py(materializing)", python,
                                   split.test, max_eval_sessions));
  results.push_back(MeasureVariant("vmis-diff(incremental)", diff, split.test,
                                   max_eval_sessions, &diff));
  results.push_back(MeasureVariant("vmis-sql(join-aggregate)", sql,
                                   split.test, max_eval_sessions));
  results.push_back(
      MeasureVariant("vmis-java(boxed)", java, split.test,
                     max_eval_sessions));
  results.push_back(
      MeasureVariant("vmis-knn", vmis, split.test, max_eval_sessions));

  const uint64_t vmis_p90 = results.back().p90_micros;
  for (const VariantResult& result : results) {
    char state[32] = "-";
    if (result.peak_state_bytes > 0) {
      std::snprintf(state, sizeof(state), "%.1f MB",
                    static_cast<double>(result.peak_state_bytes) / 1e6);
    }
    std::printf("%-26s %12llu %12llu %16s   (%5.1fx vs vmis-knn p90)\n",
                result.name.c_str(),
                static_cast<unsigned long long>(result.median_micros),
                static_cast<unsigned long long>(result.p90_micros), state,
                vmis_p90 == 0
                    ? 0.0
                    : static_cast<double>(result.p90_micros) / vmis_p90);
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Experiment E4", "Figure 3(a), top",
      "Per-prediction latency across implementation strategies.");
  const double scale = bench::ScaleFromEnv();

  RunForScale("small (retailrocket-like)",
              static_cast<size_t>(2000 * scale),
              static_cast<size_t>(8000 * scale), 60);
  RunForScale("medium (ecom-1m-like)", static_cast<size_t>(6000 * scale),
              static_cast<size_t>(30000 * scale), 60);
  RunForScale("large (ecom-60m-like, scaled)",
              static_cast<size_t>(12000 * scale),
              static_cast<size_t>(90000 * scale), 40);
  RunForScale("xlarge (ecom-180m-like, scaled)",
              static_cast<size_t>(25000 * scale),
              static_cast<size_t>(300000 * scale), 30);

  std::printf(
      "\nPaper shape: vmis-knn fastest everywhere; materializing "
      "strategies\ndegrade with scale (VS-Py/VMIS-SQL ran out of memory on "
      "the largest\ndatasets in the paper); the incremental variant pays "
      "for indexing all\nintermediate results.\n");
  return 0;
}
