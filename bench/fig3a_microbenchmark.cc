// Experiment E5 — reproduces Figure 3(a), bottom: microbenchmark of the
// neighbour-search kernels VS-kNN vs VMIS-kNN-no-opt vs VMIS-kNN on an
// ecom-1m-like dataset for m in {100, 250, 500, 1000}, k = 100, built on
// google-benchmark.
//
// Paper shape to reproduce: both VMIS variants beat VS-kNN by 3-5x at
// every m; the fully-optimised VMIS-kNN (early stopping + octonary heaps)
// is a further 6-12% faster than VMIS-kNN-no-opt.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"

#include "core/knn_kernels.h"
#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "core/vs_knn.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace serenade {
namespace {

// Shared fixture state: one dataset, one index per m, one query stream.
struct BenchState {
  Dataset train;
  std::vector<EvolvingSession> queries;
  std::map<size_t, std::unique_ptr<SessionIndex>> indexes;
  std::unique_ptr<VsKnn> vs_knn_by_m[2];  // unused; VsKnn built per m below

  static BenchState& Get() {
    static BenchState* state = [] {
      auto* s = new BenchState();
      // SERENADE_BENCH_SCALE shrinks this to smoke-test size in CI and
      // grows it for full runs (1.0 = ecom-1m-like shape, laptop scale).
      const double scale = bench::ScaleFromEnv();
      SyntheticConfig config;
      config.seed = 0xeca1;
      config.num_items =
          std::max<size_t>(100, static_cast<size_t>(5000 * scale));
      config.num_sessions =
          std::max<size_t>(1000, static_cast<size_t>(30000 * scale));
      config.num_days = 14;
      Dataset dataset = GenerateDataset(config);
      TrainTestSplit split = SplitLastDays(dataset, 1);
      s->train = std::move(split.train);

      const size_t max_queries =
          std::max<size_t>(50, static_cast<size_t>(400 * scale));
      // Query stream: growing prefixes of test sessions ("we randomly
      // pick the number of items for each session").
      Rng rng(77);
      for (const SessionData& session : split.test.sessions()) {
        if (s->queries.size() >= max_queries) break;
        const size_t length = 1 + rng.Below(session.items.size());
        s->queries.emplace_back(session.items.begin(),
                                session.items.begin() + length);
      }
      for (size_t m : {100u, 250u, 500u, 1000u}) {
        s->indexes.emplace(
            m, std::make_unique<SessionIndex>(SessionIndex::Build(s->train, m)));
      }
      return s;
    }();
    return *state;
  }
};

KnnConfig ConfigForM(size_t m) {
  KnnConfig config;
  config.m = m;
  config.k = 100;
  return config;
}

void BM_VsKnn(benchmark::State& state) {
  BenchState& shared = BenchState::Get();
  const size_t m = static_cast<size_t>(state.range(0));
  static std::map<size_t, std::unique_ptr<VsKnn>> models;
  if (models.find(m) == models.end()) {
    models.emplace(m,
                   std::make_unique<VsKnn>(shared.train, ConfigForM(m)));
  }
  VsKnn& model = *models[m];
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.NeighborSessions(shared.queries[i % shared.queries.size()]));
    ++i;
  }
}

void BM_VmisKnnNoOpt(benchmark::State& state) {
  BenchState& shared = BenchState::Get();
  const size_t m = static_cast<size_t>(state.range(0));
  VmisKnn model(shared.indexes[m].get(), NoOptConfig(ConfigForM(m)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.NeighborSessions(shared.queries[i % shared.queries.size()]));
    ++i;
  }
}

void BM_VmisKnn(benchmark::State& state) {
  BenchState& shared = BenchState::Get();
  const size_t m = static_cast<size_t>(state.range(0));
  VmisKnn model(shared.indexes[m].get(), ConfigForM(m));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.NeighborSessions(shared.queries[i % shared.queries.size()]));
    ++i;
  }
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
}

// The scalar-vs-SIMD arm: the same engine with the kernel dispatch
// pinned to the scalar references, so the delta against BM_VmisKnn is
// exactly the vector kernels' contribution (results are bit-identical —
// differential_knn_test and simd_kernels_test pin that, this arm only
// measures). On scalar-only builds or CPUs both arms coincide.
void BM_VmisKnnScalar(benchmark::State& state) {
  BenchState& shared = BenchState::Get();
  const size_t m = static_cast<size_t>(state.range(0));
  simd::ScopedLevel level(simd::Level::kScalar);
  VmisKnn model(shared.indexes[m].get(), ConfigForM(m));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.NeighborSessions(shared.queries[i % shared.queries.size()]));
    ++i;
  }
  state.SetLabel(simd::LevelName(simd::Level::kScalar));
}

BENCHMARK(BM_VsKnn)->Arg(100)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VmisKnnNoOpt)->Arg(100)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VmisKnn)->Arg(100)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VmisKnnScalar)->Arg(100)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace serenade

BENCHMARK_MAIN();
