// Experiment E2 — reproduces the Section 5.1.1 prediction-quality
// comparison: VMIS-kNN vs. neural session-based recommenders (GRU4Rec,
// STAMP) plus the classical baselines, averaged over several sampled
// versions of an ecom-1m-like dataset, metrics @20.
//
// Paper reference (averages over five ecom-1m samples):
//   MAP@20  : VMIS-kNN .0268 | best neural (GRU4Rec) .0251
//   Prec@20 : VMIS-kNN .0722 | best neural (NARM)    .0680
//   R@20    : VMIS-kNN .378  | best neural (GRU4Rec) .359
//   MRR@20  : VMIS-kNN .286  | best neural (GRU4Rec) .255
// The shape to reproduce: VMIS-kNN >= every neural model on every metric
// (absolute values differ on synthetic data).
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "baselines/gru4rec.h"
#include "baselines/item_knn.h"
#include "baselines/narm.h"
#include "baselines/popularity.h"
#include "baselines/rules.h"
#include "baselines/stamp.h"
#include "bench_common.h"
#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

using namespace serenade;

namespace {

struct ModelScores {
  double mrr = 0, precision = 0, recall = 0, map = 0;
  void Accumulate(const MetricsAccumulator& metrics) {
    mrr += metrics.Mrr();
    precision += metrics.Precision();
    recall += metrics.Recall();
    map += metrics.Map();
  }
  void Divide(double n) {
    mrr /= n;
    precision /= n;
    recall /= n;
    map /= n;
  }
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Experiment E2", "Section 5.1.1 (prediction quality)",
      "VMIS-kNN vs neural baselines on sampled ecom-1m-like data, @20.");
  const double scale = bench::ScaleFromEnv();

  const size_t kSeeds = 2;  // the paper averages 5 samples; we use 2
  const size_t kCutoff = 20;
  std::map<std::string, ModelScores> totals;
  std::vector<std::string> model_order;

  for (size_t sample = 0; sample < kSeeds; ++sample) {
    SyntheticConfig data_config;
    data_config.seed = 9000 + sample;  // "sampling different months"
    data_config.num_items = static_cast<size_t>(3000 * scale);
    data_config.num_sessions = static_cast<size_t>(12000 * scale);
    data_config.num_days = 30;
    data_config.cluster_size = 60;
    Dataset dataset = GenerateDataset(data_config);
    TrainTestSplit split = SplitLastDays(dataset, 1);
    std::printf("\nsample %zu: train %zu sessions, test %zu sessions\n",
                sample, split.train.num_sessions(),
                split.test.num_sessions());

    KnnConfig knn_config;
    knn_config.m = 500;
    knn_config.k = 100;
    SessionIndex index = SessionIndex::Build(split.train, knn_config.m);
    VmisKnn vmis(&index, knn_config);

    Gru4RecConfig gru_config;
    gru_config.embedding_dim = 32;
    gru_config.hidden_dim = 32;
    gru_config.epochs = 3;
    gru_config.seed = 100 + sample;
    Gru4Rec gru4rec(split.train.num_items(), gru_config);
    std::printf("  training gru4rec... ");
    std::fflush(stdout);
    std::printf("final loss %.3f\n", gru4rec.Train(split.train));

    StampConfig stamp_config;
    stamp_config.embedding_dim = 32;
    stamp_config.epochs = 3;
    stamp_config.seed = 200 + sample;
    Stamp stamp(split.train.num_items(), stamp_config);
    std::printf("  training stamp...   ");
    std::fflush(stdout);
    std::printf("final loss %.3f\n", stamp.Train(split.train));

    NarmConfig narm_config;
    narm_config.embedding_dim = 32;
    narm_config.hidden_dim = 32;
    narm_config.epochs = 2;
    narm_config.seed = 300 + sample;
    Narm narm(split.train.num_items(), narm_config);
    std::printf("  training narm...    ");
    std::fflush(stdout);
    std::printf("final loss %.3f\n", narm.Train(split.train));

    ItemKnnRecommender item_knn(split.train, ItemKnnConfig{});
    PopularityRecommender popularity(split.train);
    MarkovRecommender markov(split.train);
    AssociationRules ar(split.train, RulesConfig{});
    SequentialRules sr(split.train, RulesConfig{});

    EvalOptions options;
    options.cutoff = kCutoff;
    options.max_sessions = 1200;

    std::vector<std::pair<std::string, Recommender*>> models = {
        {"vmis-knn", &vmis},           {"gru4rec", &gru4rec},
        {"narm", &narm},               {"stamp", &stamp},
        {"item-knn(legacy)", &item_knn},
        {"sr", &sr},                   {"ar", &ar},
        {"markov-1st", &markov},       {"popularity", &popularity},
    };
    for (auto& [name, model] : models) {
      const EvalResult result =
          EvaluateRecommender(*model, split.test, options);
      totals[name].Accumulate(result.metrics);
      if (sample == 0) model_order.push_back(name);
      std::printf("  %-18s %s\n", name.c_str(),
                  result.metrics.Summary(kCutoff).c_str());
    }
  }

  bench::PrintSection("averages over samples (the Table of Section 5.1.1)");
  std::printf("%-18s %8s %8s %8s %8s\n", "model", "MRR@20", "P@20", "R@20",
              "MAP@20");
  for (const std::string& name : model_order) {
    ModelScores scores = totals[name];
    scores.Divide(static_cast<double>(kSeeds));
    std::printf("%-18s %8.4f %8.4f %8.4f %8.4f\n", name.c_str(), scores.mrr,
                scores.precision, scores.recall, scores.map);
  }

  ModelScores vmis = totals["vmis-knn"];
  ModelScores gru = totals["gru4rec"];
  ModelScores narm_scores = totals["narm"];
  ModelScores stamp_scores = totals["stamp"];
  const bool vmis_wins =
      vmis.mrr >= gru.mrr && vmis.mrr >= stamp_scores.mrr &&
      vmis.mrr >= narm_scores.mrr && vmis.precision >= gru.precision &&
      vmis.precision >= stamp_scores.precision &&
      vmis.precision >= narm_scores.precision;
  std::printf("\nshape check (paper: VMIS-kNN beats all neural models): %s\n",
              vmis_wins ? "REPRODUCED" : "NOT reproduced on this run");
  return vmis_wins ? 0 : 1;
}
