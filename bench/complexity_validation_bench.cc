// Experiment E13 (extension) — empirical validation of the complexity
// claims of Section 3: query time O(|s| * m * log m), independent of both
// the number of historical sessions |H| and the catalog size |I|; index
// space O(|I| * m).
//
// Three sweeps, each holding everything else fixed:
//   (a) latency vs m                  -> near-linear growth
//   (b) latency vs session length |s| -> near-linear growth
//   (c) latency vs |H| at fixed m     -> flat (the headline property)
//   (d) scalar vs SIMD kernel dispatch at m=500 (DESIGN.md §11): the
//       same engine, same queries, dispatch pinned per arm — plus
//       cache-resident per-kernel micro numbers, where the vector win
//       is not masked by memory stalls. Results are bit-identical
//       across arms; only time differs.
//
// With SERENADE_BENCH_JSON set, the (c) flatness ratio and the (d)
// scalar/SIMD numbers are written for the CI regression gate
// (tools/check_bench_regression.py).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/knn_kernels.h"
#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "data/split.h"
#include "data/synthetic.h"

using namespace serenade;

namespace {

Dataset MakeData(size_t sessions, size_t items, uint64_t seed = 0xc03) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_items = items;
  config.num_sessions = sessions;
  config.num_days = 14;
  return GenerateDataset(config);
}

uint64_t MedianLatencyNanos(const SessionIndex& index, const KnnConfig& config,
                            const std::vector<EvolvingSession>& queries) {
  VmisKnn model(&index, config);
  Histogram latency;
  for (int rep = 0; rep < 5; ++rep) {
    for (const EvolvingSession& query : queries) {
      Stopwatch stopwatch;
      const auto result = model.NeighborSessions(query);
      latency.Record(stopwatch.ElapsedNanos());
      (void)result;
    }
  }
  return latency.Percentile(0.5);
}

std::vector<EvolvingSession> QueriesOfLength(const Dataset& test,
                                             size_t length, size_t count) {
  std::vector<EvolvingSession> queries;
  for (const SessionData& session : test.sessions()) {
    if (queries.size() >= count) break;
    if (session.items.size() < length) continue;
    queries.emplace_back(session.items.begin(),
                         session.items.begin() + static_cast<ptrdiff_t>(length));
  }
  return queries;
}

}  // namespace

int main() {
  bench::PrintHeader("Experiment E13 (extension)", "Section 3 complexity",
                     "Empirical validation: O(|s| * m * log m), independent "
                     "of |H| and |I|.");
  const double scale = bench::ScaleFromEnv();
  bench::JsonResultWriter json("complexity_validation");

  // --- (a) latency vs m -------------------------------------------------
  {
    Dataset dataset = MakeData(static_cast<size_t>(60000 * scale),
                               static_cast<size_t>(8000 * scale));
    TrainTestSplit split = SplitLastDays(dataset, 1);
    SessionIndex index = SessionIndex::Build(split.train, 4000);
    const auto queries = QueriesOfLength(split.test, 4, 200);

    bench::PrintSection("(a) latency vs m (|s|=4, k=100)");
    std::printf("%8s %14s %10s\n", "m", "median ns", "vs m=125");
    uint64_t base = 0;
    for (size_t m : {125u, 250u, 500u, 1000u, 2000u, 4000u}) {
      KnnConfig config;
      config.m = m;
      config.k = 100;
      const uint64_t ns = MedianLatencyNanos(index, config, queries);
      if (base == 0) base = ns;
      std::printf("%8zu %14llu %9.1fx\n", m,
                  static_cast<unsigned long long>(ns),
                  static_cast<double>(ns) / base);
    }
    std::printf(
        "expected: ~linear in m while posting lists are longer than m; "
        "growth\nflattens once lists saturate (most items have fewer than "
        "m recent\nsessions), which only helps latency in production.\n");
  }

  // --- (b) latency vs session length ------------------------------------
  {
    Dataset dataset = MakeData(static_cast<size_t>(60000 * scale),
                               static_cast<size_t>(8000 * scale), 0xc04);
    TrainTestSplit split = SplitLastDays(dataset, 1);
    SessionIndex index = SessionIndex::Build(split.train, 500);

    bench::PrintSection("(b) latency vs session length (m=500, k=100)");
    std::printf("%8s %14s %10s\n", "|s|", "median ns", "vs |s|=1");
    uint64_t base = 0;
    for (size_t length : {1u, 2u, 4u, 8u}) {
      const auto queries = QueriesOfLength(split.test, length, 150);
      if (queries.size() < 30) continue;
      KnnConfig config;
      config.m = 500;
      config.k = 100;
      config.max_session_length = 10;
      const uint64_t ns = MedianLatencyNanos(index, config, queries);
      if (base == 0) base = ns;
      std::printf("%8zu %14llu %9.1fx\n", length,
                  static_cast<unsigned long long>(ns),
                  static_cast<double>(ns) / base);
    }
    std::printf("expected: ~2x per doubling of |s| (8x at |s|=8)\n");
  }

  // --- (c) latency vs |H| at fixed m ------------------------------------
  {
    // Small m + fixed catalog so the per-item posting lists saturate the
    // m-cap early: once saturated, more history cannot add query work
    // (that is the independence claim; below saturation, a bigger history
    // legitimately fills lists up to the cap).
    bench::PrintSection("(c) latency vs history size (m=100, k=50, |s|=4)");
    std::printf("%12s %14s %10s\n", "sessions", "median ns", "vs smallest");
    std::vector<std::pair<size_t, uint64_t>> measured;
    for (size_t sessions : {30000u, 120000u, 480000u}) {
      Dataset dataset = MakeData(static_cast<size_t>(sessions * scale),
                                 static_cast<size_t>(2000 * scale), 0xc05);
      TrainTestSplit split = SplitLastDays(dataset, 1);
      SessionIndex index = SessionIndex::Build(split.train, 100);
      const auto queries = QueriesOfLength(split.test, 4, 200);
      KnnConfig config;
      config.m = 100;
      config.k = 50;
      const uint64_t ns = MedianLatencyNanos(index, config, queries);
      measured.emplace_back(split.train.num_sessions(), ns);
      std::printf("%12zu %14llu %9.1fx\n", split.train.num_sessions(),
                  static_cast<unsigned long long>(ns),
                  static_cast<double>(ns) / measured.front().second);
    }
    const double last_step =
        static_cast<double>(measured.back().second) /
        static_cast<double>(measured[measured.size() - 2].second);
    std::printf(
        "expected: flattening toward 1.0x per step once posting lists "
        "saturate\nthe m-cap (last 4x history step: %.2fx latency) — query "
        "cost is bounded\nindependently of |H|, which is what lets "
        "VMIS-kNN search hundreds of\nmillions of clicks in "
        "microseconds.\n",
        last_step);
    json.Add("history_flatness_last_step", last_step);
  }

  // --- (d) scalar vs SIMD dispatch at m=500 -------------------------------
  {
    bench::PrintSection("(d) scalar vs SIMD kernel dispatch (m=500, k=100)");
    std::printf("dispatch: %s\n", simd::DescribeDispatch().c_str());
    Dataset dataset = MakeData(static_cast<size_t>(30000 * scale),
                               static_cast<size_t>(5000 * scale), 0xc06);
    TrainTestSplit split = SplitLastDays(dataset, 1);
    SessionIndex index = SessionIndex::Build(split.train, 500);
    const auto queries = QueriesOfLength(split.test, 4, 200);
    KnnConfig config;
    config.m = 500;
    config.k = 100;

    uint64_t scalar_ns = 0;
    uint64_t simd_ns = 0;
    {
      simd::ScopedLevel level(simd::Level::kScalar);
      scalar_ns = MedianLatencyNanos(index, config, queries);
    }
    {
      simd::ScopedLevel level(simd::BestSupportedLevel());
      simd_ns = MedianLatencyNanos(index, config, queries);
    }
    const bool has_simd = simd::BestSupportedLevel() != simd::Level::kScalar;
    std::printf("%16s %14llu ns/query\n", "scalar",
                static_cast<unsigned long long>(scalar_ns));
    std::printf("%16s %14llu ns/query (%.2fx)\n",
                simd::LevelName(simd::BestSupportedLevel()),
                static_cast<unsigned long long>(simd_ns),
                simd_ns > 0 ? static_cast<double>(scalar_ns) / simd_ns : 0.0);
    json.Add("scalar_median_ns_m500", static_cast<double>(scalar_ns));
    json.Add("simd_median_ns_m500", static_cast<double>(simd_ns));
    if (has_simd && simd_ns > 0) {
      json.Add("simd_speedup_m500",
               static_cast<double>(scalar_ns) / static_cast<double>(simd_ns));
    }

    // Per-kernel micro numbers on cache-resident slot arrays: the gather
    // and compare kernels, isolated from the engine's memory-bound insert
    // path. This is where the vector speedup is visible (the end-to-end
    // delta above is diluted by DRAM-latency-bound candidate inserts).
    Rng rng(0xd1);
    const size_t universe = 4096;
    std::vector<simd::ItemPositionSlot> position_slots(universe);
    std::vector<simd::SessionSlot> session_slots(universe);
    std::vector<ItemId> ids(universe);
    for (size_t i = 0; i < universe; ++i) {
      ids[i] = static_cast<ItemId>(i);
      position_slots[i] = simd::ItemPositionSlot{
          rng.Bernoulli(0.01) ? 9u : 0u,
          static_cast<uint32_t>(1 + rng.Below(10))};
      session_slots[i] = simd::SessionSlot{
          9u, 0.01f * static_cast<float>(rng.Below(300)),
          static_cast<Timestamp>(rng.Below(100000))};
    }
    const auto kernel_ns = [&](simd::Level level, auto&& body) {
      simd::ScopedLevel scoped(level);
      const int reps = 2000;
      Stopwatch stopwatch;
      uint64_t sink = 0;
      for (int r = 0; r < reps; ++r) sink += body();
      const double ns = static_cast<double>(stopwatch.ElapsedNanos());
      (void)sink;
      return ns / (static_cast<double>(reps) * universe);
    };
    const auto maxpos = [&]() -> uint64_t {
      return simd::MaxSharedPosition(ids.data(), universe,
                                     position_slots.data(), 9u);
    };
    const auto mask = [&]() -> uint64_t {
      uint64_t acc = 0;
      for (size_t i = 0; i + 8 <= universe; i += 8) {
        acc += simd::BeatsNeighborMask(ids.data() + i, 8,
                                       session_slots.data(), 9u, 1.5f,
                                       50000, 100);
      }
      return acc;
    };
    const double maxpos_scalar = kernel_ns(simd::Level::kScalar, maxpos);
    const double maxpos_simd = kernel_ns(simd::BestSupportedLevel(), maxpos);
    const double mask_scalar = kernel_ns(simd::Level::kScalar, mask);
    const double mask_simd = kernel_ns(simd::BestSupportedLevel(), mask);
    std::printf("kernel MaxSharedPosition: scalar %.2f ns/id, %s %.2f ns/id "
                "(%.2fx)\n",
                maxpos_scalar, simd::LevelName(simd::BestSupportedLevel()),
                maxpos_simd,
                maxpos_simd > 0 ? maxpos_scalar / maxpos_simd : 0.0);
    std::printf("kernel BeatsNeighborMask: scalar %.2f ns/id, %s %.2f ns/id "
                "(%.2fx)\n",
                mask_scalar, simd::LevelName(simd::BestSupportedLevel()),
                mask_simd, mask_simd > 0 ? mask_scalar / mask_simd : 0.0);
    if (has_simd && maxpos_simd > 0 && mask_simd > 0) {
      json.Add("kernel_maxpos_speedup", maxpos_scalar / maxpos_simd);
      json.Add("kernel_mask_speedup", mask_scalar / mask_simd);
    }
  }

  if (!json.WriteTo(bench::JsonPathFromEnv())) return 1;
  return 0;
}
