// Experiment E8 — reproduces the session-store microbenchmark of
// Section 4.2: "in a microbenchmark with 10 million operations for our
// workload, we found the 99th percentile of the read latency to be 5
// microseconds, and the 99th percentile of the write latency to be 18
// microseconds" (against RocksDB; here against our embedded store).
// For contrast, the paper notes a distributed KV store (BigTable) showed
// ~15 ms lookups at p99.5 — three orders of magnitude slower — which is
// why Serenade colocates session state with the serving machines.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "store/session_store.h"

using namespace serenade;

int main() {
  bench::PrintHeader("Experiment E8", "Section 4.2 (RocksDB numbers)",
                     "Session-store microbenchmark: 10M operations, p99 "
                     "read/write latency in microseconds.");
  const double scale = bench::ScaleFromEnv();
  const size_t total_ops = static_cast<size_t>(10000000 * scale);
  const size_t key_space = 500000;

  SessionStoreOptions options;  // volatile, like the paper's session usage
  auto store = SessionStore::Open(options);
  if (!store.ok()) return 1;

  // Workload mirroring the serving layer: ~50/50 read/update of session
  // values that look like short comma-separated item lists.
  Rng rng(0x57013);
  std::vector<std::string> keys;
  keys.reserve(key_space);
  for (size_t i = 0; i < key_space; ++i) {
    keys.push_back("session-" + std::to_string(i));
  }
  const std::string value = "101,202,303,404,505";

  Histogram read_latency, write_latency;
  std::printf("running %zu operations...\n", total_ops);
  for (size_t op = 0; op < total_ops; ++op) {
    const std::string& key = keys[rng.Below(key_space)];
    if (op % 2 == 0) {
      Stopwatch stopwatch;
      (void)(*store)->Put(key, value);
      write_latency.Record(stopwatch.ElapsedNanos());
    } else {
      Stopwatch stopwatch;
      (void)(*store)->Get(key);
      read_latency.Record(stopwatch.ElapsedNanos());
    }
  }

  bench::PrintSection("measured (nanosecond histograms)");
  std::printf("reads : %s\n", read_latency.Summary().c_str());
  std::printf("writes: %s\n", write_latency.Summary().c_str());

  const double read_p99_us = read_latency.Percentile(0.99) / 1000.0;
  const double write_p99_us = write_latency.Percentile(0.99) / 1000.0;
  bench::PrintSection("comparison with the paper");
  std::printf("%-28s %12s %12s\n", "store", "p99 read", "p99 write");
  std::printf("%-28s %9.1f us %9.1f us\n", "this repo (embedded)",
              read_p99_us, write_p99_us);
  std::printf("%-28s %12s %12s\n", "RocksDB (paper)", "5 us", "18 us");
  std::printf("%-28s %12s %12s\n", "BigTable (paper, p99.5)", "~15000 us",
              "-");
  std::printf(
      "\nshape check: machine-local reads/writes in single-digit to "
      "tens of\nmicroseconds at p99 -> %s\n",
      (read_p99_us < 100.0 && write_p99_us < 100.0) ? "REPRODUCED"
                                                    : "slower than expected");
  return 0;
}
