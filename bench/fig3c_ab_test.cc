// Experiment E7 — reproduces Figure 3(c) and Section 5.2.3: the online
// A/B test. Two parts:
//
//  (1) Latency under the production traffic pattern: a diurnal load curve
//      oscillating between 200 and 600 rps (21 "days" compressed into the
//      test window) against two serving pods; per-bucket latency
//      percentiles as in Figure 3(c).
//
//  (2) Customer engagement: a simulated A/B comparison of
//        serenade-hist   (VMIS-kNN on the last TWO session items)
//        serenade-recent (VMIS-kNN on the most recent item only)
//        legacy          (item-to-item collaborative filtering)
//      Engagement proxy: the user "engages with the slot" when the item
//      they actually viewed next appears in the 21 recommendations shown.
//      We report the engagement uplift of each variant over legacy with a
//      two-proportion z-test.
//
// Paper shape to reproduce: p90 latency ~5 ms at 200-600 rps; BOTH
// Serenade variants beat legacy by several percent (paper: +2.85% for
// serenade-hist, +5.72% for serenade-recent, both significant).
#include <cmath>
#include <cstdio>
#include <memory>

#include "baselines/item_knn.h"
#include "bench_common.h"
#include "benchutil/load_generator.h"
#include "benchutil/workload.h"
#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "serving/business_rules.h"
#include "serving/server.h"

using namespace serenade;

namespace {

struct EngagementResult {
  uint64_t impressions = 0;
  uint64_t engagements = 0;
  double Rate() const {
    return impressions == 0
               ? 0.0
               : static_cast<double>(engagements) / impressions;
  }
};

EngagementResult SimulateEngagement(Recommender& model, const Dataset& test,
                                    const ItemCatalog& catalog,
                                    size_t max_sessions) {
  BusinessRulesConfig rules;  // 21 items, availability/adult filters
  EngagementResult result;
  size_t sessions = 0;
  for (const SessionData& session : test.sessions()) {
    if (sessions++ >= max_sessions) break;
    EvolvingSession evolving;
    for (size_t i = 0; i + 1 < session.items.size(); ++i) {
      evolving.push_back(session.items[i]);
      const auto raw = model.RecommendNext(evolving, rules.max_items * 2 + 8);
      const auto shown = ApplyBusinessRules(raw, catalog, rules);
      ++result.impressions;
      const ItemId next = session.items[i + 1];
      for (const ScoredItem& item : shown) {
        if (item.item == next) {
          ++result.engagements;
          break;
        }
      }
    }
  }
  return result;
}

// Two-proportion z-test statistic for engagement rates.
double ZScore(const EngagementResult& a, const EngagementResult& b) {
  const double p_pool =
      static_cast<double>(a.engagements + b.engagements) /
      static_cast<double>(a.impressions + b.impressions);
  const double se = std::sqrt(p_pool * (1 - p_pool) *
                              (1.0 / a.impressions + 1.0 / b.impressions));
  return se == 0.0 ? 0.0 : (a.Rate() - b.Rate()) / se;
}

}  // namespace

int main() {
  bench::PrintHeader("Experiment E7", "Figure 3(c) + Section 5.2.3",
                     "Simulated three-week A/B test: latency under diurnal "
                     "load and engagement uplift vs the legacy system.");
  const double scale = bench::ScaleFromEnv();

  SyntheticConfig data_config;
  data_config.seed = 0xab;
  data_config.num_items = static_cast<size_t>(15000 * scale);
  data_config.num_sessions = static_cast<size_t>(70000 * scale);
  data_config.num_days = 30;
  data_config.cluster_size = 100;
  Dataset dataset = GenerateDataset(data_config);
  TrainTestSplit split = SplitLastDays(dataset, 2);
  const ItemCatalog catalog = GenerateCatalog(dataset.num_items(), 7);

  // ---------- part 1: latency under the diurnal A/B traffic ----------
  bench::PrintSection("part 1: latency under diurnal 200-600 rps");
  auto index =
      std::make_shared<SessionIndex>(SessionIndex::Build(split.train, 500));
  ServiceConfig service_config;
  service_config.knn.m = 500;
  service_config.knn.k = 500;  // the A/B test's production setting
  service_config.knn.max_session_length = 2;  // serenade-hist serving mode

  std::vector<std::unique_ptr<SerenadeServer>> servers;
  std::vector<uint16_t> ports;
  for (int pod = 0; pod < 2; ++pod) {
    auto service = SerenadeService::Create(index, catalog, service_config);
    if (!service.ok()) return 1;
    servers.push_back(std::make_unique<SerenadeServer>(
        std::move(service).value(), ServerConfig{}));
    if (!servers.back()->Start().ok()) return 1;
    ports.push_back(servers.back()->port());
  }

  WorkloadOptions workload_options;
  workload_options.duration_seconds = 30.0;
  workload_options.no_consent_fraction = 0.02;
  const auto events = BuildWorkload(
      split.train, RateProfile::Diurnal(200, 600, 3.0), workload_options);
  std::printf("replaying %zu requests (3 compressed 'days', 200-600 rps)\n",
              events.size());

  LoadGeneratorOptions load_options;
  load_options.connections_per_server = 8;
  load_options.bucket_seconds = 2.5;
  const LoadResult latency = RunLoad(events, ports, load_options);
  std::printf("%s", latency.FormatTable().c_str());
  for (auto& server : servers) server->Stop();

  // ---------- part 2: engagement A/B ----------
  bench::PrintSection("part 2: engagement uplift over legacy (21 'days')");
  KnnConfig hist_config;
  hist_config.m = 500;
  hist_config.k = 500;
  hist_config.max_session_length = 2;
  VmisKnn serenade_hist(index.get(), hist_config);

  KnnConfig recent_config = hist_config;
  recent_config.max_session_length = 1;
  VmisKnn serenade_recent(index.get(), recent_config);

  ItemKnnConfig legacy_config;
  legacy_config.history_length = 1;
  ItemKnnRecommender legacy(split.train, legacy_config);

  const size_t max_sessions = static_cast<size_t>(4000 * scale);
  const EngagementResult legacy_result =
      SimulateEngagement(legacy, split.test, catalog, max_sessions);
  const EngagementResult hist_result =
      SimulateEngagement(serenade_hist, split.test, catalog, max_sessions);
  const EngagementResult recent_result =
      SimulateEngagement(serenade_recent, split.test, catalog, max_sessions);

  std::printf("%-18s %12s %12s %10s %10s %8s\n", "variant", "impressions",
              "engagements", "rate", "uplift", "z");
  auto print_row = [&](const char* name, const EngagementResult& result) {
    const double uplift =
        legacy_result.Rate() == 0.0
            ? 0.0
            : 100.0 * (result.Rate() / legacy_result.Rate() - 1.0);
    std::printf("%-18s %12llu %12llu %9.2f%% %+9.2f%% %8.1f\n", name,
                static_cast<unsigned long long>(result.impressions),
                static_cast<unsigned long long>(result.engagements),
                100.0 * result.Rate(), uplift,
                ZScore(result, legacy_result));
  };
  print_row("legacy(item-cf)", legacy_result);
  print_row("serenade-hist", hist_result);
  print_row("serenade-recent", recent_result);

  const bool both_beat_legacy =
      hist_result.Rate() > legacy_result.Rate() &&
      recent_result.Rate() > legacy_result.Rate();
  const double p90_ms = latency.total_latency_micros.Percentile(0.9) / 1000.0;
  std::printf(
      "\nshape check (paper: both Serenade variants beat legacy "
      "significantly;\np90 latency ~5 ms): variants beat legacy: %s, "
      "p90=%.2f ms\n",
      both_beat_legacy ? "YES" : "NO", p90_ms);
  std::printf(
      "paper reference: serenade-hist +2.85%%, serenade-recent +5.72%% on "
      "the\nslot engagement metric (serenade-recent cannibalised other "
      "slots,\nmaking serenade-hist the preferred variant).\n");
  return both_beat_legacy ? 0 : 1;
}
