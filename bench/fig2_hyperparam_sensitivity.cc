// Experiment E3 — reproduces Figure 2: sensitivity of MRR@20 and Prec@20
// to the hyperparameters k (neighbors) and m (recent sessions per item),
// as text heatmaps for an ecom-like and an rsc15-like dataset.
//
// Paper shape to reproduce: a unimodal metric surface per dataset and
// metric; the best cell for MRR is generally NOT the best cell for
// Precision; small m values are clearly worse.
#include <cstdio>

#include "bench_common.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/grid_search.h"

using namespace serenade;

namespace {

void RunGridFor(const char* name, const SyntheticConfig& config,
                double scale) {
  SyntheticConfig scaled = config;
  scaled.num_items = static_cast<size_t>(scaled.num_items * scale);
  scaled.num_sessions = static_cast<size_t>(scaled.num_sessions * scale);
  Dataset dataset = GenerateDataset(scaled);
  TrainTestSplit split = SplitLastDays(dataset, 1);
  std::printf("\n=== dataset %s: train %zu sessions, test %zu sessions ===\n",
              name, split.train.num_sessions(), split.test.num_sessions());

  GridSearchOptions options;
  // The paper sweeps 55 combinations (k in 50..1500, m in 20..10000); we
  // use a condensed grid with the same endpoints.
  options.k_values = {50, 100, 500, 1500};
  options.m_values = {20, 100, 500, 2500, 10000};
  options.max_test_sessions = 700;
  options.num_threads = 2;
  const auto cells = GridSearch(split.train, split.test, options);

  std::printf("\nMRR@20 (rows k, cols m):\n%s",
              FormatGrid(cells, "mrr").c_str());
  std::printf("\nPrec@20 (rows k, cols m):\n%s",
              FormatGrid(cells, "precision").c_str());

  // Shape checks.
  const GridCell* best_mrr = &cells[0];
  const GridCell* best_prec = &cells[0];
  double worst_mrr = 1.0;
  for (const GridCell& cell : cells) {
    if (cell.mrr > best_mrr->mrr) best_mrr = &cell;
    if (cell.precision > best_prec->precision) best_prec = &cell;
    worst_mrr = std::min(worst_mrr, cell.mrr);
  }
  std::printf("\nbest MRR@20  %.4f at (k=%zu, m=%zu)\n", best_mrr->mrr,
              best_mrr->k, best_mrr->m);
  std::printf("best Prec@20 %.4f at (k=%zu, m=%zu)\n", best_prec->precision,
              best_prec->k, best_prec->m);
  std::printf("MRR spread across grid: %.4f .. %.4f (tuning matters: %s)\n",
              worst_mrr, best_mrr->mrr,
              best_mrr->mrr > worst_mrr * 1.02 ? "yes" : "flat");
}

}  // namespace

int main() {
  bench::PrintHeader("Experiment E3", "Figure 2",
                     "Hyperparameter sensitivity heatmaps over (k, m).");
  const double scale = bench::ScaleFromEnv();

  SyntheticConfig ecom;
  ecom.seed = 31337;
  ecom.num_items = 3000;
  ecom.num_sessions = 15000;
  ecom.num_days = 12;
  ecom.cluster_size = 60;
  RunGridFor("ecom-like", ecom, scale);

  DatasetProfile rsc = Rsc15Profile(0.003);
  rsc.config.num_days = 12;
  RunGridFor("rsc15-like", rsc.config, scale);

  std::printf(
      "\nPaper shape: unimodal surfaces; optima differ per dataset and "
      "metric;\nVMIS-kNN is easy to tune by grid search.\n");
  return 0;
}
