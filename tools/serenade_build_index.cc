// CLI: offline index generation (the nightly batch job of Figure 1).
//
//   serenade_build_index --clicks clicks.csv --output session.index
//       [--m 500] [--threads 0] [--version N] [--build-id ID]
//       [--synthetic-sessions N] [--seed S] [--force]
//
// Reads a click log CSV (session_id,item_id,timestamp), builds the
// session similarity index with the data-parallel builder, and writes the
// compressed binary index file plus a `<output>.manifest` sidecar
// stamping the rollout version, build id, corpus counts, and artifact
// CRC. Serving pods honour the manifest on load and on POST /admin/reload
// hot swaps. When no --clicks file is given, generates a synthetic
// dataset instead (useful for demos).
//
// Rollout safety: when the output path already carries a manifest with a
// version >= the one being written, the tool refuses to clobber it (a
// stale pipeline run must not regress the fleet); --force overrides.
#include <cstdio>
#include <ctime>

#include "common/stopwatch.h"
#include "data/csv.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "flags.h"
#include "index/index_builder.h"
#include "index/snapshot.h"

using namespace serenade;

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  const std::string clicks_path = flags.GetString("clicks");
  const std::string output_path = flags.GetString("output", "session.index");
  const size_t m = flags.GetInt("m", 500);

  Dataset dataset;
  if (!clicks_path.empty()) {
    auto clicks = ReadClicksCsv(clicks_path);
    if (!clicks.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", clicks_path.c_str(),
                   clicks.status().ToString().c_str());
      return 1;
    }
    dataset = Dataset::FromClicks(std::move(clicks).value());
  } else {
    SyntheticConfig config;
    config.seed = flags.GetInt("seed", 42);
    config.num_sessions = flags.GetInt("synthetic-sessions", 50000);
    config.num_items = flags.GetInt("synthetic-items",
                                    config.num_sessions / 4);
    config.num_days = flags.GetInt("synthetic-days", 30);
    std::printf("no --clicks given; generating synthetic data\n");
    dataset = GenerateDataset(config);
  }

  const DatasetStats stats = ComputeStats("input", dataset);
  std::printf("%s", FormatStatsTable({stats}).c_str());

  Stopwatch build_timer;
  IndexBuilderOptions options;
  options.max_sessions_per_item = m;
  options.num_threads = flags.GetInt("threads", 0);
  SessionIndex index = BuildIndexParallel(dataset, options);
  std::printf("built index in %.2fs: %zu postings, %.1f MB resident\n",
              build_timer.ElapsedSeconds(), index.num_postings(),
              static_cast<double>(index.MemoryBytes()) / 1e6);

  // Stamp the rollout manifest. Default version is the build wall-clock,
  // which is monotone across nightly runs; an explicit --version lets a
  // pipeline number its rollouts.
  const uint64_t now = static_cast<uint64_t>(std::time(nullptr));
  IndexManifest manifest;
  manifest.version = flags.GetInt("version", now);
  manifest.build_id =
      flags.GetString("build-id", "build-" + std::to_string(now));
  manifest.built_unix = now;
  manifest.source = clicks_path.empty() ? "synthetic" : clicks_path;

  if (!flags.GetBool("force", false)) {
    if (Status guard = CheckManifestOverwrite(output_path, manifest.version);
        !guard.ok()) {
      std::fprintf(stderr, "%s\n  pass --force to overwrite anyway\n",
                   guard.ToString().c_str());
      return 1;
    }
  }

  auto written = WriteIndexWithManifest(output_path, index, manifest);
  if (!written.ok()) {
    std::fprintf(stderr, "write failed: %s\n",
                 written.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s (%llu bytes, crc32 %08x)\n"
      "wrote %s (kind %s, version %llu, build id %s)\n",
      output_path.c_str(),
      static_cast<unsigned long long>(written->index_bytes),
      written->index_crc32, ManifestPathFor(output_path).c_str(),
      written->kind.c_str(),
      static_cast<unsigned long long>(written->version),
      written->build_id.c_str());
  return 0;
}
