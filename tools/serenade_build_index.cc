// CLI: offline index generation (the nightly batch job of Figure 1).
//
//   serenade_build_index --clicks clicks.csv --output session.index
//       [--m 500] [--threads 0] [--synthetic-sessions N] [--seed S]
//
// Reads a click log CSV (session_id,item_id,timestamp), builds the
// session similarity index with the data-parallel builder and writes the
// compressed binary index file the serving tool loads. When no --clicks
// file is given, generates a synthetic dataset instead (useful for demos).
#include <cstdio>

#include "common/stopwatch.h"
#include "data/csv.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "flags.h"
#include "index/index_builder.h"
#include "index/index_format.h"

using namespace serenade;

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  const std::string clicks_path = flags.GetString("clicks");
  const std::string output_path = flags.GetString("output", "session.index");
  const size_t m = flags.GetInt("m", 500);

  Dataset dataset;
  if (!clicks_path.empty()) {
    auto clicks = ReadClicksCsv(clicks_path);
    if (!clicks.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", clicks_path.c_str(),
                   clicks.status().ToString().c_str());
      return 1;
    }
    dataset = Dataset::FromClicks(std::move(clicks).value());
  } else {
    SyntheticConfig config;
    config.seed = flags.GetInt("seed", 42);
    config.num_sessions = flags.GetInt("synthetic-sessions", 50000);
    config.num_items = flags.GetInt("synthetic-items",
                                    config.num_sessions / 4);
    config.num_days = flags.GetInt("synthetic-days", 30);
    std::printf("no --clicks given; generating synthetic data\n");
    dataset = GenerateDataset(config);
  }

  const DatasetStats stats = ComputeStats("input", dataset);
  std::printf("%s", FormatStatsTable({stats}).c_str());

  Stopwatch build_timer;
  IndexBuilderOptions options;
  options.max_sessions_per_item = m;
  options.num_threads = flags.GetInt("threads", 0);
  SessionIndex index = BuildIndexParallel(dataset, options);
  std::printf("built index in %.2fs: %zu postings, %.1f MB resident\n",
              build_timer.ElapsedSeconds(), index.num_postings(),
              static_cast<double>(index.MemoryBytes()) / 1e6);

  if (Status status = WriteIndexFile(output_path, index); !status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", output_path.c_str());
  return 0;
}
