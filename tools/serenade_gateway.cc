// CLI: the cluster gateway — the fleet-routing front door of Figure 1.
//
// Two modes:
//   * Spawn: --pods N starts N in-process Serenade pods on ephemeral
//     ports (synthetic index) plus the gateway in front of them. Good
//     for demos and failover experiments on one machine.
//   * Attach: --backends 8081,8082,... fronts already-running
//     serenade_server pods. Entries may carry an explicit ring name as
//     name=port (e.g. --backends pod-0=8081,pod-1=8082) — required with
//     --manage-replication, where each name must equal the matching
//     pod's --pod-name so donor and gateway agree on ring ownership.
//
//   serenade_gateway [--pods 3 | --backends 8081,8082] [--port 8080]
//       [--forward-timeout 1000] [--max-attempts 3] [--hedge-delay 0]
//       [--probe-interval 250] [--no-fallback] [--max-batch-items 128]
//       [--items 5000] [--sessions 20000]
//       [--slow-request-us 0] [--slow-sample-every 1]
//       [--max-connections 10000] [--idle-timeout-ms 60000]
//       [--request-deadline-ms 0] [--reactor-threads 1]
//       [--worker-threads 0] [--manage-replication]
//       [--ab-ann-percent 0] [--ab-salt 0]
//
// Serves the versioned /v1 API (see API.md): GET/POST /v1/recommend
// (forwarded by session_id), POST /v1/recommend:batch (scatter-gathered
// by each slot's ring owner), /v1/healthz, /v1/stats, /v1/metrics, and
// the cluster control plane (GET /v1/admin/cluster, POST
// /v1/admin/cluster/join|drain|remove with epoch fencing).
// --manage-replication makes membership changes drive the replication
// data plane (DESIGN.md §12): hand-offs on join/drain, replica
// promotion on remove, shipper rewiring after every change — the
// attached pods must run with --pod-name/--wal. Runs until
// SIGINT/SIGTERM.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/popularity.h"
#include "cluster/gateway.h"
#include "core/session_index.h"
#include "data/synthetic.h"
#include "flags.h"
#include "serving/server.h"

using namespace serenade;

namespace {
std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }

// Each comma-separated entry is "port" or "name=port"; a bare port gets
// the default "127.0.0.1:<port>" ring name.
std::vector<BackendEndpoint> ParseBackendList(const std::string& text) {
  std::vector<BackendEndpoint> backends;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    std::string token = text.substr(start, end - start);
    if (!token.empty()) {
      BackendEndpoint backend;
      const size_t eq = token.find('=');
      if (eq != std::string::npos) {
        backend.name = token.substr(0, eq);
        token = token.substr(eq + 1);
      }
      backend.port =
          static_cast<uint16_t>(std::strtoul(token.c_str(), nullptr, 10));
      if (backend.name.empty()) {
        backend.name = "127.0.0.1:" + std::to_string(backend.port);
      }
      backends.push_back(std::move(backend));
    }
    start = end + 1;
  }
  return backends;
}
}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  const size_t num_pods = flags.GetInt("pods", 0);
  const std::string backend_list = flags.GetString("backends");
  if (num_pods == 0 && backend_list.empty()) {
    std::fprintf(stderr,
                 "usage: serenade_gateway (--pods N | --backends P1,P2,...) "
                 "[--port P] [--forward-timeout MS] [--max-attempts N] "
                 "[--hedge-delay MS] [--probe-interval MS] [--no-fallback]\n");
    return 2;
  }

  // The synthetic dataset powers both the in-process pods (index) and
  // the gateway's degraded-mode popularity fallback.
  SyntheticConfig data_config;
  data_config.num_items = flags.GetInt("items", 5000);
  data_config.num_sessions = flags.GetInt("sessions", 20000);
  const Dataset train = GenerateDataset(data_config);

  // Shared slow-request policy: both the gateway and any spawned pods log
  // requests over the threshold, joined by the propagated trace id.
  TraceConfig trace_config;
  trace_config.slow_request_micros = flags.GetInt("slow-request-us", 0);
  trace_config.sample_every_n =
      std::max<uint64_t>(1, flags.GetInt("slow-sample-every", 1));

  std::vector<std::unique_ptr<SerenadeServer>> pods;
  std::vector<BackendEndpoint> backends;

  if (num_pods > 0) {
    auto index = std::make_shared<SessionIndex>(SessionIndex::Build(train, 500));
    ItemCatalog catalog;
    catalog.available.assign(index->num_items(), true);
    catalog.adult.assign(index->num_items(), false);
    for (size_t i = 0; i < num_pods; ++i) {
      ServiceConfig service_config;
      service_config.knn.m =
          std::min<size_t>(500, index->max_sessions_per_item());
      service_config.knn.k = std::min<size_t>(100, service_config.knn.m);
      auto service = SerenadeService::Create(index, catalog, service_config);
      if (!service.ok()) {
        std::fprintf(stderr, "pod %zu: %s\n", i,
                     service.status().ToString().c_str());
        return 1;
      }
      ServerConfig server_config;
      server_config.janitor_interval_ms = 5000;
      server_config.trace = trace_config;
      auto pod = std::make_unique<SerenadeServer>(std::move(service).value(),
                                                  server_config);
      if (Status status = pod->Start(); !status.ok()) {
        std::fprintf(stderr, "pod %zu: %s\n", i, status.ToString().c_str());
        return 1;
      }
      backends.push_back(
          BackendEndpoint{"pod-" + std::to_string(i), pod->port()});
      std::printf("spawned pod-%zu on 127.0.0.1:%u\n", i, pod->port());
      pods.push_back(std::move(pod));
    }
  } else {
    backends = ParseBackendList(backend_list);
  }

  GatewayConfig config;
  config.port = static_cast<uint16_t>(flags.GetInt("port", 8080));
  config.forward_timeout_ms = flags.GetInt("forward-timeout", 1000);
  config.max_attempts = static_cast<uint32_t>(flags.GetInt("max-attempts", 3));
  config.hedge_delay_ms = flags.GetInt("hedge-delay", 0);
  config.health.probe_interval_ms = flags.GetInt("probe-interval", 250);
  config.max_batch_items =
      std::max<uint64_t>(1, flags.GetInt("max-batch-items", 128));
  config.trace = trace_config;
  // Reactor front-door tuning (DESIGN.md §10).
  config.http.max_connections =
      std::max<uint64_t>(1, flags.GetInt("max-connections", 10000));
  config.http.idle_timeout_ms = flags.GetInt("idle-timeout-ms", 60000);
  config.http.request_deadline_ms = flags.GetInt("request-deadline-ms", 0);
  config.http.reactor_threads =
      std::max<uint64_t>(1, flags.GetInt("reactor-threads", 1));
  config.http.worker_threads = flags.GetInt("worker-threads", 0);
  // Elastic fleet data plane (DESIGN.md §12): membership changes run
  // hand-offs / promotion on the pods and rewire their shipping peers.
  config.manage_replication = flags.GetBool("manage-replication", false);
  // Retrieval A/B split (DESIGN.md §13): this share of sessions is
  // sticky-bucketed onto engine=ann (the pods need --embeddings, or the
  // arm degrades to VMIS and counts into gateway_ab_fallbacks_total).
  config.ab_ann_percent =
      static_cast<uint32_t>(std::min<uint64_t>(100, flags.GetInt("ab-ann-percent", 0)));
  config.ab_salt = flags.GetInt("ab-salt", 0);

  std::unique_ptr<Recommender> fallback;
  if (!flags.GetBool("no-fallback", false)) {
    fallback = std::make_unique<PopularityRecommender>(train);
  }

  ClusterGateway gateway(backends, config, std::move(fallback));
  if (Status status = gateway.Start(); !status.ok()) {
    std::fprintf(stderr, "gateway: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "gateway on 127.0.0.1:%u fronting %zu backend(s) "
      "(timeout=%llums, attempts=%u, hedge=%llums)\n",
      gateway.port(), backends.size(),
      static_cast<unsigned long long>(config.forward_timeout_ms),
      config.max_attempts,
      static_cast<unsigned long long>(config.hedge_delay_ms));

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  const GatewayCounters totals = gateway.counters();
  std::printf(
      "shutting down: %llu requests (%llu forwarded, %llu degraded, "
      "%llu failed, %llu retries)\n",
      static_cast<unsigned long long>(gateway.requests_served()),
      static_cast<unsigned long long>(totals.forwarded_ok),
      static_cast<unsigned long long>(totals.degraded),
      static_cast<unsigned long long>(totals.failed),
      static_cast<unsigned long long>(totals.retries));
  gateway.Stop();
  for (auto& pod : pods) pod->Stop();
  return 0;
}
