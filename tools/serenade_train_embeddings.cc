// CLI: train the item2vec embedding artifact for the ANN retrieval
// family (DESIGN.md §13).
//
//   serenade_train_embeddings --out items.emb
//       [--sessions 20000] [--items 2000] [--data-seed 42]
//       [--dim 32] [--window 3] [--negatives 5] [--epochs 3]
//       [--lr 0.05] [--train-seed 42] [--threads 0]
//       [--version 1] [--build-id ID] [--source NAME]
//
// Trains deterministic skip-gram embeddings over the synthetic
// clickstream (the same generator the index builder uses) and writes the
// SRNEMB1 artifact plus its `.manifest` sidecar — the unit a pod loads
// with `serenade_server --embeddings items.emb` or hot-swaps via
// POST /v1/admin/embeddings/reload. Training is byte-identical for a
// fixed (--data-seed, --train-seed) no matter --threads, so rebuilt
// artifacts carry the same manifest CRC (see embedding_determinism_test).
//
// --threads 0 uses the hardware concurrency.
#include <cstdio>
#include <string>
#include <thread>

#include "baselines/item2vec.h"
#include "data/synthetic.h"
#include "flags.h"
#include "index/embedding_format.h"
#include "index/snapshot.h"

using namespace serenade;

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  const std::string out_path = flags.GetString("out");
  if (out_path.empty()) {
    std::fprintf(stderr,
                 "usage: serenade_train_embeddings --out items.emb "
                 "[--sessions N] [--items N] [--dim D] [--epochs E]\n");
    return 2;
  }

  SyntheticConfig synth;
  synth.seed = flags.GetInt("data-seed", 42);
  synth.num_sessions = flags.GetInt("sessions", 20000);
  synth.num_items = flags.GetInt("items", 2000);
  const Dataset train = GenerateDataset(synth);
  std::printf("clickstream: %zu sessions, %zu items, %zu clicks\n",
              train.num_sessions(), train.num_items(), train.num_clicks());

  Item2VecConfig config;
  config.dim = flags.GetInt("dim", 32);
  config.window = flags.GetInt("window", 3);
  config.negatives = flags.GetInt("negatives", 5);
  config.epochs = flags.GetInt("epochs", 3);
  config.learning_rate = static_cast<float>(flags.GetDouble("lr", 0.05));
  config.seed = flags.GetInt("train-seed", 42);
  config.num_threads = flags.GetInt("threads", 0);
  if (config.num_threads == 0) {
    config.num_threads = std::max(1u, std::thread::hardware_concurrency());
  }

  double total_loss = 0.0;
  auto embeddings = TrainItemEmbeddings(train, config, &total_loss);
  if (!embeddings.ok()) {
    std::fprintf(stderr, "training: %s\n",
                 embeddings.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %zu x %zu embeddings (%zu threads, loss %.4f)\n",
              embeddings->num_items, embeddings->dim, config.num_threads,
              total_loss);

  IndexManifest stamp;
  stamp.version = flags.GetInt("version", 1);
  stamp.build_id = flags.GetString("build-id");
  stamp.source = flags.GetString("source");
  if (stamp.source.empty()) {
    stamp.source = "synthetic-" + std::to_string(synth.seed);
  }
  auto manifest = WriteEmbeddingsWithManifest(out_path, *embeddings, stamp);
  if (!manifest.ok()) {
    std::fprintf(stderr, "write: %s\n", manifest.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (version %llu, crc32 %08x, %llu bytes) + sidecar %s\n",
              out_path.c_str(),
              static_cast<unsigned long long>(manifest->version),
              manifest->index_crc32,
              static_cast<unsigned long long>(manifest->index_bytes),
              ManifestPathFor(out_path).c_str());
  return 0;
}
