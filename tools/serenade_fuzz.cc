// serenade_fuzz — time-bounded differential fuzzing of the kNN engine
// family (testing/differential.h): VS-kNN vs VMIS-kNN vs VMIS-no-opt vs
// the micro-batched service path, scores and ranks bit-identical.
//
//   serenade_fuzz [--seed N] [--seconds N] [--kernel-only]
//
// SERENADE_FUZZ_SECONDS overrides the budget (the CI smoke pins 30 s;
// a nightly-style run sets it to minutes). Every case derives its seed
// as base_seed + case_index, so a failure reproduces with
// `serenade_fuzz --seed <printed case seed> --seconds 1` — or directly
// in a unit test via GenerateDiffCase(spec, Rng(seed)).
//
// Exit status: 0 = every case agreed; 1 = divergence (minimal
// reproducer printed); 2 = bad usage.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "testing/differential.h"
#include "flags.h"

namespace serenade {
namespace {

int Run(int argc, char** argv) {
  const tools::Flags flags(argc, argv);
  const uint64_t seed = flags.GetInt("seed", 20260806);
  const bool kernel_only = flags.GetBool("kernel-only", false);
  uint64_t seconds = flags.GetInt("seconds", 30);
  if (const char* env = std::getenv("SERENADE_FUZZ_SECONDS")) {
    seconds = std::strtoull(env, nullptr, 10);
  }
  if (seconds == 0) seconds = 1;

  DiffSpec spec;
  spec.include_service = !kernel_only;

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::seconds(seconds);
  DiffFuzzStats stats;
  uint64_t next_case = 0;
  std::cout << "serenade_fuzz: seed=" << seed << " budget=" << seconds
            << "s service_path=" << (kernel_only ? "off" : "on") << std::endl;

  // Batches keep the deadline check off the per-case hot path while the
  // per-case seeds stay a pure function of (seed, case index).
  constexpr uint64_t kBatch = 8;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto reproducer =
        RunDiffFuzz(spec, seed + next_case, kBatch, &stats);
    if (reproducer.has_value()) {
      std::cout << *reproducer;
      std::cout << "FAIL after " << stats.cases << " cases ("
                << stats.sessions << " sessions, " << stats.queries
                << " queries)" << std::endl;
      return 1;
    }
    next_case += kBatch;
  }

  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  std::cout << "OK: " << stats.cases << " cases, " << stats.sessions
            << " sessions, " << stats.queries << " queries, zero divergence"
            << " in " << elapsed << " ms" << std::endl;
  return 0;
}

}  // namespace
}  // namespace serenade

int main(int argc, char** argv) { return serenade::Run(argc, argv); }
