// serenade_fuzz — time-bounded differential fuzzing of the retrieval
// engine families:
//   * diff: VS-kNN vs VMIS-kNN vs VMIS-no-opt vs the micro-batched
//     service path (testing/differential.h), scores and ranks
//     bit-identical;
//   * ann: HNSW vs brute-force exact top-k (testing/ann_oracle.h),
//     mean recall@k >= 0.95 per generated case.
//
//   serenade_fuzz [--family diff|ann|both] [--seed N] [--seconds N]
//                 [--kernel-only]
//
// SERENADE_FUZZ_SECONDS overrides the budget (the CI smoke pins 30 s; a
// nightly-style run sets it to minutes); `both` splits it evenly. Every
// case derives its seed as base_seed + case_index, so a failure
// reproduces with `serenade_fuzz --family <f> --seed <printed case seed>
// --seconds 1` — or directly in a unit test via GenerateDiffCase /
// GenerateAnnCase with Rng(seed).
//
// Exit status: 0 = every case agreed; 1 = divergence or recall violation
// (minimal reproducer printed); 2 = bad usage.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "testing/ann_oracle.h"
#include "testing/differential.h"
#include "flags.h"

namespace serenade {
namespace {

using Clock = std::chrono::steady_clock;

// Batches keep the deadline check off the per-case hot path while the
// per-case seeds stay a pure function of (seed, case index).
constexpr uint64_t kBatch = 8;

int RunDiffFamily(uint64_t seed, Clock::time_point deadline,
                  bool kernel_only) {
  DiffSpec spec;
  spec.include_service = !kernel_only;
  DiffFuzzStats stats;
  uint64_t next_case = 0;
  const auto start = Clock::now();
  while (Clock::now() < deadline) {
    const auto reproducer =
        RunDiffFuzz(spec, seed + next_case, kBatch, &stats);
    if (reproducer.has_value()) {
      std::cout << *reproducer;
      std::cout << "FAIL [diff] after " << stats.cases << " cases ("
                << stats.sessions << " sessions, " << stats.queries
                << " queries)" << std::endl;
      return 1;
    }
    next_case += kBatch;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - start)
                           .count();
  std::cout << "OK [diff]: " << stats.cases << " cases, " << stats.sessions
            << " sessions, " << stats.queries
            << " queries, zero divergence in " << elapsed << " ms"
            << std::endl;
  return 0;
}

int RunAnnFamily(uint64_t seed, Clock::time_point deadline) {
  AnnOracleSpec spec;
  AnnFuzzStats stats;
  uint64_t next_case = 0;
  const auto start = Clock::now();
  while (Clock::now() < deadline) {
    const auto reproducer =
        RunAnnFuzz(spec, seed + next_case, kBatch, &stats);
    if (reproducer.has_value()) {
      std::cout << *reproducer;
      std::cout << "FAIL [ann] after " << stats.cases << " cases ("
                << stats.items << " items, " << stats.queries << " queries)"
                << std::endl;
      return 1;
    }
    next_case += kBatch;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - start)
                           .count();
  std::cout << "OK [ann]: " << stats.cases << " cases, " << stats.items
            << " corpus items, " << stats.queries << " queries, recall@"
            << spec.k << " >= " << spec.min_recall << " throughout in "
            << elapsed << " ms" << std::endl;
  return 0;
}

int Run(int argc, char** argv) {
  const tools::Flags flags(argc, argv);
  const uint64_t seed = flags.GetInt("seed", 20260806);
  const bool kernel_only = flags.GetBool("kernel-only", false);
  const std::string family = flags.GetString("family", "diff");
  if (family != "diff" && family != "ann" && family != "both") {
    std::cerr << "unknown --family \"" << family
              << "\" (expected diff|ann|both)" << std::endl;
    return 2;
  }
  uint64_t seconds = flags.GetInt("seconds", 30);
  if (const char* env = std::getenv("SERENADE_FUZZ_SECONDS")) {
    seconds = std::strtoull(env, nullptr, 10);
  }
  if (seconds == 0) seconds = 1;

  std::cout << "serenade_fuzz: family=" << family << " seed=" << seed
            << " budget=" << seconds << "s service_path="
            << (kernel_only ? "off" : "on") << std::endl;

  const auto start = Clock::now();
  if (family == "diff") {
    return RunDiffFamily(seed, start + std::chrono::seconds(seconds),
                         kernel_only);
  }
  if (family == "ann") {
    return RunAnnFamily(seed, start + std::chrono::seconds(seconds));
  }
  // both: split the budget evenly; first failure wins.
  const auto half = std::chrono::milliseconds(seconds * 1000 / 2);
  if (int rc = RunDiffFamily(seed, start + half, kernel_only); rc != 0) {
    return rc;
  }
  return RunAnnFamily(seed, Clock::now() + half);
}

}  // namespace
}  // namespace serenade

int main(int argc, char** argv) { return serenade::Run(argc, argv); }
