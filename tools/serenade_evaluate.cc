// CLI: offline evaluation of VMIS-kNN and the baseline recommenders on a
// click log, using the paper's protocol (last day held out, metrics @20).
//
//   serenade_evaluate --clicks clicks.csv [--m 500] [--k 100]
//       [--cutoff 20] [--test-days 1] [--max-sessions 0]
//       [--models vmis-knn,sr,ar,markov,popularity,item-knn]
//
// Without --clicks a synthetic dataset is used.
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "baselines/item_knn.h"
#include "baselines/popularity.h"
#include "baselines/rules.h"
#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "data/csv.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "flags.h"

using namespace serenade;

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);

  Dataset dataset;
  const std::string clicks_path = flags.GetString("clicks");
  if (!clicks_path.empty()) {
    auto clicks = ReadClicksCsv(clicks_path);
    if (!clicks.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", clicks_path.c_str(),
                   clicks.status().ToString().c_str());
      return 1;
    }
    dataset = Dataset::FromClicks(std::move(clicks).value());
  } else {
    SyntheticConfig config;
    config.seed = flags.GetInt("seed", 42);
    config.num_sessions = flags.GetInt("synthetic-sessions", 30000);
    config.num_items = flags.GetInt("synthetic-items", 5000);
    config.num_days = flags.GetInt("synthetic-days", 14);
    std::printf("no --clicks given; generating synthetic data\n");
    dataset = GenerateDataset(config);
  }

  TrainTestSplit split =
      SplitLastDays(dataset, flags.GetInt("test-days", 1));
  std::printf("train %zu sessions | test %zu sessions\n",
              split.train.num_sessions(), split.test.num_sessions());
  if (split.test.num_sessions() == 0) {
    std::fprintf(stderr, "no test sessions after the split\n");
    return 1;
  }

  KnnConfig knn_config;
  knn_config.m = flags.GetInt("m", 500);
  knn_config.k = flags.GetInt("k", 100);
  SessionIndex index = SessionIndex::Build(split.train, knn_config.m);

  std::vector<std::pair<std::string, std::unique_ptr<Recommender>>> models;
  std::stringstream wanted(flags.GetString(
      "models", "vmis-knn,sr,ar,markov,popularity,item-knn"));
  std::string name;
  while (std::getline(wanted, name, ',')) {
    if (name == "vmis-knn") {
      models.emplace_back(name, std::make_unique<VmisKnn>(&index, knn_config));
    } else if (name == "sr") {
      models.emplace_back(
          name, std::make_unique<SequentialRules>(split.train, RulesConfig{}));
    } else if (name == "ar") {
      models.emplace_back(name, std::make_unique<AssociationRules>(
                                    split.train, RulesConfig{}));
    } else if (name == "markov") {
      models.emplace_back(name,
                          std::make_unique<MarkovRecommender>(split.train));
    } else if (name == "popularity") {
      models.emplace_back(
          name, std::make_unique<PopularityRecommender>(split.train));
    } else if (name == "item-knn") {
      models.emplace_back(name, std::make_unique<ItemKnnRecommender>(
                                    split.train, ItemKnnConfig{}));
    } else {
      std::fprintf(stderr, "unknown model: %s\n", name.c_str());
      return 2;
    }
  }

  EvalOptions options;
  options.cutoff = flags.GetInt("cutoff", 20);
  options.max_sessions = flags.GetInt("max-sessions", 0);
  options.record_latency = true;

  std::printf("\n%-14s %8s %8s %8s %8s %8s %12s\n", "model", "MRR", "HR",
              "P", "R", "MAP", "p90 latency");
  for (auto& [model_name, model] : models) {
    const EvalResult result =
        EvaluateRecommender(*model, split.test, options);
    std::printf("%-14s %8.4f %8.4f %8.4f %8.4f %8.4f %9llu us\n",
                model_name.c_str(), result.metrics.Mrr(),
                result.metrics.HitRate(), result.metrics.Precision(),
                result.metrics.Recall(), result.metrics.Map(),
                static_cast<unsigned long long>(
                    result.latency_micros.Percentile(0.9)));
  }
  return 0;
}
