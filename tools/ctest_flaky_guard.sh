#!/usr/bin/env bash
# Run ctest with a retry-on-failure policy AND treat any retry as a
# build-breaking flake.
#
#   tools/ctest_flaky_guard.sh <build-dir> [ctest args...]
#
# `ctest --repeat until-pass:2` reruns each failed test once, so a flaky
# test "passes" the suite — which is exactly how flakes rot in. This
# wrapper keeps the retry (one bad scheduling roll must not block a
# merge diagnosis) but then greps the log: if any test needed the second
# attempt, it prints the offenders and fails the job anyway, so flakes
# land as red CI with a name attached instead of silent noise.
set -uo pipefail

BUILD_DIR="${1:?usage: $0 <build-dir> [ctest args...]}"
shift || true

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

(cd "$BUILD_DIR" && ctest --output-on-failure --repeat until-pass:2 "$@") \
  2>&1 | tee "$LOG"
CTEST_EXIT="${PIPESTATUS[0]}"

if [ "$CTEST_EXIT" -ne 0 ]; then
  echo "ctest failed outright (exit $CTEST_EXIT)" >&2
  exit "$CTEST_EXIT"
fi

# A test that failed its first attempt leaves a ***Failed/***Timeout line
# in the log even when the repeat pass rescued the suite.
FLAKY="$(grep -E '\*\*\*(Failed|Timeout)' "$LOG" || true)"
if [ -n "$FLAKY" ]; then
  echo "" >&2
  echo "FLAKY TESTS DETECTED: the suite only passed on retry." >&2
  echo "Offending first-attempt failures:" >&2
  echo "$FLAKY" >&2
  echo "Fix the flake; retries are a diagnostic, not a green light." >&2
  exit 1
fi

echo "flaky guard: all tests passed on the first attempt"
