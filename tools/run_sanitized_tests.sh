#!/usr/bin/env bash
# Build and run the test suite under a sanitizer.
#
#   tools/run_sanitized_tests.sh [address|thread|both] [ctest args...]
#
# Configures a dedicated build tree (build-asan/ or build-tsan/) so the
# regular build/ stays untouched, then runs ctest. `both` runs the suite
# under ASan+UBSan and then again under TSan — the mode CI uses for the
# index hot-swap tests, which must be clean under both runtimes. Extra
# arguments are forwarded to ctest, e.g.:
#
#   tools/run_sanitized_tests.sh thread -R Gateway
#   tools/run_sanitized_tests.sh both -R IndexSwap
#
# The -R pattern matches gtest suite names (ctest -N lists them); an
# empty match is an error (--no-tests=error), not a silent pass.
#
# SERENADE_CMAKE_ARGS adds extra configure flags (CI passes
# -DSERENADE_WERROR=ON and the ccache launcher through it).
set -euo pipefail

SANITIZER="${1:-address}"
shift || true

case "$SANITIZER" in
  address|thread) SANITIZERS=("$SANITIZER") ;;
  both)           SANITIZERS=(address thread) ;;
  *)
    echo "usage: $0 [address|thread|both] [ctest args...]" >&2
    exit 2
    ;;
esac

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

# Abort on the first sanitizer report so failures are loud in CI.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

for SAN in "${SANITIZERS[@]}"; do
  case "$SAN" in
    address) BUILD_DIR=build-asan ;;
    thread)  BUILD_DIR=build-tsan ;;
  esac

  echo "=== sanitizer: $SAN (build tree: $BUILD_DIR) ==="
  # shellcheck disable=SC2086  # SERENADE_CMAKE_ARGS is a flag list
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSERENADE_SANITIZE="$SAN" \
    ${SERENADE_CMAKE_ARGS:-}
  cmake --build "$BUILD_DIR" -j "$(nproc)"

  (cd "$BUILD_DIR" && ctest --output-on-failure --no-tests=error -j "$(nproc)" "$@")
done
