#!/usr/bin/env bash
# Build and run the test suite under a sanitizer.
#
#   tools/run_sanitized_tests.sh [address|thread] [ctest args...]
#
# Configures a dedicated build tree (build-asan/ or build-tsan/) so the
# regular build/ stays untouched, then runs ctest. Extra arguments are
# forwarded to ctest, e.g.:
#
#   tools/run_sanitized_tests.sh thread -R cluster_gateway
set -euo pipefail

SANITIZER="${1:-address}"
shift || true

case "$SANITIZER" in
  address) BUILD_DIR=build-asan ;;
  thread)  BUILD_DIR=build-tsan ;;
  *)
    echo "usage: $0 [address|thread] [ctest args...]" >&2
    exit 2
    ;;
esac

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSERENADE_SANITIZE="$SANITIZER"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Abort on the first sanitizer report so failures are loud in CI.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)" "$@"
