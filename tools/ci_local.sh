#!/usr/bin/env bash
# Mirror .github/workflows/ci.yml on the local machine, without GitHub
# Actions — the pre-push answer to "will CI be green?".
#
#   tools/ci_local.sh           # full matrix: Debug+Release, ASan+TSan,
#                               # bench smoke, format check
#   tools/ci_local.sh --quick   # PR-sized subset: Release only, ASan on
#                               # the obs/gateway/swap tests, bench smoke
#
# Each stage reports PASS/FAIL and the script exits non-zero if any
# stage failed, so it is scriptable. ccache is used when present.
set -uo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

JOBS="$(nproc)"
LAUNCHER=""
if command -v ccache > /dev/null 2>&1; then
  LAUNCHER="-DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

declare -a RESULTS=()
FAILED=0

run_stage() {
  local name="$1"
  shift
  echo ""
  echo "=== stage: $name ==="
  if "$@"; then
    RESULTS+=("PASS  $name")
  else
    RESULTS+=("FAIL  $name")
    FAILED=1
  fi
}

build_and_test() {
  local build_type="$1" dir="$2"
  # shellcheck disable=SC2086  # LAUNCHER is an optional flag
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE="$build_type" \
    -DSERENADE_WERROR=ON \
    $LAUNCHER &&
    cmake --build "$dir" -j "$JOBS" &&
    tools/ctest_flaky_guard.sh "$dir" -j "$JOBS"
}

bench_smoke() {
  # Mirrors the CI bench-smoke job: the same bench binaries at smoke
  # scale, then the perf regression gate against bench/baselines/.
  local dir="$1"
  export SERENADE_BENCH_SCALE=0.05 SERENADE_BENCH_SECONDS=2
  mkdir -p "$dir/bench-results" &&
    "$dir/bench/fig3a_microbenchmark" \
      --benchmark_min_time=0.05 \
      --benchmark_out="$dir/bench-results/fig3a_microbenchmark.json" \
      --benchmark_out_format=json &&
    SERENADE_BENCH_JSON="$dir/bench-results/index_swap_bench.json" \
      "$dir/bench/index_swap_bench" &&
    SERENADE_BENCH_JSON="$dir/bench-results/recommend_batch_bench.json" \
      "$dir/bench/recommend_batch_bench" &&
    SERENADE_BENCH_JSON="$dir/bench-results/index_freshness_bench.json" \
      "$dir/bench/index_freshness_bench" &&
    SERENADE_BENCH_JSON="$dir/bench-results/complexity_validation_bench.json" \
      "$dir/bench/complexity_validation_bench" &&
    SERENADE_BENCH_JSON="$dir/bench-results/rebalance_bench.json" \
      "$dir/bench/rebalance_bench" &&
    SERENADE_BENCH_JSON="$dir/bench-results/ann_retrieval_bench.json" \
      "$dir/bench/ann_retrieval_bench" &&
    ulimit -n "$(ulimit -Hn)" &&
    SERENADE_BENCH_JSON="$dir/bench-results/fig3b_load_test.json" \
      SERENADE_BENCH_CONNECTIONS=10000 \
      "$dir/bench/fig3b_load_test" &&
    python3 tools/check_bench_regression.py --self-test &&
    python3 tools/check_bench_regression.py --results "$dir/bench-results" &&
    echo "bench results in $dir/bench-results/"
}

sanitized() {
  tools/run_sanitized_tests.sh "$@"
}

fuzz_smoke() {
  local dir="$1" seconds="$2"
  cmake --build "$dir" -j "$JOBS" --target serenade_fuzz &&
    SERENADE_FUZZ_SECONDS="$seconds" \
      "$dir/tools/serenade_fuzz" --family both --seed 20260806
}

if [ "$QUICK" -eq 1 ]; then
  run_stage "build-test (Release)" build_and_test Release build-ci-release
  run_stage "sanitize (address, subset)" sanitized address \
    -R 'Metrics|Trace|SlowRequest|Gateway|Service|IndexSwap|FaultInjector|WalTorture'
  run_stage "fuzz smoke (5s)" fuzz_smoke build-ci-release 5
  run_stage "bench smoke" bench_smoke build-ci-release
else
  run_stage "build-test (Debug)" build_and_test Debug build-ci-debug
  run_stage "build-test (Release)" build_and_test Release build-ci-release
  run_stage "sanitize (address)" sanitized address
  run_stage "sanitize (thread)" sanitized thread
  run_stage "fuzz smoke (30s)" fuzz_smoke build-ci-release 30
  run_stage "bench smoke" bench_smoke build-ci-release
fi
run_stage "format check" tools/check_format.sh

echo ""
echo "=== ci_local summary ==="
for LINE in "${RESULTS[@]}"; do echo "$LINE"; done
exit "$FAILED"
