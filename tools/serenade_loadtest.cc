// CLI: open-loop load generator against running Serenade servers.
//
//   serenade_loadtest --ports 8080,8081 [--rps 500] [--ramp-to 0]
//       [--duration 30] [--connections 8] [--synthetic-sessions 20000]
//
// Synthesises a clickstream workload (or replays --clicks CSV sessions),
// routes requests across the given ports with sticky-session hashing and
// prints the per-bucket rate / latency table of Figure 3(b).
#include <cstdio>
#include <sstream>

#include "benchutil/load_generator.h"
#include "benchutil/workload.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "flags.h"

using namespace serenade;

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);

  std::vector<uint16_t> ports;
  std::stringstream port_list(flags.GetString("ports", "8080"));
  std::string token;
  while (std::getline(port_list, token, ',')) {
    ports.push_back(static_cast<uint16_t>(std::atoi(token.c_str())));
  }
  if (ports.empty()) {
    std::fprintf(stderr, "--ports required (comma separated)\n");
    return 2;
  }

  Dataset sessions;
  const std::string clicks_path = flags.GetString("clicks");
  if (!clicks_path.empty()) {
    auto clicks = ReadClicksCsv(clicks_path);
    if (!clicks.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", clicks_path.c_str(),
                   clicks.status().ToString().c_str());
      return 1;
    }
    sessions = Dataset::FromClicks(std::move(clicks).value());
  } else {
    SyntheticConfig config;
    config.seed = flags.GetInt("seed", 42);
    config.num_sessions = flags.GetInt("synthetic-sessions", 20000);
    config.num_items = flags.GetInt("synthetic-items", 5000);
    sessions = GenerateDataset(config);
  }

  const double rps = flags.GetDouble("rps", 500);
  const double ramp_to = flags.GetDouble("ramp-to", 0);
  WorkloadOptions workload_options;
  workload_options.duration_seconds = flags.GetDouble("duration", 30);
  workload_options.seed = flags.GetInt("seed", 42);
  const RateProfile profile = ramp_to > 0 ? RateProfile::Ramp(rps, ramp_to)
                                          : RateProfile::Constant(rps);
  const auto events = BuildWorkload(sessions, profile, workload_options);
  std::printf("workload: %zu requests over %.0fs against %zu server(s)\n",
              events.size(), workload_options.duration_seconds,
              ports.size());

  LoadGeneratorOptions load_options;
  load_options.connections_per_server = flags.GetInt("connections", 8);
  load_options.bucket_seconds = flags.GetDouble("bucket", 2.0);
  const LoadResult result = RunLoad(events, ports, load_options);
  std::printf("%s", result.FormatTable().c_str());
  return result.total_errors == 0 ? 0 : 1;
}
