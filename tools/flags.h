// Tiny command-line flag parsing for the CLI tools: --key value pairs
// with typed accessors and defaults.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace serenade::tools {

/// Parses "--key value" pairs; bare "--key" stores "true".
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      const std::string key = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  bool Has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0";
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace serenade::tools
