// CLI: one Serenade serving pod.
//
//   serenade_server --index session.index [--port 8080] [--m 500]
//       [--k 100] [--ttl 1800] [--max-items 21] [--wal sessions.wal]
//       [--slow-request-us 0] [--slow-sample-every 1]
//       [--batch-max-size 1] [--batch-max-delay-us 0] [--batch-workers 2]
//       [--max-batch-items 128]
//       [--builder-port 0] [--delta-poll-ms 1000]
//       [--max-connections 10000] [--idle-timeout-ms 60000]
//       [--request-deadline-ms 0] [--reactor-threads 1]
//       [--worker-threads 0]
//       [--pod-name NAME] [--virtual-nodes 128] [--ship-interval-ms 20]
//       [--embeddings items.emb]
//
// --embeddings loads the item2vec artifact from
// serenade_train_embeddings and turns on the second retrieval family
// (DESIGN.md §13): requests carrying engine=ann (query param, JSON
// field, or a gateway A/B bucket) serve HNSW neighbours of the folded
// session vector, hot-swappable via POST /v1/admin/embeddings/reload.
//
// --pod-name joins the elastic fleet data plane (DESIGN.md §12): the pod
// attaches the replication agent (WAL shipping to its ring successor,
// replica hub, hand-off control plane under /v1/admin) and announces
// itself under NAME — which must match the name the gateway's ring uses
// for this backend, and requires --wal (the WAL is the replication
// unit). Pair with a gateway running --manage-replication, which pushes
// each pod's shipping peer on every membership change.
//
// --builder-port joins the streaming freshness pipeline (DESIGN.md §9):
// accepted clicks stream to the serenade_index_builder at that port, and
// a background fetcher polls it for cumulative deltas, layering each
// over the pinned base snapshot (also reachable directly via POST
// /v1/admin/delta). 0 = pipeline off.
//
// Loads the binary index produced by serenade_build_index (honouring its
// `.manifest` sidecar) and serves the versioned /v1 API (see API.md):
//   GET  /v1/recommend?session_id=<key>&item_id=<id>[&consent=false]
//   POST /v1/recommend          (JSON body form of the same request)
//   POST /v1/recommend:batch    (order-preserving client-side batches)
//   GET  /v1/healthz            (reports the published index version)
//   GET  /v1/stats
//   GET  /v1/metrics
//   POST /v1/admin/reload[?path=other.index]  (zero-downtime index swap)
// The unversioned paths still answer (byte-identical) but are stamped
// `Deprecation: true`.
//
// --batch-max-size > 1 turns on the micro-batching executor: concurrent
// requests coalesce (waiting up to --batch-max-delay-us for a full batch)
// into one session-store round trip and one snapshot pin per batch. The
// default of 1 is an exact pass-through of the serial request path.
// Runs until SIGINT/SIGTERM.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <thread>

#include "core/knn_kernels.h"
#include "data/synthetic.h"
#include "flags.h"
#include "freshness/click_tap.h"
#include "freshness/delta_fetcher.h"
#include "index/embedding_store.h"
#include "index/snapshot.h"
#include "replication/pod_replication.h"
#include "serving/server.h"

using namespace serenade;

namespace {
std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  const std::string index_path = flags.GetString("index");
  if (index_path.empty()) {
    std::fprintf(stderr,
                 "usage: serenade_server --index session.index [--port P] "
                 "[--m M] [--k K] [--ttl SECONDS] [--wal FILE]\n");
    return 2;
  }

  auto manager = IndexManager::CreateFromFile(index_path);
  if (!manager.ok()) {
    std::fprintf(stderr, "failed to load index: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  const auto boot = (*manager)->Current();
  std::printf(
      "loaded index version %llu (%s): %zu sessions, %zu items, %zu "
      "postings\n",
      static_cast<unsigned long long>(boot->version()),
      boot->manifest().build_id.empty() ? "no manifest"
                                        : boot->manifest().build_id.c_str(),
      boot->index().num_sessions(), boot->index().num_items(),
      boot->index().num_postings());

  ServiceConfig service_config;
  service_config.knn.m = std::min<size_t>(
      flags.GetInt("m", 500), boot->index().max_sessions_per_item());
  service_config.knn.k =
      std::min<size_t>(flags.GetInt("k", 100), service_config.knn.m);
  service_config.rules.max_items = flags.GetInt("max-items", 21);
  // "Other customers also viewed" slots usually hide already-seen items.
  service_config.knn.exclude_session_items =
      flags.GetBool("exclude-seen", false);
  service_config.store.ttl_seconds = flags.GetInt("ttl", 1800);
  service_config.store.wal_path = flags.GetString("wal");

  // Without a catalog feed every item is available and non-adult.
  ItemCatalog catalog;
  catalog.available.assign(boot->index().num_items(), true);
  catalog.adult.assign(boot->index().num_items(), false);

  auto service =
      SerenadeService::Create(std::move(manager).value(), catalog,
                              service_config);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    return 1;
  }

  // Optional second retrieval family (DESIGN.md §13): the item2vec
  // artifact from serenade_train_embeddings, served as `engine=ann` and
  // hot-swappable via POST /v1/admin/embeddings/reload.
  const std::string embeddings_path = flags.GetString("embeddings");
  if (!embeddings_path.empty()) {
    auto embedding_manager = EmbeddingManager::CreateFromFile(embeddings_path);
    if (!embedding_manager.ok()) {
      std::fprintf(stderr, "failed to load embeddings: %s\n",
                   embedding_manager.status().ToString().c_str());
      return 1;
    }
    const auto snapshot = (*embedding_manager)->Current();
    std::printf("loaded embeddings version %llu: %zu items x %zu dims\n",
                static_cast<unsigned long long>(snapshot->version()),
                snapshot->embeddings().num_items, snapshot->embeddings().dim);
    (*service)->AttachEmbeddings(std::move(embedding_manager).value());
  }

  ServerConfig server_config;
  server_config.port = static_cast<uint16_t>(flags.GetInt("port", 8080));
  server_config.janitor_interval_ms = 5000;
  // Requests slower than this emit a structured slow_request log line
  // keyed by trace id (0 = disabled); sampling caps the log volume.
  server_config.trace.slow_request_micros = flags.GetInt("slow-request-us", 0);
  server_config.trace.sample_every_n =
      std::max<uint64_t>(1, flags.GetInt("slow-sample-every", 1));
  server_config.batch.max_batch_size =
      std::max<uint64_t>(1, flags.GetInt("batch-max-size", 1));
  server_config.batch.max_delay_us = flags.GetInt("batch-max-delay-us", 0);
  server_config.batch.num_workers =
      std::max<uint64_t>(1, flags.GetInt("batch-workers", 2));
  server_config.max_batch_items =
      std::max<uint64_t>(1, flags.GetInt("max-batch-items", 128));
  // Reactor front-door tuning (DESIGN.md §10).
  server_config.http.max_connections =
      std::max<uint64_t>(1, flags.GetInt("max-connections", 10000));
  server_config.http.idle_timeout_ms = flags.GetInt("idle-timeout-ms", 60000);
  server_config.http.request_deadline_ms =
      flags.GetInt("request-deadline-ms", 0);
  server_config.http.reactor_threads =
      std::max<uint64_t>(1, flags.GetInt("reactor-threads", 1));
  server_config.http.worker_threads = flags.GetInt("worker-threads", 0);
  SerenadeServer server(std::move(service).value(), server_config);

  // Optional replication agent (DESIGN.md §12): must attach before
  // Start() so its routes and write-divert hooks are registered before
  // the first request can land.
  const std::string pod_name = flags.GetString("pod-name");
  std::unique_ptr<PodReplication> replication;
  if (!pod_name.empty()) {
    if (service_config.store.wal_path.empty()) {
      std::fprintf(stderr, "--pod-name requires --wal (the WAL is the "
                           "replication unit)\n");
      return 2;
    }
    PodReplicationConfig repl_config;
    repl_config.pod_name = pod_name;
    repl_config.virtual_nodes =
        std::max<uint64_t>(1, flags.GetInt("virtual-nodes", 128));
    repl_config.ship_interval_ms =
        std::max<uint64_t>(1, flags.GetInt("ship-interval-ms", 20));
    replication =
        std::make_unique<PodReplication>(&server, repl_config);
  }

  // Optional freshness-pipeline plumbing: tap accepted clicks out to the
  // index builder, poll it for cumulative deltas, apply them as overlays.
  const uint16_t builder_port =
      static_cast<uint16_t>(flags.GetInt("builder-port", 0));
  std::unique_ptr<ClickTap> tap;
  std::unique_ptr<DeltaFetcher> fetcher;
  if (builder_port != 0) {
    ClickTapConfig tap_config;
    tap_config.builder_port = builder_port;
    tap = std::make_unique<ClickTap>(tap_config);
    if (Status status = tap->Start(); !status.ok()) {
      std::fprintf(stderr, "click tap: %s\n", status.ToString().c_str());
      return 1;
    }
    server.set_click_observer(
        [&tap](const std::string& session_key, ItemId item) {
          tap->Observe(session_key, item);
        });
    DeltaFetcherConfig fetch_config;
    fetch_config.builder_port = builder_port;
    fetch_config.poll_interval_ms =
        std::max<uint64_t>(1, flags.GetInt("delta-poll-ms", 1000));
    fetcher = std::make_unique<DeltaFetcher>(
        fetch_config,
        [&server](const IndexDelta& delta) { return server.ApplyDelta(delta); });
  }

  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  if (fetcher != nullptr) {
    if (Status status = fetcher->Start(); !status.ok()) {
      std::fprintf(stderr, "delta fetcher: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("freshness pipeline on: builder at 127.0.0.1:%u\n",
                builder_port);
  }
  if (replication != nullptr) {
    if (Status status = replication->Start(); !status.ok()) {
      std::fprintf(stderr, "replication: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("replication on: pod \"%s\" awaiting peer wiring from a "
                "--manage-replication gateway\n",
                pod_name.c_str());
  }
  std::printf(
      "serving on 127.0.0.1:%u (m=%zu, k=%zu, ttl=%llus, batch=%zu); hot "
      "swap with curl -X POST 'http://127.0.0.1:%u/v1/admin/reload'\n",
      server.port(), service_config.knn.m, service_config.knn.k,
      static_cast<unsigned long long>(service_config.store.ttl_seconds),
      server_config.batch.max_batch_size, server.port());
  std::printf("kernel dispatch: %s\n", simd::DescribeDispatch().c_str());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("shutting down after %llu requests\n",
              static_cast<unsigned long long>(server.requests_served()));
  if (fetcher != nullptr) fetcher->Stop();
  if (tap != nullptr) tap->Stop();
  server.Stop();
  // After the server drained its writes: the shipper's final flush
  // ships every acknowledged byte to the successor before exit.
  if (replication != nullptr) replication->Stop();
  return 0;
}
