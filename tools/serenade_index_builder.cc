// CLI: the streaming index-builder role of the freshness pipeline
// (DESIGN.md §9) — accepts the click stream tapped off serving pods,
// sessionizes it, and publishes cumulative versioned delta artifacts for
// the fleet to poll.
//
//   serenade_index_builder [--port 8090] [--base-version 1]
//       [--base-crc32 0] [--base-max-timestamp 0]
//       [--seal-idle-ms 30000] [--session-ttl-ms 0]
//       [--min-session-length 2] [--compact-interval-ms 1000]
//       [--publish-dir DIR]
//       [--max-connections 10000] [--idle-timeout-ms 60000]
//       [--request-deadline-ms 0] [--reactor-threads 1]
//       [--worker-threads 0]
//
// --base-version / --base-crc32 / --base-max-timestamp name the full
// snapshot the deltas layer over (take them from the
// serenade_build_index manifest of the artifact the pods booted on);
// pods reject deltas whose lineage does not match their pinned base.
// With --publish-dir set, each published delta is also stamped to
// `<dir>/delta-v<version>.srndelta` plus a kind=delta manifest sidecar.
//
// Surface (see API.md):
//   POST /v1/ingest        click batches from pod taps
//   GET  /v1/delta/latest  newest cumulative delta (?after=V, 204 = none)
//   GET  /v1/healthz /v1/stats /v1/metrics
// Runs until SIGINT/SIGTERM.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <thread>

#include "flags.h"
#include "freshness/builder_server.h"

using namespace serenade;

namespace {
std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);

  IndexBuilderConfig config;
  config.port = static_cast<uint16_t>(flags.GetInt("port", 8090));
  config.builder.base_version = flags.GetInt("base-version", 1);
  config.builder.base_crc32 =
      static_cast<uint32_t>(flags.GetInt("base-crc32", 0));
  config.builder.base_max_timestamp =
      static_cast<Timestamp>(flags.GetInt("base-max-timestamp", 0));
  config.builder.seal_idle_ms = flags.GetInt("seal-idle-ms", 30000);
  config.builder.session_ttl_ms = flags.GetInt("session-ttl-ms", 0);
  config.builder.min_session_length =
      flags.GetInt("min-session-length", 2);
  config.compact_interval_ms = flags.GetInt("compact-interval-ms", 1000);
  config.publish_dir = flags.GetString("publish-dir");
  // Reactor front-door tuning (DESIGN.md §10).
  config.http.max_connections =
      std::max<uint64_t>(1, flags.GetInt("max-connections", 10000));
  config.http.idle_timeout_ms = flags.GetInt("idle-timeout-ms", 60000);
  config.http.request_deadline_ms = flags.GetInt("request-deadline-ms", 0);
  config.http.reactor_threads =
      std::max<uint64_t>(1, flags.GetInt("reactor-threads", 1));
  config.http.worker_threads = flags.GetInt("worker-threads", 0);

  IndexBuilderServer server(config);
  if (Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "index builder on 127.0.0.1:%u over base version %llu "
      "(seal idle %llums, compact every %llums%s%s)\n",
      server.port(),
      static_cast<unsigned long long>(config.builder.base_version),
      static_cast<unsigned long long>(config.builder.seal_idle_ms),
      static_cast<unsigned long long>(config.compact_interval_ms),
      config.publish_dir.empty() ? "" : ", publishing to ",
      config.publish_dir.c_str());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf(
      "shutting down: %llu clicks ingested, %llu sessions sealed, delta "
      "version %llu\n",
      static_cast<unsigned long long>(server.builder().clicks_ingested()),
      static_cast<unsigned long long>(server.builder().sessions_sealed()),
      static_cast<unsigned long long>(server.published_version()));
  server.Stop();
  return 0;
}
