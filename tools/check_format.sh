#!/usr/bin/env bash
# Verify (or fix) clang-format compliance for the first-party sources.
#
#   tools/check_format.sh          # check, exit 1 with a diff summary
#   tools/check_format.sh --fix    # rewrite files in place
#
# Requires clang-format >= 14 (the CI runner has it). When the binary is
# missing locally the check is skipped with a warning — CI remains the
# enforcement point — unless SERENADE_FORMAT_STRICT=1 (set in CI) makes
# a missing binary an error.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
  if [ "${SERENADE_FORMAT_STRICT:-0}" = "1" ]; then
    echo "error: $CLANG_FORMAT not found and SERENADE_FORMAT_STRICT=1" >&2
    exit 1
  fi
  echo "warning: $CLANG_FORMAT not found; skipping format check" >&2
  exit 0
fi

MODE="${1:-check}"
mapfile -t FILES < <(find src tests tools bench examples \
  -name '*.cc' -o -name '*.h' | sort)

if [ "$MODE" = "--fix" ]; then
  "$CLANG_FORMAT" -i "${FILES[@]}"
  echo "formatted ${#FILES[@]} files"
  exit 0
fi

FAILED=0
for FILE in "${FILES[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$FILE" > /dev/null 2>&1; then
    echo "needs formatting: $FILE" >&2
    FAILED=1
  fi
done
if [ "$FAILED" -ne 0 ]; then
  echo "run tools/check_format.sh --fix" >&2
  exit 1
fi
echo "format check: ${#FILES[@]} files clean"
