#!/usr/bin/env python3
"""CI perf-regression gate for the bench-smoke job.

Compares the JSON written by the bench binaries against committed
baselines in bench/baselines/ and fails when a metric moves outside its
tolerance band (bench/baselines/tolerances.json).

Two input schemas are understood:

  * the flat schema written by bench_common.h's JsonResultWriter:
      {"benchmark": "...", "meta": {...}, "metrics": {"name": value}}
  * google-benchmark --benchmark_out JSON ({"context": ..., "benchmarks":
    [...]}); each iteration run becomes one metric keyed by its benchmark
    name with real_time as the value.

Baselines are always stored in the flat schema (google-benchmark results
are normalised on --update), so a baseline diff in review reads as plain
metric/value pairs. The "meta" block (git SHA, CPU features, SIMD build)
is provenance: it is recorded and displayed but never compared
numerically — except build_type, where comparing a Debug run against a
Release baseline is refused outright.

Modes:
  check (default)  compare --results against --baselines; exit 1 on any
                   regression outside tolerance
  --update         rewrite the baselines from --results (normalised);
                   commit the result (see TESTING.md for the refresh
                   workflow)
  --self-test      prove the gate can fail: perturb each baseline metric
                   beyond its tolerance in memory and require the
                   comparison to report it; exit 1 if any perturbation
                   slips through

Exit codes: 0 = clean, 1 = regression (or self-test hole), 2 = usage or
malformed input.

Tolerance semantics (tolerances.json):
  defaults: {...}                      applied to every metric
  benchmarks.<name>._default: {...}    per-benchmark override
  benchmarks.<name>.<metric>: {...}    per-metric override
with fields
  direction            "lower_is_better" (default) | "higher_is_better"
  max_regression_pct   relative band vs the baseline value (null = no
                       relative check; timings on shared CI runners get
                       wide bands — the gate exists to catch order-of-
                       magnitude regressions, not 5% noise)
  min_value/max_value  absolute bounds on the new value, independent of
                       the baseline (use for counts that must stay 0 and
                       ratios with a hard floor)
  required             if true, the metric missing from the results is
                       itself a failure (default false: a scalar-only
                       build legitimately omits the SIMD speedups)
"""

import argparse
import copy
import json
import pathlib
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def normalize(raw, stem):
    """Return {"benchmark", "meta", "metrics"} from either input schema."""
    if "benchmarks" in raw and "context" in raw:  # google-benchmark
        metrics = {}
        for entry in raw["benchmarks"]:
            if entry.get("run_type", "iteration") != "iteration":
                continue  # aggregates (mean/median) would double-count
            metrics[entry["name"]] = float(entry["real_time"])
        return {"benchmark": stem, "meta": {}, "metrics": metrics}
    if "metrics" in raw:  # flat JsonResultWriter schema
        return {
            "benchmark": raw.get("benchmark", stem),
            "meta": raw.get("meta", {}),
            "metrics": {k: float(v) for k, v in raw["metrics"].items()},
        }
    raise ValueError(f"{stem}: neither google-benchmark nor flat bench JSON")


def load_dir(directory):
    """All *.json files in a directory, normalised, keyed by file stem."""
    results = {}
    for path in sorted(pathlib.Path(directory).glob("*.json")):
        if path.name == "tolerances.json":
            continue
        try:
            results[path.stem] = normalize(load_json(path), path.stem)
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            raise ValueError(f"{path}: {error}") from error
    return results


def rule_for(tolerances, benchmark, metric):
    rule = dict(tolerances.get("defaults", {}))
    per_bench = tolerances.get("benchmarks", {}).get(benchmark, {})
    rule.update(per_bench.get("_default", {}))
    rule.update(per_bench.get(metric, {}))
    rule.setdefault("direction", "lower_is_better")
    rule.setdefault("max_regression_pct", None)
    rule.setdefault("required", False)
    return rule


def compare_metric(metric, base, new, rule):
    """Return a list of failure strings (empty = within tolerance)."""
    failures = []
    if rule.get("min_value") is not None and new < rule["min_value"]:
        failures.append(
            f"{metric}: value {new:g} below hard floor {rule['min_value']:g}")
    if rule.get("max_value") is not None and new > rule["max_value"]:
        failures.append(
            f"{metric}: value {new:g} above hard ceiling {rule['max_value']:g}")
    pct_band = rule["max_regression_pct"]
    if pct_band is not None and base > 0:
        if rule["direction"] == "higher_is_better":
            regression_pct = (base - new) / base * 100.0
        else:
            regression_pct = (new - base) / base * 100.0
        if regression_pct > pct_band:
            failures.append(
                f"{metric}: {base:g} -> {new:g} is a "
                f"{regression_pct:.1f}% regression "
                f"({rule['direction']}, band {pct_band:g}%)")
    return failures


def compare(baselines, results, tolerances, log=print):
    """Compare result sets; returns (failures, warnings) string lists."""
    failures, warnings = [], []
    for stem, baseline in sorted(baselines.items()):
        result = results.get(stem)
        if result is None:
            warnings.append(f"{stem}: no result file (bench not run?)")
            continue
        base_build = baseline["meta"].get("build_type")
        new_build = result["meta"].get("build_type")
        if base_build and new_build and base_build != new_build:
            failures.append(
                f"{stem}: refusing to compare build_type={new_build} "
                f"against a {base_build} baseline")
            continue
        checked = 0
        for metric, base_value in sorted(baseline["metrics"].items()):
            rule = rule_for(tolerances, baseline["benchmark"], metric)
            if metric not in result["metrics"]:
                message = f"{stem}: metric {metric} missing from results"
                (failures if rule["required"] else warnings).append(message)
                continue
            problems = compare_metric(metric, base_value,
                                      result["metrics"][metric], rule)
            failures.extend(f"{stem}: {p}" for p in problems)
            checked += 1
        for metric in sorted(set(result["metrics"]) - set(baseline["metrics"])):
            warnings.append(
                f"{stem}: new metric {metric} not in baseline "
                f"(run --update to adopt it)")
        log(f"  {stem}: {checked} metric(s) checked")
    for stem in sorted(set(results) - set(baselines)):
        warnings.append(
            f"{stem}: result has no baseline (run --update to adopt it)")
    return failures, warnings


def write_baselines(results, baseline_dir):
    baseline_dir = pathlib.Path(baseline_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for stem, result in sorted(results.items()):
        path = baseline_dir / f"{stem}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"  wrote {path} ({len(result['metrics'])} metric(s))")


def perturb(value, rule):
    """A value that must violate `rule`, or None if the rule cannot fail."""
    band = rule["max_regression_pct"]
    if band is not None and value > 0:
        factor = (band + 50.0) / 100.0
        if rule["direction"] == "higher_is_better":
            return value * max(1.0 - factor, 0.0) - 1e-9
        return value * (1.0 + factor)
    if rule.get("max_value") is not None:
        return rule["max_value"] + max(abs(rule["max_value"]), 1.0)
    if rule.get("min_value") is not None:
        return rule["min_value"] - max(abs(rule["min_value"]), 1.0)
    return None


def self_test(baselines, tolerances):
    """Perturb every checkable metric beyond tolerance; the gate must
    notice each one, and the unperturbed comparison must stay green."""
    clean_failures, _ = compare(baselines, copy.deepcopy(baselines),
                                tolerances, log=lambda *_: None)
    holes = []
    if clean_failures:
        holes.append("identity comparison is not clean: " +
                     "; ".join(clean_failures))
    tested = 0
    for stem, baseline in sorted(baselines.items()):
        for metric, value in sorted(baseline["metrics"].items()):
            rule = rule_for(tolerances, baseline["benchmark"], metric)
            bad_value = perturb(value, rule)
            if bad_value is None:
                continue  # metric has no band at all — nothing to enforce
            perturbed = copy.deepcopy(baselines)
            perturbed[stem]["metrics"][metric] = bad_value
            failures, _ = compare(baselines, perturbed, tolerances,
                                  log=lambda *_: None)
            tested += 1
            if not any(metric in failure for failure in failures):
                holes.append(
                    f"{stem}/{metric}: perturbation {value:g} -> "
                    f"{bad_value:g} was NOT caught")
    print(f"self-test: {tested} perturbation(s) injected across "
          f"{len(baselines)} baseline file(s)")
    if tested == 0:
        holes.append("no metric had an enforceable tolerance band")
    for hole in holes:
        print(f"  HOLE: {hole}")
    return not holes


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--results", default="bench-results",
                        help="directory of fresh bench JSON (default: "
                             "bench-results)")
    parser.add_argument("--baselines", default=str(repo_root / "bench/baselines"),
                        help="directory of committed baselines")
    parser.add_argument("--tolerances", default=None,
                        help="tolerance file (default: "
                             "<baselines>/tolerances.json)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from --results instead of "
                             "checking")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches out-of-band "
                             "perturbations of every baseline metric")
    args = parser.parse_args()

    tolerance_path = pathlib.Path(
        args.tolerances or pathlib.Path(args.baselines) / "tolerances.json")
    try:
        tolerances = load_json(tolerance_path) if tolerance_path.exists() else {}
        baselines = (load_dir(args.baselines)
                     if pathlib.Path(args.baselines).is_dir() else {})
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.self_test:
        if not baselines:
            print(f"error: no baselines in {args.baselines}", file=sys.stderr)
            return 2
        return 0 if self_test(baselines, tolerances) else 1

    try:
        results = load_dir(args.results)
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not results:
        print(f"error: no result JSON in {args.results}", file=sys.stderr)
        return 2

    if args.update:
        write_baselines(results, args.baselines)
        return 0

    if not baselines:
        print(f"error: no baselines in {args.baselines}; run with --update "
              f"to create them", file=sys.stderr)
        return 2
    print(f"comparing {len(results)} result file(s) against "
          f"{len(baselines)} baseline(s):")
    failures, warnings = compare(baselines, results, tolerances)
    for warning in warnings:
        print(f"warning: {warning}")
    if failures:
        print(f"\n{len(failures)} regression(s) outside tolerance:")
        for failure in failures:
            print(f"  FAIL: {failure}")
        return 1
    print("all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
