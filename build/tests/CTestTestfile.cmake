# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/dary_heap_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/click_log_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/weighting_test[1]_include.cmake")
include("/root/repo/build/tests/session_index_test[1]_include.cmake")
include("/root/repo/build/tests/vmis_knn_test[1]_include.cmake")
include("/root/repo/build/tests/variants_test[1]_include.cmake")
include("/root/repo/build/tests/index_format_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/neural_test[1]_include.cmake")
include("/root/repo/build/tests/session_store_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/serving_test[1]_include.cmake")
include("/root/repo/build/tests/benchutil_test[1]_include.cmake")
include("/root/repo/build/tests/compressed_index_test[1]_include.cmake")
include("/root/repo/build/tests/updatable_index_test[1]_include.cmake")
include("/root/repo/build/tests/narm_rules_test[1]_include.cmake")
include("/root/repo/build/tests/vmis_reference_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/vs_knn_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/logging_test[1]_include.cmake")
