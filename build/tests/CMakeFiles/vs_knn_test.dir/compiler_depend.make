# Empty compiler generated dependencies file for vs_knn_test.
# This may be replaced when dependencies are built.
