file(REMOVE_RECURSE
  "CMakeFiles/vs_knn_test.dir/vs_knn_test.cc.o"
  "CMakeFiles/vs_knn_test.dir/vs_knn_test.cc.o.d"
  "vs_knn_test"
  "vs_knn_test.pdb"
  "vs_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
