# Empty dependencies file for session_index_test.
# This may be replaced when dependencies are built.
