file(REMOVE_RECURSE
  "CMakeFiles/session_index_test.dir/session_index_test.cc.o"
  "CMakeFiles/session_index_test.dir/session_index_test.cc.o.d"
  "session_index_test"
  "session_index_test.pdb"
  "session_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
