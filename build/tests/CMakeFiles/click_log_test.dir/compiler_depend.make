# Empty compiler generated dependencies file for click_log_test.
# This may be replaced when dependencies are built.
