file(REMOVE_RECURSE
  "CMakeFiles/click_log_test.dir/click_log_test.cc.o"
  "CMakeFiles/click_log_test.dir/click_log_test.cc.o.d"
  "click_log_test"
  "click_log_test.pdb"
  "click_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/click_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
