file(REMOVE_RECURSE
  "CMakeFiles/index_format_test.dir/index_format_test.cc.o"
  "CMakeFiles/index_format_test.dir/index_format_test.cc.o.d"
  "index_format_test"
  "index_format_test.pdb"
  "index_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
