# Empty dependencies file for index_format_test.
# This may be replaced when dependencies are built.
