file(REMOVE_RECURSE
  "CMakeFiles/compressed_index_test.dir/compressed_index_test.cc.o"
  "CMakeFiles/compressed_index_test.dir/compressed_index_test.cc.o.d"
  "compressed_index_test"
  "compressed_index_test.pdb"
  "compressed_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
