# Empty dependencies file for compressed_index_test.
# This may be replaced when dependencies are built.
