file(REMOVE_RECURSE
  "CMakeFiles/vmis_reference_test.dir/vmis_reference_test.cc.o"
  "CMakeFiles/vmis_reference_test.dir/vmis_reference_test.cc.o.d"
  "vmis_reference_test"
  "vmis_reference_test.pdb"
  "vmis_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmis_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
