# Empty compiler generated dependencies file for vmis_reference_test.
# This may be replaced when dependencies are built.
