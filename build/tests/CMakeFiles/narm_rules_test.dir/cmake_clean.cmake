file(REMOVE_RECURSE
  "CMakeFiles/narm_rules_test.dir/narm_rules_test.cc.o"
  "CMakeFiles/narm_rules_test.dir/narm_rules_test.cc.o.d"
  "narm_rules_test"
  "narm_rules_test.pdb"
  "narm_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narm_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
