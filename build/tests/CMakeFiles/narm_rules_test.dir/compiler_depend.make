# Empty compiler generated dependencies file for narm_rules_test.
# This may be replaced when dependencies are built.
