# Empty dependencies file for neural_test.
# This may be replaced when dependencies are built.
