file(REMOVE_RECURSE
  "CMakeFiles/neural_test.dir/neural_test.cc.o"
  "CMakeFiles/neural_test.dir/neural_test.cc.o.d"
  "neural_test"
  "neural_test.pdb"
  "neural_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
