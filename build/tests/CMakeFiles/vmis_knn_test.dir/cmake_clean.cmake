file(REMOVE_RECURSE
  "CMakeFiles/vmis_knn_test.dir/vmis_knn_test.cc.o"
  "CMakeFiles/vmis_knn_test.dir/vmis_knn_test.cc.o.d"
  "vmis_knn_test"
  "vmis_knn_test.pdb"
  "vmis_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmis_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
