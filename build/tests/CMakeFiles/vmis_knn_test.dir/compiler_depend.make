# Empty compiler generated dependencies file for vmis_knn_test.
# This may be replaced when dependencies are built.
