# Empty dependencies file for updatable_index_test.
# This may be replaced when dependencies are built.
