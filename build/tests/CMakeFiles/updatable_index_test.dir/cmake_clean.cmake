file(REMOVE_RECURSE
  "CMakeFiles/updatable_index_test.dir/updatable_index_test.cc.o"
  "CMakeFiles/updatable_index_test.dir/updatable_index_test.cc.o.d"
  "updatable_index_test"
  "updatable_index_test.pdb"
  "updatable_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updatable_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
