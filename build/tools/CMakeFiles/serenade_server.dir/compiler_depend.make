# Empty compiler generated dependencies file for serenade_server.
# This may be replaced when dependencies are built.
