file(REMOVE_RECURSE
  "CMakeFiles/serenade_server.dir/serenade_server.cc.o"
  "CMakeFiles/serenade_server.dir/serenade_server.cc.o.d"
  "serenade_server"
  "serenade_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
