# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for serenade_build_index.
