file(REMOVE_RECURSE
  "CMakeFiles/serenade_build_index.dir/serenade_build_index.cc.o"
  "CMakeFiles/serenade_build_index.dir/serenade_build_index.cc.o.d"
  "serenade_build_index"
  "serenade_build_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_build_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
