# Empty dependencies file for serenade_build_index.
# This may be replaced when dependencies are built.
