# Empty compiler generated dependencies file for serenade_loadtest.
# This may be replaced when dependencies are built.
