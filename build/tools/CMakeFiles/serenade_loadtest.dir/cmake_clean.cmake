file(REMOVE_RECURSE
  "CMakeFiles/serenade_loadtest.dir/serenade_loadtest.cc.o"
  "CMakeFiles/serenade_loadtest.dir/serenade_loadtest.cc.o.d"
  "serenade_loadtest"
  "serenade_loadtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_loadtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
