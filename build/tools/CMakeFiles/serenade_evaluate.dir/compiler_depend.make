# Empty compiler generated dependencies file for serenade_evaluate.
# This may be replaced when dependencies are built.
