file(REMOVE_RECURSE
  "CMakeFiles/serenade_evaluate.dir/serenade_evaluate.cc.o"
  "CMakeFiles/serenade_evaluate.dir/serenade_evaluate.cc.o.d"
  "serenade_evaluate"
  "serenade_evaluate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_evaluate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
