file(REMOVE_RECURSE
  "libserenade_benchutil.a"
)
