# Empty compiler generated dependencies file for serenade_benchutil.
# This may be replaced when dependencies are built.
