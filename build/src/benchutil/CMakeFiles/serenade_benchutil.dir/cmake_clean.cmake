file(REMOVE_RECURSE
  "CMakeFiles/serenade_benchutil.dir/load_generator.cc.o"
  "CMakeFiles/serenade_benchutil.dir/load_generator.cc.o.d"
  "CMakeFiles/serenade_benchutil.dir/workload.cc.o"
  "CMakeFiles/serenade_benchutil.dir/workload.cc.o.d"
  "libserenade_benchutil.a"
  "libserenade_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
