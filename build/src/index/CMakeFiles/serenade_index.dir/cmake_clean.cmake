file(REMOVE_RECURSE
  "CMakeFiles/serenade_index.dir/index_builder.cc.o"
  "CMakeFiles/serenade_index.dir/index_builder.cc.o.d"
  "CMakeFiles/serenade_index.dir/index_format.cc.o"
  "CMakeFiles/serenade_index.dir/index_format.cc.o.d"
  "CMakeFiles/serenade_index.dir/updatable_index.cc.o"
  "CMakeFiles/serenade_index.dir/updatable_index.cc.o.d"
  "libserenade_index.a"
  "libserenade_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
