# Empty compiler generated dependencies file for serenade_index.
# This may be replaced when dependencies are built.
