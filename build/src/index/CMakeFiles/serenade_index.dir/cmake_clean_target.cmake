file(REMOVE_RECURSE
  "libserenade_index.a"
)
