file(REMOVE_RECURSE
  "CMakeFiles/serenade_core.dir/compressed_index.cc.o"
  "CMakeFiles/serenade_core.dir/compressed_index.cc.o.d"
  "CMakeFiles/serenade_core.dir/session_index.cc.o"
  "CMakeFiles/serenade_core.dir/session_index.cc.o.d"
  "CMakeFiles/serenade_core.dir/variants.cc.o"
  "CMakeFiles/serenade_core.dir/variants.cc.o.d"
  "CMakeFiles/serenade_core.dir/vmis_knn.cc.o"
  "CMakeFiles/serenade_core.dir/vmis_knn.cc.o.d"
  "CMakeFiles/serenade_core.dir/vs_knn.cc.o"
  "CMakeFiles/serenade_core.dir/vs_knn.cc.o.d"
  "CMakeFiles/serenade_core.dir/weighting.cc.o"
  "CMakeFiles/serenade_core.dir/weighting.cc.o.d"
  "libserenade_core.a"
  "libserenade_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
