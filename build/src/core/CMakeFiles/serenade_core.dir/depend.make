# Empty dependencies file for serenade_core.
# This may be replaced when dependencies are built.
