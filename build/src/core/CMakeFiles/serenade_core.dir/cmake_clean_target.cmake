file(REMOVE_RECURSE
  "libserenade_core.a"
)
