
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compressed_index.cc" "src/core/CMakeFiles/serenade_core.dir/compressed_index.cc.o" "gcc" "src/core/CMakeFiles/serenade_core.dir/compressed_index.cc.o.d"
  "/root/repo/src/core/session_index.cc" "src/core/CMakeFiles/serenade_core.dir/session_index.cc.o" "gcc" "src/core/CMakeFiles/serenade_core.dir/session_index.cc.o.d"
  "/root/repo/src/core/variants.cc" "src/core/CMakeFiles/serenade_core.dir/variants.cc.o" "gcc" "src/core/CMakeFiles/serenade_core.dir/variants.cc.o.d"
  "/root/repo/src/core/vmis_knn.cc" "src/core/CMakeFiles/serenade_core.dir/vmis_knn.cc.o" "gcc" "src/core/CMakeFiles/serenade_core.dir/vmis_knn.cc.o.d"
  "/root/repo/src/core/vs_knn.cc" "src/core/CMakeFiles/serenade_core.dir/vs_knn.cc.o" "gcc" "src/core/CMakeFiles/serenade_core.dir/vs_knn.cc.o.d"
  "/root/repo/src/core/weighting.cc" "src/core/CMakeFiles/serenade_core.dir/weighting.cc.o" "gcc" "src/core/CMakeFiles/serenade_core.dir/weighting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/serenade_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/serenade_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
