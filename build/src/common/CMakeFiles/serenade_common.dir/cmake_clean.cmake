file(REMOVE_RECURSE
  "CMakeFiles/serenade_common.dir/crc32.cc.o"
  "CMakeFiles/serenade_common.dir/crc32.cc.o.d"
  "CMakeFiles/serenade_common.dir/histogram.cc.o"
  "CMakeFiles/serenade_common.dir/histogram.cc.o.d"
  "CMakeFiles/serenade_common.dir/logging.cc.o"
  "CMakeFiles/serenade_common.dir/logging.cc.o.d"
  "CMakeFiles/serenade_common.dir/rng.cc.o"
  "CMakeFiles/serenade_common.dir/rng.cc.o.d"
  "CMakeFiles/serenade_common.dir/status.cc.o"
  "CMakeFiles/serenade_common.dir/status.cc.o.d"
  "CMakeFiles/serenade_common.dir/thread_pool.cc.o"
  "CMakeFiles/serenade_common.dir/thread_pool.cc.o.d"
  "libserenade_common.a"
  "libserenade_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
