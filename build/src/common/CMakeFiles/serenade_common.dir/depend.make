# Empty dependencies file for serenade_common.
# This may be replaced when dependencies are built.
