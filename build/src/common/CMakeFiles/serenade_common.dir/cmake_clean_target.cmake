file(REMOVE_RECURSE
  "libserenade_common.a"
)
