# Empty compiler generated dependencies file for serenade_eval.
# This may be replaced when dependencies are built.
