file(REMOVE_RECURSE
  "libserenade_eval.a"
)
