file(REMOVE_RECURSE
  "CMakeFiles/serenade_eval.dir/evaluator.cc.o"
  "CMakeFiles/serenade_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/serenade_eval.dir/grid_search.cc.o"
  "CMakeFiles/serenade_eval.dir/grid_search.cc.o.d"
  "CMakeFiles/serenade_eval.dir/metrics.cc.o"
  "CMakeFiles/serenade_eval.dir/metrics.cc.o.d"
  "libserenade_eval.a"
  "libserenade_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
