file(REMOVE_RECURSE
  "libserenade_data.a"
)
