file(REMOVE_RECURSE
  "CMakeFiles/serenade_data.dir/click_log.cc.o"
  "CMakeFiles/serenade_data.dir/click_log.cc.o.d"
  "CMakeFiles/serenade_data.dir/csv.cc.o"
  "CMakeFiles/serenade_data.dir/csv.cc.o.d"
  "CMakeFiles/serenade_data.dir/split.cc.o"
  "CMakeFiles/serenade_data.dir/split.cc.o.d"
  "CMakeFiles/serenade_data.dir/stats.cc.o"
  "CMakeFiles/serenade_data.dir/stats.cc.o.d"
  "CMakeFiles/serenade_data.dir/synthetic.cc.o"
  "CMakeFiles/serenade_data.dir/synthetic.cc.o.d"
  "libserenade_data.a"
  "libserenade_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
