# Empty compiler generated dependencies file for serenade_data.
# This may be replaced when dependencies are built.
