file(REMOVE_RECURSE
  "CMakeFiles/serenade_baselines.dir/gru4rec.cc.o"
  "CMakeFiles/serenade_baselines.dir/gru4rec.cc.o.d"
  "CMakeFiles/serenade_baselines.dir/item_knn.cc.o"
  "CMakeFiles/serenade_baselines.dir/item_knn.cc.o.d"
  "CMakeFiles/serenade_baselines.dir/narm.cc.o"
  "CMakeFiles/serenade_baselines.dir/narm.cc.o.d"
  "CMakeFiles/serenade_baselines.dir/nn.cc.o"
  "CMakeFiles/serenade_baselines.dir/nn.cc.o.d"
  "CMakeFiles/serenade_baselines.dir/popularity.cc.o"
  "CMakeFiles/serenade_baselines.dir/popularity.cc.o.d"
  "CMakeFiles/serenade_baselines.dir/rules.cc.o"
  "CMakeFiles/serenade_baselines.dir/rules.cc.o.d"
  "CMakeFiles/serenade_baselines.dir/stamp.cc.o"
  "CMakeFiles/serenade_baselines.dir/stamp.cc.o.d"
  "libserenade_baselines.a"
  "libserenade_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
