# Empty compiler generated dependencies file for serenade_baselines.
# This may be replaced when dependencies are built.
