
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gru4rec.cc" "src/baselines/CMakeFiles/serenade_baselines.dir/gru4rec.cc.o" "gcc" "src/baselines/CMakeFiles/serenade_baselines.dir/gru4rec.cc.o.d"
  "/root/repo/src/baselines/item_knn.cc" "src/baselines/CMakeFiles/serenade_baselines.dir/item_knn.cc.o" "gcc" "src/baselines/CMakeFiles/serenade_baselines.dir/item_knn.cc.o.d"
  "/root/repo/src/baselines/narm.cc" "src/baselines/CMakeFiles/serenade_baselines.dir/narm.cc.o" "gcc" "src/baselines/CMakeFiles/serenade_baselines.dir/narm.cc.o.d"
  "/root/repo/src/baselines/nn.cc" "src/baselines/CMakeFiles/serenade_baselines.dir/nn.cc.o" "gcc" "src/baselines/CMakeFiles/serenade_baselines.dir/nn.cc.o.d"
  "/root/repo/src/baselines/popularity.cc" "src/baselines/CMakeFiles/serenade_baselines.dir/popularity.cc.o" "gcc" "src/baselines/CMakeFiles/serenade_baselines.dir/popularity.cc.o.d"
  "/root/repo/src/baselines/rules.cc" "src/baselines/CMakeFiles/serenade_baselines.dir/rules.cc.o" "gcc" "src/baselines/CMakeFiles/serenade_baselines.dir/rules.cc.o.d"
  "/root/repo/src/baselines/stamp.cc" "src/baselines/CMakeFiles/serenade_baselines.dir/stamp.cc.o" "gcc" "src/baselines/CMakeFiles/serenade_baselines.dir/stamp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/serenade_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/serenade_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/serenade_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
