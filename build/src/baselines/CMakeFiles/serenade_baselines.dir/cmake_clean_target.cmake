file(REMOVE_RECURSE
  "libserenade_baselines.a"
)
