file(REMOVE_RECURSE
  "CMakeFiles/serenade_serving.dir/business_rules.cc.o"
  "CMakeFiles/serenade_serving.dir/business_rules.cc.o.d"
  "CMakeFiles/serenade_serving.dir/http.cc.o"
  "CMakeFiles/serenade_serving.dir/http.cc.o.d"
  "CMakeFiles/serenade_serving.dir/json.cc.o"
  "CMakeFiles/serenade_serving.dir/json.cc.o.d"
  "CMakeFiles/serenade_serving.dir/router.cc.o"
  "CMakeFiles/serenade_serving.dir/router.cc.o.d"
  "CMakeFiles/serenade_serving.dir/server.cc.o"
  "CMakeFiles/serenade_serving.dir/server.cc.o.d"
  "CMakeFiles/serenade_serving.dir/service.cc.o"
  "CMakeFiles/serenade_serving.dir/service.cc.o.d"
  "libserenade_serving.a"
  "libserenade_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
