
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serving/business_rules.cc" "src/serving/CMakeFiles/serenade_serving.dir/business_rules.cc.o" "gcc" "src/serving/CMakeFiles/serenade_serving.dir/business_rules.cc.o.d"
  "/root/repo/src/serving/http.cc" "src/serving/CMakeFiles/serenade_serving.dir/http.cc.o" "gcc" "src/serving/CMakeFiles/serenade_serving.dir/http.cc.o.d"
  "/root/repo/src/serving/json.cc" "src/serving/CMakeFiles/serenade_serving.dir/json.cc.o" "gcc" "src/serving/CMakeFiles/serenade_serving.dir/json.cc.o.d"
  "/root/repo/src/serving/router.cc" "src/serving/CMakeFiles/serenade_serving.dir/router.cc.o" "gcc" "src/serving/CMakeFiles/serenade_serving.dir/router.cc.o.d"
  "/root/repo/src/serving/server.cc" "src/serving/CMakeFiles/serenade_serving.dir/server.cc.o" "gcc" "src/serving/CMakeFiles/serenade_serving.dir/server.cc.o.d"
  "/root/repo/src/serving/service.cc" "src/serving/CMakeFiles/serenade_serving.dir/service.cc.o" "gcc" "src/serving/CMakeFiles/serenade_serving.dir/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/serenade_core.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/serenade_store.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/serenade_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/serenade_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
