# Empty dependencies file for serenade_serving.
# This may be replaced when dependencies are built.
