file(REMOVE_RECURSE
  "libserenade_serving.a"
)
