# Empty dependencies file for serenade_store.
# This may be replaced when dependencies are built.
