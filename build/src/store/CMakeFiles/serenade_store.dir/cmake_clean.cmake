file(REMOVE_RECURSE
  "CMakeFiles/serenade_store.dir/session_store.cc.o"
  "CMakeFiles/serenade_store.dir/session_store.cc.o.d"
  "CMakeFiles/serenade_store.dir/wal.cc.o"
  "CMakeFiles/serenade_store.dir/wal.cc.o.d"
  "libserenade_store.a"
  "libserenade_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serenade_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
