file(REMOVE_RECURSE
  "libserenade_store.a"
)
