file(REMOVE_RECURSE
  "CMakeFiles/incremental_and_compressed.dir/incremental_and_compressed.cc.o"
  "CMakeFiles/incremental_and_compressed.dir/incremental_and_compressed.cc.o.d"
  "incremental_and_compressed"
  "incremental_and_compressed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_and_compressed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
