# Empty compiler generated dependencies file for incremental_and_compressed.
# This may be replaced when dependencies are built.
