file(REMOVE_RECURSE
  "CMakeFiles/grid_search_tuning.dir/grid_search_tuning.cc.o"
  "CMakeFiles/grid_search_tuning.dir/grid_search_tuning.cc.o.d"
  "grid_search_tuning"
  "grid_search_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_search_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
