# Empty compiler generated dependencies file for grid_search_tuning.
# This may be replaced when dependencies are built.
