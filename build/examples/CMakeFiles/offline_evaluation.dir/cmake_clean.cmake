file(REMOVE_RECURSE
  "CMakeFiles/offline_evaluation.dir/offline_evaluation.cc.o"
  "CMakeFiles/offline_evaluation.dir/offline_evaluation.cc.o.d"
  "offline_evaluation"
  "offline_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
