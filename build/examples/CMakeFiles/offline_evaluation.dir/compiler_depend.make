# Empty compiler generated dependencies file for offline_evaluation.
# This may be replaced when dependencies are built.
