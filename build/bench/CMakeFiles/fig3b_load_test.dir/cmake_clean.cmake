file(REMOVE_RECURSE
  "CMakeFiles/fig3b_load_test.dir/fig3b_load_test.cc.o"
  "CMakeFiles/fig3b_load_test.dir/fig3b_load_test.cc.o.d"
  "fig3b_load_test"
  "fig3b_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
