# Empty dependencies file for fig3b_load_test.
# This may be replaced when dependencies are built.
