# Empty compiler generated dependencies file for fig3c_ab_test.
# This may be replaced when dependencies are built.
