file(REMOVE_RECURSE
  "CMakeFiles/fig3c_ab_test.dir/fig3c_ab_test.cc.o"
  "CMakeFiles/fig3c_ab_test.dir/fig3c_ab_test.cc.o.d"
  "fig3c_ab_test"
  "fig3c_ab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_ab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
