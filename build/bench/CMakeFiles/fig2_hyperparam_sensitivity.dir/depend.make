# Empty dependencies file for fig2_hyperparam_sensitivity.
# This may be replaced when dependencies are built.
