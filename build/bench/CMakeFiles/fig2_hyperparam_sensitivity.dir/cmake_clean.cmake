file(REMOVE_RECURSE
  "CMakeFiles/fig2_hyperparam_sensitivity.dir/fig2_hyperparam_sensitivity.cc.o"
  "CMakeFiles/fig2_hyperparam_sensitivity.dir/fig2_hyperparam_sensitivity.cc.o.d"
  "fig2_hyperparam_sensitivity"
  "fig2_hyperparam_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hyperparam_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
