# Empty dependencies file for table2_prediction_quality.
# This may be replaced when dependencies are built.
