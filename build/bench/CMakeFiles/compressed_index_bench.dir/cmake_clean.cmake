file(REMOVE_RECURSE
  "CMakeFiles/compressed_index_bench.dir/compressed_index_bench.cc.o"
  "CMakeFiles/compressed_index_bench.dir/compressed_index_bench.cc.o.d"
  "compressed_index_bench"
  "compressed_index_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_index_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
