# Empty compiler generated dependencies file for compressed_index_bench.
# This may be replaced when dependencies are built.
