# Empty compiler generated dependencies file for fig3a_microbenchmark.
# This may be replaced when dependencies are built.
