file(REMOVE_RECURSE
  "CMakeFiles/fig3a_microbenchmark.dir/fig3a_microbenchmark.cc.o"
  "CMakeFiles/fig3a_microbenchmark.dir/fig3a_microbenchmark.cc.o.d"
  "fig3a_microbenchmark"
  "fig3a_microbenchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_microbenchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
