file(REMOVE_RECURSE
  "CMakeFiles/complexity_validation_bench.dir/complexity_validation_bench.cc.o"
  "CMakeFiles/complexity_validation_bench.dir/complexity_validation_bench.cc.o.d"
  "complexity_validation_bench"
  "complexity_validation_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_validation_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
