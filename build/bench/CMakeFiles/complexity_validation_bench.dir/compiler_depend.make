# Empty compiler generated dependencies file for complexity_validation_bench.
# This may be replaced when dependencies are built.
