# Empty dependencies file for fig3a_impl_comparison.
# This may be replaced when dependencies are built.
