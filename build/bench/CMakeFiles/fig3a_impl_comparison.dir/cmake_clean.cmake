file(REMOVE_RECURSE
  "CMakeFiles/fig3a_impl_comparison.dir/fig3a_impl_comparison.cc.o"
  "CMakeFiles/fig3a_impl_comparison.dir/fig3a_impl_comparison.cc.o.d"
  "fig3a_impl_comparison"
  "fig3a_impl_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_impl_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
