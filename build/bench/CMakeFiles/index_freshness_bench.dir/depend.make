# Empty dependencies file for index_freshness_bench.
# This may be replaced when dependencies are built.
