file(REMOVE_RECURSE
  "CMakeFiles/index_freshness_bench.dir/index_freshness_bench.cc.o"
  "CMakeFiles/index_freshness_bench.dir/index_freshness_bench.cc.o.d"
  "index_freshness_bench"
  "index_freshness_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_freshness_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
