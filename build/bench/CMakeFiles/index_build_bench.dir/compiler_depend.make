# Empty compiler generated dependencies file for index_build_bench.
# This may be replaced when dependencies are built.
