file(REMOVE_RECURSE
  "CMakeFiles/index_build_bench.dir/index_build_bench.cc.o"
  "CMakeFiles/index_build_bench.dir/index_build_bench.cc.o.d"
  "index_build_bench"
  "index_build_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_build_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
