file(REMOVE_RECURSE
  "CMakeFiles/store_microbenchmark.dir/store_microbenchmark.cc.o"
  "CMakeFiles/store_microbenchmark.dir/store_microbenchmark.cc.o.d"
  "store_microbenchmark"
  "store_microbenchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_microbenchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
