# Empty compiler generated dependencies file for store_microbenchmark.
# This may be replaced when dependencies are built.
