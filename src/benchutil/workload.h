// Request workload synthesis for the load-test (Figure 3(b)) and A/B
// replay (Figure 3(c)) benchmarks: turns test sessions into a time-stamped
// open-loop request schedule following a configurable requests-per-second
// profile (constant, ramp, or diurnal).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "data/click_log.h"

namespace serenade {

/// One scheduled request: send at `due_micros` (relative to test start).
struct LoadEvent {
  uint64_t due_micros = 0;
  std::string session_key;
  ItemId item = kInvalidItem;
  bool consent = true;
};

/// Requests-per-second profile sampled per second of test time.
class RateProfile {
 public:
  /// Constant rate.
  static RateProfile Constant(double rps);
  /// Linear ramp from `from_rps` to `to_rps` over the duration.
  static RateProfile Ramp(double from_rps, double to_rps);
  /// Scaled diurnal curve (Figure 3(c)): oscillates between min and max
  /// with `cycles` full days compressed into the test duration.
  static RateProfile Diurnal(double min_rps, double max_rps, double cycles);

  /// Rate at a fraction [0, 1] of the test duration.
  double RateAt(double fraction) const;

 private:
  enum class Kind { kConstant, kRamp, kDiurnal };
  Kind kind_ = Kind::kConstant;
  double a_ = 0.0, b_ = 0.0, cycles_ = 1.0;
};

struct WorkloadOptions {
  double duration_seconds = 30.0;
  /// Fraction of requests with the consent flag off (depersonalised).
  double no_consent_fraction = 0.02;
  uint64_t seed = 1;
};

/// Builds an open-loop schedule by replaying the given sessions' clicks
/// (each test session becomes one simulated visitor whose clicks are
/// spread over the test). Events are ordered by due time; session clicks
/// preserve their relative order.
std::vector<LoadEvent> BuildWorkload(const Dataset& sessions,
                                     const RateProfile& profile,
                                     const WorkloadOptions& options);

}  // namespace serenade
