#include "benchutil/workload.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace serenade {

RateProfile RateProfile::Constant(double rps) {
  RateProfile profile;
  profile.kind_ = Kind::kConstant;
  profile.a_ = rps;
  return profile;
}

RateProfile RateProfile::Ramp(double from_rps, double to_rps) {
  RateProfile profile;
  profile.kind_ = Kind::kRamp;
  profile.a_ = from_rps;
  profile.b_ = to_rps;
  return profile;
}

RateProfile RateProfile::Diurnal(double min_rps, double max_rps,
                                 double cycles) {
  RateProfile profile;
  profile.kind_ = Kind::kDiurnal;
  profile.a_ = min_rps;
  profile.b_ = max_rps;
  profile.cycles_ = cycles;
  return profile;
}

double RateProfile::RateAt(double fraction) const {
  switch (kind_) {
    case Kind::kConstant:
      return a_;
    case Kind::kRamp:
      return a_ + (b_ - a_) * fraction;
    case Kind::kDiurnal: {
      // Smooth day curve: deep trough at "night", evening peak, matching
      // the 200-600 rps oscillation of Figure 3(c).
      const double phase = fraction * cycles_ * 2.0 * M_PI;
      const double wave = 0.5 * (1.0 - std::cos(phase));  // 0..1
      return a_ + (b_ - a_) * (wave * wave * (3 - 2 * wave));  // smoothstep
    }
  }
  return a_;
}

std::vector<LoadEvent> BuildWorkload(const Dataset& sessions,
                                     const RateProfile& profile,
                                     const WorkloadOptions& options) {
  assert(options.duration_seconds > 0);
  Rng rng(options.seed);
  const auto& all_sessions = sessions.sessions();
  std::vector<LoadEvent> events;
  if (all_sessions.empty()) return events;

  // Sliding pool of concurrently active visitors. Each emitted request is
  // the next click of a random pooled visitor, so one visitor's clicks
  // stay in order and are spread over a realistic time window.
  struct ActiveVisitor {
    size_t session_index;
    size_t position;
    uint32_t generation;
  };
  const size_t pool_size = std::min<size_t>(
      256, std::max<size_t>(8, all_sessions.size() / 4));
  std::vector<ActiveVisitor> pool;
  size_t next_session = 0;
  uint32_t generation = 0;

  auto refill = [&]() -> ActiveVisitor {
    if (next_session >= all_sessions.size()) {
      next_session = 0;
      ++generation;  // reuse sessions under fresh visitor keys
    }
    return ActiveVisitor{next_session++, 0, generation};
  };
  for (size_t i = 0; i < pool_size; ++i) pool.push_back(refill());

  // Open-loop schedule: walk time in 1ms steps, accumulating fractional
  // expected arrivals from the rate profile.
  const double step_seconds = 0.001;
  double pending = 0.0;
  for (double t = 0.0; t < options.duration_seconds; t += step_seconds) {
    pending += profile.RateAt(t / options.duration_seconds) * step_seconds;
    while (pending >= 1.0) {
      pending -= 1.0;
      ActiveVisitor& visitor = pool[rng.Below(pool.size())];
      const SessionData& session = all_sessions[visitor.session_index];

      LoadEvent event;
      event.due_micros = static_cast<uint64_t>(
          (t + rng.NextDouble() * step_seconds) * 1e6);
      event.session_key = "v" + std::to_string(visitor.session_index) + "-" +
                          std::to_string(visitor.generation);
      event.item = session.items[visitor.position];
      event.consent = !rng.Bernoulli(options.no_consent_fraction);
      events.push_back(std::move(event));

      if (++visitor.position >= session.items.size()) {
        visitor = refill();
      }
    }
  }
  return events;
}

}  // namespace serenade
