// Open-loop HTTP load generator ("we generate a simulated load ... by
// replaying historical traffic via a load generator application",
// Section 5.2.2) plus process CPU-usage sampling for the core-usage plot
// of Figure 3(b).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "benchutil/workload.h"

namespace serenade {

/// Aggregated measurements for one wall-clock bucket of the run.
struct LoadBucket {
  double start_seconds = 0.0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  Histogram latency_micros;
  /// Process-wide CPU usage during the bucket, in percent of one core
  /// (e.g. 250 = 2.5 cores busy). Covers servers + client threads when
  /// they share the process; see the bench output notes.
  double core_usage_percent = 0.0;
};

struct LoadGeneratorOptions {
  /// Parallel keep-alive connections per serving port.
  size_t connections_per_server = 8;
  /// Measurement bucket width.
  double bucket_seconds = 1.0;
  /// Speed-up factor applied to event due-times (2 = replay twice as fast).
  double time_compression = 1.0;
};

struct LoadResult {
  double bucket_seconds = 1.0;
  std::vector<LoadBucket> buckets;
  Histogram total_latency_micros;
  uint64_t total_requests = 0;
  uint64_t total_errors = 0;
  double wall_seconds = 0.0;

  /// Renders the per-bucket table (rps, core%, p75/p90/p99.5 ms).
  std::string FormatTable() const;
};

/// Runs the schedule against the given serving ports. Events are routed
/// by sticky session hash across the ports; each worker connection sends
/// its events at their scheduled times (open loop: a slow response delays
/// only that connection's queue, mimicking independent frontends).
LoadResult RunLoad(const std::vector<LoadEvent>& events,
                   const std::vector<uint16_t>& server_ports,
                   const LoadGeneratorOptions& options);

/// Total process CPU time (user + system) in seconds.
double ProcessCpuSeconds();

}  // namespace serenade
