#include "benchutil/load_generator.h"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/stopwatch.h"
#include "serving/http.h"
#include "serving/router.h"

namespace serenade {

double ProcessCpuSeconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

std::string LoadResult::FormatTable() const {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof(line), "%8s %8s %7s %9s %9s %9s %7s\n", "t(s)",
                "rps", "core%", "p75(ms)", "p90(ms)", "p99.5(ms)", "errors");
  out += line;
  for (const LoadBucket& bucket : buckets) {
    std::snprintf(
        line, sizeof(line), "%8.1f %8.0f %7.0f %9.2f %9.2f %9.2f %7llu\n",
        bucket.start_seconds,
        static_cast<double>(bucket.requests) / bucket_seconds,
        bucket.core_usage_percent,
        bucket.latency_micros.Percentile(0.75) / 1000.0,
        bucket.latency_micros.Percentile(0.90) / 1000.0,
        bucket.latency_micros.Percentile(0.995) / 1000.0,
        static_cast<unsigned long long>(bucket.errors));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %llu requests, %llu errors, overall p90 = %.2f ms, "
                "p99.5 = %.2f ms\n",
                static_cast<unsigned long long>(total_requests),
                static_cast<unsigned long long>(total_errors),
                total_latency_micros.Percentile(0.90) / 1000.0,
                total_latency_micros.Percentile(0.995) / 1000.0);
  out += line;
  return out;
}

LoadResult RunLoad(const std::vector<LoadEvent>& events,
                   const std::vector<uint16_t>& server_ports,
                   const LoadGeneratorOptions& options) {
  LoadResult result;
  result.bucket_seconds = options.bucket_seconds;
  if (events.empty() || server_ports.empty()) return result;

  const StickySessionRouter router(server_ports.size());
  const size_t num_workers =
      server_ports.size() * options.connections_per_server;

  // Partition events per worker: sticky routing fixes the server; within
  // a server, a session is pinned to one connection (hash), so each
  // session's requests stay ordered.
  std::vector<std::vector<const LoadEvent*>> per_worker(num_workers);
  for (const LoadEvent& event : events) {
    const size_t server = router.ServerFor(event.session_key);
    const size_t lane =
        std::hash<std::string>{}(event.session_key) %
        options.connections_per_server;
    per_worker[server * options.connections_per_server + lane].push_back(
        &event);
  }

  const size_t num_buckets = static_cast<size_t>(
      events.back().due_micros / options.time_compression / 1e6 /
          options.bucket_seconds) +
      2;
  struct BucketAccumulator {
    std::mutex mutex;
    Histogram latency;
    uint64_t requests = 0;
    uint64_t errors = 0;
  };
  std::vector<BucketAccumulator> buckets(num_buckets);

  // CPU sampling thread.
  std::vector<double> cpu_per_bucket(num_buckets, 0.0);
  std::atomic<bool> done{false};
  Stopwatch clock;
  std::thread cpu_sampler([&] {
    double last_cpu = ProcessCpuSeconds();
    double last_wall = clock.ElapsedSeconds();
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<int>(options.bucket_seconds * 1000)));
      const double now_cpu = ProcessCpuSeconds();
      const double now_wall = clock.ElapsedSeconds();
      const size_t bucket = std::min(
          num_buckets - 1,
          static_cast<size_t>(last_wall / options.bucket_seconds));
      cpu_per_bucket[bucket] =
          100.0 * (now_cpu - last_cpu) / (now_wall - last_wall);
      last_cpu = now_cpu;
      last_wall = now_wall;
    }
  });

  auto worker_fn = [&](size_t worker_index) {
    const uint16_t port =
        server_ports[worker_index / options.connections_per_server];
    HttpClient client;
    if (!client.Connect(port).ok()) return;
    for (const LoadEvent* event : per_worker[worker_index]) {
      const uint64_t due =
          static_cast<uint64_t>(event->due_micros / options.time_compression);
      while (clock.ElapsedMicros() < due) {
        const uint64_t remaining = due - clock.ElapsedMicros();
        std::this_thread::sleep_for(
            std::chrono::microseconds(std::min<uint64_t>(remaining, 2000)));
      }
      const uint64_t sent_at = clock.ElapsedMicros();
      auto response = client.Get(
          "/recommend?session_id=" + event->session_key +
          "&item_id=" + std::to_string(event->item) +
          (event->consent ? "" : "&consent=false"));
      const uint64_t latency = clock.ElapsedMicros() - sent_at;

      const size_t bucket = std::min(
          num_buckets - 1,
          static_cast<size_t>(static_cast<double>(sent_at) / 1e6 /
                              options.bucket_seconds));
      std::lock_guard<std::mutex> lock(buckets[bucket].mutex);
      ++buckets[bucket].requests;
      if (!response.ok() || response->status != 200) {
        ++buckets[bucket].errors;
      } else {
        buckets[bucket].latency.Record(latency);
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) workers.emplace_back(worker_fn, w);
  for (auto& worker : workers) worker.join();
  done.store(true);
  cpu_sampler.join();
  result.wall_seconds = clock.ElapsedSeconds();

  for (size_t b = 0; b < num_buckets; ++b) {
    LoadBucket bucket;
    bucket.start_seconds = static_cast<double>(b) * options.bucket_seconds;
    bucket.requests = buckets[b].requests;
    bucket.errors = buckets[b].errors;
    bucket.latency_micros = buckets[b].latency;
    bucket.core_usage_percent = cpu_per_bucket[b];
    result.total_requests += bucket.requests;
    result.total_errors += bucket.errors;
    result.total_latency_micros.Merge(bucket.latency_micros);
    if (bucket.requests > 0) result.buckets.push_back(std::move(bucket));
  }
  return result;
}

}  // namespace serenade
