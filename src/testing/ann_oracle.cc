#include "testing/ann_oracle.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace serenade {

namespace {

void NormalizeVector(std::vector<float>* v) {
  float norm_sq = 0.0f;
  for (float x : *v) norm_sq += x * x;
  if (norm_sq <= 0.0f) return;
  const float inv = 1.0f / std::sqrt(norm_sq);
  for (float& x : *v) x *= inv;
}

double QueryRecall(const HnswIndex& ann, const ItemEmbeddings& embeddings,
                   const std::vector<float>& query, size_t k, bool mutate) {
  const std::vector<ScoredItem> exact =
      ExactNearest(embeddings, query.data(), k);
  std::vector<ScoredItem> approx = ann.Search(query.data(), k);
  if (mutate) {
    // Self-check sabotage: throw away half the approximate answer. The
    // harness must notice, or a recall gate that can never fire would
    // pass silently forever.
    approx.resize(approx.size() / 2);
  }
  if (exact.empty()) return 1.0;
  std::vector<char> hit(embeddings.num_items, 0);
  for (const ScoredItem& s : approx) hit[s.item] = 1;
  size_t covered = 0;
  for (const ScoredItem& s : exact) covered += hit[s.item];
  return static_cast<double>(covered) / static_cast<double>(exact.size());
}

}  // namespace

AnnCase GenerateAnnCase(const AnnOracleSpec& spec, Rng* rng) {
  AnnCase c;
  c.k = spec.k;
  c.hnsw = spec.hnsw;
  c.hnsw.seed = rng->Next();

  const size_t num_items =
      spec.min_items + rng->Below(spec.max_items - spec.min_items + 1);
  const size_t dim = spec.min_dim + rng->Below(spec.max_dim - spec.min_dim + 1);
  c.embeddings.num_items = num_items;
  c.embeddings.dim = dim;
  c.embeddings.values.resize(num_items * dim);

  // Clustered corpus: a handful of centroids with Gaussian spread, the
  // shape item2vec actually produces over the synthetic generator's
  // interest clusters.
  const size_t num_clusters = 1 + rng->Below(8);
  std::vector<std::vector<float>> centroids(num_clusters,
                                            std::vector<float>(dim));
  for (auto& centroid : centroids) {
    for (float& x : centroid) x = static_cast<float>(rng->Gaussian(0.0, 1.0));
    NormalizeVector(&centroid);
  }
  for (size_t i = 0; i < num_items; ++i) {
    const auto& centroid = centroids[rng->Below(num_clusters)];
    float* row = c.embeddings.MutableRow(i);
    for (size_t d = 0; d < dim; ++d) {
      row[d] = centroid[d] + 0.3f * static_cast<float>(rng->Gaussian(0.0, 1.0));
    }
  }
  NormalizeRows(&c.embeddings);

  c.queries.resize(spec.num_queries);
  for (size_t q = 0; q < spec.num_queries; ++q) {
    auto& query = c.queries[q];
    query.resize(dim);
    if (q % 2 == 0) {
      // Near a cluster, like a session query vector.
      const auto& centroid = centroids[rng->Below(num_clusters)];
      for (size_t d = 0; d < dim; ++d) {
        query[d] = centroid[d] + 0.3f * static_cast<float>(rng->Gaussian(0.0, 1.0));
      }
    } else {
      for (float& x : query) x = static_cast<float>(rng->Gaussian(0.0, 1.0));
    }
    NormalizeVector(&query);
  }
  return c;
}

std::optional<AnnViolation> CheckAnnCase(const AnnCase& c, double min_recall,
                                         bool mutate) {
  const HnswIndex ann(&c.embeddings, c.hnsw);
  AnnViolation v;
  v.worst_recall = 1.0;
  double sum = 0.0;
  for (size_t q = 0; q < c.queries.size(); ++q) {
    const double recall =
        QueryRecall(ann, c.embeddings, c.queries[q], c.k, mutate);
    sum += recall;
    if (recall < v.worst_recall) {
      v.worst_recall = recall;
      v.worst_query = q;
    }
  }
  v.mean_recall =
      c.queries.empty() ? 1.0 : sum / static_cast<double>(c.queries.size());
  if (v.mean_recall >= min_recall) return std::nullopt;
  return v;
}

AnnCase ShrinkAnnCase(const AnnCase& c, double min_recall) {
  AnnCase current = c;
  bool progress = true;
  while (progress) {
    progress = false;
    // Drop one query at a time.
    for (size_t q = 0; q < current.queries.size();) {
      AnnCase candidate = current;
      candidate.queries.erase(candidate.queries.begin() + q);
      if (!candidate.queries.empty() &&
          CheckAnnCase(candidate, min_recall).has_value()) {
        current = std::move(candidate);
        progress = true;
      } else {
        ++q;
      }
    }
    // Halve the corpus tail (keeps item ids dense; exact and approximate
    // arms are recomputed from scratch on the smaller corpus).
    while (current.embeddings.num_items > 8) {
      AnnCase candidate = current;
      const size_t keep = candidate.embeddings.num_items / 2;
      candidate.embeddings.num_items = keep;
      candidate.embeddings.values.resize(keep * candidate.embeddings.dim);
      if (CheckAnnCase(candidate, min_recall).has_value()) {
        current = std::move(candidate);
        progress = true;
      } else {
        break;
      }
    }
  }
  return current;
}

std::string FormatAnnReproducer(const AnnCase& c, uint64_t seed,
                                const AnnViolation& violation) {
  std::ostringstream out;
  out << "ANN oracle violation (replays deterministically):\n"
      << "  seed=" << seed << "\n"
      << "  corpus: num_items=" << c.embeddings.num_items
      << " dim=" << c.embeddings.dim << " queries=" << c.queries.size()
      << " k=" << c.k << "\n"
      << "  hnsw: M=" << c.hnsw.M
      << " ef_construction=" << c.hnsw.ef_construction
      << " ef_search=" << c.hnsw.ef_search << " seed=" << c.hnsw.seed << "\n"
      << "  mean_recall=" << violation.mean_recall
      << " worst_query=" << violation.worst_query
      << " worst_recall=" << violation.worst_recall << "\n"
      << "  replay: AnnCase c = GenerateAnnCase(spec, &rng) with "
         "Rng rng(seed); CheckAnnCase(c, spec.min_recall);";
  return out.str();
}

std::optional<std::string> RunAnnFuzz(const AnnOracleSpec& spec,
                                      uint64_t base_seed, size_t num_cases,
                                      AnnFuzzStats* stats) {
  for (size_t i = 0; i < num_cases; ++i) {
    const uint64_t seed = base_seed + i;
    Rng rng(seed);
    const AnnCase c = GenerateAnnCase(spec, &rng);
    if (stats != nullptr) {
      ++stats->cases;
      stats->queries += c.queries.size();
      stats->items += c.embeddings.num_items;
    }
    if (auto violation = CheckAnnCase(c, spec.min_recall)) {
      const AnnCase shrunk = ShrinkAnnCase(c, spec.min_recall);
      const auto shrunk_violation = CheckAnnCase(shrunk, spec.min_recall);
      return FormatAnnReproducer(
          shrunk, seed, shrunk_violation.value_or(*violation));
    }
  }
  return std::nullopt;
}

}  // namespace serenade
