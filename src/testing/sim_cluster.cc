#include "testing/sim_cluster.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "data/synthetic.h"
#include "index/embedding_store.h"
#include "serving/service.h"

namespace serenade {

StatusOr<std::unique_ptr<SimCluster>> SimCluster::Start(
    SimClusterConfig config) {
  if (config.num_pods == 0) {
    return Status::InvalidArgument("num_pods must be > 0");
  }
  auto cluster = std::unique_ptr<SimCluster>(new SimCluster());
  cluster->config_ = std::move(config);
  cluster->index_ = std::make_shared<const SessionIndex>(SessionIndex::Build(
      cluster->config_.train, cluster->config_.knn.m));

  if (cluster->config_.freshness.enabled) {
    // Lineage comes from the shared in-memory base the pods boot on:
    // CreateFromIndex publishes it as version 1 with no artifact CRC.
    IndexBuilderConfig builder_config;
    builder_config.builder = cluster->config_.freshness.builder;
    builder_config.builder.base_version = 1;
    builder_config.builder.base_crc32 = 0;
    Timestamp max_time = 0;
    for (SessionId s = 0;
         s < static_cast<SessionId>(cluster->index_->num_sessions()); ++s) {
      max_time = std::max(max_time, cluster->index_->SessionTimestamp(s));
    }
    builder_config.builder.base_max_timestamp = max_time;
    builder_config.compact_interval_ms =
        cluster->config_.freshness.compact_interval_ms;
    cluster->builder_ =
        std::make_unique<IndexBuilderServer>(builder_config);
    SERENADE_RETURN_IF_ERROR(cluster->builder_->Start());
  }

  if (cluster->config_.ab.enabled &&
      cluster->config_.ab.pods_have_embeddings) {
    // One training run feeds every pod: the experiment compares retrieval
    // families, so all ANN arms must serve identical vectors.
    auto trained = TrainItemEmbeddings(cluster->config_.train,
                                       cluster->config_.ab.train);
    SERENADE_RETURN_IF_ERROR(trained.status());
    cluster->embeddings_ = std::move(trained).value();
  }

  cluster->pods_.resize(cluster->config_.num_pods);
  std::vector<BackendEndpoint> endpoints;
  for (size_t i = 0; i < cluster->pods_.size(); ++i) {
    Pod& pod = cluster->pods_[i];
    pod.name = "pod-" + std::to_string(i);
    if (!cluster->config_.work_dir.empty()) {
      pod.wal_path =
          cluster->config_.work_dir + "/pod" + std::to_string(i) + ".wal";
    }
    SERENADE_RETURN_IF_ERROR(cluster->StartPod(pod, /*port=*/0));
    endpoints.push_back(BackendEndpoint{pod.name, pod.port});
  }

  GatewayConfig gateway_config = cluster->config_.gateway;
  if (cluster->config_.replication.enabled) {
    gateway_config.manage_replication = true;
  }
  if (cluster->config_.ab.enabled) {
    gateway_config.ab_ann_percent = cluster->config_.ab.ann_percent;
    gateway_config.ab_salt = cluster->config_.ab.salt;
  }
  cluster->config_.gateway = gateway_config;
  cluster->gateway_ = std::make_unique<ClusterGateway>(
      std::move(endpoints), gateway_config, /*fallback=*/nullptr);
  SERENADE_RETURN_IF_ERROR(cluster->gateway_->Start());
  return cluster;
}

SimCluster::~SimCluster() {
  if (gateway_ != nullptr) gateway_->Stop();
  for (Pod& pod : pods_) {
    if (pod.fetcher != nullptr) pod.fetcher->Stop();
    if (pod.tap != nullptr) pod.tap->Stop();
    if (pod.server != nullptr) pod.server->Stop();
    if (pod.repl != nullptr) pod.repl->Stop();
  }
  if (builder_ != nullptr) builder_->Stop();
}

Status SimCluster::StartPod(Pod& pod, uint16_t port) {
  // Full catalog: the torture harness asserts store/index invariants,
  // not merchandising rules.
  ItemCatalog catalog;
  catalog.available.assign(config_.train.num_items(), true);
  catalog.adult.assign(config_.train.num_items(), false);

  ServiceConfig service_config;
  service_config.knn = config_.knn;
  service_config.rules.filter_unavailable = false;
  service_config.rules.filter_adult = false;
  service_config.rules.max_items = config_.max_items;
  service_config.store = config_.store;
  service_config.store.wal_path = pod.wal_path;

  auto service =
      SerenadeService::Create(index_, catalog, service_config);
  SERENADE_RETURN_IF_ERROR(service.status());

  ServerConfig server_config;
  server_config.port = port;
  server_config.batch = config_.batch;
  pod.server = std::make_unique<SerenadeServer>(std::move(service).value(),
                                                server_config);

  if (config_.ab.enabled && config_.ab.pods_have_embeddings) {
    // Attach before Start(): the ANN arm must be live before the first
    // bucketed request lands (each pod rebuilds its own HNSW graph from
    // the shared vectors, like pods loading the same artifact).
    auto manager =
        EmbeddingManager::CreateFromEmbeddings(embeddings_, config_.ab.hnsw);
    SERENADE_RETURN_IF_ERROR(manager.status());
    pod.server->service().AttachEmbeddings(std::move(manager).value());
  }

  if (config_.replication.enabled) {
    // Attach before Start(): the replication routes and write-divert
    // hooks must be registered before the first request can land.
    PodReplicationConfig repl_config = config_.replication.pod;
    repl_config.pod_name = pod.name;
    repl_config.virtual_nodes = config_.gateway.virtual_nodes;
    pod.repl =
        std::make_unique<PodReplication>(pod.server.get(), repl_config);
  }

  if (config_.freshness.enabled && builder_ != nullptr) {
    // Tap before Start(): the observer must be in place before the first
    // request can land.
    ClickTapConfig tap_config = config_.freshness.tap;
    tap_config.builder_port = builder_->port();
    pod.tap = std::make_unique<ClickTap>(tap_config);
    SERENADE_RETURN_IF_ERROR(pod.tap->Start());
    ClickTap* tap = pod.tap.get();
    pod.server->set_click_observer(
        [tap](const std::string& session_key, ItemId item) {
          tap->Observe(session_key, item);
        });
  }

  SERENADE_RETURN_IF_ERROR(pod.server->Start());
  pod.port = pod.server->port();

  if (config_.freshness.enabled && builder_ != nullptr) {
    DeltaFetcherConfig fetch_config = config_.freshness.fetch;
    fetch_config.builder_port = builder_->port();
    SerenadeServer* server = pod.server.get();
    pod.fetcher = std::make_unique<DeltaFetcher>(
        fetch_config, [server](const IndexDelta& delta) {
          return server->ApplyDelta(delta);
        });
    SERENADE_RETURN_IF_ERROR(pod.fetcher->Start());
  }
  if (pod.repl != nullptr) {
    SERENADE_RETURN_IF_ERROR(pod.repl->Start());
  }
  return Status::Ok();
}

void SimCluster::KillPod(size_t i) {
  Pod& pod = pods_[i];
  if (pod.server == nullptr) return;
  // Freshness plumbing first: the fetcher's apply callback and the tap's
  // click source both point into the server.
  if (pod.fetcher != nullptr) pod.fetcher->Stop();
  if (pod.tap != nullptr) pod.tap->Stop();
  pod.server->Stop();
  // After the server drained its writes: the shipper's Stop() flushes the
  // final WAL batch to the ring successor, so a graceful kill loses no
  // acknowledged click even before the gateway notices the death.
  if (pod.repl != nullptr) pod.repl->Stop();
  pod.fetcher.reset();
  pod.tap.reset();
  pod.repl.reset();  // references the server; destroy first
  pod.server.reset();  // destroys the service; the store syncs its WAL
}

Status SimCluster::RestartPod(size_t i) {
  Pod& pod = pods_[i];
  if (pod.server != nullptr) return Status::AlreadyExists(pod.name);
  // Rebind the original port (SO_REUSEADDR): the gateway's endpoint set
  // is fixed at construction, so recovery must come back where routing
  // expects it — exactly like a pod rescheduled onto the same service IP.
  const Status started = StartPod(pod, pod.port);
  if (started.ok() && config_.replication.enabled && gateway_ != nullptr) {
    // The reborn pod's shipper has no peer until the gateway re-pushes
    // the wiring (best-effort; still-dead members are skipped).
    (void)gateway_->PushReplicationWiring();
  }
  return started;
}

StatusOr<uint64_t> SimCluster::FetchRingEpoch() {
  HttpClientOptions options;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 10000;
  HttpClient client(options);
  SERENADE_RETURN_IF_ERROR(client.Connect(gateway_->port()));
  auto response = client.Get("/v1/admin/cluster");
  SERENADE_RETURN_IF_ERROR(response.status());
  if (response->status != 200) {
    return Status::Internal("GET /v1/admin/cluster returned " +
                            std::to_string(response->status));
  }
  auto doc = ParseJson(response->body);
  SERENADE_RETURN_IF_ERROR(doc.status());
  const JsonValue* epoch = doc->Find("ring_epoch");
  if (epoch == nullptr || epoch->type() != JsonValue::Type::kNumber) {
    return Status::Internal("cluster document lacks ring_epoch");
  }
  return static_cast<uint64_t>(epoch->AsInt());
}

Status SimCluster::AdminMutate(const std::string& action,
                               const std::string& extra) {
  auto epoch = FetchRingEpoch();
  SERENADE_RETURN_IF_ERROR(epoch.status());
  HttpClientOptions options;
  options.connect_timeout_ms = 2000;
  // Mutations move real data (hand-offs); give them a wide deadline.
  options.io_timeout_ms = 120000;
  HttpClient client(options);
  SERENADE_RETURN_IF_ERROR(client.Connect(gateway_->port()));
  const std::string body =
      "{\"epoch\":" + std::to_string(*epoch) + "," + extra + "}";
  auto response = client.Post("/v1/admin/cluster/" + action, body);
  SERENADE_RETURN_IF_ERROR(response.status());
  if (response->status / 100 != 2) {
    return Status::Internal("POST /v1/admin/cluster/" + action +
                            " returned " + std::to_string(response->status) +
                            ": " + response->body);
  }
  return Status::Ok();
}

StatusOr<size_t> SimCluster::AddPod() {
  Pod pod;
  const size_t index = pods_.size();
  pod.name = "pod-" + std::to_string(index);
  if (!config_.work_dir.empty()) {
    pod.wal_path =
        config_.work_dir + "/pod" + std::to_string(index) + ".wal";
  }
  SERENADE_RETURN_IF_ERROR(StartPod(pod, /*port=*/0));
  const Status joined = AdminMutate(
      "join", "\"name\":\"" + pod.name +
                  "\",\"port\":" + std::to_string(pod.port));
  if (!joined.ok()) {
    // Leave the fleet unchanged: tear the half-started pod back down.
    if (pod.fetcher != nullptr) pod.fetcher->Stop();
    if (pod.tap != nullptr) pod.tap->Stop();
    if (pod.server != nullptr) pod.server->Stop();
    if (pod.repl != nullptr) pod.repl->Stop();
    return joined;
  }
  pods_.push_back(std::move(pod));
  return index;
}

Status SimCluster::DrainPod(size_t i) {
  return AdminMutate("drain", "\"name\":\"" + pods_[i].name + "\"");
}

Status SimCluster::RemovePodFromRing(size_t i) {
  return AdminMutate("remove", "\"name\":\"" + pods_[i].name + "\"");
}

bool SimCluster::AwaitHealthy(size_t min_healthy, uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (health().NumHealthy() < min_healthy) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

}  // namespace serenade
