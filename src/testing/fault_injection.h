// Seeded, deterministic fault injection for the serving stack. Production
// code is instrumented with named fault *sites* (SERENADE_FAULT_POINT and
// friends below); a test installs a FaultInjector with a seed and a
// per-site rule (probability, budget, latency), drives the system, and
// every failure decision replays bit-identically from the seed — a
// failing torture run reproduces from its printed seed alone.
//
// With the CMake option SERENADE_FAULT_INJECTION=OFF the hook macros
// compile to nothing, so production builds carry zero overhead. With the
// option ON (the default for this repository, whose binaries are test and
// bench harnesses) an unarmed process pays one relaxed atomic load per
// site — the injector pointer is null until a test installs one.
//
// Site registry (keep TESTING.md's table in sync):
//   kHttpConnect        HttpClient::Connect      connect refused
//   kHttpSend           HttpClient::RoundTrip    send fails mid-request
//   kHttpRecv           HttpClient::RoundTrip    read fails mid-response
//   kHttpLatency        HttpClient::RoundTrip    latency spike before send
//   kHttpTruncateBody   HttpClient::RoundTrip    response body truncated
//   kWalAppendFail      WalWriter::Append        write fails, nothing lands
//   kWalTornWrite       WalWriter::Append        record prefix lands, fails
//   kWalSyncFail        WalWriter::Sync          flush fails
//   kWalReplayShortRead ReplayWal                replay sees a short read
//   kStoreMultiPut      SessionStore::MultiPut   batched write fails
//   kBatchQueueFull     BatchExecutor::SubmitAsync  forced load shedding
//   kDeltaTruncate      DeltaFetcher::PollOnce   delta bytes truncated in flight
//   kDeltaLineageMismatch  IndexBuilderServer::HandleDeltaLatest  wrong base version served
//   kDeltaPublishCrash  DeltaBuilder publish     builder dies mid-publish (torn file)
//   kHttpAcceptOverload      Reactor::HandleAccept   admission shed (503) as if at the cap
//   kHttpServerStallRead     Reactor::HandleReadable readable socket left undrained one pass
//   kHttpServerCloseMidWrite Reactor::ContinueWrite  response cut short, connection closed
//   kReplShipTruncate    WalShipper::ShipOnce     shipped batch truncated in flight
//   kReplAckLost         WalShipper::ShipOnce     replica applied, ack dropped
//   kHandoffCutoverCrash PodReplication hand-off  donor aborts mid-transfer (500)
//   kEmbeddingLoadTruncate EmbeddingManager::LoadSnapshot  artifact bytes truncated on read
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/rng.h"

namespace serenade {

enum class FaultSite : uint8_t {
  kHttpConnect = 0,
  kHttpSend,
  kHttpRecv,
  kHttpLatency,
  kHttpTruncateBody,
  kWalAppendFail,
  kWalTornWrite,
  kWalSyncFail,
  kWalReplayShortRead,
  kStoreMultiPut,
  kBatchQueueFull,
  kDeltaTruncate,
  kDeltaLineageMismatch,
  kDeltaPublishCrash,
  kHttpAcceptOverload,
  kHttpServerStallRead,
  kHttpServerCloseMidWrite,
  kReplShipTruncate,
  kReplAckLost,
  kHandoffCutoverCrash,
  kEmbeddingLoadTruncate,
  kNumSites,
};

inline constexpr size_t kNumFaultSites =
    static_cast<size_t>(FaultSite::kNumSites);

/// Stable site name for failure reports and the TESTING.md registry.
const char* FaultSiteName(FaultSite site);

/// When and how one site misbehaves. Sites default to never firing.
struct FaultRule {
  /// Chance that an armed site fires on one pass through it.
  double probability = 0.0;
  /// Total fires allowed before the site goes quiet (so a test can
  /// request e.g. "exactly one torn write, then clean IO").
  uint64_t budget = UINT64_MAX;
  /// Injected delay for latency sites, microseconds.
  uint64_t latency_micros = 0;
};

/// Deterministic fault oracle. All decisions draw from one seeded RNG
/// under a mutex, so a single-threaded test replays exactly; concurrent
/// tests stay seed-deterministic per interleaving (the usual caveat for
/// any concurrent property harness). Thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  /// Arms a site. Re-arming replaces the rule and resets its counters.
  void Arm(FaultSite site, FaultRule rule);

  /// Convenience: probability-only arming with unlimited budget.
  void Arm(FaultSite site, double probability) {
    Arm(site, FaultRule{probability, UINT64_MAX, 0});
  }

  void Disarm(FaultSite site) { Arm(site, FaultRule{}); }

  /// Rolls the dice for one pass through `site`. True = the site must
  /// misbehave. Counts rolls and fires, honours the budget.
  bool ShouldFire(FaultSite site);

  /// Injected delay for a latency site (0 when unarmed).
  uint64_t LatencyMicros(FaultSite site) const;

  /// Auxiliary deterministic randomness for hooks that need a magnitude,
  /// e.g. "truncate the body to RandBelow(len) bytes". Uniform [0, bound);
  /// bound 0 yields 0.
  uint64_t RandBelow(uint64_t bound);

  uint64_t fires(FaultSite site) const;
  uint64_t rolls(FaultSite site) const;
  uint64_t seed() const { return seed_; }

  /// The process-wide injector (null = faults disabled). Install/uninstall
  /// via ScopedFaultInjector; reads are one relaxed atomic load.
  static FaultInjector* Active() {
    return active_.load(std::memory_order_acquire);
  }

 private:
  friend class ScopedFaultInjector;

  struct SiteState {
    FaultRule rule;
    uint64_t rolls = 0;
    uint64_t fires = 0;
  };

  static std::atomic<FaultInjector*> active_;

  const uint64_t seed_;
  mutable std::mutex mutex_;
  Rng rng_;
  SiteState sites_[kNumFaultSites];
};

/// Installs an injector for the current scope and removes it on exit.
/// Nesting is a test bug and asserts.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(uint64_t seed);
  ~ScopedFaultInjector();

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector* operator->() { return &injector_; }
  FaultInjector& operator*() { return injector_; }

 private:
  FaultInjector injector_;
};

/// Sleeps for an injected latency spike; kept out of line so the hook
/// macro below stays cheap at the call site.
void FaultSleep(uint64_t micros);

}  // namespace serenade

// --- hook macros -------------------------------------------------------------
//
// SERENADE_FAULT_POINT(site, action...): runs `action` when the armed
// site fires. `action` is a statement list and may `return`:
//
//   SERENADE_FAULT_POINT(FaultSite::kHttpConnect, {
//     Close();
//     return Status::Unavailable("injected connect failure");
//   });
//
// Inside `action` the installed injector is in scope as `serenade_fi`,
// for hooks that need a deterministic magnitude:
//
//   SERENADE_FAULT_POINT(FaultSite::kHttpTruncateBody, {
//     body.resize(serenade_fi->RandBelow(body.size() + 1));
//   });
//
// SERENADE_FAULT_DELAY(site): sleeps the site's configured latency when
// it fires (latency spikes, not failures).
#if defined(SERENADE_FAULT_INJECTION)
#define SERENADE_FAULT_POINT(site, ...)                               \
  do {                                                                \
    if (::serenade::FaultInjector* serenade_fi =                      \
            ::serenade::FaultInjector::Active();                      \
        serenade_fi != nullptr && serenade_fi->ShouldFire(site)) {    \
      __VA_ARGS__                                                     \
    }                                                                 \
  } while (0)
#define SERENADE_FAULT_DELAY(site)                                    \
  do {                                                                \
    if (::serenade::FaultInjector* serenade_fi =                      \
            ::serenade::FaultInjector::Active();                      \
        serenade_fi != nullptr && serenade_fi->ShouldFire(site)) {    \
      ::serenade::FaultSleep(serenade_fi->LatencyMicros(site));       \
    }                                                                 \
  } while (0)
#else
#define SERENADE_FAULT_POINT(site, ...) \
  do {                                  \
  } while (0)
#define SERENADE_FAULT_DELAY(site) \
  do {                             \
  } while (0)
#endif
