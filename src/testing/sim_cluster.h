// In-process simulated cluster for crash/recovery torture: a real
// ClusterGateway fronting N real SerenadeServer pods over loopback HTTP,
// each pod with its own WAL-backed session store, all sharing one
// immutable session index. Tests combine it with a ScopedFaultInjector
// (testing/fault_injection.h) to kill pods mid-traffic, tear WAL writes,
// and then restart pods on their original ports and assert recovery
// invariants: no acknowledged write lost, no expired key resurrected,
// index versions monotone.
//
// Everything is plain in-process state — no subprocesses, no containers
// — so a torture round is milliseconds and reproduces from its seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/item2vec.h"
#include "cluster/gateway.h"
#include "common/status.h"
#include "core/embedding.h"
#include "core/hnsw.h"
#include "core/session_index.h"
#include "data/click_log.h"
#include "freshness/builder_server.h"
#include "freshness/click_tap.h"
#include "freshness/delta_fetcher.h"
#include "replication/pod_replication.h"
#include "serving/server.h"
#include "store/session_store.h"

namespace serenade {

/// Optional streaming-freshness role for the simulated cluster: one
/// in-process index-builder plus a click tap and delta fetcher per pod,
/// closing the click -> delta -> overlay loop end to end over loopback
/// HTTP. The builder's lineage (base version/CRC/max timestamp) is
/// derived from the shared in-memory index automatically.
struct SimFreshnessConfig {
  bool enabled = false;
  /// Sessionization knobs; base_version / base_crc32 / base_max_timestamp
  /// are overridden from the shared index at Start().
  DeltaBuilderConfig builder;
  /// Builder-side background compaction cadence (0 = tests drive
  /// builder()->CompactNow() explicitly).
  uint64_t compact_interval_ms = 0;
  /// Per-pod tap knobs; builder_port is overridden at Start().
  ClickTapConfig tap;
  /// Per-pod fetcher knobs; builder_port is overridden at Start().
  DeltaFetcherConfig fetch;
};

/// Optional A/B experiment role: item2vec embeddings are trained once
/// from the shared click history, each pod gets an EmbeddingManager
/// attached before Start() (unless pods_have_embeddings is off — the
/// dead-ANN-arm degradation drill), and the gateway buckets the
/// configured percent of sessions into the ANN retrieval arm.
struct SimAbConfig {
  bool enabled = false;
  /// Gateway bucket knobs (GatewayConfig::ab_ann_percent / ab_salt).
  uint32_t ann_percent = 50;
  uint64_t salt = 0;
  /// Off = pods carry no embedding artifact, so every ANN-arm request
  /// degrades to VMIS (counted, never failed).
  bool pods_have_embeddings = true;
  /// Trainer knobs; tests shrink dim/epochs for speed.
  Item2VecConfig train;
  /// Per-pod ANN graph knobs.
  HnswConfig hnsw;
};

/// Optional replication role: each pod gets a PodReplication agent
/// (WAL shipper to its ring successor + replica hub + hand-off routes),
/// and the gateway is switched to manage_replication so join/drain/
/// remove orchestrate the data motion.
struct SimReplicationConfig {
  bool enabled = false;
  /// Per-pod replication knobs; pod_name and virtual_nodes are
  /// overridden per pod / from the gateway config at Start(). Tests
  /// usually shorten ship_interval_ms.
  PodReplicationConfig pod;
};

struct SimClusterConfig {
  size_t num_pods = 2;
  /// Click history the shared index is built from.
  Dataset train;
  KnnConfig knn;
  /// Per-pod store options; wal_path is overridden per pod with
  /// "<work_dir>/pod<i>.wal" (leave work_dir empty for volatile pods).
  SessionStoreOptions store;
  /// Directory for pod WAL files; created by the test (TempDir).
  std::string work_dir;
  /// Per-pod micro-batching knobs.
  BatchExecutorConfig batch;
  /// Gateway knobs; tests usually shorten health.probe_interval_ms.
  GatewayConfig gateway;
  size_t max_items = 21;
  /// Streaming freshness role (off by default; torture tests opt in).
  SimFreshnessConfig freshness;
  /// Session-replication role (off by default).
  SimReplicationConfig replication;
  /// A/B experiment role (off by default).
  SimAbConfig ab;
};

/// Owns the pods and the gateway; Stop order (gateway first) is handled
/// by the destructor.
class SimCluster {
 public:
  static StatusOr<std::unique_ptr<SimCluster>> Start(SimClusterConfig config);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  ClusterGateway& gateway() { return *gateway_; }
  HealthChecker& health() { return gateway_->health(); }

  size_t num_pods() const { return pods_.size(); }
  /// Null while the pod is down (between KillPod and RestartPod).
  SerenadeServer* pod(size_t i) { return pods_[i].server.get(); }
  uint16_t pod_port(size_t i) const { return pods_[i].port; }
  const std::string& pod_wal_path(size_t i) const {
    return pods_[i].wal_path;
  }
  const std::string& pod_name(size_t i) const { return pods_[i].name; }

  /// Takes pod `i` off the air: in-flight batches drain, the WAL syncs,
  /// the replication agent flushes its final batch, the port stops
  /// answering. The prober ejects it within a few rounds.
  /// (A *crash* — torn WAL tail, lost unsynced writes — is modelled by
  /// arming kWalTornWrite/kWalSyncFail before the traffic, not by this.)
  void KillPod(size_t i);

  /// Rebuilds pod `i` from its WAL and rebinds its original port.
  Status RestartPod(size_t i);

  /// Starts a brand-new pod (fresh name, fresh WAL) and joins it to the
  /// live ring through the gateway's /v1/admin/cluster/join control
  /// plane (hand-offs run on the donors when replication is managed).
  /// Returns its pod index.
  StatusOr<size_t> AddPod();

  /// Drains pod `i` out of the ring via /v1/admin/cluster/drain (the pod
  /// stays up and hands its sessions to the survivors; the caller kills
  /// it afterwards if desired).
  Status DrainPod(size_t i);

  /// Declares pod `i` dead via /v1/admin/cluster/remove: the gateway
  /// promotes its replica on the ring successor first. Kill the pod
  /// before calling this.
  Status RemovePodFromRing(size_t i);

  /// Current ring epoch as reported by GET /v1/admin/cluster (exercises
  /// the HTTP surface rather than reading the gateway object).
  StatusOr<uint64_t> FetchRingEpoch();

  /// One epoch-fenced control-plane mutation against the gateway; body
  /// fields beyond "epoch" come from `extra` (e.g. "\"name\":\"pod-1\"").
  Status AdminMutate(const std::string& action, const std::string& extra);

  /// Polls the health checker until at least `min_healthy` pods are
  /// routable (true) or `timeout_ms` elapses (false).
  bool AwaitHealthy(size_t min_healthy, uint64_t timeout_ms);

  /// The index-builder role; null unless freshness.enabled.
  IndexBuilderServer* builder() { return builder_.get(); }
  /// Per-pod freshness plumbing; null while the pod is down or when the
  /// freshness role is disabled.
  ClickTap* pod_tap(size_t i) { return pods_[i].tap.get(); }
  DeltaFetcher* pod_fetcher(size_t i) { return pods_[i].fetcher.get(); }
  /// Per-pod replication agent; null while the pod is down or when the
  /// replication role is disabled.
  PodReplication* pod_repl(size_t i) { return pods_[i].repl.get(); }

 private:
  struct Pod {
    std::string name;
    std::string wal_path;
    uint16_t port = 0;  ///< assigned on first start, reused on restart
    std::unique_ptr<SerenadeServer> server;
    std::unique_ptr<ClickTap> tap;
    std::unique_ptr<DeltaFetcher> fetcher;
    std::unique_ptr<PodReplication> repl;
  };

  SimCluster() = default;

  Status StartPod(Pod& pod, uint16_t port);

  SimClusterConfig config_;
  std::shared_ptr<const SessionIndex> index_;
  /// Shared trained vectors the per-pod EmbeddingManagers boot from
  /// (empty unless the A/B role trains them at Start()).
  ItemEmbeddings embeddings_;
  std::vector<Pod> pods_;
  std::unique_ptr<IndexBuilderServer> builder_;
  std::unique_ptr<ClusterGateway> gateway_;
};

}  // namespace serenade
