#include "testing/virtual_clock.h"

#include <chrono>

namespace serenade {

void VirtualBatchClock::WaitFor(std::condition_variable& cv,
                                std::unique_lock<std::mutex>& lock,
                                uint64_t micros,
                                const std::function<bool()>& pred) {
  const uint64_t deadline = NowMicros() + micros;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++waiters_;
  }
  waiters_cv_.notify_all();

  // cv belongs to the executor worker and is notified by SubmitAsync;
  // AdvanceMicros has no handle on it, so the deadline is re-checked on
  // a 1 ms real-time safety net. Composition stays deterministic: the
  // loop only ever exits on pred() or virtual-deadline expiry.
  while (!pred() && NowMicros() < deadline) {
    cv.wait_for(lock, std::chrono::milliseconds(1));
  }

  {
    std::lock_guard<std::mutex> guard(mutex_);
    --waiters_;
  }
  waiters_cv_.notify_all();
}

void VirtualBatchClock::AdvanceMicros(uint64_t micros) {
  now_micros_.fetch_add(micros, std::memory_order_acq_rel);
}

int VirtualBatchClock::waiters() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return waiters_;
}

void VirtualBatchClock::AwaitWaiters(int count) {
  std::unique_lock<std::mutex> lock(mutex_);
  waiters_cv_.wait(lock, [&] { return waiters_ >= count; });
}

}  // namespace serenade
