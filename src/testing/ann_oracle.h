// ANN-vs-exact differential oracle — the second retrieval family's
// correctness harness, mirroring the kNN oracle in testing/differential.h:
// seeded case generation, a checker with a mutation self-check, greedy
// shrinking, a paste-able reproducer, and a fuzz driver.
//
// The property: for every generated (embeddings, queries, HnswConfig)
// case, HNSW's top-k must cover at least `min_recall` of the brute-force
// exact top-k, averaged over the case's queries (recall@k = |ann ∩ exact|
// / k per query). Exact search is the trusted arm: a full scan with a
// total deterministic order. HNSW builds are deterministic (core/hnsw.h),
// so any violation replays exactly from (spec, seed).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/embedding.h"
#include "core/hnsw.h"

namespace serenade {

struct AnnOracleSpec {
  size_t min_items = 64;
  size_t max_items = 512;
  size_t min_dim = 8;
  size_t max_dim = 32;
  size_t num_queries = 16;
  size_t k = 20;
  /// Average recall@k floor across a case's queries.
  double min_recall = 0.95;
  /// Graph parameters for the approximate arm (seed is drawn per case).
  HnswConfig hnsw;
};

/// One self-contained case: the corpus, the queries (unit vectors), and
/// the graph configuration under test.
struct AnnCase {
  ItemEmbeddings embeddings;
  std::vector<std::vector<float>> queries;
  HnswConfig hnsw;
  size_t k = 20;
};

/// What CheckAnnCase found: the mean recall and the worst single query.
struct AnnViolation {
  double mean_recall = 0.0;
  size_t worst_query = 0;
  double worst_recall = 0.0;
};

/// Generates a clustered corpus (items concentrate around a few random
/// centroids, like co-viewed catalog neighborhoods) plus queries drawn
/// half from cluster neighborhoods and half uniformly.
AnnCase GenerateAnnCase(const AnnOracleSpec& spec, Rng* rng);

/// Builds the HNSW arm, runs every query through both arms, and returns
/// the violation if mean recall@k < min_recall. With `mutate` set, half
/// of the ANN arm's results are discarded first — the harness must then
/// report a violation, proving it can fail (the same self-check the kNN
/// oracle runs).
std::optional<AnnViolation> CheckAnnCase(const AnnCase& c, double min_recall,
                                         bool mutate = false);

/// Greedy shrink: drop queries, then halve the corpus, keeping each step
/// only while the violation persists. Returns the smallest failing case.
AnnCase ShrinkAnnCase(const AnnCase& c, double min_recall);

/// Paste-able report: seed, corpus/query shape, graph config, recall.
std::string FormatAnnReproducer(const AnnCase& c, uint64_t seed,
                                const AnnViolation& violation);

struct AnnFuzzStats {
  uint64_t cases = 0;
  uint64_t queries = 0;
  uint64_t items = 0;
};

/// Runs `num_cases` generated cases (case i uses seed `base_seed + i`).
/// Returns the reproducer of the first shrunk violation, or nullopt when
/// every case held.
std::optional<std::string> RunAnnFuzz(const AnnOracleSpec& spec,
                                      uint64_t base_seed, size_t num_cases,
                                      AnnFuzzStats* stats = nullptr);

}  // namespace serenade
