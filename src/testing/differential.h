// Differential kernel fuzzing: generate random click histories and
// evolving sessions from a seed, run the same query through every
// engine of the VS-kNN family — VS-kNN over hashmaps, VMIS-kNN, the
// no-opt VMIS variant (binary heaps, no early stopping), and the full
// batched /v1 service path — and demand bit-identical scores and ranks.
// A divergence is shrunk to a minimal reproducer (fewest historical
// sessions, shortest query) before being reported, together with the
// seed that regenerates it.
//
// Bit-identity (not tolerance) is the contract: all engines truncate,
// deduplicate, tie-break, and accumulate floats in the same order (see
// vs_knn.h). VS-kNN runs with vs_length_norm = false, removing
// Algorithm 1's rank-neutral 1/|s| scale so even raw scores match.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/vmis_knn.h"
#include "data/click_log.h"

namespace serenade {

/// Shape of one randomly generated differential case. Defaults are small
/// on purpose: tiny item vocabularies force heavy session overlap, small
/// m forces candidate eviction, and short postings exercise the early
/// stopping boundary — the regions where the engines can disagree.
struct DiffSpec {
  size_t min_sessions = 20;
  size_t max_sessions = 200;
  size_t min_items = 5;
  size_t max_items = 60;
  size_t max_history_length = 8;
  size_t num_queries = 12;
  size_t max_query_length = 12;
  /// Query hyperparameters are drawn per case: m in [1, m_max], k in
  /// [1, m], plus random decay / match-weight / IDF variants.
  size_t m_max = 40;
  size_t top_n = 21;
  /// Route every query through the batched service path too (slower;
  /// the kernel-only comparison already runs thousands of cases).
  bool include_service = true;
};

/// One generated case: a click history (dense ascending-end-time ids,
/// the shape SessionIndex::Build requires) plus evolving-session queries
/// and the per-case engine configuration.
struct DiffCase {
  Dataset train;
  std::vector<EvolvingSession> queries;
  KnnConfig knn;
  size_t top_n = 21;
};

/// A disagreement between two engines on one query.
struct DiffDivergence {
  std::string engine_a;
  std::string engine_b;
  size_t query_index = 0;
  std::string detail;  // first differing rank, items, score bits
};

/// Deterministically generates a case from `rng` (drawing the session
/// count, vocabulary, clicks, queries, and KnnConfig).
DiffCase GenerateDiffCase(const DiffSpec& spec, Rng* rng);

/// Runs every engine over every query of `c`. Returns the first
/// divergence, or nullopt when all engines agree bit-for-bit.
/// `include_service` additionally routes each query through
/// SerenadeService::HandleUpdateAndRecommendBatch (one batch per query,
/// chained slots on one session key).
///
/// `mutate` is the harness self-check: when true, the no-opt engine's
/// scores are deliberately perturbed before comparison, and the harness
/// MUST report a divergence — proving the oracle can actually fail.
std::optional<DiffDivergence> CheckDiffCase(const DiffCase& c,
                                            bool include_service,
                                            bool mutate = false);

/// Shrinks a failing case to a locally minimal reproducer: drops
/// non-failing queries, then historical sessions (chunks, then
/// singletons), then query items, re-checking after each removal.
/// Returns the minimal case (CheckDiffCase on it still fails).
DiffCase ShrinkDiffCase(const DiffCase& c, bool include_service);

/// Human-readable reproducer: the full minimal case (history, query,
/// config) plus `seed`, printable by a failing test or the fuzz tool.
std::string FormatReproducer(const DiffCase& c, uint64_t seed,
                             const DiffDivergence& divergence);

/// Coverage counters for one fuzz run (the CI smoke asserts volume).
struct DiffFuzzStats {
  uint64_t cases = 0;
  uint64_t sessions = 0;  // historical + evolving sessions generated
  uint64_t queries = 0;
};

/// Runs `cases` seeded iterations (seed, seed+1, ...): generate, check,
/// shrink on failure. Returns nullopt when every case agrees; otherwise
/// the formatted minimal reproducer of the first failure.
std::optional<std::string> RunDiffFuzz(const DiffSpec& spec, uint64_t seed,
                                       size_t cases,
                                       DiffFuzzStats* stats = nullptr);

}  // namespace serenade
