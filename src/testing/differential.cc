#include "testing/differential.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>

#include "core/compressed_index.h"
#include "core/knn_kernels.h"
#include "core/session_index.h"
#include "core/vs_knn.h"
#include "data/synthetic.h"
#include "index/index_format.h"
#include "serving/service.h"

namespace serenade {

namespace {

uint32_t FloatBits(float value) {
  uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

std::string DescribeItems(const std::vector<ScoredItem>& items) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out << ", ";
    out << items[i].item << ":" << items[i].score << " (0x" << std::hex
        << FloatBits(items[i].score) << std::dec << ")";
  }
  out << "]";
  return out.str();
}

/// Bit-exact comparison of two ranked lists; nullopt when identical.
std::optional<std::string> CompareRanked(const std::vector<ScoredItem>& a,
                                         const std::vector<ScoredItem>& b) {
  if (a.size() != b.size()) {
    return "result sizes differ: " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size()) + "\n  a=" + DescribeItems(a) +
           "\n  b=" + DescribeItems(b);
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].item != b[i].item ||
        FloatBits(a[i].score) != FloatBits(b[i].score)) {
      return "first divergence at rank " + std::to_string(i) + "\n  a=" +
             DescribeItems(a) + "\n  b=" + DescribeItems(b);
    }
  }
  return std::nullopt;
}

DecayType DrawDecay(Rng* rng) {
  switch (rng->Below(5)) {
    case 0: return DecayType::kSame;
    case 1: return DecayType::kLinear;
    case 2: return DecayType::kQuadratic;
    case 3: return DecayType::kHarmonic;
    default: return DecayType::kLogarithmic;
  }
}

MatchWeightType DrawMatchWeight(Rng* rng) {
  switch (rng->Below(3)) {
    case 0: return MatchWeightType::kConstant;
    case 1: return MatchWeightType::kPaperInsertionOrder;
    default: return MatchWeightType::kStepsFromEnd;
  }
}

IdfWeighting DrawIdf(Rng* rng) {
  switch (rng->Below(3)) {
    case 0: return IdfWeighting::kNone;
    case 1: return IdfWeighting::kLog;
    default: return IdfWeighting::kOnePlusLog;
  }
}

/// Re-materialises a Dataset from a session subset, preserving each
/// session's end time (every click carries it; FromClicks's stable
/// within-session sort keeps the click order).
Dataset RebuildDataset(const std::vector<SessionData>& sessions) {
  std::vector<Click> clicks;
  SessionId next_id = 0;
  for (const SessionData& session : sessions) {
    for (ItemId item : session.items) {
      clicks.push_back(Click{next_id, item, session.end_time});
    }
    ++next_id;
  }
  return Dataset::FromClicks(std::move(clicks), /*min_session_length=*/1);
}

/// Freshness-overlay oracle (DESIGN.md §9): splits the history into a
/// base (first three quarters) and a cumulative delta (the rest, with
/// end times re-assigned above the base maximum, the way the index
/// builder stamps sealed sessions), then checks that ApplyDeltaToIndex
/// over the base is byte-identical to a full rebuild over the same
/// sessions — and that VMIS-kNN scores bit-identically on both.
std::optional<DiffDivergence> CheckOverlayOracle(const DiffCase& c) {
  const std::vector<SessionData>& sessions = c.train.sessions();
  if (sessions.size() < 2) return std::nullopt;
  size_t split = std::max<size_t>(sessions.size() * 3 / 4, 1);
  if (split == sessions.size()) split = sessions.size() - 1;

  std::vector<SessionData> prefix(sessions.begin(),
                                  sessions.begin() +
                                      static_cast<ptrdiff_t>(split));
  const Dataset base_dataset = RebuildDataset(prefix);
  const SessionIndex base = SessionIndex::Build(base_dataset, c.knn.m);
  Timestamp base_max = 0;
  for (const SessionData& session : prefix) {
    base_max = std::max(base_max, session.end_time);
  }

  IndexDelta delta;
  delta.base_version = 1;
  delta.base_crc32 = 0;
  delta.delta_version = 2;
  std::vector<SessionData> merged_sessions = prefix;
  for (size_t s = split; s < sessions.size(); ++s) {
    DeltaSession entry;
    entry.items = sessions[s].items;
    std::sort(entry.items.begin(), entry.items.end());
    entry.items.erase(std::unique(entry.items.begin(), entry.items.end()),
                      entry.items.end());
    entry.end_time = base_max + static_cast<Timestamp>(s - split) + 1;
    entry.observed_unix_ms = 1000 + s;
    delta.watermark_unix_ms = entry.observed_unix_ms;
    SessionData rebuilt;
    rebuilt.id = static_cast<SessionId>(merged_sessions.size());
    rebuilt.items = entry.items;
    rebuilt.end_time = entry.end_time;
    merged_sessions.push_back(std::move(rebuilt));
    delta.sessions.push_back(std::move(entry));
  }

  auto merged = ApplyDeltaToIndex(base, delta);
  if (!merged.ok()) {
    return DiffDivergence{"full-rebuild", "base+overlay", 0,
                          "ApplyDeltaToIndex failed: " +
                              merged.status().ToString()};
  }
  const Dataset full_dataset = RebuildDataset(merged_sessions);
  const SessionIndex full = SessionIndex::Build(full_dataset, c.knn.m);
  if (SerializeIndex(*merged) != SerializeIndex(full)) {
    return DiffDivergence{
        "full-rebuild", "base+overlay", 0,
        "serialized artifacts differ (base " + std::to_string(split) +
            " sessions + delta of " + std::to_string(delta.sessions.size()) +
            ")"};
  }

  VmisKnn overlay_knn(&*merged, c.knn);
  VmisKnn full_knn(&full, c.knn);
  for (size_t qi = 0; qi < c.queries.size(); ++qi) {
    if (auto diff =
            CompareRanked(full_knn.RecommendNext(c.queries[qi], c.top_n),
                          overlay_knn.RecommendNext(c.queries[qi], c.top_n))) {
      return DiffDivergence{"vmis-knn-full", "vmis-knn-overlay", qi, *diff};
    }
  }
  return std::nullopt;
}

}  // namespace

DiffCase GenerateDiffCase(const DiffSpec& spec, Rng* rng) {
  DiffCase c;
  const size_t num_sessions =
      spec.min_sessions +
      rng->Below(spec.max_sessions - spec.min_sessions + 1);
  const size_t num_items =
      spec.min_items + rng->Below(spec.max_items - spec.min_items + 1);

  std::vector<Click> clicks;
  Timestamp now = 1000;
  for (size_t s = 0; s < num_sessions; ++s) {
    const size_t length = 1 + rng->Below(spec.max_history_length);
    for (size_t i = 0; i < length; ++i) {
      clicks.push_back(Click{static_cast<SessionId>(s),
                             static_cast<ItemId>(rng->Below(num_items)),
                             now++});
    }
  }
  c.train = Dataset::FromClicks(std::move(clicks), /*min_session_length=*/1);

  c.queries.resize(spec.num_queries);
  for (EvolvingSession& query : c.queries) {
    const size_t length = 1 + rng->Below(spec.max_query_length);
    query.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      // Mostly vocabulary items (overlap drives scoring); occasionally an
      // id the index has never seen, which every engine must ignore.
      const bool unknown = rng->Bernoulli(0.05);
      query.push_back(static_cast<ItemId>(
          unknown ? num_items + rng->Below(4) : rng->Below(num_items)));
    }
  }

  c.knn.m = 1 + rng->Below(spec.m_max);
  c.knn.k = 1 + rng->Below(c.knn.m);
  c.knn.max_session_length = 1 + rng->Below(10);
  c.knn.decay = DrawDecay(rng);
  c.knn.match_weight = DrawMatchWeight(rng);
  c.knn.idf = DrawIdf(rng);
  c.knn.exclude_session_items = rng->Bernoulli(0.3);
  c.knn.vs_length_norm = false;  // bit-exact scores across engines
  c.top_n = spec.top_n;
  return c;
}

std::optional<DiffDivergence> CheckDiffCase(const DiffCase& c,
                                            bool include_service,
                                            bool mutate) {
  if (c.train.num_sessions() == 0) return std::nullopt;
  auto index = std::make_shared<const SessionIndex>(
      SessionIndex::Build(c.train, c.knn.m));

  VmisKnn vmis(index.get(), c.knn);
  VmisKnn vmis_no_opt(index.get(), NoOptConfig(c.knn));
  VmisKnn vmis_scalar(index.get(), c.knn);
  VsKnn vs(c.train, c.knn);
  const CompressedSessionIndex compressed =
      CompressedSessionIndex::FromIndex(*index);
  VmisKnnT<CompressedSessionIndex> vmis_compressed(&compressed, c.knn);

  std::unique_ptr<SerenadeService> service;
  if (include_service) {
    ItemCatalog catalog;
    catalog.available.assign(c.train.num_items(), true);
    catalog.adult.assign(c.train.num_items(), false);
    ServiceConfig config;
    config.knn = c.knn;
    config.rules.filter_unavailable = false;
    config.rules.filter_adult = false;
    config.rules.max_items = c.top_n;
    auto created = SerenadeService::Create(index, catalog, config);
    if (!created.ok()) {
      return DiffDivergence{"service", "service", 0,
                            "service creation failed: " +
                                created.status().ToString()};
    }
    service = std::move(created).value();
  }

  for (size_t qi = 0; qi < c.queries.size(); ++qi) {
    const EvolvingSession& query = c.queries[qi];
    const std::vector<ScoredItem> expected = vmis.RecommendNext(query, c.top_n);

    std::vector<ScoredItem> no_opt = vmis_no_opt.RecommendNext(query, c.top_n);
    if (mutate && !no_opt.empty()) {
      no_opt.front().score += 0.25f;  // harness self-check: must be caught
    } else if (mutate) {
      no_opt.push_back(ScoredItem{0, 1.0f});
    }
    if (auto diff = CompareRanked(expected, no_opt)) {
      return DiffDivergence{"vmis-knn", "vmis-knn-no-opt", qi, *diff};
    }

    if (auto diff = CompareRanked(expected, vs.RecommendNext(query, c.top_n))) {
      return DiffDivergence{"vmis-knn", "vs-knn", qi, *diff};
    }

    // SIMD bit-identity: the same engine forced to the scalar kernels
    // must reproduce the active level's results exactly. (A no-op when
    // the build or CPU is scalar-only — both runs take the same path.)
    {
      simd::ScopedLevel scalar_level(simd::Level::kScalar);
      if (auto diff = CompareRanked(
              expected, vmis_scalar.RecommendNext(query, c.top_n))) {
        return DiffDivergence{"vmis-knn", "vmis-knn-scalar", qi, *diff};
      }
    }

    // The compressed index's fused decode path must be invisible to the
    // engine: same candidates, same float sequence, same bits.
    if (auto diff = CompareRanked(
            expected, vmis_compressed.RecommendNext(query, c.top_n))) {
      return DiffDivergence{"vmis-knn", "vmis-knn-compressed", qi, *diff};
    }

    if (qi == 0) {
      // Once per case (it builds three indexes): base + overlay delta
      // must reproduce the full rebuild bit for bit.
      if (auto diff = CheckOverlayOracle(c)) return diff;
    }

    if (service != nullptr) {
      // One micro-batch per query, every slot on the same session key:
      // in-batch chaining applies the clicks in order, so the last slot
      // predicts from the full evolving session.
      std::vector<RecommendRequest> batch(query.size());
      const std::string key = "diff-q" + std::to_string(qi);
      for (size_t i = 0; i < query.size(); ++i) {
        batch[i] = RecommendRequest{key, query[i], /*consent=*/true};
      }
      auto results = service->HandleUpdateAndRecommendBatch(batch);
      if (!results.back().ok()) {
        return DiffDivergence{"vmis-knn", "service-batch", qi,
                              "service slot failed: " +
                                  results.back().status().ToString()};
      }
      if (auto diff = CompareRanked(expected, results.back().value())) {
        return DiffDivergence{"vmis-knn", "service-batch", qi, *diff};
      }
    }
  }
  return std::nullopt;
}

DiffCase ShrinkDiffCase(const DiffCase& original, bool include_service) {
  DiffCase best = original;
  auto fails = [&](const DiffCase& candidate) {
    return CheckDiffCase(candidate, include_service).has_value();
  };

  // 1. Keep only the first failing query.
  if (best.queries.size() > 1) {
    if (auto divergence = CheckDiffCase(best, include_service)) {
      DiffCase candidate = best;
      candidate.queries = {best.queries[divergence->query_index]};
      if (fails(candidate)) best = std::move(candidate);
    }
  }

  // 2. Remove historical sessions, ddmin-style: large chunks first.
  for (size_t chunk = std::max<size_t>(best.train.num_sessions() / 2, 1);
       chunk >= 1; chunk /= 2) {
    bool removed = true;
    while (removed) {
      removed = false;
      const auto& sessions = best.train.sessions();
      for (size_t start = 0; start < sessions.size(); start += chunk) {
        std::vector<SessionData> kept;
        kept.reserve(sessions.size());
        for (size_t s = 0; s < sessions.size(); ++s) {
          if (s < start || s >= start + chunk) kept.push_back(sessions[s]);
        }
        if (kept.empty()) continue;
        DiffCase candidate = best;
        candidate.train = RebuildDataset(kept);
        if (fails(candidate)) {
          best = std::move(candidate);
          removed = true;
          break;
        }
      }
    }
    if (chunk == 1) break;
  }

  // 3. Drop query items one at a time.
  for (EvolvingSession& query : best.queries) {
    for (size_t i = 0; i < query.size() && query.size() > 1;) {
      DiffCase candidate = best;
      EvolvingSession shorter = query;
      shorter.erase(shorter.begin() + static_cast<ptrdiff_t>(i));
      candidate.queries.assign(1, shorter);
      if (fails(candidate)) {
        best.queries.assign(1, shorter);
        query = shorter;
      } else {
        ++i;
      }
    }
  }
  return best;
}

std::string FormatReproducer(const DiffCase& c, uint64_t seed,
                             const DiffDivergence& divergence) {
  std::ostringstream out;
  out << "=== differential divergence (seed " << seed << ") ===\n";
  out << divergence.engine_a << " vs " << divergence.engine_b << " on query #"
      << divergence.query_index << "\n";
  out << divergence.detail << "\n";
  out << "config: m=" << c.knn.m << " k=" << c.knn.k
      << " max_session_length=" << c.knn.max_session_length
      << " decay=" << DecayTypeName(c.knn.decay)
      << " match_weight=" << MatchWeightTypeName(c.knn.match_weight)
      << " idf=" << IdfWeightingName(c.knn.idf) << " exclude_session_items="
      << (c.knn.exclude_session_items ? "true" : "false")
      << " top_n=" << c.top_n << "\n";
  out << "history (" << c.train.num_sessions() << " sessions):\n";
  for (const SessionData& session : c.train.sessions()) {
    out << "  s" << session.id << " @" << session.end_time << ":";
    for (ItemId item : session.items) out << " " << item;
    out << "\n";
  }
  for (size_t qi = 0; qi < c.queries.size(); ++qi) {
    out << "query #" << qi << ":";
    for (ItemId item : c.queries[qi]) out << " " << item;
    out << "\n";
  }
  return out.str();
}

std::optional<std::string> RunDiffFuzz(const DiffSpec& spec, uint64_t seed,
                                       size_t cases, DiffFuzzStats* stats) {
  for (size_t i = 0; i < cases; ++i) {
    const uint64_t case_seed = seed + i;
    Rng rng(case_seed);
    DiffCase c = GenerateDiffCase(spec, &rng);
    if (stats != nullptr) {
      stats->cases += 1;
      stats->sessions += c.train.num_sessions() + c.queries.size();
      stats->queries += c.queries.size();
    }
    if (CheckDiffCase(c, spec.include_service).has_value()) {
      const DiffCase minimal = ShrinkDiffCase(c, spec.include_service);
      auto divergence = CheckDiffCase(minimal, spec.include_service);
      if (!divergence.has_value()) {
        divergence = CheckDiffCase(c, spec.include_service);
      }
      return FormatReproducer(minimal, case_seed, *divergence);
    }
  }
  return std::nullopt;
}

}  // namespace serenade
