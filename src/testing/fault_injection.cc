#include "testing/fault_injection.h"

#include <cassert>
#include <chrono>
#include <thread>

namespace serenade {

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kHttpConnect:
      return "http_connect";
    case FaultSite::kHttpSend:
      return "http_send";
    case FaultSite::kHttpRecv:
      return "http_recv";
    case FaultSite::kHttpLatency:
      return "http_latency";
    case FaultSite::kHttpTruncateBody:
      return "http_truncate_body";
    case FaultSite::kWalAppendFail:
      return "wal_append_fail";
    case FaultSite::kWalTornWrite:
      return "wal_torn_write";
    case FaultSite::kWalSyncFail:
      return "wal_sync_fail";
    case FaultSite::kWalReplayShortRead:
      return "wal_replay_short_read";
    case FaultSite::kStoreMultiPut:
      return "store_multi_put";
    case FaultSite::kBatchQueueFull:
      return "batch_queue_full";
    case FaultSite::kDeltaTruncate:
      return "delta_truncate";
    case FaultSite::kDeltaLineageMismatch:
      return "delta_lineage_mismatch";
    case FaultSite::kDeltaPublishCrash:
      return "delta_publish_crash";
    case FaultSite::kHttpAcceptOverload:
      return "http_accept_overload";
    case FaultSite::kHttpServerStallRead:
      return "http_server_stall_read";
    case FaultSite::kHttpServerCloseMidWrite:
      return "http_server_close_mid_write";
    case FaultSite::kReplShipTruncate:
      return "repl_ship_truncate";
    case FaultSite::kReplAckLost:
      return "repl_ack_lost";
    case FaultSite::kHandoffCutoverCrash:
      return "handoff_cutover_crash";
    case FaultSite::kEmbeddingLoadTruncate:
      return "load_embedding_truncate";
    case FaultSite::kNumSites:
      break;
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed), rng_(seed) {}

void FaultInjector::Arm(FaultSite site, FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[static_cast<size_t>(site)] = SiteState{rule, 0, 0};
}

bool FaultInjector::ShouldFire(FaultSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& state = sites_[static_cast<size_t>(site)];
  if (state.rule.probability <= 0.0) return false;
  ++state.rolls;
  if (state.fires >= state.rule.budget) return false;
  if (!rng_.Bernoulli(state.rule.probability)) return false;
  ++state.fires;
  return true;
}

uint64_t FaultInjector::LatencyMicros(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_[static_cast<size_t>(site)].rule.latency_micros;
}

uint64_t FaultInjector::RandBelow(uint64_t bound) {
  if (bound == 0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  return rng_.Below(bound);
}

uint64_t FaultInjector::fires(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_[static_cast<size_t>(site)].fires;
}

uint64_t FaultInjector::rolls(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_[static_cast<size_t>(site)].rolls;
}

ScopedFaultInjector::ScopedFaultInjector(uint64_t seed) : injector_(seed) {
  FaultInjector* expected = nullptr;
  const bool installed = FaultInjector::active_.compare_exchange_strong(
      expected, &injector_, std::memory_order_acq_rel);
  assert(installed && "nested ScopedFaultInjector");
  (void)installed;
}

ScopedFaultInjector::~ScopedFaultInjector() {
  FaultInjector::active_.store(nullptr, std::memory_order_release);
}

void FaultSleep(uint64_t micros) {
  if (micros == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace serenade
