// Virtual time for the BatchExecutor's coalescing window. Replaces
// "sleep and hope the scheduler cooperated" with an explicit protocol:
//
//   VirtualBatchClock clock;
//   BatchExecutor executor(&service, config, nullptr, &clock);
//   executor.Start();
//   ... submit the first request ...
//   clock.AwaitWaiters(1);            // worker parked in its window
//   ... submit k more requests ...
//   clock.AdvanceMicros(delay_us);    // window expires *now*
//   // -> exactly one batch of k+1 requests, every run, every machine
//
// Waiters poll the virtual deadline on a short real-time safety net (so
// a lost wakeup costs milliseconds, not a hang); the *outcome* — which
// requests coalesce into which batch — is fully determined by the
// protocol above, never by wall-clock races.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "serving/batch_executor.h"

namespace serenade {

class VirtualBatchClock : public BatchClock {
 public:
  /// BatchClock: waits until `pred()` or `micros` of *virtual* time
  /// passes (measured from the virtual now at entry).
  void WaitFor(std::condition_variable& cv,
               std::unique_lock<std::mutex>& lock, uint64_t micros,
               const std::function<bool()>& pred) override;

  /// Current virtual time.
  uint64_t NowMicros() const {
    return now_micros_.load(std::memory_order_acquire);
  }

  /// Moves virtual time forward; waiters whose window has expired return
  /// within one safety-net tick (~1 ms real time).
  void AdvanceMicros(uint64_t micros);

  /// Number of threads currently parked inside WaitFor.
  int waiters() const;

  /// Blocks until at least `count` threads are parked inside WaitFor —
  /// the handshake that makes "the worker is in its coalescing window"
  /// an observable state instead of a sleep-based guess.
  void AwaitWaiters(int count);

 private:
  std::atomic<uint64_t> now_micros_{0};
  mutable std::mutex mutex_;
  std::condition_variable waiters_cv_;
  int waiters_ = 0;
};

}  // namespace serenade
