// In-memory compressed session similarity index — the paper's future-work
// direction ("we intend to explore whether we can run our similarity
// computations on a compressed version of the index", Section 7).
//
// Posting lists and per-session item lists are stored delta + varint
// coded in two contiguous byte arenas:
//   * postings per item are descending session ids (descending recency),
//     encoded as first id + positive gaps;
//   * items per session are ascending item ids, encoded likewise.
// Timestamps stay flat (the query needs O(1) random access); they are
// however rebased to the minimum and stored as u32 deltas when they fit.
//
// The compressed index satisfies the same query concept as SessionIndex
// (see vmis_knn.h), decoding into caller-provided scratch buffers, so
// VmisKnnT<CompressedSessionIndex> runs Algorithm 2 unmodified. The
// ablation bench quantifies the memory/latency trade-off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/session_index.h"

namespace serenade {

/// Immutable compressed index built from a flat SessionIndex.
class CompressedSessionIndex {
 public:
  CompressedSessionIndex() = default;

  /// Compresses an existing index (the flat index can be discarded after).
  static CompressedSessionIndex FromIndex(const SessionIndex& index);

  size_t num_sessions() const { return timestamp_deltas_.size(); }
  size_t num_items() const {
    return item_offsets_.empty() ? 0 : item_offsets_.size() - 1;
  }
  size_t max_sessions_per_item() const { return max_sessions_per_item_; }

  /// Decodes the posting list of `item` into `scratch` (most recent
  /// session first) and returns a view of it.
  std::span<const SessionId> SessionsForItem(
      ItemId item, std::vector<SessionId>* scratch) const;

  /// Fused query path (DESIGN.md §11): one decode pass over the varint
  /// arena produces BOTH the session ids and their timestamps, so the
  /// intersection loop never re-touches the timestamp table per
  /// candidate. Results live in `scratch` until the next call.
  PostingsRef PostingsForItem(ItemId item, PostingScratch* scratch) const;

  /// Dense per-item IDF array for the vectorized scoring kernel.
  const float* IdfData() const { return item_idf_.data(); }

  /// Decodes the distinct-item list of `session` into `scratch`.
  std::span<const ItemId> ItemsForSession(SessionId session,
                                          std::vector<ItemId>* scratch) const;

  Timestamp SessionTimestamp(SessionId session) const {
    return base_timestamp_ + timestamp_deltas_[session];
  }

  double Idf(ItemId item) const {
    return item < item_idf_.size() ? item_idf_[item] : 0.0;
  }

  /// Resident bytes (compare with SessionIndex::MemoryBytes()).
  size_t MemoryBytes() const;

 private:
  size_t max_sessions_per_item_ = 0;
  Timestamp base_timestamp_ = 0;

  std::vector<uint64_t> item_offsets_;     // into postings_arena_
  std::vector<uint8_t> postings_arena_;    // delta-varint descending ids
  std::vector<uint64_t> session_offsets_;  // into items_arena_
  std::vector<uint8_t> items_arena_;       // delta-varint ascending ids
  std::vector<uint32_t> timestamp_deltas_;
  std::vector<float> item_idf_;
};

}  // namespace serenade
