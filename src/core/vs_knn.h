// The original Vector-Session-kNN (Algorithm 1): the paper's baseline
// implementation that "mimics VS-kNN's similarity computation by holding
// the historical data in hashmaps, and first identifying the m most recent
// sessions with at least one shared item before computing the
// similarities" (Section 5.1.3). Deliberately materialises the full
// matching session set — this is the comparison point that motivates the
// VMIS-kNN index.
//
// Tie-breaking, duplicate handling, and float accumulation order are
// aligned with VMIS-kNN, so on a dataset with dense ascending-end-time
// session ids (the Dataset::FromClicks shape) the two engines agree
// bit-for-bit on neighbours and — with config.vs_length_norm = false —
// on item scores too. The differential fuzzer holds them to exactly
// that.
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/recommender.h"
#include "core/vmis_knn.h"
#include "core/weighting.h"
#include "data/click_log.h"

namespace serenade {

/// VS-kNN recommender over hashmap-held historical data. Like VmisKnn,
/// one instance per thread (scratch buffers are reused across queries).
class VsKnn : public Recommender {
 public:
  /// Builds the hashmap representation from the training sessions.
  /// Honors the same KnnConfig as VmisKnn; per Algorithm 1 the item
  /// scores additionally carry the 1/|s| factor unless
  /// config.vs_length_norm is switched off.
  VsKnn(const Dataset& train, KnnConfig config);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;

  std::string Name() const override { return "vs-knn"; }

  /// Neighbour computation (Lines 5-7 of Algorithm 1), exposed for the
  /// microbenchmark and the VMIS-kNN equivalence tests.
  std::vector<Neighbor> NeighborSessions(const EvolvingSession& session);

  const KnnConfig& config() const { return config_; }

 private:
  void Truncate(const EvolvingSession& session);

  /// True when `session` (a sorted distinct item list) contains `item`.
  static bool Contains(const std::vector<ItemId>& items, ItemId item);

  KnnConfig config_;
  size_t num_sessions_ = 0;

  // Historical data in hashmaps, as the paper's baseline prescribes.
  // Per-session items are sorted distinct vectors — the same shape (and
  // iteration order) as SessionIndex::ItemsForSession.
  std::unordered_map<ItemId, std::vector<SessionId>> sessions_for_item_;
  std::unordered_map<SessionId, std::vector<ItemId>> items_for_session_;
  std::unordered_map<SessionId, Timestamp> session_timestamps_;
  std::unordered_map<ItemId, double> item_idf_;

  // Scratch.
  std::vector<ItemId> truncated_;
  // Deduplicated truncated items, most recent first, with their 1-based
  // position — the exact traversal order of VMIS-kNN's intersection loop.
  std::vector<std::pair<ItemId, uint32_t>> dedup_recent_first_;
  std::unordered_map<ItemId, uint32_t> max_position_;
};

}  // namespace serenade
