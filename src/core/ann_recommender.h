// The ANN serving engine: session -> query vector -> HNSW top-k, packaged
// behind the same Recommender interface as VMIS-kNN so the serving layer
// can pick an engine per request (`engine=vmis|ann`, or the gateway's A/B
// bucket). Stateless apart from per-call scratch; one instance is safe to
// construct per request against a pinned EmbeddingSnapshot.
#pragma once

#include <cstddef>

#include "core/embedding.h"
#include "core/hnsw.h"
#include "core/recommender.h"

namespace serenade {

struct AnnConfig {
  /// How many trailing session items feed the query vector.
  size_t window = 8;
  /// Per-step recency decay of those items' weights.
  float decay = 0.8f;
  /// Skip items already in the session (recommend *new* items, matching
  /// what the co-occurrence engine effectively surfaces).
  bool exclude_session_items = true;
  HnswConfig hnsw;
};

class AnnRecommender final : public Recommender {
 public:
  /// `embeddings` and `index` must outlive the recommender (they are the
  /// pinned snapshot's members).
  AnnRecommender(const ItemEmbeddings* embeddings, const HnswIndex* index,
                 const AnnConfig& config)
      : embeddings_(embeddings), index_(index), config_(config) {}

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;

  std::string Name() const override { return "ann-hnsw"; }

 private:
  const ItemEmbeddings* embeddings_;
  const HnswIndex* index_;
  AnnConfig config_;
};

}  // namespace serenade
