#include "core/variants.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <memory>
#include <tuple>

namespace serenade {

namespace {

// Truncates to the most recent max_session_length items.
std::vector<ItemId> Truncate(const EvolvingSession& session, size_t cap) {
  const size_t start = session.size() > cap ? session.size() - cap : 0;
  return std::vector<ItemId>(session.begin() + static_cast<ptrdiff_t>(start),
                             session.end());
}

// Last 1-based position per distinct item.
std::unordered_map<ItemId, uint32_t> MaxPositions(
    const std::vector<ItemId>& items) {
  std::unordered_map<ItemId, uint32_t> positions;
  for (size_t p = 0; p < items.size(); ++p) {
    positions[items[p]] = static_cast<uint32_t>(p + 1);
  }
  return positions;
}

float IdfFactor(const SessionIndex& index, IdfWeighting idf, ItemId item) {
  switch (idf) {
    case IdfWeighting::kNone:
      return 1.0f;
    case IdfWeighting::kLog:
      return static_cast<float>(index.Idf(item));
    case IdfWeighting::kOnePlusLog:
      return 1.0f + static_cast<float>(index.Idf(item));
  }
  return 1.0f;
}

// Shared final stage: given the k neighbours, produce item scores the
// VMIS way (no 1/|s| factor, configurable idf), fully materialised:
// emit (item, contribution) pairs, sort by item, aggregate, sort by score.
std::vector<ScoredItem> ScoreMaterialized(
    const SessionIndex& index, const KnnConfig& config,
    const std::vector<Neighbor>& neighbors,
    const std::unordered_map<ItemId, uint32_t>& max_positions, size_t len,
    size_t how_many) {
  std::vector<std::pair<ItemId, float>> contributions;
  for (const Neighbor& neighbor : neighbors) {
    const auto items = index.ItemsForSession(neighbor.session);
    uint32_t max_shared = 0;
    for (ItemId item : items) {
      auto it = max_positions.find(item);
      if (it != max_positions.end()) max_shared = std::max(max_shared,
                                                           it->second);
    }
    if (max_shared == 0) continue;
    const float weight =
        static_cast<float>(MatchWeight(config.match_weight, max_shared, len)) *
        neighbor.score;
    if (weight <= 0.0f) continue;
    for (ItemId item : items) {
      contributions.emplace_back(item,
                                 weight * IdfFactor(index, config.idf, item));
    }
  }

  std::sort(contributions.begin(), contributions.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<ScoredItem> aggregated;
  for (size_t i = 0; i < contributions.size();) {
    const ItemId item = contributions[i].first;
    float score = 0.0f;
    while (i < contributions.size() && contributions[i].first == item) {
      score += contributions[i].second;
      ++i;
    }
    if (config.exclude_session_items &&
        max_positions.find(item) != max_positions.end()) {
      continue;
    }
    aggregated.push_back(ScoredItem{item, score});
  }

  std::sort(aggregated.begin(), aggregated.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              return a.score > b.score ||
                     (a.score == b.score && a.item < b.item);
            });
  if (aggregated.size() > how_many) aggregated.resize(how_many);
  return aggregated;
}

// Recency sample + top-k over a materialised (session, similarity) table.
std::vector<Neighbor> SampleAndTopK(const SessionIndex& index,
                                    const KnnConfig& config,
                                    std::vector<Neighbor> table) {
  // ORDER BY timestamp DESC LIMIT m (materialised sort).
  std::sort(table.begin(), table.end(), [](const Neighbor& a,
                                           const Neighbor& b) {
    return a.timestamp > b.timestamp ||
           (a.timestamp == b.timestamp && a.session > b.session);
  });
  if (table.size() > config.m) table.resize(config.m);

  // ORDER BY similarity DESC LIMIT k (another materialised sort).
  std::sort(table.begin(), table.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
              return a.session > b.session;
            });
  if (table.size() > config.k) table.resize(config.k);
  (void)index;
  return table;
}

}  // namespace

// ---------------------------------------------------------------------------
// MaterializingVsKnn
// ---------------------------------------------------------------------------

MaterializingVsKnn::MaterializingVsKnn(const SessionIndex* index,
                                       KnnConfig config)
    : index_(index), config_(config) {
  assert(index_ != nullptr);
}

std::vector<ScoredItem> MaterializingVsKnn::RecommendNext(
    const EvolvingSession& session, size_t how_many) {
  const std::vector<ItemId> items =
      Truncate(session, config_.max_session_length);
  if (items.empty() || how_many == 0) return {};
  const size_t len = items.size();
  const auto max_positions = MaxPositions(items);

  // Stage 1: materialise the complete join result — every (matching
  // session, decay weight) pair across the FULL postings of every item.
  std::vector<std::pair<SessionId, float>> join_result;
  for (const auto& [item, position] : max_positions) {
    const auto postings = index_->SessionsForItem(item);
    const float decay =
        static_cast<float>(DecayWeight(config_.decay, position, len));
    for (SessionId candidate : postings) {
      join_result.emplace_back(candidate, decay);
    }
  }

  // Stage 2: hash-aggregate similarities over the full matching set.
  std::unordered_map<SessionId, float> similarity;
  similarity.reserve(join_result.size());
  for (const auto& [candidate, decay] : join_result) {
    similarity[candidate] += decay;
  }

  // Stage 3+4: recency sample of size m, then top-k.
  std::vector<Neighbor> table;
  table.reserve(similarity.size());
  for (const auto& [candidate, score] : similarity) {
    table.push_back(
        Neighbor{candidate, score, index_->SessionTimestamp(candidate)});
  }
  const std::vector<Neighbor> neighbors =
      SampleAndTopK(*index_, config_, std::move(table));

  return ScoreMaterialized(*index_, config_, neighbors, max_positions, len,
                           how_many);
}

// ---------------------------------------------------------------------------
// IncrementalVmisKnn
// ---------------------------------------------------------------------------

IncrementalVmisKnn::IncrementalVmisKnn(const SessionIndex* index,
                                       KnnConfig config)
    : index_(index), config_(config) {
  assert(index_ != nullptr);
}

void IncrementalVmisKnn::Reset() {
  current_items_.clear();
  arrangement_.clear();
}

size_t IncrementalVmisKnn::ArrangementBytes() const {
  size_t bytes = 0;
  for (const auto& [session, matches] : arrangement_) {
    (void)session;
    bytes += sizeof(SessionId) +
             matches.size() * (sizeof(ItemId) + sizeof(uint32_t) +
                               2 * sizeof(void*));  // node overhead estimate
  }
  return bytes;
}

void IncrementalVmisKnn::ApplyClick(ItemId item, uint32_t position) {
  // Only the postings of the new item are touched (the incremental
  // advantage), but the match is recorded per (candidate, item) so that
  // later updates — e.g. the same item reappearing at a newer position —
  // can be applied as differences (the indexed-intermediate cost).
  for (SessionId candidate : index_->SessionsForItem(item)) {
    arrangement_[candidate][item] = position;
  }
}

std::vector<ScoredItem> IncrementalVmisKnn::RecommendNext(
    const EvolvingSession& session, size_t how_many) {
  if (session.empty() || how_many == 0) return {};

  // Incremental path: the new session extends the current one by exactly
  // one click. Anything else forces a replay from scratch.
  const bool is_extension =
      session.size() == current_items_.size() + 1 &&
      std::equal(current_items_.begin(), current_items_.end(),
                 session.begin());
  if (is_extension) {
    current_items_.push_back(session.back());
    ApplyClick(session.back(), static_cast<uint32_t>(current_items_.size()));
  } else {
    Reset();
    current_items_.assign(session.begin(), session.end());
    for (size_t p = 0; p < current_items_.size(); ++p) {
      ApplyClick(current_items_[p], static_cast<uint32_t>(p + 1));
    }
  }

  // Query over the arrangement: derive similarities from the indexed
  // matches, then recency-sample and top-k as usual.
  const size_t len = current_items_.size();
  std::vector<Neighbor> table;
  table.reserve(arrangement_.size());
  for (const auto& [candidate, matches] : arrangement_) {
    float similarity = 0.0f;
    for (const auto& [item, position] : matches) {
      (void)item;
      similarity +=
          static_cast<float>(DecayWeight(config_.decay, position, len));
    }
    table.push_back(
        Neighbor{candidate, similarity, index_->SessionTimestamp(candidate)});
  }
  const std::vector<Neighbor> neighbors =
      SampleAndTopK(*index_, config_, std::move(table));

  std::unordered_map<ItemId, uint32_t> max_positions;
  for (size_t p = 0; p < current_items_.size(); ++p) {
    max_positions[current_items_[p]] = static_cast<uint32_t>(p + 1);
  }
  return ScoreMaterialized(*index_, config_, neighbors, max_positions, len,
                           how_many);
}

// ---------------------------------------------------------------------------
// BoxedVmisKnn
// ---------------------------------------------------------------------------

namespace {

// Boxed candidate record, individually heap-allocated like a JVM object.
struct BoxedCandidate {
  float score = 0.0f;
  Timestamp timestamp = 0;
};

}  // namespace

BoxedVmisKnn::BoxedVmisKnn(const SessionIndex* index, KnnConfig config)
    : index_(index), config_(config) {
  assert(index_ != nullptr);
}

std::vector<Neighbor> BoxedVmisKnn::NeighborSessions(
    const EvolvingSession& session) {
  truncated_ = Truncate(session, config_.max_session_length);
  std::vector<Neighbor> result;
  if (truncated_.empty()) return result;
  const size_t len = truncated_.size();
  const size_t m = config_.m;

  // Node-based structures allocated afresh per query: a red-black tree
  // keyed by session id for the candidate scores, and an ordered tree
  // keyed by recency for the eviction order (the TreeMap idiom).
  std::map<SessionId, std::unique_ptr<BoxedCandidate>> scores;
  std::map<std::pair<Timestamp, SessionId>, SessionId> by_recency;

  for (size_t reverse = 0; reverse < len; ++reverse) {
    const size_t position = len - 1 - reverse;
    const ItemId item = truncated_[position];
    bool duplicate = false;
    for (size_t later = position + 1; later < len; ++later) {
      if (truncated_[later] == item) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;

    const float decay = static_cast<float>(
        DecayWeight(config_.decay, position + 1, len));
    size_t scanned = 0;
    for (SessionId candidate : index_->SessionsForItem(item)) {
      if (++scanned > m) break;
      auto it = scores.find(candidate);
      if (it != scores.end()) {
        it->second->score += decay;
        continue;
      }
      const Timestamp candidate_time = index_->SessionTimestamp(candidate);
      if (scores.size() < m) {
        auto boxed = std::make_unique<BoxedCandidate>();
        boxed->score = decay;
        boxed->timestamp = candidate_time;
        scores.emplace(candidate, std::move(boxed));
        by_recency.emplace(std::make_pair(candidate_time, candidate),
                           candidate);
        continue;
      }
      const auto oldest = by_recency.begin();
      if (std::make_pair(candidate_time, candidate) > oldest->first) {
        scores.erase(oldest->second);
        by_recency.erase(oldest);
        auto boxed = std::make_unique<BoxedCandidate>();
        boxed->score = decay;
        boxed->timestamp = candidate_time;
        scores.emplace(candidate, std::move(boxed));
        by_recency.emplace(std::make_pair(candidate_time, candidate),
                           candidate);
      } else {
        break;  // postings sorted by recency: nothing later qualifies
      }
    }
  }

  // Top-k via an ordered tree as well (no flat heap).
  std::map<std::tuple<float, Timestamp, SessionId>, Neighbor> top_k;
  for (const auto& [candidate, boxed] : scores) {
    top_k.emplace(std::make_tuple(boxed->score, boxed->timestamp, candidate),
                  Neighbor{candidate, boxed->score, boxed->timestamp});
    if (top_k.size() > config_.k) top_k.erase(top_k.begin());
  }
  result.reserve(top_k.size());
  for (auto it = top_k.rbegin(); it != top_k.rend(); ++it) {
    result.push_back(it->second);
  }
  return result;
}

std::vector<ScoredItem> BoxedVmisKnn::RecommendNext(
    const EvolvingSession& session, size_t how_many) {
  if (how_many == 0) return {};
  const std::vector<Neighbor> neighbors = NeighborSessions(session);
  if (neighbors.empty()) return {};
  const size_t len = truncated_.size();
  const auto max_positions = MaxPositions(truncated_);

  // Tree-map aggregation for the item scores, too.
  std::map<ItemId, float> item_scores;
  for (const Neighbor& neighbor : neighbors) {
    const auto items = index_->ItemsForSession(neighbor.session);
    uint32_t max_shared = 0;
    for (ItemId item : items) {
      auto it = max_positions.find(item);
      if (it != max_positions.end()) {
        max_shared = std::max(max_shared, it->second);
      }
    }
    if (max_shared == 0) continue;
    const float weight =
        static_cast<float>(MatchWeight(config_.match_weight, max_shared, len)) *
        neighbor.score;
    if (weight <= 0.0f) continue;
    for (ItemId item : items) {
      item_scores[item] += weight * IdfFactor(*index_, config_.idf, item);
    }
  }

  std::vector<ScoredItem> result;
  result.reserve(item_scores.size());
  for (const auto& [item, score] : item_scores) {
    if (config_.exclude_session_items &&
        max_positions.find(item) != max_positions.end()) {
      continue;
    }
    result.push_back(ScoredItem{item, score});
  }
  std::sort(result.begin(), result.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              return a.score > b.score ||
                     (a.score == b.score && a.item < b.item);
            });
  if (result.size() > how_many) result.resize(how_many);
  return result;
}

// ---------------------------------------------------------------------------
// JoinAggregateVmisKnn
// ---------------------------------------------------------------------------

JoinAggregateVmisKnn::JoinAggregateVmisKnn(const SessionIndex* index,
                                           KnnConfig config)
    : index_(index), config_(config) {
  assert(index_ != nullptr);
}

std::vector<ScoredItem> JoinAggregateVmisKnn::RecommendNext(
    const EvolvingSession& session, size_t how_many) {
  const std::vector<ItemId> items =
      Truncate(session, config_.max_session_length);
  if (items.empty() || how_many == 0) return {};
  const size_t len = items.size();
  const auto max_positions = MaxPositions(items);

  // Subquery 1: SELECT candidate, decay FROM evolving JOIN postings —
  // the complete join result is materialised before any LIMIT applies,
  // exactly like the nested-subquery SQL formulation (the recency LIMIT m
  // only appears two subqueries later, after the aggregation).
  std::vector<std::pair<SessionId, float>> join_result;
  for (const auto& [item, position] : max_positions) {
    auto postings = index_->SessionsForItem(item);
    const float decay =
        static_cast<float>(DecayWeight(config_.decay, position, len));
    for (SessionId candidate : postings) {
      join_result.emplace_back(candidate, decay);
    }
  }

  // Subquery 2: GROUP BY candidate via sort + scan (materialised output).
  std::sort(join_result.begin(), join_result.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Neighbor> table;
  for (size_t i = 0; i < join_result.size();) {
    const SessionId candidate = join_result[i].first;
    float similarity = 0.0f;
    while (i < join_result.size() && join_result[i].first == candidate) {
      similarity += join_result[i].second;
      ++i;
    }
    table.push_back(
        Neighbor{candidate, similarity, index_->SessionTimestamp(candidate)});
  }

  // Subqueries 3 + 4: ORDER BY recency LIMIT m, ORDER BY score LIMIT k.
  const std::vector<Neighbor> neighbors =
      SampleAndTopK(*index_, config_, std::move(table));

  // Subquery 5: join with session items + final GROUP BY / ORDER BY.
  return ScoreMaterialized(*index_, config_, neighbors, max_positions, len,
                           how_many);
}

}  // namespace serenade
