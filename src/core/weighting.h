// The decay function pi (position weighting inside the evolving session)
// and the match-weight function lambda (weighting by the position of the
// most recent shared item), as defined in Sections 2 and 3 of the paper.
#pragma once

#include <cstddef>
#include <string>

namespace serenade {

/// Decay function pi applied to an item's 1-based insertion position
/// within the evolving session. All variants are non-decreasing in the
/// position: more recent items weigh more.
enum class DecayType {
  kSame,        ///< constant 1 (plain co-occurrence count)
  kLinear,      ///< pos / len — the paper's running example
  kQuadratic,   ///< (pos / len)^2
  kHarmonic,    ///< 1 / (len - pos + 1)
  kLogarithmic  ///< 1 / log2(len - pos + 2)
};

/// Match-weight function lambda applied to the most recent shared item
/// between the evolving session and a neighbour session.
enum class MatchWeightType {
  kConstant,            ///< 1 (ignore the match position)
  kPaperInsertionOrder, ///< 1 - 0.1 * x for insertion time x < 10, else 0
                        ///< (the paper's literal definition, Section 2)
  kStepsFromEnd         ///< 1 - 0.1 * step, step = 1 for the most recent
                        ///< item (the VS-kNN reference implementation's
                        ///< semantics; equals the paper's on length-<10
                        ///< coordinates mirrored)
};

/// IDF factor applied to item scores.
enum class IdfWeighting {
  kNone,       ///< no de-emphasis of popular items
  kLog,        ///< log(|H| / h_i) — VMIS-kNN's simplification (Section 3)
  kOnePlusLog  ///< 1 + log(|H| / h_i) — the original VS-kNN formulation
};

/// Evaluates pi for a 1-based position in a session of given length.
double DecayWeight(DecayType type, size_t position, size_t session_length);

/// Evaluates lambda for the 1-based insertion position of the most recent
/// shared item in a session of given length.
double MatchWeight(MatchWeightType type, size_t max_shared_position,
                   size_t session_length);

const char* DecayTypeName(DecayType type);
const char* MatchWeightTypeName(MatchWeightType type);
const char* IdfWeightingName(IdfWeighting idf);

}  // namespace serenade
