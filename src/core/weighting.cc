#include "core/weighting.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace serenade {

double DecayWeight(DecayType type, size_t position, size_t session_length) {
  assert(position >= 1 && position <= session_length);
  const double pos = static_cast<double>(position);
  const double len = static_cast<double>(session_length);
  switch (type) {
    case DecayType::kSame:
      return 1.0;
    case DecayType::kLinear:
      return pos / len;
    case DecayType::kQuadratic:
      return (pos / len) * (pos / len);
    case DecayType::kHarmonic:
      return 1.0 / (len - pos + 1.0);
    case DecayType::kLogarithmic:
      return 1.0 / std::log2(len - pos + 2.0);
  }
  return 1.0;
}

double MatchWeight(MatchWeightType type, size_t max_shared_position,
                   size_t session_length) {
  assert(max_shared_position >= 1 && max_shared_position <= session_length);
  switch (type) {
    case MatchWeightType::kConstant:
      return 1.0;
    case MatchWeightType::kPaperInsertionOrder: {
      const double x = static_cast<double>(max_shared_position);
      return x < 10.0 ? 1.0 - 0.1 * x : 0.0;
    }
    case MatchWeightType::kStepsFromEnd: {
      // step = 1 when the most recent evolving-session item is the match.
      const double step =
          static_cast<double>(session_length - max_shared_position + 1);
      return std::max(0.0, 1.0 - 0.1 * (step - 1.0));
    }
  }
  return 1.0;
}

const char* DecayTypeName(DecayType type) {
  switch (type) {
    case DecayType::kSame:
      return "same";
    case DecayType::kLinear:
      return "linear";
    case DecayType::kQuadratic:
      return "quadratic";
    case DecayType::kHarmonic:
      return "harmonic";
    case DecayType::kLogarithmic:
      return "logarithmic";
  }
  return "?";
}

const char* MatchWeightTypeName(MatchWeightType type) {
  switch (type) {
    case MatchWeightType::kConstant:
      return "constant";
    case MatchWeightType::kPaperInsertionOrder:
      return "paper_insertion_order";
    case MatchWeightType::kStepsFromEnd:
      return "steps_from_end";
  }
  return "?";
}

const char* IdfWeightingName(IdfWeighting idf) {
  switch (idf) {
    case IdfWeighting::kNone:
      return "none";
    case IdfWeighting::kLog:
      return "log";
    case IdfWeighting::kOnePlusLog:
      return "one_plus_log";
  }
  return "?";
}

}  // namespace serenade
