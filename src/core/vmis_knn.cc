#include "core/vmis_knn.h"

namespace serenade {

KnnConfig NoOptConfig(KnnConfig config) {
  config.early_stopping = false;
  config.heap_arity = 2;
  return config;
}

// Anchor the common instantiation in one translation unit.
template class VmisKnnT<SessionIndex>;

}  // namespace serenade
