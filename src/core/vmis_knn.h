// Vector-Multiplication-Indexed-Session-kNN (Algorithm 2 of the paper):
// index-based nearest-neighbour session recommendation with bounded
// intermediate state, early stopping, and octonary heaps.
//
// The query engine is a template over the index representation so that
// the same code runs against the flat CSR SessionIndex and the
// compressed CompressedSessionIndex (the paper's future-work question:
// "whether we can run our similarity computations on a compressed
// version of the index"). An index type must provide:
//   std::span<const SessionId> SessionsForItem(ItemId, std::vector<SessionId>* scratch) const;
//   std::span<const ItemId>    ItemsForSession(SessionId, std::vector<ItemId>* scratch) const;
//   Timestamp SessionTimestamp(SessionId) const;
//   double    Idf(ItemId) const;
//   size_t    max_sessions_per_item() const;
//   size_t    num_items() const;
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "common/dary_heap.h"
#include "common/types.h"
#include "core/recommender.h"
#include "core/session_index.h"
#include "core/weighting.h"

namespace serenade {

/// Hyperparameters and variant switches for the VS-kNN family.
struct KnnConfig {
  /// Sample size m: number of most recent candidate sessions considered
  /// (bounds both the per-item postings scanned and the candidate set).
  size_t m = 500;
  /// Number of nearest neighbour sessions k (k <= m).
  size_t k = 100;
  /// Evolving sessions are truncated to their most recent items before
  /// matching (Section 3: "the number of items in the evolving session,
  /// which we cap at a maximum value"). 10 aligns with lambda's horizon.
  size_t max_session_length = 10;
  DecayType decay = DecayType::kLinear;
  MatchWeightType match_weight = MatchWeightType::kStepsFromEnd;
  IdfWeighting idf = IdfWeighting::kLog;
  /// When true, recommendations never repeat items of the evolving session.
  bool exclude_session_items = false;
  /// Algorithm 1 scales VS-kNN item scores by 1/|s| (session-length
  /// normalisation). The factor is a positive per-query constant, so
  /// ranks never change; switching it off makes VS-kNN scores
  /// bit-comparable with VMIS-kNN, which the differential fuzzer relies
  /// on. VMIS-kNN ignores this flag.
  bool vs_length_norm = true;

  // --- variant switches (Figure 3(a) bottom / ablations) ---
  /// Early stopping on sorted per-item postings (Section 3).
  bool early_stopping = true;
  /// Heap arity: 8 = octonary (paper default), 2 = binary (no-opt), 4 for
  /// the ablation sweep.
  size_t heap_arity = 8;
};

/// A neighbour session with its similarity score.
struct Neighbor {
  SessionId session = kInvalidSession;
  float score = 0.0f;
  Timestamp timestamp = 0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// The paper's "VMIS-kNN-no-opt" variant: binary heaps, no early stopping.
KnnConfig NoOptConfig(KnnConfig config);

namespace internal {

// Candidate entry of the recency heap b_t: ordered by timestamp (ties by
// session id, making recency a total order) so the root is the *oldest*
// candidate — the eviction victim.
struct RecencyEntry {
  Timestamp timestamp;
  SessionId session;
};
struct OlderFirst {
  bool operator()(const RecencyEntry& a, const RecencyEntry& b) const {
    return a.timestamp < b.timestamp ||
           (a.timestamp == b.timestamp && a.session < b.session);
  }
};

// Ordering for the bounded top-k neighbour heap: a neighbour is "better"
// when its score is higher, ties broken by recency (Algorithm 2, line 38),
// then session id (total order for deterministic results).
struct NeighborLess {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.score != b.score) return a.score < b.score;
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    return a.session < b.session;
  }
};

// Ordering for the final item top-N: higher score wins, ties broken by
// smaller item id for determinism.
struct ScoredItemLess {
  bool operator()(const ScoredItem& a, const ScoredItem& b) const {
    return a.score < b.score || (a.score == b.score && a.item > b.item);
  }
};

}  // namespace internal

/// VMIS-kNN recommender over an index representation `Index`. Shares an
/// immutable index (thread-safe for concurrent reads); each VmisKnnT
/// instance holds per-query scratch buffers and must therefore be used by
/// one thread at a time — create one instance per serving worker.
template <typename Index>
class VmisKnnT : public Recommender {
 public:
  /// `index` must outlive the recommender. config.m must not exceed the
  /// index's max_sessions_per_item (postings beyond it were not retained).
  VmisKnnT(const Index* index, KnnConfig config)
      : index_(index), config_(config) {
    assert(index_ != nullptr);
    assert(config_.m > 0 && config_.k > 0);
    assert(config_.k <= config_.m);
    assert(config_.heap_arity == 2 || config_.heap_arity == 4 ||
           config_.heap_arity == 8);
  }

  std::string Name() const override {
    if (!config_.early_stopping && config_.heap_arity == 2) {
      return "vmis-knn-no-opt";
    }
    return "vmis-knn";
  }

  /// The neighbour computation of Algorithm 2 (exposed for tests and the
  /// index microbenchmark, which measures exactly this function).
  /// Returns up to k neighbours in descending (score, timestamp) order.
  std::vector<Neighbor> NeighborSessions(const EvolvingSession& session) {
    Truncate(session);
    std::vector<Neighbor> neighbors;
    if (truncated_.empty()) return neighbors;
    BumpEpoch();  // one epoch per query; RecommendNext reuses it

    if (config_.early_stopping) {
      switch (config_.heap_arity) {
        case 2:
          NeighborSessionsImpl<2, true>(truncated_, &neighbors);
          break;
        case 4:
          NeighborSessionsImpl<4, true>(truncated_, &neighbors);
          break;
        default:
          NeighborSessionsImpl<8, true>(truncated_, &neighbors);
          break;
      }
    } else {
      switch (config_.heap_arity) {
        case 2:
          NeighborSessionsImpl<2, false>(truncated_, &neighbors);
          break;
        case 4:
          NeighborSessionsImpl<4, false>(truncated_, &neighbors);
          break;
        default:
          NeighborSessionsImpl<8, false>(truncated_, &neighbors);
          break;
      }
    }
    return neighbors;
  }

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override {
    std::vector<ScoredItem> result;
    if (how_many == 0) return result;
    const std::vector<Neighbor> neighbors = NeighborSessions(session);
    if (neighbors.empty()) return result;

    const size_t len = truncated_.size();

    // The scoring pass touches every item of every neighbour session —
    // the hottest loop of the whole query. Epoch-stamped dense arrays
    // replace the hash maps here (see BumpEpoch, called by
    // NeighborSessions above): a lookup is one indexed load plus a stamp
    // compare, and "clearing" between queries is a single epoch
    // increment.

    // Last (1-based) occurrence position of each evolving-session item,
    // for the max(omega(s) ⊙ n) lookup of the scoring pass. Items absent
    // from the index can never match a neighbour item, so they are
    // skipped rather than stored.
    const size_t num_items = item_epoch_.size();
    for (size_t p = 0; p < len; ++p) {
      const ItemId item = truncated_[p];
      if (item < num_items) {
        position_epoch_[item] = epoch_;
        max_position_[item] = static_cast<uint32_t>(p + 1);
      }
    }

    touched_items_.clear();
    for (const Neighbor& neighbor : neighbors) {
      const std::span<const ItemId> neighbor_items =
          index_->ItemsForSession(neighbor.session, &items_scratch_);

      uint32_t max_shared_position = 0;
      for (const ItemId item : neighbor_items) {
        if (position_epoch_[item] == epoch_) {
          max_shared_position = std::max(max_shared_position,
                                         max_position_[item]);
        }
      }
      if (max_shared_position == 0) continue;  // defensive; cannot happen

      const float weight =
          static_cast<float>(
              MatchWeight(config_.match_weight, max_shared_position, len)) *
          neighbor.score;
      if (weight <= 0.0f) continue;

      for (const ItemId item : neighbor_items) {
        float idf_factor = 1.0f;
        switch (config_.idf) {
          case IdfWeighting::kNone:
            break;
          case IdfWeighting::kLog:
            idf_factor = static_cast<float>(index_->Idf(item));
            break;
          case IdfWeighting::kOnePlusLog:
            idf_factor = 1.0f + static_cast<float>(index_->Idf(item));
            break;
        }
        if (item_epoch_[item] != epoch_) {
          item_epoch_[item] = epoch_;
          item_scores_[item] = 0.0f;
          touched_items_.push_back(item);
        }
        item_scores_[item] += weight * idf_factor;
      }
    }

    BoundedTopK<ScoredItem, 8, internal::ScoredItemLess> top_n(how_many);
    for (const ItemId item : touched_items_) {
      if (config_.exclude_session_items && position_epoch_[item] == epoch_) {
        continue;
      }
      top_n.Offer(ScoredItem{item, item_scores_[item]});
    }
    return top_n.TakeSortedDescending();
  }

  const KnnConfig& config() const { return config_; }

 private:
  template <size_t Arity, bool EarlyStop>
  void NeighborSessionsImpl(const std::vector<ItemId>& items,
                            std::vector<Neighbor>* neighbors) {
    const size_t m = config_.m;
    const size_t len = items.size();

    // Candidate scores live in the epoch-stamped dense array (indexed by
    // session id): membership is `stamp == epoch_`, eviction stamps 0, and
    // touched_sessions_ remembers which ids to visit in the top-k loop.
    touched_sessions_.clear();
    size_t live = 0;
    DaryHeap<internal::RecencyEntry, Arity, internal::OlderFirst>
        recency_heap;  // b_t
    recency_heap.Reserve(m);

    // Item intersection loop: most recent items first (reverse insertion
    // order). Duplicate items are only processed at their most recent
    // (highest-decay) position.
    for (size_t reverse = 0; reverse < len; ++reverse) {
      const size_t position = len - 1 - reverse;  // 0-based
      const ItemId item = items[position];

      // Dedup (hashset d of the paper): with capped session lengths a
      // linear scan over the already-processed suffix beats hashing.
      bool duplicate = false;
      for (size_t later = position + 1; later < len; ++later) {
        if (items[later] == item) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;

      const std::span<const SessionId> postings =
          index_->SessionsForItem(item, &postings_scratch_);
      const float decay = static_cast<float>(
          DecayWeight(config_.decay, position + 1, len));  // pi_i

      size_t scanned = 0;
      for (const SessionId candidate : postings) {
        if (++scanned > m) break;  // index may retain more than query m
        if (session_epoch_[candidate] == epoch_) {
          session_scores_[candidate] += decay;
          continue;
        }
        const Timestamp candidate_time =
            index_->SessionTimestamp(candidate);
        if (live < m) {
          session_epoch_[candidate] = epoch_;
          session_scores_[candidate] = decay;
          touched_sessions_.push_back(candidate);
          ++live;
          recency_heap.Push(
              internal::RecencyEntry{candidate_time, candidate});
          continue;
        }
        const internal::RecencyEntry oldest = recency_heap.Top();
        // Recency is a total order (timestamp, then session id — ids
        // ascend with end time): this makes early stopping exact even
        // when several sessions share a second-resolution timestamp.
        const bool more_recent =
            candidate_time > oldest.timestamp ||
            (candidate_time == oldest.timestamp &&
             candidate > oldest.session);
        if (more_recent) {
          session_epoch_[oldest.session] = 0;  // evict
          session_epoch_[candidate] = epoch_;
          session_scores_[candidate] = decay;
          touched_sessions_.push_back(candidate);
          recency_heap.ReplaceTop(
              internal::RecencyEntry{candidate_time, candidate});
        } else if (EarlyStop) {
          // Postings are sorted by descending recency: every remaining
          // session is older and cannot displace the current oldest
          // candidate (Algorithm 2, line 32).
          break;
        }
      }
    }

    // Top-k similarity loop. Evicted candidates stay in the touched list
    // with a dead stamp and are skipped here.
    BoundedTopK<Neighbor, Arity, internal::NeighborLess> top_k(config_.k);
    for (const SessionId session : touched_sessions_) {
      if (session_epoch_[session] != epoch_) continue;
      top_k.Offer(Neighbor{session, session_scores_[session],
                           index_->SessionTimestamp(session)});
    }
    *neighbors = top_k.TakeSortedDescending();
  }

  /// Truncates the evolving session to the configured cap, most recent
  /// items kept; result goes to truncated_.
  void Truncate(const EvolvingSession& session) {
    truncated_.clear();
    const size_t start = session.size() > config_.max_session_length
                             ? session.size() - config_.max_session_length
                             : 0;
    truncated_.assign(session.begin() + static_cast<ptrdiff_t>(start),
                      session.end());
  }

  /// Grows the dense scoring arrays to the index's item and session
  /// universes and starts a new query epoch. Stamp 0 means "never
  /// touched" (or evicted), so epoch_ skips 0: on uint32 wrap-around the
  /// stamps are zeroed and the epoch restarts at 1, preventing a stale
  /// stamp from ever aliasing a live one.
  void BumpEpoch() {
    const size_t num_items = index_->num_items();
    if (item_epoch_.size() < num_items) {
      item_scores_.resize(num_items, 0.0f);
      item_epoch_.resize(num_items, 0);
      max_position_.resize(num_items, 0);
      position_epoch_.resize(num_items, 0);
    }
    const size_t num_sessions = index_->num_sessions();
    if (session_epoch_.size() < num_sessions) {
      session_scores_.resize(num_sessions, 0.0f);
      session_epoch_.resize(num_sessions, 0);
    }
    if (++epoch_ == 0) {
      std::fill(item_epoch_.begin(), item_epoch_.end(), 0u);
      std::fill(position_epoch_.begin(), position_epoch_.end(), 0u);
      std::fill(session_epoch_.begin(), session_epoch_.end(), 0u);
      epoch_ = 1;
    }
  }

  const Index* index_;
  KnnConfig config_;

  // Per-query scratch, reused across calls to avoid allocation churn.
  std::vector<ItemId> truncated_;
  std::vector<SessionId> postings_scratch_;
  std::vector<ItemId> items_scratch_;

  // Epoch-stamped dense scoring state (see BumpEpoch): an entry is live
  // only when its stamp equals epoch_, so per-query clearing is one
  // increment instead of a hash-map clear. The price is O(|I| + |H|)
  // memory per recommender instance (16 bytes/item + 8 bytes/session), a
  // deliberate serving-side trade against the paper's purely m-bounded
  // per-query state — clustered lookups in the query hot loops become
  // single indexed loads.
  std::vector<float> session_scores_;    // r
  std::vector<uint32_t> session_epoch_;
  std::vector<SessionId> touched_sessions_;
  std::vector<float> item_scores_;       // d
  std::vector<uint32_t> item_epoch_;
  std::vector<uint32_t> max_position_;   // omega lookup
  std::vector<uint32_t> position_epoch_;
  std::vector<ItemId> touched_items_;
  uint32_t epoch_ = 0;
};

/// The production instantiation over the flat CSR index.
using VmisKnn = VmisKnnT<SessionIndex>;

}  // namespace serenade
