// Vector-Multiplication-Indexed-Session-kNN (Algorithm 2 of the paper):
// index-based nearest-neighbour session recommendation with bounded
// intermediate state, early stopping, and octonary heaps.
//
// The query engine is a template over the index representation so that
// the same code runs against the flat CSR SessionIndex and the
// compressed CompressedSessionIndex (the paper's future-work question:
// "whether we can run our similarity computations on a compressed
// version of the index"). An index type must provide:
//   std::span<const SessionId> SessionsForItem(ItemId, std::vector<SessionId>* scratch) const;
//   std::span<const ItemId>    ItemsForSession(SessionId, std::vector<ItemId>* scratch) const;
//   Timestamp SessionTimestamp(SessionId) const;
//   double    Idf(ItemId) const;
//   size_t    max_sessions_per_item() const;
//   size_t    num_items() const;
// and may additionally provide the SoA fast-path concept (DESIGN.md §11)
// — each detected with `requires` and used when present:
//   PostingsRef PostingsForItem(ItemId, PostingScratch*) const;  // fused ids+timestamps
//   const float* IdfData() const;        // dense idf -> vectorized scoring
//   void PrefetchPostings(ItemId) const; // issued one query item ahead
//
// The hot loops dispatch to the SIMD kernels in core/knn_kernels.h;
// every kernel is bit-identical to its scalar reference, so results are
// independent of the active SIMD level (the differential oracle checks
// this, see testing/differential.h).
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/dary_heap.h"
#include "common/types.h"
#include "core/knn_kernels.h"
#include "core/recommender.h"
#include "core/session_index.h"
#include "core/weighting.h"

namespace serenade {

/// Hyperparameters and variant switches for the VS-kNN family.
struct KnnConfig {
  /// Sample size m: number of most recent candidate sessions considered
  /// (bounds both the per-item postings scanned and the candidate set).
  size_t m = 500;
  /// Number of nearest neighbour sessions k (k <= m).
  size_t k = 100;
  /// Evolving sessions are truncated to their most recent items before
  /// matching (Section 3: "the number of items in the evolving session,
  /// which we cap at a maximum value"). 10 aligns with lambda's horizon.
  size_t max_session_length = 10;
  DecayType decay = DecayType::kLinear;
  MatchWeightType match_weight = MatchWeightType::kStepsFromEnd;
  IdfWeighting idf = IdfWeighting::kLog;
  /// When true, recommendations never repeat items of the evolving session.
  bool exclude_session_items = false;
  /// Algorithm 1 scales VS-kNN item scores by 1/|s| (session-length
  /// normalisation). The factor is a positive per-query constant, so
  /// ranks never change; switching it off makes VS-kNN scores
  /// bit-comparable with VMIS-kNN, which the differential fuzzer relies
  /// on. VMIS-kNN ignores this flag.
  bool vs_length_norm = true;

  // --- variant switches (Figure 3(a) bottom / ablations) ---
  /// Early stopping on sorted per-item postings (Section 3).
  bool early_stopping = true;
  /// Heap arity: 8 = octonary (paper default), 2 = binary (no-opt), 4 for
  /// the ablation sweep.
  size_t heap_arity = 8;
};

/// A neighbour session with its similarity score.
struct Neighbor {
  SessionId session = kInvalidSession;
  float score = 0.0f;
  Timestamp timestamp = 0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// The paper's "VMIS-kNN-no-opt" variant: binary heaps, no early stopping.
KnnConfig NoOptConfig(KnnConfig config);

namespace internal {

// Ordering for the bounded top-k neighbour heap: a neighbour is "better"
// when its score is higher, ties broken by recency (Algorithm 2, line 38),
// then session id (total order for deterministic results).
struct NeighborLess {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.score != b.score) return a.score < b.score;
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    return a.session < b.session;
  }
};

// Ordering for the final item top-N: higher score wins, ties broken by
// smaller item id for determinism.
struct ScoredItemLess {
  bool operator()(const ScoredItem& a, const ScoredItem& b) const {
    return a.score < b.score || (a.score == b.score && a.item > b.item);
  }
};

// ---------------------------------------------------------------------------
// Packed-key orderings for the VMIS hot heaps (DESIGN.md §11). The
// multi-field comparators above are branchy and dominate the sift-down
// and final-sort costs; packing each tuple into one unsigned integer
// turns every comparison into a single machine compare while keeping the
// EXACT same total order. Score bits may stand in for score values
// because every achievable score is a finite non-negative float (sums
// and products of positive decay weights and non-negative idf factors —
// never -0.0, never NaN), and IEEE bit patterns of such floats order
// identically to their values; ScoreKeyBits still applies the general
// monotone sign-flip embedding for defence in depth.
// ---------------------------------------------------------------------------

/// Monotone embedding of a (non-NaN) float into unsigned 32-bit order.
inline uint32_t ScoreKeyBits(float score) {
  uint32_t bits;
  std::memcpy(&bits, &score, sizeof(bits));
  return bits ^
         (static_cast<uint32_t>(static_cast<int32_t>(bits) >> 31) |
          0x80000000u);
}

inline float ScoreFromKeyBits(uint32_t bits) {
  bits ^= (bits & 0x80000000u) ? 0x80000000u : 0xffffffffu;
  float score;
  std::memcpy(&score, &bits, sizeof(score));
  return score;
}

/// Recency key of the candidate heap b_t: (timestamp << 32) | session.
/// std::less = OlderFirst — the root is the oldest candidate, ties by
/// session id (a total order, ids ascend with end time).
using RecencyKey = unsigned __int128;
inline RecencyKey MakeRecencyKey(Timestamp timestamp, SessionId session) {
  return (static_cast<RecencyKey>(timestamp) << 32) | session;
}
inline SessionId RecencyKeySession(RecencyKey key) {
  return static_cast<SessionId>(static_cast<uint32_t>(key));
}

/// Neighbour key: (score bits << 96) | (timestamp << 32) | session.
/// std::less = NeighborLess.
using NeighborKey = unsigned __int128;
inline NeighborKey MakeNeighborKey(float score, Timestamp timestamp,
                                   SessionId session) {
  return (static_cast<NeighborKey>(ScoreKeyBits(score)) << 96) |
         (static_cast<NeighborKey>(timestamp) << 32) | session;
}
inline Neighbor NeighborFromKey(NeighborKey key) {
  return Neighbor{static_cast<SessionId>(static_cast<uint32_t>(key)),
                  ScoreFromKeyBits(static_cast<uint32_t>(key >> 96)),
                  static_cast<Timestamp>(key >> 32)};
}

/// Item key: (score bits << 32) | ~item. std::less = ScoredItemLess
/// (score ties are won by the SMALLER item id, hence the complement).
using ItemKey = uint64_t;
inline ItemKey MakeItemKey(float score, ItemId item) {
  return (static_cast<ItemKey>(ScoreKeyBits(score)) << 32) |
         static_cast<uint32_t>(~item);
}
inline ScoredItem ScoredItemFromKey(ItemKey key) {
  return ScoredItem{~static_cast<ItemId>(static_cast<uint32_t>(key)),
                    ScoreFromKeyBits(static_cast<uint32_t>(key >> 32))};
}

}  // namespace internal

/// VMIS-kNN recommender over an index representation `Index`. Shares an
/// immutable index (thread-safe for concurrent reads); each VmisKnnT
/// instance holds per-query scratch buffers and must therefore be used by
/// one thread at a time — create one instance per serving worker.
template <typename Index>
class VmisKnnT : public Recommender {
 public:
  /// `index` must outlive the recommender. config.m must not exceed the
  /// index's max_sessions_per_item (postings beyond it were not retained).
  VmisKnnT(const Index* index, KnnConfig config)
      : index_(index), config_(config) {
    assert(index_ != nullptr);
    assert(config_.m > 0 && config_.k > 0);
    assert(config_.k <= config_.m);
    assert(config_.heap_arity == 2 || config_.heap_arity == 4 ||
           config_.heap_arity == 8);
  }

  std::string Name() const override {
    if (!config_.early_stopping && config_.heap_arity == 2) {
      return "vmis-knn-no-opt";
    }
    return "vmis-knn";
  }

  /// The neighbour computation of Algorithm 2 (exposed for tests and the
  /// index microbenchmark, which measures exactly this function).
  /// Returns up to k neighbours in descending (score, timestamp) order.
  std::vector<Neighbor> NeighborSessions(const EvolvingSession& session) {
    Truncate(session);
    std::vector<Neighbor> neighbors;
    if (truncated_.empty()) return neighbors;
    BumpEpoch();  // one epoch per query; RecommendNext reuses it

    if (config_.early_stopping) {
      switch (config_.heap_arity) {
        case 2:
          NeighborSessionsImpl<2, true>(truncated_, &neighbors);
          break;
        case 4:
          NeighborSessionsImpl<4, true>(truncated_, &neighbors);
          break;
        default:
          NeighborSessionsImpl<8, true>(truncated_, &neighbors);
          break;
      }
    } else {
      switch (config_.heap_arity) {
        case 2:
          NeighborSessionsImpl<2, false>(truncated_, &neighbors);
          break;
        case 4:
          NeighborSessionsImpl<4, false>(truncated_, &neighbors);
          break;
        default:
          NeighborSessionsImpl<8, false>(truncated_, &neighbors);
          break;
      }
    }
    return neighbors;
  }

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override {
    std::vector<ScoredItem> result;
    if (how_many == 0) return result;
    const std::vector<Neighbor> neighbors = NeighborSessions(session);
    if (neighbors.empty()) return result;

    const size_t len = truncated_.size();

    // The scoring pass touches every item of every neighbour session —
    // the hottest loop of the whole query. Epoch-stamped dense slot
    // arrays replace the hash maps here (see BumpEpoch, called by
    // NeighborSessions above): a lookup is one indexed load plus a stamp
    // compare, and "clearing" between queries is a single epoch
    // increment.

    // Last (1-based) occurrence position of each evolving-session item,
    // for the max(omega(s) ⊙ n) lookup of the scoring pass. Items absent
    // from the index can never match a neighbour item, so they are
    // skipped rather than stored.
    const size_t num_items = item_score_slots_.size();
    for (size_t p = 0; p < len; ++p) {
      const ItemId item = truncated_[p];
      if (item < num_items) {
        item_position_slots_[item] =
            simd::ItemPositionSlot{epoch_, static_cast<uint32_t>(p + 1)};
      }
    }

    touched_items_.clear();
    for (const Neighbor& neighbor : neighbors) {
      const std::span<const ItemId> neighbor_items =
          index_->ItemsForSession(neighbor.session, &items_scratch_);

      const uint32_t max_shared_position = simd::MaxSharedPosition(
          neighbor_items.data(), neighbor_items.size(),
          item_position_slots_.data(), epoch_);
      if (max_shared_position == 0) continue;  // defensive; cannot happen

      const float weight =
          static_cast<float>(
              MatchWeight(config_.match_weight, max_shared_position, len)) *
          neighbor.score;
      if (weight <= 0.0f) continue;

      // Neighbour item lists are distinct by construction (sorted-unique
      // at index build) — a precondition of the vectorized kernel, whose
      // per-block first-touch detection would double-count duplicates.
      if constexpr (requires { index_->IdfData(); }) {
        simd::AccumulateItemScores(neighbor_items.data(),
                                   neighbor_items.size(), weight, config_.idf,
                                   index_->IdfData(), epoch_,
                                   item_score_slots_.data(), &touched_items_);
      } else {
        // Indexes without a dense float idf array (the updatable overlay
        // computes IDF live from frequency counts) keep the scalar path.
        for (const ItemId item : neighbor_items) {
          float idf_factor = 1.0f;
          switch (config_.idf) {
            case IdfWeighting::kNone:
              break;
            case IdfWeighting::kLog:
              idf_factor = static_cast<float>(index_->Idf(item));
              break;
            case IdfWeighting::kOnePlusLog:
              idf_factor = 1.0f + static_cast<float>(index_->Idf(item));
              break;
          }
          simd::ItemScoreSlot& slot = item_score_slots_[item];
          if (slot.stamp != epoch_) {
            slot.stamp = epoch_;
            slot.score = 0.0f;
            touched_items_.push_back(item);
          }
          slot.score += weight * idf_factor;
        }
      }
    }

    // Final top-n over the touched items: fill phase, then the
    // beats-the-weakest block mask (full ScoredItemLess predicate —
    // higher score, ties won by smaller item id). Session-item exclusion
    // is checked per surviving lane; the mask can only over-approve, and
    // Offer re-checks the threshold.
    BoundedTopK<internal::ItemKey, 8> top_n(how_many);
    const ItemId* touched = touched_items_.data();
    const size_t num_touched = touched_items_.size();
    size_t next = 0;
    while (next < num_touched && !top_n.full()) {
      const ItemId item = touched[next++];
      if (config_.exclude_session_items &&
          item_position_slots_[item].stamp == epoch_) {
        continue;
      }
      top_n.Offer(
          internal::MakeItemKey(item_score_slots_[item].score, item));
    }
    while (next < num_touched) {
      const size_t block = std::min(simd::kBlockLanes, num_touched - next);
      const ScoredItem weakest = internal::ScoredItemFromKey(top_n.Weakest());
      uint32_t mask =
          simd::BeatsItemMask(touched + next, block, item_score_slots_.data(),
                              weakest.score, weakest.item);
      while (mask != 0) {
        const ItemId item =
            touched[next + static_cast<size_t>(std::countr_zero(mask))];
        mask &= mask - 1;
        if (config_.exclude_session_items &&
            item_position_slots_[item].stamp == epoch_) {
          continue;
        }
        top_n.Offer(
            internal::MakeItemKey(item_score_slots_[item].score, item));
      }
      next += block;
    }
    const std::vector<internal::ItemKey> sorted_keys =
        top_n.TakeSortedDescending();
    result.reserve(sorted_keys.size());
    for (const internal::ItemKey key : sorted_keys) {
      result.push_back(internal::ScoredItemFromKey(key));
    }
    return result;
  }

  const KnnConfig& config() const { return config_; }

 private:
  template <size_t Arity, bool EarlyStop>
  void NeighborSessionsImpl(const std::vector<ItemId>& items,
                            std::vector<Neighbor>* neighbors) {
    const size_t m = config_.m;
    const size_t len = items.size();

    // Candidate state lives in the epoch-stamped dense slot array
    // (indexed by session id): membership is `stamp == epoch_`, eviction
    // stamps 0, and touched_sessions_ remembers which ids to visit in the
    // top-k loop.
    //
    // The recency heap b_t exists to answer one question — "which live
    // candidate is oldest?" — and that question is only ever asked once
    // the candidate set is full. So it is not maintained incrementally:
    // inserts append their packed keys to a plain vector (recency_keys_)
    // and one Floyd heapify runs at the moment `live` reaches m; queries
    // whose candidate set never fills skip the ordering work entirely.
    // Exact, because eviction decisions read only Top(), the unique
    // minimum under the (timestamp, session) total order, which is
    // independent of insertion order.
    touched_sessions_.clear();
    recency_keys_.clear();
    recency_keys_.reserve(m);
    size_t live = 0;
    bool heap_built = false;
    DaryHeap<internal::RecencyKey, Arity> recency_heap;

    // Item intersection loop: most recent items first (reverse insertion
    // order). Duplicate items are only processed at their most recent
    // (highest-decay) position.
    for (size_t reverse = 0; reverse < len; ++reverse) {
      const size_t position = len - 1 - reverse;  // 0-based
      const ItemId item = items[position];

      // Dedup (hashset d of the paper): with capped session lengths a
      // linear scan over the already-processed suffix beats hashing.
      bool duplicate = false;
      for (size_t later = position + 1; later < len; ++later) {
        if (items[later] == item) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;

      // Hint the next query item's posting arrays into cache while this
      // item's list is being scanned.
      if constexpr (requires { index_->PrefetchPostings(item); }) {
        if (position > 0) index_->PrefetchPostings(items[position - 1]);
      }

      const PostingsRef postings = GetPostings(item);
      const float decay = static_cast<float>(
          DecayWeight(config_.decay, position + 1, len));  // pi_i
      const size_t limit =
          std::min(postings.size, m);  // index may retain more than query m

      if (touched_sessions_.empty()) {
        // First non-empty posting list of the query: every candidate is
        // new and limit <= m, so all are admitted — a straight-line
        // stamping loop with no membership checks.
        for (size_t i = 0; i < limit; ++i) {
          const SessionId candidate = postings.sessions[i];
          session_slots_[candidate] =
              simd::SessionSlot{epoch_, decay, postings.timestamps[i]};
          touched_sessions_.push_back(candidate);
          recency_keys_.push_back(
              internal::MakeRecencyKey(postings.timestamps[i], candidate));
        }
        live = limit;
        if (live == m) {
          recency_heap.Assign(std::move(recency_keys_));
          recency_heap.Heapify();
          heap_built = true;
        }
        continue;
      }

      size_t idx = 0;
      // Fill regime: while a whole block of inserts could still be
      // admitted (live + lanes <= m), no eviction can occur inside the
      // block, so the FillRun kernel decides all lanes with ONE gathered
      // membership test — eight independent slot loads in flight instead
      // of the per-candidate load-check-store chain exposing its misses
      // one at a time.
      while (idx + simd::kBlockLanes <= limit &&
             live + simd::kBlockLanes <= m) {
        const size_t prefetch_end =
            std::min(idx + 2 * simd::kBlockLanes, limit);
        for (size_t p = idx + simd::kBlockLanes; p < prefetch_end; ++p) {
          __builtin_prefetch(&session_slots_[postings.sessions[p]], 1);
        }
        live += simd::FillRun(postings.sessions + idx,
                              postings.timestamps + idx, simd::kBlockLanes,
                              decay, epoch_, session_slots_.data(),
                              &touched_sessions_, &recency_keys_);
        idx += simd::kBlockLanes;
      }
      if (live == m && !heap_built) {
        recency_heap.Assign(std::move(recency_keys_));
        recency_heap.Heapify();
        heap_built = true;
      }

      while (idx < limit) {
        const SessionId candidate = postings.sessions[idx];
        if (session_slots_[candidate].stamp == epoch_) {
          // Bulk-consume the run of candidates that are already members:
          // the kernel adds `decay` to each and stops at the first
          // non-member. The inline stamp check above keeps the dominant
          // insert-heavy case free of the call — the kernel is only
          // entered when a run has actually started.
          idx += simd::ConsumeMemberRun(postings.sessions + idx,
                                        limit - idx, decay,
                                        session_slots_.data(), epoch_);
          continue;
        }

        // Pull the slot lines of the next few candidates while this one
        // is decided — insert-heavy scans miss on most of them.
        if (idx + 4 < limit) {
          __builtin_prefetch(&session_slots_[postings.sessions[idx + 4]], 1);
        }

        const Timestamp candidate_time = postings.timestamps[idx];
        ++idx;
        if (live < m) {
          session_slots_[candidate] =
              simd::SessionSlot{epoch_, decay, candidate_time};
          touched_sessions_.push_back(candidate);
          recency_keys_.push_back(
              internal::MakeRecencyKey(candidate_time, candidate));
          if (++live == m) {
            recency_heap.Assign(std::move(recency_keys_));
            recency_heap.Heapify();
            heap_built = true;
          }
          continue;
        }
        // Recency is a total order (timestamp, then session id — ids
        // ascend with end time, and the packed key compares both at
        // once): this makes early stopping exact even when several
        // sessions share a second-resolution timestamp.
        const internal::RecencyKey candidate_key =
            internal::MakeRecencyKey(candidate_time, candidate);
        const internal::RecencyKey oldest = recency_heap.Top();
        if (candidate_key > oldest) {
          session_slots_[internal::RecencyKeySession(oldest)].stamp =
              0;  // evict
          session_slots_[candidate] =
              simd::SessionSlot{epoch_, decay, candidate_time};
          touched_sessions_.push_back(candidate);
          recency_heap.ReplaceTop(candidate_key);
        } else if (EarlyStop) {
          // Postings are sorted by descending recency: every remaining
          // session is older and cannot displace the current oldest
          // candidate (Algorithm 2, line 32).
          break;
        }
      }
    }

    // Top-k similarity loop over the touched candidates. Two phases:
    // while the result heap is filling, every live candidate is offered
    // (evicted ones keep a dead stamp and are skipped); once it is full,
    // only candidates that beat the current weakest kept neighbour under
    // the full (score, timestamp, session) order can change it — the
    // vectorized mask evaluates exactly that predicate per block, so the
    // heap is only touched for genuine improvements. The block-start
    // weakest is conservative: it only rises within a block, and Offer
    // re-checks. Score and timestamp both come out of the one candidate
    // slot stamped during the intersection loop — no index gather.
    BoundedTopK<internal::NeighborKey, Arity> top_k(config_.k);
    const SessionId* touched = touched_sessions_.data();
    const size_t num_touched = touched_sessions_.size();
    size_t next = 0;
    while (next < num_touched && !top_k.full()) {
      const SessionId session = touched[next++];
      const simd::SessionSlot slot = session_slots_[session];
      if (slot.stamp != epoch_) continue;
      top_k.Offer(internal::MakeNeighborKey(slot.score, slot.time, session));
    }
    while (next < num_touched) {
      const size_t block = std::min(simd::kBlockLanes, num_touched - next);
      const Neighbor weakest = internal::NeighborFromKey(top_k.Weakest());
      uint32_t mask = simd::BeatsNeighborMask(
          touched + next, block, session_slots_.data(), epoch_,
          weakest.score, weakest.timestamp, weakest.session);
      while (mask != 0) {
        const SessionId session =
            touched[next + static_cast<size_t>(std::countr_zero(mask))];
        mask &= mask - 1;
        const simd::SessionSlot slot = session_slots_[session];
        top_k.Offer(
            internal::MakeNeighborKey(slot.score, slot.time, session));
      }
      next += block;
    }
    // Packed keys sort descending with one integer compare per step and
    // unpack losslessly into the result order NeighborLess defines.
    const std::vector<internal::NeighborKey> sorted_keys =
        top_k.TakeSortedDescending();
    neighbors->reserve(sorted_keys.size());
    for (const internal::NeighborKey key : sorted_keys) {
      neighbors->push_back(internal::NeighborFromKey(key));
    }

    // Reclaim the key buffer's capacity if the heap adopted it.
    if (heap_built) recency_keys_ = recency_heap.TakeElements();
  }

  /// Fetches `item`'s posting list as parallel (session, timestamp)
  /// arrays: directly from indexes implementing the SoA concept, or
  /// assembled into scratch via the legacy per-candidate interface.
  PostingsRef GetPostings(ItemId item) {
    if constexpr (requires { index_->PostingsForItem(item,
                                                    &posting_scratch_); }) {
      return index_->PostingsForItem(item, &posting_scratch_);
    } else {
      const std::span<const SessionId> sessions =
          index_->SessionsForItem(item, &posting_scratch_.sessions);
      posting_scratch_.timestamps.clear();
      posting_scratch_.timestamps.reserve(sessions.size());
      for (const SessionId session : sessions) {
        posting_scratch_.timestamps.push_back(
            index_->SessionTimestamp(session));
      }
      return {sessions.data(), posting_scratch_.timestamps.data(),
              sessions.size()};
    }
  }

  /// Truncates the evolving session to the configured cap, most recent
  /// items kept; result goes to truncated_.
  void Truncate(const EvolvingSession& session) {
    truncated_.clear();
    const size_t start = session.size() > config_.max_session_length
                             ? session.size() - config_.max_session_length
                             : 0;
    truncated_.assign(session.begin() + static_cast<ptrdiff_t>(start),
                      session.end());
  }

  /// Grows the dense scoring slot arrays to the index's item and session
  /// universes and starts a new query epoch. Stamp 0 means "never
  /// touched" (or evicted), so epoch_ skips 0: on uint32 wrap-around the
  /// slots are reset and the epoch restarts at 1, preventing a stale
  /// stamp from ever aliasing a live one.
  void BumpEpoch() {
    const size_t num_items = index_->num_items();
    if (item_score_slots_.size() < num_items) {
      item_score_slots_.resize(num_items);
      item_position_slots_.resize(num_items);
    }
    const size_t num_sessions = index_->num_sessions();
    if (session_slots_.size() < num_sessions) {
      session_slots_.resize(num_sessions);
    }
    if (++epoch_ == 0) {
      std::fill(item_score_slots_.begin(), item_score_slots_.end(),
                simd::ItemScoreSlot{});
      std::fill(item_position_slots_.begin(), item_position_slots_.end(),
                simd::ItemPositionSlot{});
      std::fill(session_slots_.begin(), session_slots_.end(),
                simd::SessionSlot{});
      epoch_ = 1;
    }
  }

  const Index* index_;
  KnnConfig config_;

  // Per-query scratch, reused across calls to avoid allocation churn.
  std::vector<ItemId> truncated_;
  PostingScratch posting_scratch_;
  std::vector<ItemId> items_scratch_;

  // Epoch-stamped dense scoring state (see BumpEpoch and the slot types
  // in knn_kernels.h): an entry is live only when its stamp equals
  // epoch_, so per-query clearing is one increment instead of a hash-map
  // clear. Stamp, score and cached timestamp share one slot, so a
  // candidate insert or lookup touches a single cache line and the
  // vector kernels fetch whole records with 64-bit gathers. The price is
  // O(|I| + |H|) memory per recommender instance (16 bytes/item + 16
  // bytes/session), a deliberate serving-side trade against the paper's
  // purely m-bounded per-query state.
  std::vector<simd::SessionSlot> session_slots_;           // r + b_t times
  std::vector<SessionId> touched_sessions_;
  std::vector<internal::RecencyKey> recency_keys_;         // b_t bulk build
  std::vector<simd::ItemScoreSlot> item_score_slots_;      // d
  std::vector<simd::ItemPositionSlot> item_position_slots_;  // omega lookup
  std::vector<ItemId> touched_items_;
  uint32_t epoch_ = 0;
};

/// The production instantiation over the flat CSR index.
using VmisKnn = VmisKnnT<SessionIndex>;

}  // namespace serenade
