// Deterministic HNSW (Hierarchical Navigable Small World) index over
// ItemEmbeddings — the approximate arm of the second retrieval family.
//
// Determinism contract (the ANN oracle and the determinism tests depend
// on it): two builds over identical embeddings with identical HnswConfig
// produce identical graphs and identical search results, regardless of
// the host or the number of serving threads.
//
//   * Items are inserted in ascending item-id order.
//   * The level of item i is a pure function of (config.seed, i) — a
//     SplitMix64 draw, not a shared-RNG sequence — so the layer
//     assignment cannot depend on construction interleaving.
//   * All candidate orderings break score ties by ascending item id.
//
// The graph is rebuilt from the embedding artifact at load time (build is
// O(n log n) with small constants at catalog scale), so the on-disk
// artifact stays a single CRC-framed embedding matrix — one codec to
// torture, one manifest to stamp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/embedding.h"
#include "core/recommender.h"

namespace serenade {

struct HnswConfig {
  /// Max neighbors per node on layers > 0 (layer 0 keeps 2M).
  size_t M = 16;
  /// Beam width while inserting.
  size_t ef_construction = 100;
  /// Default beam width while searching (raised to k when smaller).
  size_t ef_search = 64;
  /// Seed for the per-item level draws.
  uint64_t seed = 20260806;
};

class HnswIndex {
 public:
  /// Builds the graph over `embeddings` (kept by reference by the caller;
  /// the index stores only adjacency and reads vectors through the
  /// pointer it was built with).
  HnswIndex(const ItemEmbeddings* embeddings, const HnswConfig& config);

  /// Top-k by cosine over the graph. Deterministic: score descending,
  /// item ascending on ties. `exclude` (optional, sized num_items) drops
  /// items from the result without changing graph traversal.
  std::vector<ScoredItem> Search(const float* query, size_t k,
                                 const std::vector<char>* exclude = nullptr,
                                 size_t ef_override = 0) const;

  size_t num_items() const { return embeddings_->num_items; }
  size_t max_level() const { return max_level_; }
  const HnswConfig& config() const { return config_; }

  /// FNV-1a digest of the full adjacency structure — lets tests assert
  /// build determinism without exposing the internals.
  uint64_t GraphDigest() const;

 private:
  float Dot(const float* query, uint32_t node) const;
  /// Greedy beam search on one layer from `entry`; returns up to `ef`
  /// candidates as (score, node), best first.
  void SearchLayer(const float* query, uint32_t entry, size_t ef, size_t level,
                   std::vector<std::pair<float, uint32_t>>* out,
                   std::vector<uint32_t>* visited, uint32_t stamp) const;
  size_t LevelFor(uint32_t item) const;
  void Insert(uint32_t item, std::vector<uint32_t>* visited, uint32_t* stamp);

  const ItemEmbeddings* embeddings_;
  HnswConfig config_;
  // links_[node][level] = sorted-by-insertion neighbor ids.
  std::vector<std::vector<std::vector<uint32_t>>> links_;
  uint32_t entry_point_ = 0;
  size_t max_level_ = 0;
  // Scratch epoch stamps for SearchLayer (mutable: Search is logically
  // const). Guarded by nothing — each thread must use its own HnswIndex
  // *searcher* scratch; see Search() which keeps scratch on the stack.
};

}  // namespace serenade
