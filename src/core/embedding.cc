#include "core/embedding.h"

#include <algorithm>
#include <cmath>

namespace serenade {

void NormalizeRows(ItemEmbeddings* embeddings) {
  for (size_t i = 0; i < embeddings->num_items; ++i) {
    float* row = embeddings->MutableRow(i);
    float norm_sq = 0.0f;
    for (size_t d = 0; d < embeddings->dim; ++d) norm_sq += row[d] * row[d];
    if (norm_sq <= 0.0f) continue;
    const float inv = 1.0f / std::sqrt(norm_sq);
    for (size_t d = 0; d < embeddings->dim; ++d) row[d] *= inv;
  }
}

Status ValidateEmbeddings(const ItemEmbeddings& embeddings) {
  if (embeddings.dim == 0) {
    return Status::Corruption("embeddings: zero dimension");
  }
  if (embeddings.values.size() != embeddings.num_items * embeddings.dim) {
    return Status::Corruption("embeddings: value count mismatch");
  }
  for (float v : embeddings.values) {
    if (!std::isfinite(v)) {
      return Status::Corruption("embeddings: non-finite value");
    }
  }
  return Status::Ok();
}

std::vector<ScoredItem> ExactNearest(const ItemEmbeddings& embeddings,
                                     const float* query, size_t k,
                                     const std::vector<char>* exclude) {
  std::vector<ScoredItem> scored;
  scored.reserve(embeddings.num_items);
  for (size_t i = 0; i < embeddings.num_items; ++i) {
    if (exclude != nullptr && (*exclude)[i]) continue;
    const float* row = embeddings.Row(i);
    float dot = 0.0f;
    for (size_t d = 0; d < embeddings.dim; ++d) dot += row[d] * query[d];
    scored.push_back({static_cast<ItemId>(i), dot});
  }
  const size_t top = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + top, scored.end(),
                    [](const ScoredItem& a, const ScoredItem& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.item < b.item;
                    });
  scored.resize(top);
  return scored;
}

bool SessionQueryVector(const ItemEmbeddings& embeddings,
                        const EvolvingSession& session, size_t window,
                        float decay, float* out) {
  std::fill(out, out + embeddings.dim, 0.0f);
  bool any = false;
  float weight = 1.0f;
  const size_t take = std::min(window, session.size());
  // Walk newest -> oldest so the most recent click carries weight 1.
  for (size_t back = 0; back < take; ++back) {
    const ItemId item = session[session.size() - 1 - back];
    if (item < embeddings.num_items) {
      const float* row = embeddings.Row(item);
      for (size_t d = 0; d < embeddings.dim; ++d) out[d] += weight * row[d];
      any = true;
    }
    weight *= decay;
  }
  if (!any) return false;
  float norm_sq = 0.0f;
  for (size_t d = 0; d < embeddings.dim; ++d) norm_sq += out[d] * out[d];
  if (norm_sq > 0.0f) {
    const float inv = 1.0f / std::sqrt(norm_sq);
    for (size_t d = 0; d < embeddings.dim; ++d) out[d] *= inv;
  }
  return true;
}

}  // namespace serenade
