#include "core/session_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace serenade {

SessionIndex SessionIndex::Build(const Dataset& train,
                                 size_t max_sessions_per_item) {
  assert(max_sessions_per_item > 0);
  SessionIndex index;
  index.max_sessions_per_item_ = max_sessions_per_item;

  const auto& sessions = train.sessions();
  const size_t num_items = train.num_items();
  const size_t num_sessions = sessions.size();

  // --- session -> timestamp and session -> distinct items (CSR) ---
  index.session_timestamps_.resize(num_sessions);
  index.session_offsets_.assign(num_sessions + 1, 0);

  std::vector<ItemId> scratch;
  std::vector<std::vector<ItemId>> distinct_items(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    assert(sessions[s].id == static_cast<SessionId>(s));
    index.session_timestamps_[s] = sessions[s].end_time;
    scratch.assign(sessions[s].items.begin(), sessions[s].items.end());
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    distinct_items[s] = scratch;
  }
  for (size_t s = 0; s < num_sessions; ++s) {
    index.session_offsets_[s + 1] =
        index.session_offsets_[s] + distinct_items[s].size();
  }
  index.session_items_.resize(index.session_offsets_.back());
  for (size_t s = 0; s < num_sessions; ++s) {
    std::copy(distinct_items[s].begin(), distinct_items[s].end(),
              index.session_items_.begin() +
                  static_cast<ptrdiff_t>(index.session_offsets_[s]));
  }

  // --- item frequencies h_i over ALL sessions (for IDF) ---
  std::vector<uint32_t> item_frequency(num_items, 0);
  for (size_t s = 0; s < num_sessions; ++s) {
    for (ItemId item : distinct_items[s]) ++item_frequency[item];
  }
  index.item_idf_.resize(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    index.item_idf_[i] =
        item_frequency[i] == 0
            ? 0.0f
            : static_cast<float>(std::log(static_cast<double>(num_sessions) /
                                          item_frequency[i]));
  }
  index.item_frequencies_ = item_frequency;

  // --- M: item -> m most recent sessions, descending timestamp ---
  // Sessions are numbered in ascending end-time order, so iterating them
  // from the most recent down and appending to each item's list until it
  // is full yields exactly the m most recent sessions per item, already
  // in descending timestamp order, in O(total clicks).
  std::vector<uint32_t> retained(num_items, 0);
  for (size_t i = 0; i < num_items; ++i) {
    retained[i] = static_cast<uint32_t>(std::min<size_t>(
        item_frequency[i], max_sessions_per_item));
  }
  index.item_offsets_.assign(num_items + 1, 0);
  for (size_t i = 0; i < num_items; ++i) {
    index.item_offsets_[i + 1] = index.item_offsets_[i] + retained[i];
  }
  index.session_lists_.resize(index.item_offsets_.back());
  std::vector<uint32_t> filled(num_items, 0);
  for (size_t s = num_sessions; s-- > 0;) {
    for (ItemId item : distinct_items[s]) {
      if (filled[item] < retained[item]) {
        index.session_lists_[index.item_offsets_[item] + filled[item]] =
            static_cast<SessionId>(s);
        ++filled[item];
      }
    }
  }
  index.DerivePostingTimestamps();
  return index;
}

void SessionIndex::DerivePostingTimestamps() {
  posting_timestamps_.resize(session_lists_.size());
  for (size_t j = 0; j < session_lists_.size(); ++j) {
    posting_timestamps_[j] = session_timestamps_[session_lists_[j]];
  }
}

size_t SessionIndex::MemoryBytes() const {
  return item_offsets_.size() * sizeof(uint64_t) +
         session_lists_.size() * sizeof(SessionId) +
         posting_timestamps_.size() * sizeof(Timestamp) +
         session_timestamps_.size() * sizeof(Timestamp) +
         session_offsets_.size() * sizeof(uint64_t) +
         session_items_.size() * sizeof(ItemId) +
         item_idf_.size() * sizeof(float) +
         item_frequencies_.size() * sizeof(uint32_t);
}

SessionIndex SessionIndex::FromRaw(Raw raw) {
  SessionIndex index;
  index.max_sessions_per_item_ =
      static_cast<size_t>(raw.max_sessions_per_item);
  index.item_offsets_ = std::move(raw.item_offsets);
  index.session_lists_ = std::move(raw.session_lists);
  index.session_timestamps_ = std::move(raw.session_timestamps);
  index.session_offsets_ = std::move(raw.session_offsets);
  index.session_items_ = std::move(raw.session_items);
  index.item_idf_ = std::move(raw.item_idf);
  index.item_frequencies_ = std::move(raw.item_frequencies);
  index.DerivePostingTimestamps();
  return index;
}

SessionIndex::Raw SessionIndex::ToRaw() const {
  Raw raw;
  raw.max_sessions_per_item = max_sessions_per_item_;
  raw.item_offsets = item_offsets_;
  raw.session_lists = session_lists_;
  raw.session_timestamps = session_timestamps_;
  raw.session_offsets = session_offsets_;
  raw.session_items = session_items_;
  raw.item_idf = item_idf_;
  raw.item_frequencies = item_frequencies_;
  return raw;
}

}  // namespace serenade
