// Dense item embeddings — the second retrieval family's data model.
//
// VMIS-kNN retrieves by session co-occurrence; this module holds the
// alternative signal: a learned vector per catalog item (trained by the
// item2vec skip-gram in src/baselines/item2vec.h) plus the two retrieval
// arms over it:
//
//   * ExactNearest      — brute-force full-scan top-k by cosine similarity.
//                         The ground-truth arm of the ANN oracle and the
//                         baseline side of ann_retrieval_bench.
//   * SessionQueryVector — folds an evolving session into one query vector
//                         (recency-decayed mean of the last `window` item
//                         vectors, re-normalized), shared by the exact and
//                         HNSW serving paths so both arms answer the same
//                         question.
//
// Rows are stored L2-normalized, so cosine similarity is a plain dot
// product and scores are comparable across sessions.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/recommender.h"

namespace serenade {

/// A dense [num_items x dim] float matrix, row i = item i's vector.
/// Rows are expected (and produced by the trainer/codec) L2-normalized.
struct ItemEmbeddings {
  size_t num_items = 0;
  size_t dim = 0;
  /// Row-major, size num_items * dim.
  std::vector<float> values;

  const float* Row(size_t item) const { return values.data() + item * dim; }
  float* MutableRow(size_t item) { return values.data() + item * dim; }

  friend bool operator==(const ItemEmbeddings&,
                         const ItemEmbeddings&) = default;
};

/// Scales each row to unit L2 norm (zero rows are left untouched).
void NormalizeRows(ItemEmbeddings* embeddings);

/// Structural sanity shared by the trainer output and the codec reader:
/// non-zero dim, values.size() == num_items * dim, every value finite.
Status ValidateEmbeddings(const ItemEmbeddings& embeddings);

/// Brute-force exact top-k by dot product (== cosine on normalized rows).
/// Deterministic total order: score descending, item id ascending on ties.
/// Items flagged in `exclude` (when non-null, sized num_items) are skipped.
std::vector<ScoredItem> ExactNearest(const ItemEmbeddings& embeddings,
                                     const float* query, size_t k,
                                     const std::vector<char>* exclude = nullptr);

/// Folds `session` into a query vector: recency-weighted mean of the last
/// `window` item vectors (weight decay^age, age 0 = most recent), then
/// L2-normalized. Items outside [0, num_items) are ignored. Returns false
/// when no session item maps into the embedding table (query undefined).
bool SessionQueryVector(const ItemEmbeddings& embeddings,
                        const EvolvingSession& session, size_t window,
                        float decay, float* out);

}  // namespace serenade
