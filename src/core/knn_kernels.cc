#include "core/knn_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(SERENADE_SIMD_ENABLED) && \
    (defined(__x86_64__) || defined(__i386__))
#define SERENADE_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(SERENADE_SIMD_ENABLED) && defined(__aarch64__)
#define SERENADE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace serenade::simd {

namespace {

// -1 = not yet initialised; otherwise a Level value. Relaxed accesses are
// enough: every initialising thread computes the same value, and level
// flips (tests/bench arms) tolerate momentary mixed dispatch because all
// levels produce bit-identical results.
std::atomic<int> g_active_level{-1};

Level ParseLevel(const char* name, Level fallback) {
  if (std::strcmp(name, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(name, "avx2") == 0) return Level::kAvx2;
  if (std::strcmp(name, "neon") == 0) return Level::kNeon;
  return fallback;  // "auto" and unknown values
}

Level InitialLevel() {
  Level level = BestSupportedLevel();
  if (const char* env = std::getenv("SERENADE_SIMD_LEVEL")) {
    const Level requested = ParseLevel(env, level);
    if (requested == Level::kScalar || requested == BestSupportedLevel()) {
      level = requested;
    }
  }
  return level;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kNeon: return "neon";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

Level BestSupportedLevel() {
#if defined(SERENADE_SIMD_NEON)
  return Level::kNeon;  // NEON is baseline on AArch64
#elif defined(SERENADE_SIMD_X86)
  return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kScalar;
#else
  return Level::kScalar;
#endif
}

Level ActiveLevel() {
  const int raw = g_active_level.load(std::memory_order_relaxed);
  if (raw >= 0) return static_cast<Level>(raw);
  const Level level = InitialLevel();
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return level;
}

bool SetActiveLevel(Level level) {
  if (level != Level::kScalar && level != BestSupportedLevel()) return false;
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

std::string DescribeDispatch() {
#if defined(SERENADE_SIMD_ENABLED)
  const char* build = "on";
#else
  const char* build = "off";
#endif
  return std::string(LevelName(ActiveLevel())) + " (build=" + build +
         ", best=" + LevelName(BestSupportedLevel()) + ")";
}

// ---------------------------------------------------------------------------
// Scalar reference implementations. These define the semantics; the
// vector paths below must match them bit for bit.
// ---------------------------------------------------------------------------

namespace {

size_t ConsumeMemberRunScalar(const SessionId* postings, size_t count,
                              float decay, SessionSlot* slots,
                              uint32_t epoch) {
  size_t i = 0;
  while (i < count && slots[postings[i]].stamp == epoch) {
    slots[postings[i]].score += decay;
    ++i;
  }
  return i;
}

size_t FillRunScalar(const SessionId* sessions, const Timestamp* timestamps,
                     size_t count, float decay, uint32_t epoch,
                     SessionSlot* slots,
                     std::vector<SessionId>* touched_sessions,
                     std::vector<RecencyKey>* recency_keys) {
  size_t inserted = 0;
  for (size_t i = 0; i < count; ++i) {
    const SessionId session = sessions[i];
    SessionSlot& slot = slots[session];
    if (slot.stamp == epoch) {
      slot.score += decay;
      continue;
    }
    slot = SessionSlot{epoch, decay, timestamps[i]};
    touched_sessions->push_back(session);
    recency_keys->push_back(
        (static_cast<RecencyKey>(timestamps[i]) << 32) | session);
    ++inserted;
  }
  return inserted;
}

uint32_t MaxSharedPositionScalar(const ItemId* items, size_t count,
                                 const ItemPositionSlot* slots,
                                 uint32_t epoch) {
  uint32_t result = 0;
  for (size_t i = 0; i < count; ++i) {
    const ItemPositionSlot slot = slots[items[i]];
    if (slot.stamp == epoch && slot.position > result) {
      result = slot.position;
    }
  }
  return result;
}

// Shared by the scalar path and the vector paths' tails/store loops: one
// slot's stamp-or-accumulate step with a precomputed contribution.
inline void TouchAndAdd(ItemId item, float contribution, uint32_t epoch,
                        ItemScoreSlot* slots,
                        std::vector<ItemId>* touched_items) {
  ItemScoreSlot& slot = slots[item];
  if (slot.stamp != epoch) {
    slot.stamp = epoch;
    slot.score = 0.0f;
    touched_items->push_back(item);
  }
  slot.score += contribution;
}

void AccumulateItemScoresScalar(const ItemId* items, size_t count,
                                float weight, IdfWeighting idf_mode,
                                const float* idf, uint32_t epoch,
                                ItemScoreSlot* slots,
                                std::vector<ItemId>* touched_items) {
  for (size_t i = 0; i < count; ++i) {
    const ItemId item = items[i];
    float factor = 1.0f;
    switch (idf_mode) {
      case IdfWeighting::kNone:
        break;
      case IdfWeighting::kLog:
        factor = idf[item];
        break;
      case IdfWeighting::kOnePlusLog:
        factor = 1.0f + idf[item];
        break;
    }
    TouchAndAdd(item, weight * factor, epoch, slots, touched_items);
  }
}

uint32_t BeatsNeighborMaskScalar(const SessionId* ids, size_t count,
                                 const SessionSlot* slots, uint32_t epoch,
                                 float weakest_score, Timestamp weakest_time,
                                 SessionId weakest_session) {
  uint32_t mask = 0;
  for (size_t i = 0; i < count; ++i) {
    const SessionId id = ids[i];
    const SessionSlot slot = slots[id];
    if (slot.stamp != epoch) continue;
    const bool beats =
        slot.score > weakest_score ||
        (slot.score == weakest_score &&
         (slot.time > weakest_time ||
          (slot.time == weakest_time && id > weakest_session)));
    if (beats) mask |= 1u << i;
  }
  return mask;
}

uint32_t BeatsItemMaskScalar(const ItemId* ids, size_t count,
                             const ItemScoreSlot* slots, float weakest_score,
                             ItemId weakest_item) {
  uint32_t mask = 0;
  for (size_t i = 0; i < count; ++i) {
    const ItemId id = ids[i];
    const float score = slots[id].score;
    if (score > weakest_score ||
        (score == weakest_score && id < weakest_item)) {
      mask |= 1u << i;
    }
  }
  return mask;
}

}  // namespace

// ---------------------------------------------------------------------------
// AVX2 paths. Compiled with a per-function target attribute so the rest
// of the object file (and the tree) stays baseline-ISA; only ever called
// after runtime dispatch confirmed AVX2 support. The float kernels use
// separate mul and add intrinsics on purpose — no FMA (the target list
// excludes it), preserving the scalar rounding sequence.
//
// Slot gathers: the 8-byte item slots are fetched whole with
// _mm256_i32gather_epi64 (index = id, scale 8); the 16-byte session slot
// splits into its {stamp, score} half (index = 2*id) and its time half
// (index = 2*id + 1). 2*id must fit a signed 32-bit gather index, i.e.
// session ids below 2^30 — comfortably above the paper's corpus sizes
// (the scalar path has no such bound).
// ---------------------------------------------------------------------------

#if defined(SERENADE_SIMD_X86)

namespace {

// Bits 0,2,4,6 of an 8-bit per-dword movemask — the masks of the even
// (first-in-pair) dwords of four gathered 64-bit slots — compressed to
// bits 0..3.
inline uint32_t EvenBits(uint32_t mask) {
  return (mask & 1u) | ((mask >> 1) & 2u) | ((mask >> 2) & 4u) |
         ((mask >> 3) & 8u);
}

__attribute__((target("avx2"))) size_t ConsumeMemberRunAvx2(
    const SessionId* postings, size_t count, float decay, SessionSlot* slots,
    uint32_t epoch) {
  const __m256i epoch_v = _mm256_set1_epi32(static_cast<int>(epoch));
  const long long* base = reinterpret_cast<const long long*>(slots);
  size_t i = 0;
  while (i + 8 <= count) {
    // Cheap scalar head-check: on insert-heavy scans most calls stop at
    // the very first element, and a full 8-lane gather just to learn
    // that would make the kernel slower than the scalar loop.
    if (slots[postings[i]].stamp != epoch) return i;
    // Pull the next block's slot lines in early: posting ids are
    // sequential in memory but their slots gather from all over the
    // dense array — the software prefetch hides that latency.
    if (i + 16 <= count) {
      __builtin_prefetch(&slots[postings[i + 8]]);
      __builtin_prefetch(&slots[postings[i + 12]]);
    }
    const __m256i ids = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(postings + i));
    const __m256i pair_idx = _mm256_slli_epi32(ids, 1);
    // Each gathered 64-bit lane is a {stamp, score} pair; stamps sit in
    // the even dwords.
    const __m256i lo = _mm256_i32gather_epi64(
        base, _mm256_castsi256_si128(pair_idx), 8);
    const __m256i hi = _mm256_i32gather_epi64(
        base, _mm256_extracti128_si256(pair_idx, 1), 8);
    const uint32_t member_mask =
        EvenBits(static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(lo, epoch_v))))) |
        (EvenBits(static_cast<uint32_t>(_mm256_movemask_ps(
             _mm256_castsi256_ps(_mm256_cmpeq_epi32(hi, epoch_v)))))
         << 4);
    if (member_mask != 0xffu) {
      // Consume the leading members of the mixed block, then hand the
      // first non-member back to the caller.
      size_t lead = 0;
      while (member_mask & (1u << lead)) {
        slots[postings[i + lead]].score += decay;
        ++lead;
      }
      return i + lead;
    }
    // All 8 are members; their lines are hot from the gather, so the
    // read-modify-write stores are cheap.
    for (size_t lane = 0; lane < 8; ++lane) {
      slots[postings[i + lane]].score += decay;
    }
    i += 8;
  }
  return i + ConsumeMemberRunScalar(postings + i, count - i, decay, slots,
                                    epoch);
}

__attribute__((target("avx2"))) size_t FillRunAvx2(
    const SessionId* sessions, const Timestamp* timestamps, size_t count,
    float decay, uint32_t epoch, SessionSlot* slots,
    std::vector<SessionId>* touched_sessions,
    std::vector<RecencyKey>* recency_keys) {
  if (count < 8) {
    return FillRunScalar(sessions, timestamps, count, decay, epoch, slots,
                         touched_sessions, recency_keys);
  }
  // One gathered membership test for the whole block: the gather issues 8
  // independent slot loads at once (the scalar walk's load-check-store
  // chain exposes them one miss at a time), and the decided lanes then
  // write to lines the gather already pulled in. Lane order preserves the
  // scalar insert/touch order; lanes are distinct sessions so they never
  // interact within the block.
  const __m256i epoch_v = _mm256_set1_epi32(static_cast<int>(epoch));
  const long long* base = reinterpret_cast<const long long*>(slots);
  const __m256i ids = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(sessions));
  const __m256i pair_idx = _mm256_slli_epi32(ids, 1);
  const __m256i lo = _mm256_i32gather_epi64(
      base, _mm256_castsi256_si128(pair_idx), 8);
  const __m256i hi = _mm256_i32gather_epi64(
      base, _mm256_extracti128_si256(pair_idx, 1), 8);
  const uint32_t member_mask =
      EvenBits(static_cast<uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(lo, epoch_v))))) |
      (EvenBits(static_cast<uint32_t>(_mm256_movemask_ps(
           _mm256_castsi256_ps(_mm256_cmpeq_epi32(hi, epoch_v)))))
       << 4);
  size_t inserted = 0;
  for (size_t lane = 0; lane < 8; ++lane) {
    const SessionId session = sessions[lane];
    if (member_mask & (1u << lane)) {
      slots[session].score += decay;
      continue;
    }
    slots[session] = SessionSlot{epoch, decay, timestamps[lane]};
    touched_sessions->push_back(session);
    recency_keys->push_back(
        (static_cast<RecencyKey>(timestamps[lane]) << 32) | session);
    ++inserted;
  }
  return inserted;
}

__attribute__((target("avx2"))) uint32_t MaxSharedPositionAvx2(
    const ItemId* items, size_t count, const ItemPositionSlot* slots,
    uint32_t epoch) {
  const __m256i epoch_v = _mm256_set1_epi32(static_cast<int>(epoch));
  // Positions live in the odd dwords of the gathered pairs; the even
  // (stamp) dwords are forced to zero so they never pollute the max.
  const __m256i odd_dwords = _mm256_set1_epi64x(
      static_cast<long long>(0xffffffff00000000ull));
  const long long* base = reinterpret_cast<const long long*>(slots);
  __m256i best = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i ids =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i));
    const __m256i lo = _mm256_i32gather_epi64(
        base, _mm256_castsi256_si128(ids), 8);
    const __m256i hi = _mm256_i32gather_epi64(
        base, _mm256_extracti128_si256(ids, 1), 8);
    // Spread each pair's stamp-equality verdict onto both of its dwords,
    // then keep only live positions — dead lanes contribute 0, the
    // identity of unsigned max, exactly like the scalar guard.
    const __m256i lo_live = _mm256_shuffle_epi32(
        _mm256_cmpeq_epi32(lo, epoch_v), _MM_SHUFFLE(2, 2, 0, 0));
    const __m256i hi_live = _mm256_shuffle_epi32(
        _mm256_cmpeq_epi32(hi, epoch_v), _MM_SHUFFLE(2, 2, 0, 0));
    best = _mm256_max_epu32(
        best, _mm256_and_si256(_mm256_and_si256(lo, lo_live), odd_dwords));
    best = _mm256_max_epu32(
        best, _mm256_and_si256(_mm256_and_si256(hi, hi_live), odd_dwords));
  }
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
  uint32_t result = 0;
  for (uint32_t lane : lanes) result = lane > result ? lane : result;
  const uint32_t tail =
      MaxSharedPositionScalar(items + i, count - i, slots, epoch);
  return tail > result ? tail : result;
}

__attribute__((target("avx2"))) void AccumulateItemScoresAvx2(
    const ItemId* items, size_t count, float weight, IdfWeighting idf_mode,
    const float* idf, uint32_t epoch, ItemScoreSlot* slots,
    std::vector<ItemId>* touched_items) {
  const __m256 weight_v = _mm256_set1_ps(weight);
  const __m256 one_v = _mm256_set1_ps(1.0f);
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i ids =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i));
    __m256 factor = one_v;
    if (idf_mode != IdfWeighting::kNone) {
      factor = _mm256_i32gather_ps(idf, ids, 4);
      if (idf_mode == IdfWeighting::kOnePlusLog) {
        factor = _mm256_add_ps(one_v, factor);
      }
    }
    alignas(32) float contribution[8];
    _mm256_store_ps(contribution, _mm256_mul_ps(weight_v, factor));
    // The stamp-and-accumulate step stays scalar (AVX2 has no scatter) —
    // but stamp and score share an 8-byte slot, so each lane touches one
    // cache line. Lane order preserves the scalar touch order.
    for (size_t lane = 0; lane < 8; ++lane) {
      TouchAndAdd(items[i + lane], contribution[lane], epoch, slots,
                  touched_items);
    }
  }
  AccumulateItemScoresScalar(items + i, count - i, weight, idf_mode, idf,
                             epoch, slots, touched_items);
}

// 8 lanes of unsigned-64 "gathered > constant" and "== constant", built
// from two 4-lane epi64 gathers at the given dword-pair indices. AVX2
// only has signed 64-bit compares; XOR-flipping the sign bit of both
// sides is the standard exact unsigned-order embedding.
struct U64LaneCompare {
  uint32_t greater;  // 8-bit lane masks
  uint32_t equal;
};

__attribute__((target("avx2"))) U64LaneCompare GatherCompareU64(
    const long long* base, __m256i pair_idx, uint64_t threshold) {
  const __m256i flip = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i threshold_v = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(threshold)), flip);
  const __m256i lo = _mm256_i32gather_epi64(
      base, _mm256_castsi256_si128(pair_idx), 8);
  const __m256i hi = _mm256_i32gather_epi64(
      base, _mm256_extracti128_si256(pair_idx, 1), 8);
  const __m256i lo_f = _mm256_xor_si256(lo, flip);
  const __m256i hi_f = _mm256_xor_si256(hi, flip);
  U64LaneCompare out;
  out.greater = static_cast<uint32_t>(
      _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(lo_f, threshold_v))) |
      (_mm256_movemask_pd(
           _mm256_castsi256_pd(_mm256_cmpgt_epi64(hi_f, threshold_v)))
       << 4));
  out.equal = static_cast<uint32_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(
          _mm256_cmpeq_epi64(lo_f, threshold_v))) |
      (_mm256_movemask_pd(_mm256_castsi256_pd(
           _mm256_cmpeq_epi64(hi_f, threshold_v)))
       << 4));
  return out;
}

// Recombines the odd (score) dwords of two gathered pair vectors into
// lane order [f0..f7].
__attribute__((target("avx2"))) __m256 OddDwordsAsFloats(__m256i lo,
                                                         __m256i hi) {
  const __m256 mixed = _mm256_shuffle_ps(
      _mm256_castsi256_ps(lo), _mm256_castsi256_ps(hi),
      _MM_SHUFFLE(3, 1, 3, 1));
  return _mm256_castsi256_ps(_mm256_permute4x64_epi64(
      _mm256_castps_si256(mixed), _MM_SHUFFLE(3, 1, 2, 0)));
}

__attribute__((target("avx2"))) uint32_t BeatsNeighborMaskAvx2(
    const SessionId* ids, size_t count, const SessionSlot* slots,
    uint32_t epoch, float weakest_score, Timestamp weakest_time,
    SessionId weakest_session) {
  if (count < 8) {
    return BeatsNeighborMaskScalar(ids, count, slots, epoch, weakest_score,
                                   weakest_time, weakest_session);
  }
  const __m256i epoch_v = _mm256_set1_epi32(static_cast<int>(epoch));
  const long long* base = reinterpret_cast<const long long*>(slots);
  const __m256i id_v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids));
  const __m256i pair_idx = _mm256_slli_epi32(id_v, 1);
  const __m256i lo = _mm256_i32gather_epi64(
      base, _mm256_castsi256_si128(pair_idx), 8);
  const __m256i hi = _mm256_i32gather_epi64(
      base, _mm256_extracti128_si256(pair_idx, 1), 8);
  const uint32_t live =
      EvenBits(static_cast<uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(lo, epoch_v))))) |
      (EvenBits(static_cast<uint32_t>(_mm256_movemask_ps(
           _mm256_castsi256_ps(_mm256_cmpeq_epi32(hi, epoch_v)))))
       << 4);
  if (live == 0) return 0;

  const __m256 score_v = OddDwordsAsFloats(lo, hi);
  const __m256 weakest_v = _mm256_set1_ps(weakest_score);
  const uint32_t score_gt = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_cmp_ps(score_v, weakest_v, _CMP_GT_OQ)));
  const uint32_t score_eq = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_cmp_ps(score_v, weakest_v, _CMP_EQ_OQ)));

  uint32_t beats = score_gt;
  if (score_eq & live) {
    // Score ties resolve by (timestamp, session id), both strictly
    // greater-than — the recency tiebreak of NeighborLess. The slot's
    // time half sits one 8-byte word past its pair half.
    const U64LaneCompare time_cmp = GatherCompareU64(
        base, _mm256_add_epi32(pair_idx, _mm256_set1_epi32(1)),
        weakest_time);
    const uint32_t id_gt = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(
            _mm256_xor_si256(id_v, _mm256_set1_epi32(INT32_MIN)),
            _mm256_set1_epi32(static_cast<int>(weakest_session ^
                                               0x80000000u))))));
    beats |= score_eq & (time_cmp.greater | (time_cmp.equal & id_gt));
  }
  return beats & live;
}

__attribute__((target("avx2"))) uint32_t BeatsItemMaskAvx2(
    const ItemId* ids, size_t count, const ItemScoreSlot* slots,
    float weakest_score, ItemId weakest_item) {
  if (count < 8) {
    return BeatsItemMaskScalar(ids, count, slots, weakest_score,
                               weakest_item);
  }
  const long long* base = reinterpret_cast<const long long*>(slots);
  const __m256i id_v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids));
  const __m256i lo = _mm256_i32gather_epi64(
      base, _mm256_castsi256_si128(id_v), 8);
  const __m256i hi = _mm256_i32gather_epi64(
      base, _mm256_extracti128_si256(id_v, 1), 8);
  const __m256 score_v = OddDwordsAsFloats(lo, hi);
  const __m256 weakest_v = _mm256_set1_ps(weakest_score);
  const uint32_t score_gt = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_cmp_ps(score_v, weakest_v, _CMP_GT_OQ)));
  const uint32_t score_eq = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_cmp_ps(score_v, weakest_v, _CMP_EQ_OQ)));
  // Item ties are won by the SMALLER id (unsigned compare via sign flip).
  const uint32_t id_lt = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(
          _mm256_set1_epi32(static_cast<int>(weakest_item ^ 0x80000000u)),
          _mm256_xor_si256(id_v, _mm256_set1_epi32(INT32_MIN))))));
  return score_gt | (score_eq & id_lt);
}

}  // namespace

#endif  // SERENADE_SIMD_X86

// ---------------------------------------------------------------------------
// NEON paths (AArch64). NEON has no gather, so the dense-array lookups
// stay per-lane scalar loads; the arithmetic and comparisons vectorise.
// The gather-dominated kernels (member run, prefilter masks) gain little
// without gather and dispatch to the scalar bodies.
// ---------------------------------------------------------------------------

#if defined(SERENADE_SIMD_NEON)

namespace {

uint32_t MaxSharedPositionNeon(const ItemId* items, size_t count,
                               const ItemPositionSlot* slots,
                               uint32_t epoch) {
  const uint32x4_t epoch_v = vdupq_n_u32(epoch);
  uint32x4_t best = vdupq_n_u32(0);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    uint32_t stamps[4], positions[4];
    for (size_t lane = 0; lane < 4; ++lane) {
      const ItemPositionSlot slot = slots[items[i + lane]];
      stamps[lane] = slot.stamp;
      positions[lane] = slot.position;
    }
    const uint32x4_t live = vceqq_u32(vld1q_u32(stamps), epoch_v);
    best = vmaxq_u32(best, vandq_u32(vld1q_u32(positions), live));
  }
  uint32_t result = vmaxvq_u32(best);
  const uint32_t tail =
      MaxSharedPositionScalar(items + i, count - i, slots, epoch);
  return tail > result ? tail : result;
}

void AccumulateItemScoresNeon(const ItemId* items, size_t count, float weight,
                              IdfWeighting idf_mode, const float* idf,
                              uint32_t epoch, ItemScoreSlot* slots,
                              std::vector<ItemId>* touched_items) {
  const float32x4_t weight_v = vdupq_n_f32(weight);
  const float32x4_t one_v = vdupq_n_f32(1.0f);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    float32x4_t factor = one_v;
    if (idf_mode != IdfWeighting::kNone) {
      float gathered[4];
      for (size_t lane = 0; lane < 4; ++lane) {
        gathered[lane] = idf[items[i + lane]];
      }
      factor = vld1q_f32(gathered);
      if (idf_mode == IdfWeighting::kOnePlusLog) {
        factor = vaddq_f32(one_v, factor);
      }
    }
    float contribution[4];
    vst1q_f32(contribution, vmulq_f32(weight_v, factor));
    for (size_t lane = 0; lane < 4; ++lane) {
      TouchAndAdd(items[i + lane], contribution[lane], epoch, slots,
                  touched_items);
    }
  }
  AccumulateItemScoresScalar(items + i, count - i, weight, idf_mode, idf,
                             epoch, slots, touched_items);
}

}  // namespace

#endif  // SERENADE_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

size_t ConsumeMemberRun(const SessionId* postings, size_t count, float decay,
                        SessionSlot* slots, uint32_t epoch) {
#if defined(SERENADE_SIMD_X86)
  if (ActiveLevel() == Level::kAvx2) {
    return ConsumeMemberRunAvx2(postings, count, decay, slots, epoch);
  }
#endif
  return ConsumeMemberRunScalar(postings, count, decay, slots, epoch);
}

size_t FillRun(const SessionId* sessions, const Timestamp* timestamps,
               size_t count, float decay, uint32_t epoch, SessionSlot* slots,
               std::vector<SessionId>* touched_sessions,
               std::vector<RecencyKey>* recency_keys) {
#if defined(SERENADE_SIMD_X86)
  if (ActiveLevel() == Level::kAvx2) {
    return FillRunAvx2(sessions, timestamps, count, decay, epoch, slots,
                       touched_sessions, recency_keys);
  }
#endif
  return FillRunScalar(sessions, timestamps, count, decay, epoch, slots,
                       touched_sessions, recency_keys);
}

uint32_t MaxSharedPosition(const ItemId* items, size_t count,
                           const ItemPositionSlot* slots, uint32_t epoch) {
  switch (ActiveLevel()) {
#if defined(SERENADE_SIMD_X86)
    case Level::kAvx2:
      return MaxSharedPositionAvx2(items, count, slots, epoch);
#endif
#if defined(SERENADE_SIMD_NEON)
    case Level::kNeon:
      return MaxSharedPositionNeon(items, count, slots, epoch);
#endif
    default:
      return MaxSharedPositionScalar(items, count, slots, epoch);
  }
}

void AccumulateItemScores(const ItemId* items, size_t count, float weight,
                          IdfWeighting idf_mode, const float* idf,
                          uint32_t epoch, ItemScoreSlot* slots,
                          std::vector<ItemId>* touched_items) {
  switch (ActiveLevel()) {
#if defined(SERENADE_SIMD_X86)
    case Level::kAvx2:
      AccumulateItemScoresAvx2(items, count, weight, idf_mode, idf, epoch,
                               slots, touched_items);
      return;
#endif
#if defined(SERENADE_SIMD_NEON)
    case Level::kNeon:
      AccumulateItemScoresNeon(items, count, weight, idf_mode, idf, epoch,
                               slots, touched_items);
      return;
#endif
    default:
      AccumulateItemScoresScalar(items, count, weight, idf_mode, idf, epoch,
                                 slots, touched_items);
  }
}

uint32_t BeatsNeighborMask(const SessionId* ids, size_t count,
                           const SessionSlot* slots, uint32_t epoch,
                           float weakest_score, Timestamp weakest_time,
                           SessionId weakest_session) {
#if defined(SERENADE_SIMD_X86)
  if (ActiveLevel() == Level::kAvx2) {
    return BeatsNeighborMaskAvx2(ids, count, slots, epoch, weakest_score,
                                 weakest_time, weakest_session);
  }
#endif
  return BeatsNeighborMaskScalar(ids, count, slots, epoch, weakest_score,
                                 weakest_time, weakest_session);
}

uint32_t BeatsItemMask(const ItemId* ids, size_t count,
                       const ItemScoreSlot* slots, float weakest_score,
                       ItemId weakest_item) {
#if defined(SERENADE_SIMD_X86)
  if (ActiveLevel() == Level::kAvx2) {
    return BeatsItemMaskAvx2(ids, count, slots, weakest_score, weakest_item);
  }
#endif
  return BeatsItemMaskScalar(ids, count, slots, weakest_score, weakest_item);
}

}  // namespace serenade::simd
