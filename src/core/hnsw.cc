#include "core/hnsw.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/rng.h"

namespace serenade {

namespace {

using Candidate = std::pair<float, uint32_t>;  // (score, node)

/// The one total order every queue and result list uses: higher score
/// first, lower item id on ties. Keeping it single-sourced is what makes
/// the graph (and therefore every search) reproducible.
bool Better(const Candidate& a, const Candidate& b) {
  if (a.first != b.first) return a.first > b.first;
  return a.second < b.second;
}

}  // namespace

HnswIndex::HnswIndex(const ItemEmbeddings* embeddings,
                     const HnswConfig& config)
    : embeddings_(embeddings), config_(config) {
  const size_t n = embeddings_->num_items;
  links_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    links_[i].resize(LevelFor(i) + 1);
  }
  // One shared visited scratch across all inserts (build is sequential by
  // contract); a fresh stamp per layer search avoids re-zeroing.
  std::vector<uint32_t> visited(n, 0);
  uint32_t stamp = 0;
  for (uint32_t i = 0; i < n; ++i) Insert(i, &visited, &stamp);
}

size_t HnswIndex::LevelFor(uint32_t item) const {
  // Pure function of (seed, item): the standard exponential level draw
  // computed from a stateless mix, so layer assignment cannot depend on
  // build interleaving or prior draws.
  uint64_t state = config_.seed ^ Mix64(item + 0x9e3779b97f4a7c15ULL);
  const uint64_t bits = SplitMix64(state);
  // Map to (0, 1]: never exactly 0 so the log is finite.
  const double u = (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
  const double ml = 1.0 / std::log(static_cast<double>(
                              config_.M < 2 ? 2 : config_.M));
  const double level = -std::log(u) * ml;
  // Cap: deeper than log2(4B) layers is never useful and keeps the
  // adjacency allocation bounded for adversarial seeds.
  return std::min<size_t>(static_cast<size_t>(level), 32);
}

float HnswIndex::Dot(const float* query, uint32_t node) const {
  const float* row = embeddings_->Row(node);
  float dot = 0.0f;
  for (size_t d = 0; d < embeddings_->dim; ++d) dot += row[d] * query[d];
  return dot;
}

void HnswIndex::SearchLayer(const float* query, uint32_t entry, size_t ef,
                            size_t level,
                            std::vector<Candidate>* out,
                            std::vector<uint32_t>* visited,
                            uint32_t stamp) const {
  // to_expand: best-first (max) heap; result: worst-first (min) heap.
  auto expand_cmp = [](const Candidate& a, const Candidate& b) {
    return Better(b, a);  // heap top = Better-most
  };
  auto result_cmp = [](const Candidate& a, const Candidate& b) {
    return Better(a, b);  // heap top = Better-least (the worst kept)
  };
  std::vector<Candidate> to_expand, result;
  const Candidate seed{Dot(query, entry), entry};
  to_expand.push_back(seed);
  result.push_back(seed);
  (*visited)[entry] = stamp;

  while (!to_expand.empty()) {
    std::pop_heap(to_expand.begin(), to_expand.end(), expand_cmp);
    const Candidate current = to_expand.back();
    to_expand.pop_back();
    if (result.size() >= ef && Better(result.front(), current)) break;
    if (level >= links_[current.second].size()) continue;
    for (uint32_t neighbor : links_[current.second][level]) {
      if ((*visited)[neighbor] == stamp) continue;
      (*visited)[neighbor] = stamp;
      const Candidate c{Dot(query, neighbor), neighbor};
      if (result.size() < ef || Better(c, result.front())) {
        to_expand.push_back(c);
        std::push_heap(to_expand.begin(), to_expand.end(), expand_cmp);
        result.push_back(c);
        std::push_heap(result.begin(), result.end(), result_cmp);
        if (result.size() > ef) {
          std::pop_heap(result.begin(), result.end(), result_cmp);
          result.pop_back();
        }
      }
    }
  }
  std::sort(result.begin(), result.end(), Better);
  *out = std::move(result);
}

void HnswIndex::Insert(uint32_t item, std::vector<uint32_t>* visited,
                       uint32_t* stamp) {
  const size_t item_level = links_[item].size() - 1;
  if (item == 0) {
    entry_point_ = 0;
    max_level_ = item_level;
    return;
  }

  const float* query = embeddings_->Row(item);

  // Greedy descent through layers above the item's level.
  uint32_t entry = entry_point_;
  for (size_t level = max_level_; level > item_level;) {
    bool moved = true;
    while (moved) {
      moved = false;
      Candidate best{Dot(query, entry), entry};
      if (level < links_[entry].size()) {
        for (uint32_t neighbor : links_[entry][level]) {
          const Candidate c{Dot(query, neighbor), neighbor};
          if (Better(c, best)) {
            best = c;
            moved = true;
          }
        }
      }
      entry = best.second;
    }
    --level;
  }

  // Beam search + link on each layer from min(max_level_, item_level) down.
  std::vector<Candidate> found;
  for (size_t level = std::min(max_level_, item_level) + 1; level-- > 0;) {
    ++*stamp;
    SearchLayer(query, entry, config_.ef_construction, level, &found,
                visited, *stamp);
    const size_t max_links = level == 0 ? config_.M * 2 : config_.M;
    const size_t take = std::min(config_.M, found.size());
    for (size_t i = 0; i < take; ++i) {
      const uint32_t neighbor = found[i].second;
      links_[item][level].push_back(neighbor);
      auto& reverse = links_[neighbor][level];
      reverse.push_back(item);
      if (reverse.size() > max_links) {
        // Prune to the Better-most max_links by similarity to `neighbor`.
        const float* base = embeddings_->Row(neighbor);
        std::vector<Candidate> ranked;
        ranked.reserve(reverse.size());
        for (uint32_t node : reverse) ranked.push_back({Dot(base, node), node});
        std::sort(ranked.begin(), ranked.end(), Better);
        ranked.resize(max_links);
        reverse.clear();
        for (const Candidate& c : ranked) reverse.push_back(c.second);
      }
    }
    if (!found.empty()) entry = found.front().second;
  }

  if (item_level > max_level_) {
    max_level_ = item_level;
    entry_point_ = item;
  }
}

std::vector<ScoredItem> HnswIndex::Search(const float* query, size_t k,
                                          const std::vector<char>* exclude,
                                          size_t ef_override) const {
  std::vector<ScoredItem> results;
  if (embeddings_->num_items == 0 || k == 0) return results;

  std::vector<uint32_t> visited(embeddings_->num_items, 0);
  uint32_t entry = entry_point_;
  for (size_t level = max_level_; level > 0; --level) {
    bool moved = true;
    while (moved) {
      moved = false;
      Candidate best{Dot(query, entry), entry};
      if (level < links_[entry].size()) {
        for (uint32_t neighbor : links_[entry][level]) {
          const Candidate c{Dot(query, neighbor), neighbor};
          if (Better(c, best)) {
            best = c;
            moved = true;
          }
        }
      }
      entry = best.second;
    }
  }

  size_t ef = ef_override != 0 ? ef_override : config_.ef_search;
  // Excluded items still steer traversal but are dropped from results, so
  // widen the beam to leave k survivors.
  size_t slack = 0;
  if (exclude != nullptr) {
    for (char flag : *exclude) slack += flag != 0;
  }
  ef = std::max(ef, k + slack);

  std::vector<Candidate> found;
  SearchLayer(query, entry, ef, 0, &found, &visited, 1);
  results.reserve(std::min(k, found.size()));
  for (const Candidate& c : found) {
    if (results.size() >= k) break;
    if (exclude != nullptr && (*exclude)[c.second]) continue;
    results.push_back({static_cast<ItemId>(c.second), c.first});
  }
  return results;
}

uint64_t HnswIndex::GraphDigest() const {
  uint64_t digest = 0xcbf29ce484222325ULL;
  auto mix = [&digest](uint64_t value) {
    digest = HashCombine(digest, Mix64(value));
  };
  mix(entry_point_);
  mix(max_level_);
  for (const auto& node : links_) {
    mix(node.size());
    for (const auto& level : node) {
      mix(level.size());
      for (uint32_t neighbor : level) mix(neighbor);
    }
  }
  return digest;
}

}  // namespace serenade
