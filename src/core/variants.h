// Execution-strategy variants of the VS-kNN/VMIS-kNN computation, used by
// the implementation-comparison experiment (Figure 3(a), top). The paper
// compares its Rust implementation against a Python/pandas reference
// (VS-Py), a Differential Dataflow implementation (VMIS-Diff), a Java
// implementation (VMIS-Java) and a DuckDB SQL implementation (VMIS-SQL).
// Those engines are not available here, so each variant below reproduces
// the *execution strategy* (and therefore the cost structure) of one of
// them in C++ — see DESIGN.md, "Substitutions".
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/recommender.h"
#include "core/session_index.h"
#include "core/vmis_knn.h"

namespace serenade {

/// VS-Py stand-in: dataframe-style evaluation. Materialises the complete
/// join between the evolving session's items and ALL historical postings,
/// hash-aggregates similarities over the full matching set, and only then
/// applies the recency sample — the "first materialise, then aggregate"
/// strategy whose large intermediates make the reference implementation
/// slow and memory-hungry.
///
/// Build the SessionIndex *uncapped* (max_sessions_per_item >= number of
/// sessions) so the full postings are visible to this variant.
class MaterializingVsKnn : public Recommender {
 public:
  MaterializingVsKnn(const SessionIndex* index, KnnConfig config);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "vs-py(materializing)"; }

 private:
  const SessionIndex* index_;
  KnnConfig config_;
};

/// VMIS-Diff stand-in: incremental evaluation over indexed intermediate
/// state. For each evolving session it maintains an arrangement
/// candidate-session -> (item -> matched position); each new click only
/// touches the postings of the new item, but every intermediate result is
/// kept indexed so the computation can react to updates — exactly the
/// overhead the paper observed ("differential dataflow has to index all
/// intermediate results due to its support for updates").
///
/// Requires an uncapped index (like MaterializingVsKnn). Stateful: feed
/// growing prefixes of the same session to successive RecommendNext calls
/// to get incremental updates; any other sequence triggers a full replay.
class IncrementalVmisKnn : public Recommender {
 public:
  IncrementalVmisKnn(const SessionIndex* index, KnnConfig config);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "vmis-diff(incremental)"; }

  /// Drops all per-session arrangements.
  void Reset();

  /// Bytes of indexed intermediate state currently held (for the memory
  /// comparison in the experiment report).
  size_t ArrangementBytes() const;

 private:
  void ApplyClick(ItemId item, uint32_t position);

  const SessionIndex* index_;
  KnnConfig config_;

  // Current evolving session and its arrangement.
  std::vector<ItemId> current_items_;
  std::unordered_map<SessionId, std::unordered_map<ItemId, uint32_t>>
      arrangement_;
};

/// VMIS-Java stand-in: the same VMIS-kNN algorithm executed over
/// node-based, individually-allocated data structures — tree maps instead
/// of open-addressed hash tables, heap-allocated boxed entries — which
/// reproduces the dominant costs of a managed-runtime implementation
/// (pointer chasing, allocation churn, no memory-layout control). A real
/// garbage collector's pause behaviour cannot be simulated faithfully;
/// this variant captures the steady-state throughput gap the paper
/// observed ("the effects of not having full control over the memory
/// management during the similarity computation").
class BoxedVmisKnn : public Recommender {
 public:
  BoxedVmisKnn(const SessionIndex* index, KnnConfig config);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "vmis-java(boxed)"; }

  /// Neighbour computation (exposed for the equivalence test).
  std::vector<Neighbor> NeighborSessions(const EvolvingSession& session);

 private:
  const SessionIndex* index_;
  KnnConfig config_;
  std::vector<ItemId> truncated_;
};

/// VMIS-SQL stand-in: the computation expressed as a pipeline of
/// relational operators with fully materialised operator outputs — join,
/// sort-based group-by, order-by + limit, another join and group-by —
/// mirroring the deeply nested subqueries the paper needed in DuckDB.
/// Like the SQL engine, it scans the full postings tables (build the
/// SessionIndex uncapped); the recency LIMIT is applied only after the
/// aggregation subquery.
class JoinAggregateVmisKnn : public Recommender {
 public:
  JoinAggregateVmisKnn(const SessionIndex* index, KnnConfig config);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "vmis-sql(join-aggregate)"; }

 private:
  const SessionIndex* index_;
  KnnConfig config_;
};

}  // namespace serenade
