#include "core/compressed_index.h"

#include <cassert>

#include "core/vmis_knn.h"

namespace serenade {

namespace {

void PutVarint(std::vector<uint8_t>* arena, uint64_t value) {
  while (value >= 0x80) {
    arena->push_back(static_cast<uint8_t>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  arena->push_back(static_cast<uint8_t>(value));
}

// Decodes one varint; advances cursor. The arenas are trusted (built in
// process), so no bounds diagnostics beyond the debug assert.
uint64_t GetVarint(const uint8_t** cursor) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = **cursor;
    ++*cursor;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
}

}  // namespace

CompressedSessionIndex CompressedSessionIndex::FromIndex(
    const SessionIndex& index) {
  CompressedSessionIndex compressed;
  compressed.max_sessions_per_item_ = index.max_sessions_per_item();

  const size_t num_items = index.num_items();
  const size_t num_sessions = index.num_sessions();

  // Postings: descending session ids -> first id, then positive gaps.
  compressed.item_offsets_.reserve(num_items + 1);
  compressed.item_offsets_.push_back(0);
  for (ItemId item = 0; item < num_items; ++item) {
    const auto postings = index.SessionsForItem(item);
    PutVarint(&compressed.postings_arena_, postings.size());
    SessionId previous = 0;
    for (size_t i = 0; i < postings.size(); ++i) {
      if (i == 0) {
        PutVarint(&compressed.postings_arena_, postings[0]);
      } else {
        assert(previous > postings[i]);
        PutVarint(&compressed.postings_arena_, previous - postings[i]);
      }
      previous = postings[i];
    }
    compressed.item_offsets_.push_back(compressed.postings_arena_.size());
  }

  // Session items: ascending item ids -> first id, then positive gaps.
  compressed.session_offsets_.reserve(num_sessions + 1);
  compressed.session_offsets_.push_back(0);
  for (SessionId session = 0; session < num_sessions; ++session) {
    const auto items = index.ItemsForSession(session);
    PutVarint(&compressed.items_arena_, items.size());
    ItemId previous = 0;
    for (size_t i = 0; i < items.size(); ++i) {
      if (i == 0) {
        PutVarint(&compressed.items_arena_, items[0]);
      } else {
        assert(items[i] > previous);
        PutVarint(&compressed.items_arena_, items[i] - previous);
      }
      previous = items[i];
    }
    compressed.session_offsets_.push_back(compressed.items_arena_.size());
  }

  // Timestamps rebased to the minimum; u32 deltas cover ~136 years.
  Timestamp base = num_sessions == 0 ? 0 : ~Timestamp{0};
  for (SessionId s = 0; s < num_sessions; ++s) {
    base = std::min(base, index.SessionTimestamp(s));
  }
  compressed.base_timestamp_ = num_sessions == 0 ? 0 : base;
  compressed.timestamp_deltas_.resize(num_sessions);
  for (SessionId s = 0; s < num_sessions; ++s) {
    const Timestamp delta = index.SessionTimestamp(s) - compressed.base_timestamp_;
    assert(delta <= ~uint32_t{0});
    compressed.timestamp_deltas_[s] = static_cast<uint32_t>(delta);
  }

  compressed.item_idf_.resize(num_items);
  for (ItemId item = 0; item < num_items; ++item) {
    compressed.item_idf_[item] = static_cast<float>(index.Idf(item));
  }
  return compressed;
}

std::span<const SessionId> CompressedSessionIndex::SessionsForItem(
    ItemId item, std::vector<SessionId>* scratch) const {
  scratch->clear();
  if (item >= num_items()) return {};
  const uint8_t* cursor = postings_arena_.data() + item_offsets_[item];
  const uint64_t count = GetVarint(&cursor);
  scratch->reserve(count);
  SessionId current = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t value = GetVarint(&cursor);
    current = i == 0 ? static_cast<SessionId>(value)
                     : current - static_cast<SessionId>(value);
    scratch->push_back(current);
  }
  return {scratch->data(), scratch->size()};
}

PostingsRef CompressedSessionIndex::PostingsForItem(
    ItemId item, PostingScratch* scratch) const {
  scratch->sessions.clear();
  scratch->timestamps.clear();
  if (item >= num_items()) return {};
  const uint8_t* cursor = postings_arena_.data() + item_offsets_[item];
  const uint64_t count = GetVarint(&cursor);
  scratch->sessions.reserve(count);
  scratch->timestamps.reserve(count);
  SessionId current = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t value = GetVarint(&cursor);
    current = i == 0 ? static_cast<SessionId>(value)
                     : current - static_cast<SessionId>(value);
    scratch->sessions.push_back(current);
    scratch->timestamps.push_back(base_timestamp_ + timestamp_deltas_[current]);
  }
  return {scratch->sessions.data(), scratch->timestamps.data(),
          scratch->sessions.size()};
}

std::span<const ItemId> CompressedSessionIndex::ItemsForSession(
    SessionId session, std::vector<ItemId>* scratch) const {
  scratch->clear();
  if (session >= num_sessions()) return {};
  const uint8_t* cursor = items_arena_.data() + session_offsets_[session];
  const uint64_t count = GetVarint(&cursor);
  scratch->reserve(count);
  ItemId current = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t value = GetVarint(&cursor);
    current = i == 0 ? static_cast<ItemId>(value)
                     : current + static_cast<ItemId>(value);
    scratch->push_back(current);
  }
  return {scratch->data(), scratch->size()};
}

size_t CompressedSessionIndex::MemoryBytes() const {
  return item_offsets_.size() * sizeof(uint64_t) + postings_arena_.size() +
         session_offsets_.size() * sizeof(uint64_t) + items_arena_.size() +
         timestamp_deltas_.size() * sizeof(uint32_t) +
         item_idf_.size() * sizeof(float);
}

// Anchor the compressed query-engine instantiation here.
template class VmisKnnT<CompressedSessionIndex>;

}  // namespace serenade
