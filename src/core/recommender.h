// The public next-item recommendation interface implemented by VMIS-kNN,
// VS-kNN, the implementation-comparison variants, and all baselines.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace serenade {

/// One recommended item with its relevance score (higher is better).
struct ScoredItem {
  ItemId item = kInvalidItem;
  float score = 0.0f;

  friend bool operator==(const ScoredItem&, const ScoredItem&) = default;
};

/// A session-based recommender: given the evolving session (items in
/// insertion order, oldest first), predicts the items the user is most
/// likely to interact with next.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Returns up to `how_many` items ordered by descending score.
  /// Non-const because some implementations (e.g. the incremental
  /// differential-dataflow stand-in) maintain per-session state.
  virtual std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                                size_t how_many) = 0;

  /// Short human-readable identifier used in benchmark output.
  virtual std::string Name() const = 0;
};

}  // namespace serenade
