#include "core/ann_recommender.h"

namespace serenade {

std::vector<ScoredItem> AnnRecommender::RecommendNext(
    const EvolvingSession& session, size_t how_many) {
  std::vector<ScoredItem> empty;
  if (embeddings_->num_items == 0 || how_many == 0) return empty;

  std::vector<float> query(embeddings_->dim, 0.0f);
  if (!SessionQueryVector(*embeddings_, session, config_.window,
                          config_.decay, query.data())) {
    // No session item maps into the embedding table (cold catalog items):
    // an empty result lets the caller fall back to business rules.
    return empty;
  }

  std::vector<char> exclude;
  const std::vector<char>* exclude_ptr = nullptr;
  if (config_.exclude_session_items) {
    exclude.assign(embeddings_->num_items, 0);
    for (ItemId item : session) {
      if (item < embeddings_->num_items) exclude[item] = 1;
    }
    exclude_ptr = &exclude;
  }
  return index_->Search(query.data(), how_many, exclude_ptr);
}

}  // namespace serenade
