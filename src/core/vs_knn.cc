#include "core/vs_knn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/dary_heap.h"

namespace serenade {

namespace {

struct NeighborLess {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    return a.score < b.score ||
           (a.score == b.score && a.timestamp < b.timestamp);
  }
};

struct ScoredItemLess {
  bool operator()(const ScoredItem& a, const ScoredItem& b) const {
    return a.score < b.score || (a.score == b.score && a.item > b.item);
  }
};

}  // namespace

VsKnn::VsKnn(const Dataset& train, KnnConfig config) : config_(config) {
  assert(config_.m > 0 && config_.k > 0);
  num_sessions_ = train.num_sessions();
  for (const SessionData& session : train.sessions()) {
    auto& item_set = items_for_session_[session.id];
    for (ItemId item : session.items) {
      if (item_set.insert(item).second) {
        sessions_for_item_[item].push_back(session.id);
      }
    }
    session_timestamps_[session.id] = session.end_time;
  }
  for (const auto& [item, sessions] : sessions_for_item_) {
    item_idf_[item] = std::log(static_cast<double>(num_sessions_) /
                               static_cast<double>(sessions.size()));
  }
}

void VsKnn::Truncate(const EvolvingSession& session) {
  truncated_.clear();
  const size_t start = session.size() > config_.max_session_length
                           ? session.size() - config_.max_session_length
                           : 0;
  truncated_.assign(session.begin() + static_cast<ptrdiff_t>(start),
                    session.end());
}

std::vector<Neighbor> VsKnn::NeighborSessions(const EvolvingSession& session) {
  Truncate(session);
  std::vector<Neighbor> result;
  if (truncated_.empty()) return result;
  const size_t len = truncated_.size();

  // Line 5: all historical sessions sharing at least one item — the full,
  // materialised matching set (this is the scalability problem).
  std::unordered_set<SessionId> matching;
  for (ItemId item : truncated_) {
    auto it = sessions_for_item_.find(item);
    if (it == sessions_for_item_.end()) continue;
    matching.insert(it->second.begin(), it->second.end());
  }
  if (matching.empty()) return result;

  // Line 6: recency-based sample of size m.
  std::vector<SessionId> candidates(matching.begin(), matching.end());
  if (candidates.size() > config_.m) {
    std::nth_element(candidates.begin(),
                     candidates.begin() + static_cast<ptrdiff_t>(config_.m),
                     candidates.end(),
                     [this](SessionId a, SessionId b) {
                       const Timestamp ta = session_timestamps_[a];
                       const Timestamp tb = session_timestamps_[b];
                       return ta > tb || (ta == tb && a > b);
                     });
    candidates.resize(config_.m);
  }

  // Line 7: similarity pi(omega(s))^T h via per-candidate set lookups.
  // Only the most recent occurrence of a duplicate item contributes,
  // matching VMIS-kNN's dedup semantics.
  max_position_.clear();
  for (size_t p = 0; p < len; ++p) {
    max_position_[truncated_[p]] = static_cast<uint32_t>(p + 1);
  }

  BoundedTopK<Neighbor, 2, NeighborLess> top_k(config_.k);
  for (SessionId candidate : candidates) {
    const auto& item_set = items_for_session_[candidate];
    float similarity = 0.0f;
    for (const auto& [item, position] : max_position_) {
      if (item_set.find(item) != item_set.end()) {
        similarity += static_cast<float>(
            DecayWeight(config_.decay, position, len));
      }
    }
    if (similarity > 0.0f) {
      top_k.Offer(
          Neighbor{candidate, similarity, session_timestamps_[candidate]});
    }
  }
  return top_k.TakeSortedDescending();
}

std::vector<ScoredItem> VsKnn::RecommendNext(const EvolvingSession& session,
                                             size_t how_many) {
  std::vector<ScoredItem> result;
  if (how_many == 0) return result;
  const std::vector<Neighbor> neighbors = NeighborSessions(session);
  if (neighbors.empty()) return result;
  const size_t len = truncated_.size();
  const float session_length_factor = 1.0f / static_cast<float>(len);

  std::unordered_map<ItemId, float> item_scores;
  for (const Neighbor& neighbor : neighbors) {
    const auto& item_set = items_for_session_[neighbor.session];

    uint32_t max_shared_position = 0;
    for (const auto& [item, position] : max_position_) {
      if (item_set.find(item) != item_set.end()) {
        max_shared_position = std::max(max_shared_position, position);
      }
    }
    if (max_shared_position == 0) continue;

    const float weight =
        static_cast<float>(
            MatchWeight(config_.match_weight, max_shared_position, len)) *
        session_length_factor * neighbor.score;
    if (weight <= 0.0f) continue;

    for (ItemId item : item_set) {
      float idf_factor = 1.0f;
      switch (config_.idf) {
        case IdfWeighting::kNone:
          break;
        case IdfWeighting::kLog:
          idf_factor = static_cast<float>(item_idf_[item]);
          break;
        case IdfWeighting::kOnePlusLog:
          idf_factor = 1.0f + static_cast<float>(item_idf_[item]);
          break;
      }
      item_scores[item] += weight * idf_factor;
    }
  }

  BoundedTopK<ScoredItem, 2, ScoredItemLess> top_n(how_many);
  for (const auto& [item, score] : item_scores) {
    if (config_.exclude_session_items &&
        max_position_.find(item) != max_position_.end()) {
      continue;
    }
    top_n.Offer(ScoredItem{item, score});
  }
  return top_n.TakeSortedDescending();
}

}  // namespace serenade
