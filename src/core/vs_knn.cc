#include "core/vs_knn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "common/dary_heap.h"

namespace serenade {

VsKnn::VsKnn(const Dataset& train, KnnConfig config) : config_(config) {
  assert(config_.m > 0 && config_.k > 0);
  num_sessions_ = train.num_sessions();
  for (const SessionData& session : train.sessions()) {
    auto& item_list = items_for_session_[session.id];
    item_list.assign(session.items.begin(), session.items.end());
    std::sort(item_list.begin(), item_list.end());
    item_list.erase(std::unique(item_list.begin(), item_list.end()),
                    item_list.end());
    for (ItemId item : item_list) {
      sessions_for_item_[item].push_back(session.id);
    }
    session_timestamps_[session.id] = session.end_time;
  }
  for (const auto& [item, sessions] : sessions_for_item_) {
    item_idf_[item] = std::log(static_cast<double>(num_sessions_) /
                               static_cast<double>(sessions.size()));
  }
}

void VsKnn::Truncate(const EvolvingSession& session) {
  truncated_.clear();
  const size_t start = session.size() > config_.max_session_length
                           ? session.size() - config_.max_session_length
                           : 0;
  truncated_.assign(session.begin() + static_cast<ptrdiff_t>(start),
                    session.end());
}

bool VsKnn::Contains(const std::vector<ItemId>& items, ItemId item) {
  return std::binary_search(items.begin(), items.end(), item);
}

std::vector<Neighbor> VsKnn::NeighborSessions(const EvolvingSession& session) {
  Truncate(session);
  std::vector<Neighbor> result;
  if (truncated_.empty()) return result;
  const size_t len = truncated_.size();

  // Line 5: all historical sessions sharing at least one item — the full,
  // materialised matching set (this is the scalability problem).
  std::unordered_set<SessionId> matching;
  for (ItemId item : truncated_) {
    auto it = sessions_for_item_.find(item);
    if (it == sessions_for_item_.end()) continue;
    matching.insert(it->second.begin(), it->second.end());
  }
  if (matching.empty()) return result;

  // Line 6: recency-based sample of size m. Recency ties break on the
  // higher session id — the same total order VMIS-kNN's eviction uses.
  std::vector<SessionId> candidates(matching.begin(), matching.end());
  if (candidates.size() > config_.m) {
    std::nth_element(candidates.begin(),
                     candidates.begin() + static_cast<ptrdiff_t>(config_.m),
                     candidates.end(),
                     [this](SessionId a, SessionId b) {
                       const Timestamp ta = session_timestamps_[a];
                       const Timestamp tb = session_timestamps_[b];
                       return ta > tb || (ta == tb && a > b);
                     });
    candidates.resize(config_.m);
  }

  // Duplicate evolving-session items contribute only at their most
  // recent position, and similarity terms accumulate most-recent-first —
  // the traversal order of VMIS-kNN's intersection loop, so the float
  // sums agree bit-for-bit.
  dedup_recent_first_.clear();
  max_position_.clear();
  for (size_t reverse = 0; reverse < len; ++reverse) {
    const size_t position = len - 1 - reverse;  // 0-based
    const ItemId item = truncated_[position];
    bool duplicate = false;
    for (size_t later = position + 1; later < len; ++later) {
      if (truncated_[later] == item) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    dedup_recent_first_.emplace_back(item,
                                     static_cast<uint32_t>(position + 1));
    max_position_[item] = static_cast<uint32_t>(position + 1);
  }

  // Line 7: similarity pi(omega(s))^T h via per-candidate lookups.
  BoundedTopK<Neighbor, 2, internal::NeighborLess> top_k(config_.k);
  for (SessionId candidate : candidates) {
    const std::vector<ItemId>& item_list = items_for_session_[candidate];
    float similarity = 0.0f;
    for (const auto& [item, position] : dedup_recent_first_) {
      if (Contains(item_list, item)) {
        similarity += static_cast<float>(
            DecayWeight(config_.decay, position, len));
      }
    }
    if (similarity > 0.0f) {
      top_k.Offer(
          Neighbor{candidate, similarity, session_timestamps_[candidate]});
    }
  }
  return top_k.TakeSortedDescending();
}

std::vector<ScoredItem> VsKnn::RecommendNext(const EvolvingSession& session,
                                             size_t how_many) {
  std::vector<ScoredItem> result;
  if (how_many == 0) return result;
  const std::vector<Neighbor> neighbors = NeighborSessions(session);
  if (neighbors.empty()) return result;
  const size_t len = truncated_.size();
  const float session_length_factor = 1.0f / static_cast<float>(len);

  std::unordered_map<ItemId, float> item_scores;
  for (const Neighbor& neighbor : neighbors) {
    const std::vector<ItemId>& item_list = items_for_session_[neighbor.session];

    uint32_t max_shared_position = 0;
    for (ItemId item : item_list) {
      auto it = max_position_.find(item);
      if (it != max_position_.end()) {
        max_shared_position = std::max(max_shared_position, it->second);
      }
    }
    if (max_shared_position == 0) continue;

    // Without length normalisation the product chain is exactly
    // VMIS-kNN's (match weight times neighbour score).
    const float match = static_cast<float>(
        MatchWeight(config_.match_weight, max_shared_position, len));
    const float weight = config_.vs_length_norm
                             ? match * session_length_factor * neighbor.score
                             : match * neighbor.score;
    if (weight <= 0.0f) continue;

    for (ItemId item : item_list) {
      float idf_factor = 1.0f;
      switch (config_.idf) {
        case IdfWeighting::kNone:
          break;
        case IdfWeighting::kLog:
          idf_factor = static_cast<float>(item_idf_[item]);
          break;
        case IdfWeighting::kOnePlusLog:
          idf_factor = 1.0f + static_cast<float>(item_idf_[item]);
          break;
      }
      item_scores[item] += weight * idf_factor;
    }
  }

  BoundedTopK<ScoredItem, 2, internal::ScoredItemLess> top_n(how_many);
  for (const auto& [item, score] : item_scores) {
    if (config_.exclude_session_items &&
        max_position_.find(item) != max_position_.end()) {
      continue;
    }
    top_n.Offer(ScoredItem{item, score});
  }
  return top_n.TakeSortedDescending();
}

}  // namespace serenade
