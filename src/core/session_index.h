// The VMIS-kNN session similarity index (M, t) from Section 3 of the
// paper, plus the per-session item lists needed by the scoring pass and
// the per-item IDF statistics.
//
// Layout: both the item -> recent-sessions map M and the session -> items
// map are stored CSR-style (one flat value array plus an offsets array),
// which keeps the whole index in a handful of contiguous allocations and
// makes replication to serving machines a straight memcpy/file load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "data/click_log.h"

namespace serenade {

/// Structure-of-arrays view of one item's posting list: parallel arrays
/// of session ids and their timestamps, both in descending recency order.
/// The timestamp array removes the random session_timestamps_[id] gather
/// from the VMIS-kNN intersection loop — the query streams both arrays
/// sequentially instead (DESIGN.md §11).
struct PostingsRef {
  const SessionId* sessions = nullptr;
  const Timestamp* timestamps = nullptr;
  size_t size = 0;
};

/// Caller-provided decode buffers for index representations that cannot
/// return stable PostingsRef views directly (compressed, overlay-merged).
struct PostingScratch {
  std::vector<SessionId> sessions;
  std::vector<Timestamp> timestamps;
};

/// Immutable session similarity index. Build offline (see also
/// index/index_builder.h for the parallel pipeline), replicate to every
/// serving machine, query concurrently without synchronisation.
class SessionIndex {
 public:
  SessionIndex() = default;

  /// Builds the index from training sessions. For every item, keeps the
  /// `max_sessions_per_item` (the paper's m) most recent sessions that
  /// contain it, ordered by descending session timestamp.
  ///
  /// Requires dataset sessions in ascending end-time order with dense ids
  /// (as produced by Dataset::FromClicks).
  static SessionIndex Build(const Dataset& train,
                            size_t max_sessions_per_item);

  size_t num_sessions() const { return session_timestamps_.size(); }
  size_t num_items() const {
    return item_offsets_.empty() ? 0 : item_offsets_.size() - 1;
  }
  size_t max_sessions_per_item() const { return max_sessions_per_item_; }

  /// The m most recent historical sessions containing `item`, most recent
  /// first (the array m_i of the paper). Empty span for unknown items.
  std::span<const SessionId> SessionsForItem(ItemId item) const {
    if (item >= num_items()) return {};
    return {session_lists_.data() + item_offsets_[item],
            item_offsets_[item + 1] - item_offsets_[item]};
  }

  /// Scratch-taking overload of the query-engine index concept (see
  /// vmis_knn.h). The flat CSR layout needs no decode buffer.
  std::span<const SessionId> SessionsForItem(
      ItemId item, std::vector<SessionId>* /*scratch*/) const {
    return SessionsForItem(item);
  }

  /// Fused SoA posting access for the query hot loop: ids and timestamps
  /// in one call, no per-candidate SessionTimestamp() gather. The flat
  /// index returns views of its own parallel arrays; `scratch` is unused.
  PostingsRef PostingsForItem(ItemId item, PostingScratch* /*scratch*/) const {
    if (item >= num_items()) return {};
    const uint64_t begin = item_offsets_[item];
    return {session_lists_.data() + begin, posting_timestamps_.data() + begin,
            item_offsets_[item + 1] - begin};
  }

  /// Hints the first cache lines of `item`'s posting arrays into cache —
  /// issued by the query loop one item ahead of use.
  void PrefetchPostings(ItemId item) const {
    if (item >= num_items()) return;
    const uint64_t begin = item_offsets_[item];
    __builtin_prefetch(session_lists_.data() + begin);
    __builtin_prefetch(posting_timestamps_.data() + begin);
  }

  /// Dense per-item IDF array (num_items() floats) for the vectorized
  /// scoring kernel. Entries equal static_cast<float>(Idf(item)).
  const float* IdfData() const { return item_idf_.data(); }

  /// Timestamp of a historical session (the array t of the paper).
  Timestamp SessionTimestamp(SessionId session) const {
    return session_timestamps_[session];
  }

  /// The distinct items of a historical session (for the scoring pass).
  std::span<const ItemId> ItemsForSession(SessionId session) const {
    return {session_items_.data() + session_offsets_[session],
            session_offsets_[session + 1] - session_offsets_[session]};
  }

  /// Scratch-taking overload (index concept); no decode needed.
  std::span<const ItemId> ItemsForSession(
      SessionId session, std::vector<ItemId>* /*scratch*/) const {
    return ItemsForSession(session);
  }

  /// log(|H| / h_i) where h_i counts *all* historical sessions containing
  /// the item (not just the m retained ones). 0 for unknown items.
  double Idf(ItemId item) const {
    return item < item_idf_.size() ? item_idf_[item] : 0.0;
  }

  /// h_i: the number of historical sessions containing `item` (exact, not
  /// capped at m). 0 for unknown items, and 0 for every item when the
  /// index was loaded from a format-v1 artifact (see has_frequencies()).
  uint32_t ItemFrequency(ItemId item) const {
    return item < item_frequencies_.size() ? item_frequencies_[item] : 0;
  }

  /// Whether exact per-item frequencies are available. Always true for
  /// freshly built indexes; false only for indexes deserialized from a
  /// format-v1 artifact, which did not persist the frequency section.
  /// Delta application (index/index_format.h) requires frequencies: IDF
  /// after a merge must be recomputed from exact counts to stay
  /// bit-identical with a full rebuild.
  bool has_frequencies() const {
    return num_items() == 0 || !item_frequencies_.empty();
  }

  /// Total number of (item, session) postings retained — the index size
  /// driver (space is O(|I| * m), Section 3).
  size_t num_postings() const { return session_lists_.size(); }

  /// Approximate resident memory of the index in bytes.
  size_t MemoryBytes() const;

  // --- Raw access for serialization (index/index_format.*). ---
  struct Raw {
    std::vector<uint64_t> item_offsets;
    std::vector<SessionId> session_lists;
    std::vector<Timestamp> session_timestamps;
    std::vector<uint64_t> session_offsets;
    std::vector<ItemId> session_items;
    std::vector<float> item_idf;
    /// Exact h_i counts (format v2+); empty for v1 artifacts.
    std::vector<uint32_t> item_frequencies;
    uint64_t max_sessions_per_item = 0;
  };

  /// Reconstructs an index from raw arrays (used by the deserializer).
  static SessionIndex FromRaw(Raw raw);

  /// Exposes the raw arrays (used by the serializer).
  Raw ToRaw() const;

 private:
  size_t max_sessions_per_item_ = 0;

  /// Fills posting_timestamps_ from session_lists_ x session_timestamps_
  /// (derived data — not serialized; see Raw).
  void DerivePostingTimestamps();

  // M: item -> most recent sessions, CSR (structure-of-arrays: the
  // session ids and their timestamps are parallel alignments of the same
  // posting list; posting_timestamps_[j] ==
  // session_timestamps_[session_lists_[j]], rebuilt by
  // DerivePostingTimestamps on construction).
  std::vector<uint64_t> item_offsets_;
  std::vector<SessionId> session_lists_;
  std::vector<Timestamp> posting_timestamps_;

  // t: session -> timestamp.
  std::vector<Timestamp> session_timestamps_;

  // session -> distinct items, CSR.
  std::vector<uint64_t> session_offsets_;
  std::vector<ItemId> session_items_;

  // idf per item.
  std::vector<float> item_idf_;

  // exact per-item session frequency h_i (empty iff loaded from a v1
  // artifact; see has_frequencies()).
  std::vector<uint32_t> item_frequencies_;
};

}  // namespace serenade
