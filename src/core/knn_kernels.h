// Portable SIMD kernels for the VMIS-kNN query hot loops (DESIGN.md §11).
//
// Every kernel has three implementations — AVX2 (x86, compiled with a
// per-function target attribute so the rest of the build stays baseline),
// NEON (AArch64 baseline), and scalar — selected once at process start by
// runtime CPU dispatch. The scalar bodies are the reference semantics:
// the vector paths are required to be BIT-IDENTICAL to them (same float
// operation sequence per array slot, no FMA contraction, no reassociation
// of per-slot accumulation), which is what lets the PR 5 differential
// oracle hold "scalar ≡ SIMD" as an exact equality rather than a
// tolerance. The whole tree builds with -ffp-contract=off to keep the
// compiler from fusing the mul+add pairs these kernels mirror.
//
// Build gating: the vector paths exist only when the tree is configured
// with -DSERENADE_SIMD=ON (the default; defines SERENADE_SIMD_ENABLED).
// Runtime selection: SetActiveLevel / the SERENADE_SIMD_LEVEL environment
// variable ("scalar", "avx2", "neon", "auto") force a level, used by the
// scalar-vs-SIMD bench arms and the differential tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/weighting.h"

namespace serenade::simd {

/// Instruction-set level of the kernel implementations.
enum class Level : int {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
};

/// Lane count the block-oriented kernels (the *Mask prefilters) are
/// designed around; callers feed blocks of at most this many entries.
inline constexpr size_t kBlockLanes = 8;

const char* LevelName(Level level);

/// The best level this build + CPU supports (kScalar when the tree was
/// configured with -DSERENADE_SIMD=OFF or the CPU lacks AVX2).
Level BestSupportedLevel();

/// The level the kernels currently dispatch to. Initialised on first use
/// from BestSupportedLevel(), overridable via SERENADE_SIMD_LEVEL.
Level ActiveLevel();

/// Forces the dispatch level (bench arms, differential tests). Only
/// kScalar and BestSupportedLevel() are accepted; returns false (level
/// unchanged) otherwise. Thread-safe (relaxed atomic), but callers that
/// flip levels mid-run own the coordination with concurrent queries.
bool SetActiveLevel(Level level);

/// RAII level override for tests and bench arms.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level)
      : previous_(ActiveLevel()), ok_(SetActiveLevel(level)) {}
  ~ScopedLevel() { SetActiveLevel(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;
  /// Whether the requested level was actually engaged.
  bool ok() const { return ok_; }

 private:
  Level previous_;
  bool ok_;
};

/// "avx2" / "neon" / "scalar" plus the build flag state — for /v1/stats,
/// startup logs, and bench provenance.
std::string DescribeDispatch();

// ---------------------------------------------------------------------------
// Epoch-stamped slot records. The query engine's dense per-session and
// per-item scratch state is stored as small power-of-two records rather
// than parallel arrays: one candidate insert or lookup touches ONE cache
// line instead of two or three, and the vector paths fetch a whole
// record with a single 64-bit gather (two for the 16-byte session slot).
// A slot is live iff its stamp equals the current query epoch.
// ---------------------------------------------------------------------------

/// Per-session candidate state: similarity score and the session's
/// timestamp, cached at insert so neither the top-k loop nor the
/// eviction compare ever gathers from the index again.
struct alignas(16) SessionSlot {
  uint32_t stamp = 0;
  float score = 0.0f;
  Timestamp time = 0;
};
static_assert(sizeof(SessionSlot) == 16);

/// Per-item accumulated recommendation score (the scoring pass).
struct ItemScoreSlot {
  uint32_t stamp = 0;
  float score = 0.0f;
};
static_assert(sizeof(ItemScoreSlot) == 8);

/// Per-item last (1-based) position within the evolving session.
struct ItemPositionSlot {
  uint32_t stamp = 0;
  uint32_t position = 0;
};
static_assert(sizeof(ItemPositionSlot) == 8);

// ---------------------------------------------------------------------------
// Kernels. All slot pointers reference dense arrays indexed by the ids in
// the id lists; every id must be in bounds for its array (VMIS-kNN
// guarantees this: neighbour items and posting sessions come from the
// index whose universe sizes the arrays).
// ---------------------------------------------------------------------------

/// Intersection-loop fast path: consumes the longest prefix of `postings`
/// whose sessions are already live candidates (stamp == epoch), adding
/// `decay` to each one's score, and returns the number consumed. Stops at
/// the first non-member (the caller runs the insert/evict/early-stop logic
/// for it) or at `count`. Sessions within one posting list are distinct.
size_t ConsumeMemberRun(const SessionId* postings, size_t count, float decay,
                        SessionSlot* slots, uint32_t epoch);

/// Packed (timestamp << 32 | session) candidate-recency key — the element
/// type of the engine's recency heap b_t, built by FillRun.
using RecencyKey = unsigned __int128;

/// Intersection-loop fill-regime block: processes `count` (<= kBlockLanes)
/// postings while the candidate set cannot overflow (caller guarantees
/// live + count <= m, i.e. NO eviction can occur): members get `decay`
/// added, non-members are inserted (slot stamped, id appended to
/// `touched_sessions`, recency key appended). Returns the number
/// inserted. Valid only in that regime — an eviction could retroactively
/// change a later lane's membership, which is impossible here; sessions
/// within one posting list are distinct, so lanes never interact and one
/// gathered membership test decides the whole block exactly as the
/// sequential scalar walk would.
size_t FillRun(const SessionId* sessions, const Timestamp* timestamps,
               size_t count, float decay, uint32_t epoch, SessionSlot* slots,
               std::vector<SessionId>* touched_sessions,
               std::vector<RecencyKey>* recency_keys);

/// Scoring pass, step 1: max over the 1-based positions of the evolving
/// session's items that also occur in `items` (0 when disjoint) — the
/// max(omega(s) ⊙ n) lookup. Position entries are valid iff their stamp
/// equals `epoch`.
uint32_t MaxSharedPosition(const ItemId* items, size_t count,
                           const ItemPositionSlot* slots, uint32_t epoch);

/// Scoring pass, step 2: for each (distinct) item of a neighbour session,
/// adds weight * idf_factor(item) to its score slot, stamping and zeroing
/// slots on first touch this query and recording them in `touched_items`
/// (in list order). idf_factor is 1, idf[item], or 1 + idf[item]
/// depending on `idf_mode` — exactly the float expression of the scalar
/// path.
void AccumulateItemScores(const ItemId* items, size_t count, float weight,
                          IdfWeighting idf_mode, const float* idf,
                          uint32_t epoch, ItemScoreSlot* slots,
                          std::vector<ItemId>* touched_items);

/// Top-k prefilter over candidate sessions, used once the result heap is
/// full: bit i of the result is set iff ids[i] is a live candidate
/// (stamp == epoch) that BEATS the heap's current weakest neighbour
/// under the full NeighborLess order — score, then timestamp, then
/// session id, all strictly greater. Only beating candidates can change
/// a full heap (Offer of anything else is a no-op), so the filter is
/// exact; it is also highly selective under the quantized decay scores,
/// where score-only filtering would pass every tied lane. The compares
/// are exact predicates (no float arithmetic), so the mask is identical
/// across SIMD levels. count <= kBlockLanes.
uint32_t BeatsNeighborMask(const SessionId* ids, size_t count,
                           const SessionSlot* slots, uint32_t epoch,
                           float weakest_score, Timestamp weakest_time,
                           SessionId weakest_session);

/// Top-n prefilter over touched items (all live by construction), used
/// once the result heap is full: bit i set iff ids[i] beats the weakest
/// kept item under ScoredItemLess — higher score, ties won by the
/// SMALLER item id. count <= kBlockLanes.
uint32_t BeatsItemMask(const ItemId* ids, size_t count,
                       const ItemScoreSlot* slots, float weakest_score,
                       ItemId weakest_item);

}  // namespace serenade::simd
