#include "baselines/rules.h"

#include <algorithm>

#include "common/dary_heap.h"

namespace serenade {

namespace {

struct ScoredItemLess {
  bool operator()(const ScoredItem& a, const ScoredItem& b) const {
    return a.score < b.score || (a.score == b.score && a.item > b.item);
  }
};

// Converts per-antecedent weight maps into bounded, sorted rule lists.
std::vector<std::vector<ScoredItem>> ToRuleLists(
    std::vector<std::unordered_map<ItemId, float>>& weights,
    size_t rules_per_item) {
  std::vector<std::vector<ScoredItem>> rules(weights.size());
  for (size_t a = 0; a < weights.size(); ++a) {
    if (weights[a].empty()) continue;
    BoundedTopK<ScoredItem, 8, ScoredItemLess> top(rules_per_item);
    for (const auto& [b, w] : weights[a]) top.Offer(ScoredItem{b, w});
    rules[a] = top.TakeSortedDescending();
  }
  return rules;
}

std::vector<ScoredItem> RecommendFromRules(
    const std::vector<std::vector<ScoredItem>>& rules,
    const EvolvingSession& session, size_t how_many) {
  if (session.empty() || how_many == 0) return {};
  const ItemId last = session.back();
  if (last >= rules.size()) return {};
  std::vector<ScoredItem> result = rules[last];
  if (result.size() > how_many) result.resize(how_many);
  return result;
}

}  // namespace

AssociationRules::AssociationRules(const Dataset& train, RulesConfig config) {
  std::vector<std::unordered_map<ItemId, float>> weights(train.num_items());
  std::vector<ItemId> distinct;
  for (const SessionData& session : train.sessions()) {
    distinct.assign(session.items.begin(), session.items.end());
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    constexpr size_t kMaxSessionItems = 50;  // bound the O(n^2) pair loop
    const size_t n = std::min(distinct.size(), kMaxSessionItems);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        weights[distinct[i]][distinct[j]] += 1.0f;
      }
    }
  }
  rules_ = ToRuleLists(weights, config.rules_per_item);
}

const std::vector<ScoredItem>& AssociationRules::RulesFor(ItemId item) const {
  return item < rules_.size() ? rules_[item] : empty_;
}

std::vector<ScoredItem> AssociationRules::RecommendNext(
    const EvolvingSession& session, size_t how_many) {
  return RecommendFromRules(rules_, session, how_many);
}

SequentialRules::SequentialRules(const Dataset& train, RulesConfig config) {
  std::vector<std::unordered_map<ItemId, float>> weights(train.num_items());
  for (const SessionData& session : train.sessions()) {
    const auto& items = session.items;
    for (size_t p = 0; p < items.size(); ++p) {
      const size_t limit =
          std::min(items.size(), p + 1 + config.max_distance);
      for (size_t q = p + 1; q < limit; ++q) {
        if (items[p] == items[q]) continue;
        weights[items[p]][items[q]] +=
            1.0f / static_cast<float>(q - p);
      }
    }
  }
  rules_ = ToRuleLists(weights, config.rules_per_item);
}

const std::vector<ScoredItem>& SequentialRules::RulesFor(ItemId item) const {
  return item < rules_.size() ? rules_[item] : empty_;
}

std::vector<ScoredItem> SequentialRules::RecommendNext(
    const EvolvingSession& session, size_t how_many) {
  return RecommendFromRules(rules_, session, how_many);
}

}  // namespace serenade
