// GRU4Rec (Hidasi et al., ICLR'16) re-implemented from scratch: a single
// GRU layer over item embeddings, trained with session-parallel
// mini-batches and sampled softmax (in-batch negatives), exactly the
// training scheme of the original paper (which also truncated backprop to
// one step, as sessions are short). One of the three neural baselines the
// paper compares VMIS-kNN against (Section 5.1.1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "baselines/nn.h"
#include "core/recommender.h"
#include "data/click_log.h"

namespace serenade {

struct Gru4RecConfig {
  size_t embedding_dim = 48;   ///< input embedding size
  size_t hidden_dim = 48;      ///< GRU state size
  size_t epochs = 5;
  size_t batch_size = 32;      ///< parallel sessions per step
  float learning_rate = 0.1f;  ///< Adagrad step size
  float init_range = 0.08f;
  uint64_t seed = 1;
  /// Items of the evolving session considered at inference time.
  size_t max_session_length = 20;
};

/// Trainable GRU4Rec model. Train() is deterministic for a fixed seed.
class Gru4Rec : public Recommender {
 public:
  Gru4Rec(size_t num_items, Gru4RecConfig config);

  /// Runs the configured number of epochs over the training sessions.
  /// Returns the mean training loss of the final epoch.
  float Train(const Dataset& train);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "gru4rec"; }

  const Gru4RecConfig& config() const { return config_; }

 private:
  // One forward step; reads hidden, writes next_hidden (may not alias).
  // Scratch views into step_buffers_ hold the gate activations needed by
  // the backward pass.
  struct StepState {
    std::vector<float> x, z, r, rh, c, h_in, h_out;
  };
  void Forward(ItemId input, const std::vector<float>& hidden,
               StepState* state) const;

  // Backward for one step given dL/dh_out; accumulates parameter grads
  // and the input-embedding gradient (into e_in_.GradRow(input)).
  void Backward(ItemId input, const StepState& state,
                const std::vector<float>& dh_out);

  size_t num_items_;
  Gru4RecConfig config_;

  Tensor e_in_;                  // items x d
  Tensor wz_, wr_, wc_;          // H x d
  Tensor uz_, ur_, uc_;          // H x H
  Tensor bz_, br_, bc_;          // 1 x H
  Tensor e_out_;                 // items x H
  Tensor b_out_;                 // 1 x items
};

}  // namespace serenade
