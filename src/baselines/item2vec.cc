#include "baselines/item2vec.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace serenade {

namespace {

struct Pair {
  ItemId center = kInvalidItem;
  ItemId context = kInvalidItem;
};

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// Per-batch state: the pairs, their pre-drawn negatives, and the scratch
/// the parallel gradient phase writes into (disjoint slots per pair).
struct Batch {
  std::vector<Pair> pairs;
  std::vector<ItemId> negatives;      // pairs.size() * num_negatives
  std::vector<float> center_grads;    // pairs.size() * dim
  std::vector<float> target_grads;    // pairs.size() * (1 + negs) * dim
  std::vector<double> losses;         // pairs.size()
};

}  // namespace

StatusOr<ItemEmbeddings> TrainItemEmbeddings(const Dataset& dataset,
                                             const Item2VecConfig& config,
                                             double* total_loss) {
  const size_t vocab = dataset.num_items();
  const size_t dim = config.dim;
  if (vocab == 0) return Status::InvalidArgument("item2vec: empty catalog");
  if (dim == 0) return Status::InvalidArgument("item2vec: zero dim");

  // Unigram counts -> count^0.75 negative-sampling distribution.
  std::vector<double> weights(vocab, 0.0);
  size_t pairs_per_epoch = 0;
  for (const SessionData& session : dataset.sessions()) {
    const size_t n = session.items.size();
    for (size_t i = 0; i < n; ++i) {
      if (session.items[i] < vocab) weights[session.items[i]] += 1.0;
      const size_t lo = i >= config.window ? i - config.window : 0;
      const size_t hi = std::min(n - 1, i + config.window);
      pairs_per_epoch += (hi - lo);  // all offsets except the center itself
    }
  }
  bool any_weight = false;
  for (double& w : weights) {
    if (w > 0.0) {
      w = std::pow(w, 0.75);
      any_weight = true;
    }
  }
  if (!any_weight || pairs_per_epoch == 0) {
    return Status::InvalidArgument("item2vec: no training pairs in dataset");
  }
  const AliasTable sampler(weights);

  Rng rng(config.seed);
  ItemEmbeddings input;
  input.num_items = vocab;
  input.dim = dim;
  input.values.resize(vocab * dim);
  // Standard word2vec init: inputs uniform in [-0.5, 0.5]/dim (drawn
  // sequentially from the master RNG), contexts zero.
  for (float& v : input.values) {
    v = static_cast<float>((rng.NextDouble() - 0.5) / dim);
  }
  std::vector<float> context(vocab * dim, 0.0f);

  const size_t total_pairs = pairs_per_epoch * config.epochs;
  const size_t negs = config.negatives;
  const size_t targets_per_pair = 1 + negs;

  ThreadPool pool(std::max<size_t>(1, config.num_threads));
  Batch batch;
  batch.pairs.reserve(config.batch_pairs);
  double loss_sum = 0.0;
  size_t processed = 0;

  auto flush = [&]() {
    const size_t count = batch.pairs.size();
    if (count == 0) return;
    // Linear learning-rate decay, computed from the deterministic pair
    // counter (one rate per batch).
    const float progress =
        static_cast<float>(processed) / static_cast<float>(total_pairs);
    const float lr = std::max(config.min_learning_rate,
                              config.learning_rate * (1.0f - progress));

    // Negatives for the whole batch, sequentially from the master RNG.
    batch.negatives.resize(count * negs);
    for (size_t p = 0; p < count; ++p) {
      for (size_t j = 0; j < negs; ++j) {
        batch.negatives[p * negs + j] =
            static_cast<ItemId>(sampler.Sample(rng));
      }
    }

    batch.center_grads.assign(count * dim, 0.0f);
    batch.target_grads.assign(count * targets_per_pair * dim, 0.0f);
    batch.losses.assign(count, 0.0);

    // Parallel gradient phase: reads the weights frozen at batch start,
    // writes only this pair's scratch slots.
    ParallelFor(pool, count, [&](size_t begin, size_t end) {
      for (size_t p = begin; p < end; ++p) {
        const Pair& pair = batch.pairs[p];
        const float* center_row = input.Row(pair.center);
        float* center_grad = batch.center_grads.data() + p * dim;
        double loss = 0.0;
        for (size_t t = 0; t < targets_per_pair; ++t) {
          ItemId target;
          float label;
          if (t == 0) {
            target = pair.context;
            label = 1.0f;
          } else {
            target = batch.negatives[p * negs + (t - 1)];
            label = 0.0f;
            if (target == pair.context) continue;  // accidental positive
          }
          const float* target_row = context.data() + target * dim;
          float dot = 0.0f;
          for (size_t d = 0; d < dim; ++d) dot += center_row[d] * target_row[d];
          const float predicted = Sigmoid(dot);
          const float g = (label - predicted) * lr;
          float* target_grad =
              batch.target_grads.data() + (p * targets_per_pair + t) * dim;
          for (size_t d = 0; d < dim; ++d) {
            center_grad[d] += g * target_row[d];
            target_grad[d] = g * center_row[d];
          }
          const float clamped =
              std::min(std::max(label > 0.5f ? predicted : 1.0f - predicted,
                                1e-7f),
                       1.0f);
          loss -= std::log(clamped);
        }
        batch.losses[p] = loss;
      }
    });

    // Sequential apply phase: fixed order makes float accumulation (and
    // therefore the final bytes) independent of the thread count. Updates
    // are clamped per component: a batch freezes its read snapshot, so a
    // pair repeated within one batch stacks its gradient — on a small
    // catalog that multiplies the effective learning rate and, unclamped,
    // oscillates the weights out to infinity.
    const auto clamped_update = [](float g) {
      constexpr float kMaxUpdate = 0.5f;
      return std::min(kMaxUpdate, std::max(-kMaxUpdate, g));
    };
    for (size_t p = 0; p < count; ++p) {
      const Pair& pair = batch.pairs[p];
      float* center_row = input.MutableRow(pair.center);
      const float* center_grad = batch.center_grads.data() + p * dim;
      for (size_t d = 0; d < dim; ++d) {
        center_row[d] += clamped_update(center_grad[d]);
      }
      for (size_t t = 0; t < targets_per_pair; ++t) {
        const ItemId target =
            t == 0 ? pair.context : batch.negatives[p * negs + (t - 1)];
        if (t != 0 && target == pair.context) continue;
        const float* target_grad =
            batch.target_grads.data() + (p * targets_per_pair + t) * dim;
        float* target_row = context.data() + target * dim;
        for (size_t d = 0; d < dim; ++d) {
          target_row[d] += clamped_update(target_grad[d]);
        }
      }
      loss_sum += batch.losses[p];
    }
    processed += count;
    batch.pairs.clear();
  };

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (const SessionData& session : dataset.sessions()) {
      const size_t n = session.items.size();
      for (size_t i = 0; i < n; ++i) {
        const ItemId center = session.items[i];
        if (center >= vocab) continue;
        const size_t lo = i >= config.window ? i - config.window : 0;
        const size_t hi = std::min(n - 1, i + config.window);
        for (size_t j = lo; j <= hi; ++j) {
          if (j == i) continue;
          const ItemId ctx = session.items[j];
          if (ctx >= vocab) continue;
          batch.pairs.push_back({center, ctx});
          if (batch.pairs.size() >= config.batch_pairs) flush();
        }
      }
    }
  }
  flush();

  NormalizeRows(&input);
  SERENADE_RETURN_IF_ERROR(ValidateEmbeddings(input));
  if (total_loss != nullptr) *total_loss = loss_sum;
  return input;
}

}  // namespace serenade
