#include "baselines/nn.h"

#include <algorithm>
#include <cmath>

namespace serenade {

namespace {
constexpr float kAdagradEpsilon = 1e-6f;
}

void Tensor::ApplyAdagrad(float learning_rate) {
  for (size_t i = 0; i < data_.size(); ++i) {
    const float g = grad_[i];
    if (g == 0.0f) continue;
    accum_[i] += g * g;
    data_[i] -= learning_rate * g / std::sqrt(accum_[i] + kAdagradEpsilon);
    grad_[i] = 0.0f;
  }
}

void Tensor::ApplyAdagradRows(const std::vector<uint32_t>& rows,
                              float learning_rate) {
  for (uint32_t r : rows) {
    const size_t base = static_cast<size_t>(r) * cols_;
    for (size_t c = 0; c < cols_; ++c) {
      const float g = grad_[base + c];
      if (g == 0.0f) continue;
      accum_[base + c] += g * g;
      data_[base + c] -=
          learning_rate * g / std::sqrt(accum_[base + c] + kAdagradEpsilon);
      grad_[base + c] = 0.0f;
    }
  }
}

void MatVec(const Tensor& w, const float* x, float* out) {
  std::fill(out, out + w.rows(), 0.0f);
  MatVecAdd(w, x, out);
}

void MatVecAdd(const Tensor& w, const float* x, float* out) {
  const size_t rows = w.rows(), cols = w.cols();
  for (size_t r = 0; r < rows; ++r) {
    const float* row = w.Row(r);
    float sum = 0.0f;
    for (size_t c = 0; c < cols; ++c) sum += row[c] * x[c];
    out[r] += sum;
  }
}

void AccumulateOuter(Tensor& w, const float* dy, const float* x) {
  const size_t rows = w.rows(), cols = w.cols();
  for (size_t r = 0; r < rows; ++r) {
    float* grad_row = w.GradRow(r);
    const float d = dy[r];
    if (d == 0.0f) continue;
    for (size_t c = 0; c < cols; ++c) grad_row[c] += d * x[c];
  }
}

void MatVecTransposeAdd(const Tensor& w, const float* dy, float* dx) {
  const size_t rows = w.rows(), cols = w.cols();
  for (size_t r = 0; r < rows; ++r) {
    const float* row = w.Row(r);
    const float d = dy[r];
    if (d == 0.0f) continue;
    for (size_t c = 0; c < cols; ++c) dx[c] += d * row[c];
  }
}

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

void SigmoidInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = Sigmoid(x[i]);
}

void TanhInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

void SoftmaxInPlace(float* logits, size_t n) {
  float max_logit = logits[0];
  for (size_t i = 1; i < n; ++i) max_logit = std::max(max_logit, logits[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    logits[i] = std::exp(logits[i] - max_logit);
    sum += logits[i];
  }
  for (size_t i = 0; i < n; ++i) logits[i] /= sum;
}

float Dot(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace serenade
