// Association Rules (AR) and Sequential Rules (SR) — the simple rule
// baselines from the session-rec benchmark (Ludewig & Jannach) that the
// VS-kNN line of work is evaluated against. Both learn item->item rule
// weights from historical sessions and recommend from the current item:
//   AR: w(a, b) += 1 for every unordered co-occurrence of a and b
//   SR: w(a, b) += 1 / (q - p) for a at position p before b at position q
//       (only forward pairs, discounted by distance)
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/recommender.h"
#include "data/click_log.h"

namespace serenade {

struct RulesConfig {
  /// Rules kept per antecedent item.
  size_t rules_per_item = 100;
  /// SR only: maximal forward distance between the pair's positions.
  size_t max_distance = 10;
};

/// Association-rules recommender (unordered co-occurrence counts).
class AssociationRules : public Recommender {
 public:
  AssociationRules(const Dataset& train, RulesConfig config);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "ar"; }

  const std::vector<ScoredItem>& RulesFor(ItemId item) const;

 private:
  std::vector<std::vector<ScoredItem>> rules_;
  std::vector<ScoredItem> empty_;
};

/// Sequential-rules recommender (forward pairs, distance-discounted).
class SequentialRules : public Recommender {
 public:
  SequentialRules(const Dataset& train, RulesConfig config);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "sr"; }

  const std::vector<ScoredItem>& RulesFor(ItemId item) const;

 private:
  std::vector<std::vector<ScoredItem>> rules_;
  std::vector<ScoredItem> empty_;
};

}  // namespace serenade
