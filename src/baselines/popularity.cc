#include "baselines/popularity.h"

#include <algorithm>

namespace serenade {

PopularityRecommender::PopularityRecommender(const Dataset& train) {
  std::unordered_map<ItemId, uint64_t> counts;
  for (const SessionData& session : train.sessions()) {
    for (ItemId item : session.items) ++counts[item];
  }
  ranked_.reserve(counts.size());
  for (const auto& [item, count] : counts) {
    ranked_.push_back(ScoredItem{item, static_cast<float>(count)});
  }
  std::sort(ranked_.begin(), ranked_.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              return a.score > b.score ||
                     (a.score == b.score && a.item < b.item);
            });
}

std::vector<ScoredItem> PopularityRecommender::RecommendNext(
    const EvolvingSession& /*session*/, size_t how_many) {
  std::vector<ScoredItem> result = ranked_;
  if (result.size() > how_many) result.resize(how_many);
  return result;
}

MarkovRecommender::MarkovRecommender(const Dataset& train)
    : fallback_(train) {
  std::unordered_map<ItemId, std::unordered_map<ItemId, uint32_t>> counts;
  for (const SessionData& session : train.sessions()) {
    for (size_t i = 0; i + 1 < session.items.size(); ++i) {
      ++counts[session.items[i]][session.items[i + 1]];
    }
  }
  transitions_.reserve(counts.size());
  for (auto& [item, successors] : counts) {
    std::vector<ScoredItem> ranked;
    ranked.reserve(successors.size());
    for (const auto& [successor, count] : successors) {
      ranked.push_back(ScoredItem{successor, static_cast<float>(count)});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const ScoredItem& a, const ScoredItem& b) {
                return a.score > b.score ||
                       (a.score == b.score && a.item < b.item);
              });
    transitions_.emplace(item, std::move(ranked));
  }
}

std::vector<ScoredItem> MarkovRecommender::RecommendNext(
    const EvolvingSession& session, size_t how_many) {
  if (session.empty()) return {};
  auto it = transitions_.find(session.back());
  if (it == transitions_.end()) {
    return fallback_.RecommendNext(session, how_many);
  }
  std::vector<ScoredItem> result = it->second;
  if (result.size() > how_many) result.resize(how_many);
  return result;
}

}  // namespace serenade
