#include "baselines/gru4rec.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "common/dary_heap.h"

namespace serenade {

namespace {
struct ScoredItemLess {
  bool operator()(const ScoredItem& a, const ScoredItem& b) const {
    return a.score < b.score || (a.score == b.score && a.item > b.item);
  }
};
}  // namespace

Gru4Rec::Gru4Rec(size_t num_items, Gru4RecConfig config)
    : num_items_(num_items),
      config_(config),
      e_in_(num_items, config.embedding_dim),
      wz_(config.hidden_dim, config.embedding_dim),
      wr_(config.hidden_dim, config.embedding_dim),
      wc_(config.hidden_dim, config.embedding_dim),
      uz_(config.hidden_dim, config.hidden_dim),
      ur_(config.hidden_dim, config.hidden_dim),
      uc_(config.hidden_dim, config.hidden_dim),
      bz_(1, config.hidden_dim),
      br_(1, config.hidden_dim),
      bc_(1, config.hidden_dim),
      e_out_(num_items, config.hidden_dim),
      b_out_(1, num_items) {
  assert(num_items > 0);
  Rng rng(config.seed);
  e_in_.InitUniform(rng, config.init_range);
  wz_.InitUniform(rng, config.init_range);
  wr_.InitUniform(rng, config.init_range);
  wc_.InitUniform(rng, config.init_range);
  uz_.InitUniform(rng, config.init_range);
  ur_.InitUniform(rng, config.init_range);
  uc_.InitUniform(rng, config.init_range);
  e_out_.InitUniform(rng, config.init_range);
}

void Gru4Rec::Forward(ItemId input, const std::vector<float>& hidden,
                      StepState* state) const {
  const size_t h = config_.hidden_dim;
  const size_t d = config_.embedding_dim;
  state->x.assign(e_in_.Row(input), e_in_.Row(input) + d);
  state->h_in = hidden;

  state->z.assign(bz_.Row(0), bz_.Row(0) + h);
  MatVecAdd(wz_, state->x.data(), state->z.data());
  MatVecAdd(uz_, hidden.data(), state->z.data());
  SigmoidInPlace(state->z.data(), h);

  state->r.assign(br_.Row(0), br_.Row(0) + h);
  MatVecAdd(wr_, state->x.data(), state->r.data());
  MatVecAdd(ur_, hidden.data(), state->r.data());
  SigmoidInPlace(state->r.data(), h);

  state->rh.resize(h);
  for (size_t i = 0; i < h; ++i) state->rh[i] = state->r[i] * hidden[i];

  state->c.assign(bc_.Row(0), bc_.Row(0) + h);
  MatVecAdd(wc_, state->x.data(), state->c.data());
  MatVecAdd(uc_, state->rh.data(), state->c.data());
  TanhInPlace(state->c.data(), h);

  state->h_out.resize(h);
  for (size_t i = 0; i < h; ++i) {
    state->h_out[i] =
        (1.0f - state->z[i]) * hidden[i] + state->z[i] * state->c[i];
  }
}

void Gru4Rec::Backward(ItemId input, const StepState& state,
                       const std::vector<float>& dh_out) {
  const size_t h = config_.hidden_dim;
  const size_t d = config_.embedding_dim;

  std::vector<float> dz(h), dc(h), dac(h), dar(h), daz(h), drh(h, 0.0f),
      dx(d, 0.0f);
  for (size_t i = 0; i < h; ++i) {
    dz[i] = dh_out[i] * (state.c[i] - state.h_in[i]);
    dc[i] = dh_out[i] * state.z[i];
    dac[i] = dc[i] * (1.0f - state.c[i] * state.c[i]);
  }
  AccumulateOuter(wc_, dac.data(), state.x.data());
  AccumulateOuter(uc_, dac.data(), state.rh.data());
  for (size_t i = 0; i < h; ++i) bc_.GradRow(0)[i] += dac[i];

  MatVecTransposeAdd(uc_, dac.data(), drh.data());
  for (size_t i = 0; i < h; ++i) {
    const float dr = drh[i] * state.h_in[i];
    dar[i] = dr * state.r[i] * (1.0f - state.r[i]);
    daz[i] = dz[i] * state.z[i] * (1.0f - state.z[i]);
  }
  AccumulateOuter(wr_, dar.data(), state.x.data());
  AccumulateOuter(ur_, dar.data(), state.h_in.data());
  AccumulateOuter(wz_, daz.data(), state.x.data());
  AccumulateOuter(uz_, daz.data(), state.h_in.data());
  for (size_t i = 0; i < h; ++i) {
    br_.GradRow(0)[i] += dar[i];
    bz_.GradRow(0)[i] += daz[i];
  }

  MatVecTransposeAdd(wc_, dac.data(), dx.data());
  MatVecTransposeAdd(wr_, dar.data(), dx.data());
  MatVecTransposeAdd(wz_, daz.data(), dx.data());
  float* e_grad = e_in_.GradRow(input);
  for (size_t i = 0; i < d; ++i) e_grad[i] += dx[i];
}

float Gru4Rec::Train(const Dataset& train) {
  const auto& sessions = train.sessions();
  if (sessions.empty()) return 0.0f;
  const size_t h = config_.hidden_dim;
  const size_t batch = std::min(config_.batch_size, sessions.size());

  float final_epoch_loss = 0.0f;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Session-parallel mini-batches: each slot walks one session; when a
    // session ends the slot is refilled with the next session and its
    // hidden state reset.
    size_t next_session = 0;
    std::vector<size_t> slot_session(batch), slot_position(batch, 0);
    std::vector<std::vector<float>> slot_hidden(batch,
                                                std::vector<float>(h, 0.0f));
    for (size_t b = 0; b < batch; ++b) slot_session[b] = next_session++;

    double loss_sum = 0.0;
    size_t loss_count = 0;
    std::vector<StepState> states(batch);
    std::vector<ItemId> inputs(batch), targets(batch);
    std::vector<uint32_t> touched_in, touched_out;

    bool exhausted = false;
    while (!exhausted) {
      touched_in.clear();
      touched_out.clear();

      // Forward all slots.
      for (size_t b = 0; b < batch; ++b) {
        const auto& items = sessions[slot_session[b]].items;
        inputs[b] = items[slot_position[b]];
        targets[b] = items[slot_position[b] + 1];
        Forward(inputs[b], slot_hidden[b], &states[b]);
        touched_in.push_back(inputs[b]);
      }

      // Sampled softmax over the union of batch targets (in-batch
      // negatives, as in the original implementation).
      std::vector<ItemId> samples = {targets.begin(), targets.end()};
      std::sort(samples.begin(), samples.end());
      samples.erase(std::unique(samples.begin(), samples.end()),
                    samples.end());
      std::unordered_map<ItemId, size_t> sample_pos;
      for (size_t i = 0; i < samples.size(); ++i) sample_pos[samples[i]] = i;
      for (ItemId item : samples) touched_out.push_back(item);

      std::vector<float> logits(samples.size());
      std::vector<float> dh(h);
      for (size_t b = 0; b < batch; ++b) {
        for (size_t i = 0; i < samples.size(); ++i) {
          logits[i] = Dot(e_out_.Row(samples[i]), states[b].h_out.data(), h) +
                      b_out_.Row(0)[samples[i]];
        }
        SoftmaxInPlace(logits.data(), logits.size());
        const size_t target_index = sample_pos[targets[b]];
        loss_sum += -std::log(std::max(logits[target_index], 1e-12f));
        ++loss_count;

        // dL/dlogit_i = p_i - 1{i == target}.
        std::fill(dh.begin(), dh.end(), 0.0f);
        for (size_t i = 0; i < samples.size(); ++i) {
          const float dlogit =
              logits[i] - (i == target_index ? 1.0f : 0.0f);
          const float* out_row = e_out_.Row(samples[i]);
          float* out_grad = e_out_.GradRow(samples[i]);
          for (size_t j = 0; j < h; ++j) {
            dh[j] += dlogit * out_row[j];
            out_grad[j] += dlogit * states[b].h_out[j];
          }
          b_out_.GradRow(0)[samples[i]] += dlogit;
        }
        Backward(inputs[b], states[b], dh);
      }

      // Adagrad step (dense for GRU weights, sparse for embeddings).
      const float lr = config_.learning_rate;
      wz_.ApplyAdagrad(lr);
      wr_.ApplyAdagrad(lr);
      wc_.ApplyAdagrad(lr);
      uz_.ApplyAdagrad(lr);
      ur_.ApplyAdagrad(lr);
      uc_.ApplyAdagrad(lr);
      bz_.ApplyAdagrad(lr);
      br_.ApplyAdagrad(lr);
      bc_.ApplyAdagrad(lr);
      e_in_.ApplyAdagradRows(touched_in, lr);
      e_out_.ApplyAdagradRows(touched_out, lr);
      b_out_.ApplyAdagrad(lr);

      // Advance slots; carry hidden state within a session, reset on
      // session switch.
      for (size_t b = 0; b < batch; ++b) {
        slot_hidden[b] = states[b].h_out;
        ++slot_position[b];
        if (slot_position[b] + 1 >= sessions[slot_session[b]].items.size()) {
          if (next_session >= sessions.size()) {
            exhausted = true;
            break;
          }
          slot_session[b] = next_session++;
          slot_position[b] = 0;
          std::fill(slot_hidden[b].begin(), slot_hidden[b].end(), 0.0f);
        }
      }
    }
    final_epoch_loss =
        loss_count == 0 ? 0.0f : static_cast<float>(loss_sum / loss_count);
  }
  return final_epoch_loss;
}

std::vector<ScoredItem> Gru4Rec::RecommendNext(const EvolvingSession& session,
                                               size_t how_many) {
  if (session.empty() || how_many == 0) return {};
  const size_t h = config_.hidden_dim;
  const size_t start = session.size() > config_.max_session_length
                           ? session.size() - config_.max_session_length
                           : 0;

  std::vector<float> hidden(h, 0.0f);
  StepState state;
  for (size_t i = start; i < session.size(); ++i) {
    if (session[i] >= num_items_) continue;  // unknown item: skip
    Forward(session[i], hidden, &state);
    hidden = state.h_out;
  }

  BoundedTopK<ScoredItem, 8, ScoredItemLess> top(how_many);
  for (ItemId item = 0; item < num_items_; ++item) {
    const float score =
        Dot(e_out_.Row(item), hidden.data(), h) + b_out_.Row(0)[item];
    top.Offer(ScoredItem{item, score});
  }
  return top.TakeSortedDescending();
}

}  // namespace serenade
