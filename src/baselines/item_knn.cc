#include "baselines/item_knn.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/dary_heap.h"

namespace serenade {

namespace {
struct ScoredItemLess {
  bool operator()(const ScoredItem& a, const ScoredItem& b) const {
    return a.score < b.score || (a.score == b.score && a.item > b.item);
  }
};
}  // namespace

ItemKnnRecommender::ItemKnnRecommender(const Dataset& train,
                                       ItemKnnConfig config)
    : config_(config) {
  const size_t num_items = train.num_items();
  similar_.resize(num_items);

  // Session-level co-occurrence counts. Long sessions are capped so a
  // single pathological session cannot contribute O(len^2) pairs.
  constexpr size_t kMaxPairSessionLength = 50;
  std::vector<uint32_t> item_frequency(num_items, 0);
  std::unordered_map<uint64_t, uint32_t> cooccurrence;
  std::vector<ItemId> distinct;
  for (const SessionData& session : train.sessions()) {
    distinct.assign(session.items.begin(), session.items.end());
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (distinct.size() > kMaxPairSessionLength) {
      distinct.resize(kMaxPairSessionLength);
    }
    for (ItemId item : distinct) ++item_frequency[item];
    for (size_t i = 0; i < distinct.size(); ++i) {
      for (size_t j = i + 1; j < distinct.size(); ++j) {
        const uint64_t key =
            (static_cast<uint64_t>(distinct[i]) << 32) | distinct[j];
        ++cooccurrence[key];
      }
    }
  }

  // Cosine similarity over binary session-occurrence vectors:
  // sim(a, b) = cooc(a, b) / sqrt(freq(a) * freq(b)).
  std::vector<BoundedTopK<ScoredItem, 8, ScoredItemLess>> top_lists;
  top_lists.reserve(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    top_lists.emplace_back(config_.neighbors_per_item);
  }
  for (const auto& [key, count] : cooccurrence) {
    const ItemId a = static_cast<ItemId>(key >> 32);
    const ItemId b = static_cast<ItemId>(key & 0xffffffffULL);
    const float sim = static_cast<float>(
        count / std::sqrt(static_cast<double>(item_frequency[a]) *
                          static_cast<double>(item_frequency[b])));
    top_lists[a].Offer(ScoredItem{b, sim});
    top_lists[b].Offer(ScoredItem{a, sim});
  }
  for (size_t i = 0; i < num_items; ++i) {
    similar_[i] = top_lists[i].TakeSortedDescending();
  }
}

const std::vector<ScoredItem>& ItemKnnRecommender::SimilarItems(
    ItemId item) const {
  return item < similar_.size() ? similar_[item] : empty_;
}

std::vector<ScoredItem> ItemKnnRecommender::RecommendNext(
    const EvolvingSession& session, size_t how_many) {
  if (session.empty() || how_many == 0) return {};
  const size_t history =
      std::min(config_.history_length, session.size());

  // Merge the similarity lists of the most recent items, weighting
  // recency linearly (most recent item weight 1, one before 1/2, ...).
  std::unordered_map<ItemId, float> scores;
  for (size_t back = 0; back < history; ++back) {
    const ItemId item = session[session.size() - 1 - back];
    const float weight = 1.0f / static_cast<float>(back + 1);
    for (const ScoredItem& similar : SimilarItems(item)) {
      scores[similar.item] += weight * similar.score;
    }
  }

  BoundedTopK<ScoredItem, 8, ScoredItemLess> top(how_many);
  for (const auto& [item, score] : scores) {
    top.Offer(ScoredItem{item, score});
  }
  return top.TakeSortedDescending();
}

}  // namespace serenade
