// Item-to-item collaborative filtering (Sarwar et al., WWW'01) — the
// paper's "legacy" production system, which the A/B test compares Serenade
// against ("a variant of classic item-to-item collaborative filtering").
// Recommends items whose session co-occurrence vectors are cosine-similar
// to the user's most recent item(s).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "data/click_log.h"

namespace serenade {

struct ItemKnnConfig {
  /// Pre-computed similar items kept per item.
  size_t neighbors_per_item = 100;
  /// How many of the most recent session items contribute (the legacy
  /// system recommends per product detail page, i.e. 1).
  size_t history_length = 1;
};

/// Precomputes a top-n cosine similarity list per item from session
/// co-occurrence counts; serving is a merge of the lists of the session's
/// recent items.
class ItemKnnRecommender : public Recommender {
 public:
  ItemKnnRecommender(const Dataset& train, ItemKnnConfig config);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "item-knn(legacy)"; }

  /// The precomputed neighbour list of one item (tests / diagnostics).
  const std::vector<ScoredItem>& SimilarItems(ItemId item) const;

 private:
  ItemKnnConfig config_;
  std::vector<std::vector<ScoredItem>> similar_;  // per item, best first
  std::vector<ScoredItem> empty_;
};

}  // namespace serenade
