// NARM (Li et al., CIKM'17) re-implemented from scratch: Neural Attentive
// Recommendation Machine. A GRU encodes the session; the *global* code is
// the final hidden state, the *local* code is an attention-weighted sum
// of all hidden states (queried by the final state); a bilinear decoder
// scores candidate items against the concatenated code. Third neural
// baseline of the paper's quality comparison (Section 5.1.1).
//
// Training follows the same tractable scheme as our GRU4Rec: per-prefix
// examples, in-batch sampled softmax, and gradients truncated to one GRU
// step (each h_t receives gradient from the attention/decoder, but the
// recurrence into h_{t-1} is cut — sessions are short, so this captures
// most of the signal at a fraction of full-BPTT cost).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "baselines/nn.h"
#include "core/recommender.h"
#include "data/click_log.h"

namespace serenade {

struct NarmConfig {
  size_t embedding_dim = 32;
  size_t hidden_dim = 32;
  size_t epochs = 3;
  size_t batch_size = 32;
  float learning_rate = 0.08f;
  float init_range = 0.08f;
  uint64_t seed = 3;
  /// Prefix items encoded per example.
  size_t max_prefix_length = 8;
};

/// Trainable NARM model.
class Narm : public Recommender {
 public:
  Narm(size_t num_items, NarmConfig config);

  /// Trains on every (prefix, next item) pair; returns the final epoch's
  /// mean loss.
  float Train(const Dataset& train);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "narm"; }

 private:
  struct GruStep {
    std::vector<float> x, z, r, rh, c, h_in, h_out;
  };
  struct ForwardState {
    std::vector<ItemId> prefix;
    std::vector<GruStep> steps;           // one per prefix item
    std::vector<std::vector<float>> att;  // sigmoid activations per step
    std::vector<float> alpha;             // attention scalars per step
    std::vector<float> code;              // [c_global ; c_local], 2H
    std::vector<float> p;                 // B * code, the decoder query
  };

  void GruForward(ItemId input, const std::vector<float>& hidden,
                  GruStep* step) const;
  void GruBackward(ItemId input, const GruStep& step,
                   const std::vector<float>& dh_out,
                   std::vector<uint32_t>* touched);

  bool Forward(const EvolvingSession& session, ForwardState* state) const;
  void Backward(const ForwardState& state, const std::vector<float>& dcode,
                std::vector<uint32_t>* touched);
  void ApplyUpdates(const std::vector<uint32_t>& touched_in,
                    const std::vector<uint32_t>& touched_out);

  size_t num_items_;
  NarmConfig config_;

  Tensor e_in_;                // items x d
  Tensor wz_, wr_, wc_;        // H x d
  Tensor uz_, ur_, uc_;        // H x H
  Tensor bz_, br_, bc_;        // 1 x H
  Tensor a1_, a2_;             // H x H attention projections
  Tensor v_;                   // 1 x H attention readout
  Tensor b_decoder_;           // H x 2H bilinear decoder (emb^T B code)
  Tensor e_out_;               // items x H (decoder-side embeddings)
};

}  // namespace serenade
