// STAMP (Liu et al., KDD'18) re-implemented from scratch: short-term
// attention/memory priority model. Attention over the session's item
// embeddings (queried by the last item and the session mean), two small
// MLP heads, trilinear composition against candidate item embeddings.
// Second neural baseline of the paper's quality comparison (Section 5.1.1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "baselines/nn.h"
#include "core/recommender.h"
#include "data/click_log.h"

namespace serenade {

struct StampConfig {
  size_t embedding_dim = 48;
  size_t epochs = 5;
  size_t batch_size = 32;      ///< (prefix, target) examples per update
  float learning_rate = 0.05f;
  float init_range = 0.05f;
  uint64_t seed = 2;
  /// Prefix items attended over (the "short-term memory").
  size_t max_prefix_length = 8;
};

/// Trainable STAMP model.
class Stamp : public Recommender {
 public:
  Stamp(size_t num_items, StampConfig config);

  /// Trains on every (prefix, next item) pair of every training session.
  /// Returns the mean training loss of the final epoch.
  float Train(const Dataset& train);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "stamp"; }

 private:
  struct ForwardState {
    std::vector<ItemId> prefix;           // capped, unknown items removed
    std::vector<float> ms;                // session mean embedding
    std::vector<std::vector<float>> avec; // per-item attention activations
    std::vector<float> e;                 // per-item attention scalars
    std::vector<float> ma;                // attended representation
    std::vector<float> hs, ht;            // MLP heads (post-tanh)
    std::vector<float> g;                 // hs ⊙ ht
  };

  // Builds the capped prefix and runs the full forward pass. Returns
  // false when no known item remains.
  bool Forward(const EvolvingSession& session, ForwardState* state) const;

  // Backprop given dL/dg; accumulates all parameter and embedding grads
  // and records touched embedding rows.
  void Backward(const ForwardState& state, const std::vector<float>& dg,
                std::vector<uint32_t>* touched);

  size_t num_items_;
  StampConfig config_;

  Tensor embeddings_;        // items x d (shared input/candidate)
  Tensor w1_, w2_, w3_;      // d x d attention projections
  Tensor ba_;                // 1 x d attention bias
  Tensor w0_;                // 1 x d attention readout
  Tensor ws_, wt_;           // d x d MLP heads
  Tensor bs_, bt_;           // 1 x d
};

}  // namespace serenade
