// Minimal dense tensor + Adagrad machinery for the from-scratch neural
// baselines (GRU4Rec, STAMP, NARM-lite). Deliberately simple: row-major
// float matrices, explicit gradient buffers, per-row sparse updates for
// embedding tables. No autograd — each model writes its own backward pass.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace serenade {

/// A 2D parameter with gradient and Adagrad accumulator buffers.
/// Vectors are represented as single-row tensors.
class Tensor {
 public:
  Tensor() = default;
  Tensor(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        data_(rows * cols, 0.0f),
        grad_(rows * cols, 0.0f),
        accum_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }
  float* GradRow(size_t r) { return grad_.data() + r * cols_; }

  /// Uniform(-range, range) initialisation.
  void InitUniform(Rng& rng, float range) {
    for (float& v : data_) v = static_cast<float>(rng.Uniform(-range, range));
  }

  /// Adagrad step on every parameter; zeroes the gradient buffer.
  void ApplyAdagrad(float learning_rate);

  /// Adagrad step restricted to the given rows (for embedding tables
  /// where only a few rows receive gradient per batch).
  void ApplyAdagradRows(const std::vector<uint32_t>& rows,
                        float learning_rate);

  const std::vector<float>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
  std::vector<float> grad_;
  std::vector<float> accum_;
};

// --- dense ops (out must not alias inputs) ---------------------------------

/// out[h] = sum_d W[h][d] * x[d]   (W: h x d)
void MatVec(const Tensor& w, const float* x, float* out);

/// out[h] += sum_d W[h][d] * x[d]
void MatVecAdd(const Tensor& w, const float* x, float* out);

/// Gradient of MatVec wrt W: gradW[h][d] += dy[h] * x[d].
void AccumulateOuter(Tensor& w, const float* dy, const float* x);

/// Gradient of MatVec wrt x: dx[d] += sum_h W[h][d] * dy[h].
void MatVecTransposeAdd(const Tensor& w, const float* dy, float* dx);

// --- activations ------------------------------------------------------------

float Sigmoid(float x);

/// In-place sigmoid / tanh over n elements.
void SigmoidInPlace(float* x, size_t n);
void TanhInPlace(float* x, size_t n);

/// Numerically-stable in-place softmax over n logits.
void SoftmaxInPlace(float* logits, size_t n);

/// Dot product of two n-vectors.
float Dot(const float* a, const float* b, size_t n);

}  // namespace serenade
