#include "baselines/stamp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "common/dary_heap.h"

namespace serenade {

namespace {
struct ScoredItemLess {
  bool operator()(const ScoredItem& a, const ScoredItem& b) const {
    return a.score < b.score || (a.score == b.score && a.item > b.item);
  }
};
}  // namespace

Stamp::Stamp(size_t num_items, StampConfig config)
    : num_items_(num_items),
      config_(config),
      embeddings_(num_items, config.embedding_dim),
      w1_(config.embedding_dim, config.embedding_dim),
      w2_(config.embedding_dim, config.embedding_dim),
      w3_(config.embedding_dim, config.embedding_dim),
      ba_(1, config.embedding_dim),
      w0_(1, config.embedding_dim),
      ws_(config.embedding_dim, config.embedding_dim),
      wt_(config.embedding_dim, config.embedding_dim),
      bs_(1, config.embedding_dim),
      bt_(1, config.embedding_dim) {
  assert(num_items > 0);
  Rng rng(config.seed);
  embeddings_.InitUniform(rng, config.init_range);
  w1_.InitUniform(rng, config.init_range);
  w2_.InitUniform(rng, config.init_range);
  w3_.InitUniform(rng, config.init_range);
  w0_.InitUniform(rng, config.init_range);
  ws_.InitUniform(rng, config.init_range);
  wt_.InitUniform(rng, config.init_range);
}

bool Stamp::Forward(const EvolvingSession& session,
                    ForwardState* state) const {
  const size_t d = config_.embedding_dim;

  state->prefix.clear();
  const size_t start = session.size() > config_.max_prefix_length
                           ? session.size() - config_.max_prefix_length
                           : 0;
  for (size_t i = start; i < session.size(); ++i) {
    if (session[i] < num_items_) state->prefix.push_back(session[i]);
  }
  if (state->prefix.empty()) return false;
  const size_t t = state->prefix.size();
  const ItemId last = state->prefix.back();

  // Session mean m_s.
  state->ms.assign(d, 0.0f);
  for (ItemId item : state->prefix) {
    const float* x = embeddings_.Row(item);
    for (size_t j = 0; j < d; ++j) state->ms[j] += x[j];
  }
  for (size_t j = 0; j < d; ++j) state->ms[j] /= static_cast<float>(t);

  // Attention: a_i = sigmoid(W1 x_i + W2 x_t + W3 m_s + ba),
  //            e_i = w0 . a_i,    m_a = sum e_i x_i.
  std::vector<float> query(d);
  std::copy(ba_.Row(0), ba_.Row(0) + d, query.begin());
  MatVecAdd(w2_, embeddings_.Row(last), query.data());
  MatVecAdd(w3_, state->ms.data(), query.data());

  state->avec.assign(t, std::vector<float>(d));
  state->e.assign(t, 0.0f);
  state->ma.assign(d, 0.0f);
  for (size_t i = 0; i < t; ++i) {
    const float* x = embeddings_.Row(state->prefix[i]);
    std::copy(query.begin(), query.end(), state->avec[i].begin());
    MatVecAdd(w1_, x, state->avec[i].data());
    SigmoidInPlace(state->avec[i].data(), d);
    state->e[i] = Dot(w0_.Row(0), state->avec[i].data(), d);
    for (size_t j = 0; j < d; ++j) state->ma[j] += state->e[i] * x[j];
  }

  // MLP heads and trilinear gate.
  state->hs.assign(bs_.Row(0), bs_.Row(0) + d);
  MatVecAdd(ws_, state->ma.data(), state->hs.data());
  TanhInPlace(state->hs.data(), d);

  state->ht.assign(bt_.Row(0), bt_.Row(0) + d);
  MatVecAdd(wt_, embeddings_.Row(last), state->ht.data());
  TanhInPlace(state->ht.data(), d);

  state->g.resize(d);
  for (size_t j = 0; j < d; ++j) state->g[j] = state->hs[j] * state->ht[j];
  return true;
}

void Stamp::Backward(const ForwardState& state, const std::vector<float>& dg,
                     std::vector<uint32_t>* touched) {
  const size_t d = config_.embedding_dim;
  const size_t t = state.prefix.size();
  const ItemId last = state.prefix.back();

  // Heads.
  std::vector<float> das(d), dat(d), dma(d, 0.0f), dxt(d, 0.0f);
  for (size_t j = 0; j < d; ++j) {
    const float dhs = dg[j] * state.ht[j];
    const float dht = dg[j] * state.hs[j];
    das[j] = dhs * (1.0f - state.hs[j] * state.hs[j]);
    dat[j] = dht * (1.0f - state.ht[j] * state.ht[j]);
  }
  AccumulateOuter(ws_, das.data(), state.ma.data());
  AccumulateOuter(wt_, dat.data(), embeddings_.Row(last));
  for (size_t j = 0; j < d; ++j) {
    bs_.GradRow(0)[j] += das[j];
    bt_.GradRow(0)[j] += dat[j];
  }
  MatVecTransposeAdd(ws_, das.data(), dma.data());
  MatVecTransposeAdd(wt_, dat.data(), dxt.data());

  // Attention and m_a.
  std::vector<float> dms(d, 0.0f);
  std::vector<float> dsi(d);
  std::vector<std::vector<float>> dx(t, std::vector<float>(d, 0.0f));
  for (size_t i = 0; i < t; ++i) {
    const float* x = embeddings_.Row(state.prefix[i]);
    // m_a = sum e_i x_i.
    float de = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      de += dma[j] * x[j];
      dx[i][j] += state.e[i] * dma[j];
    }
    // e_i = w0 . a_i.
    for (size_t j = 0; j < d; ++j) {
      w0_.GradRow(0)[j] += de * state.avec[i][j];
      dsi[j] = de * w0_.Row(0)[j] * state.avec[i][j] *
               (1.0f - state.avec[i][j]);  // through sigmoid
    }
    AccumulateOuter(w1_, dsi.data(), x);
    AccumulateOuter(w2_, dsi.data(), embeddings_.Row(last));
    AccumulateOuter(w3_, dsi.data(), state.ms.data());
    for (size_t j = 0; j < d; ++j) ba_.GradRow(0)[j] += dsi[j];
    MatVecTransposeAdd(w1_, dsi.data(), dx[i].data());
    MatVecTransposeAdd(w2_, dsi.data(), dxt.data());
    MatVecTransposeAdd(w3_, dsi.data(), dms.data());
  }

  // m_s = mean of prefix embeddings.
  for (size_t i = 0; i < t; ++i) {
    for (size_t j = 0; j < d; ++j) {
      dx[i][j] += dms[j] / static_cast<float>(t);
    }
  }

  // Flush embedding gradients (x_t gradient goes to the last item's row).
  for (size_t i = 0; i < t; ++i) {
    float* grad = embeddings_.GradRow(state.prefix[i]);
    for (size_t j = 0; j < d; ++j) grad[j] += dx[i][j];
    touched->push_back(state.prefix[i]);
  }
  float* last_grad = embeddings_.GradRow(last);
  for (size_t j = 0; j < d; ++j) last_grad[j] += dxt[j];
}

float Stamp::Train(const Dataset& train) {
  const size_t d = config_.embedding_dim;
  double loss_sum = 0.0;
  size_t loss_count = 0;
  float final_epoch_loss = 0.0f;

  std::vector<ForwardState> states(config_.batch_size);
  std::vector<ItemId> targets(config_.batch_size);

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    loss_sum = 0.0;
    loss_count = 0;
    size_t filled = 0;
    std::vector<uint32_t> touched;

    auto flush_batch = [&]() {
      if (filled == 0) return;
      // In-batch sampled softmax over the union of targets.
      std::vector<ItemId> samples(targets.begin(),
                                  targets.begin() + filled);
      std::sort(samples.begin(), samples.end());
      samples.erase(std::unique(samples.begin(), samples.end()),
                    samples.end());
      std::unordered_map<ItemId, size_t> sample_pos;
      for (size_t i = 0; i < samples.size(); ++i) sample_pos[samples[i]] = i;

      touched.clear();
      std::vector<float> logits(samples.size());
      std::vector<float> dg(d);
      for (size_t b = 0; b < filled; ++b) {
        for (size_t i = 0; i < samples.size(); ++i) {
          logits[i] = Dot(embeddings_.Row(samples[i]), states[b].g.data(), d);
        }
        SoftmaxInPlace(logits.data(), logits.size());
        const size_t target_index = sample_pos[targets[b]];
        loss_sum += -std::log(std::max(logits[target_index], 1e-12f));
        ++loss_count;

        std::fill(dg.begin(), dg.end(), 0.0f);
        for (size_t i = 0; i < samples.size(); ++i) {
          const float dlogit =
              logits[i] - (i == target_index ? 1.0f : 0.0f);
          const float* row = embeddings_.Row(samples[i]);
          float* grad = embeddings_.GradRow(samples[i]);
          for (size_t j = 0; j < d; ++j) {
            dg[j] += dlogit * row[j];
            grad[j] += dlogit * states[b].g[j];
          }
          touched.push_back(samples[i]);
        }
        Backward(states[b], dg, &touched);
      }

      const float lr = config_.learning_rate;
      w1_.ApplyAdagrad(lr);
      w2_.ApplyAdagrad(lr);
      w3_.ApplyAdagrad(lr);
      ba_.ApplyAdagrad(lr);
      w0_.ApplyAdagrad(lr);
      ws_.ApplyAdagrad(lr);
      wt_.ApplyAdagrad(lr);
      bs_.ApplyAdagrad(lr);
      bt_.ApplyAdagrad(lr);
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      embeddings_.ApplyAdagradRows(touched, lr);
      filled = 0;
    };

    EvolvingSession prefix;
    for (const SessionData& session : train.sessions()) {
      prefix.clear();
      for (size_t pos = 0; pos + 1 < session.items.size(); ++pos) {
        prefix.push_back(session.items[pos]);
        if (!Forward(prefix, &states[filled])) continue;
        targets[filled] = session.items[pos + 1];
        if (++filled == config_.batch_size) flush_batch();
      }
    }
    flush_batch();
    final_epoch_loss =
        loss_count == 0 ? 0.0f : static_cast<float>(loss_sum / loss_count);
  }
  return final_epoch_loss;
}

std::vector<ScoredItem> Stamp::RecommendNext(const EvolvingSession& session,
                                             size_t how_many) {
  if (session.empty() || how_many == 0) return {};
  ForwardState state;
  if (!Forward(session, &state)) return {};
  const size_t d = config_.embedding_dim;

  BoundedTopK<ScoredItem, 8, ScoredItemLess> top(how_many);
  for (ItemId item = 0; item < num_items_; ++item) {
    top.Offer(ScoredItem{item, Dot(embeddings_.Row(item), state.g.data(), d)});
  }
  return top.TakeSortedDescending();
}

}  // namespace serenade
