// item2vec — skip-gram with negative sampling over the clickstream,
// treating each session as a sentence (Barkan & Koenigstein 2016). From
// scratch like the other neural baselines, and **deterministic by
// construction**: the same (dataset, config.seed) produces byte-identical
// embeddings regardless of config.num_threads.
//
// The determinism scheme is mini-batch SGD with a frozen read snapshot:
//
//   1. Pairs are enumerated in a fixed order (epoch, session, position,
//      offset) and grouped into batches of config.batch_pairs.
//   2. Negatives for the whole batch are drawn *sequentially* from the
//      master RNG (unigram^0.75 alias table), so the random stream never
//      depends on thread interleaving.
//   3. The gradient of every pair is computed in parallel against the
//      weights as they stood at batch start (the parallel phase only
//      reads), into per-pair scratch slots.
//   4. Gradients are applied *sequentially* in pair order.
//
// Float addition order is therefore fixed end-to-end; tests assert
// byte-identical artifacts across runs and thread counts.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "core/embedding.h"
#include "data/click_log.h"

namespace serenade {

struct Item2VecConfig {
  size_t dim = 32;
  /// Context offsets +-1..window around each center click.
  size_t window = 3;
  /// Negative samples per (center, context) pair.
  size_t negatives = 5;
  size_t epochs = 3;
  float learning_rate = 0.025f;
  float min_learning_rate = 1e-4f;
  uint64_t seed = 42;
  /// Pairs per deterministic mini-batch (the parallel grain). Batches see
  /// weights frozen at batch start, so pairs repeated within one batch
  /// stack their gradients; small catalogs repeat a lot, which is why
  /// this stays modest and updates are clamped (see item2vec.cc).
  size_t batch_pairs = 256;
  /// Worker threads for the gradient phase. Any value yields the same
  /// bytes; larger values are just faster.
  size_t num_threads = 1;
};

/// Trains item embeddings over `dataset`. Rows come back L2-normalized
/// and validated. `total_loss` (optional) receives the summed negative
/// log-likelihood over all processed pairs — itself deterministic.
StatusOr<ItemEmbeddings> TrainItemEmbeddings(const Dataset& dataset,
                                             const Item2VecConfig& config,
                                             double* total_loss = nullptr);

}  // namespace serenade
