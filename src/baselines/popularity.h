// Popularity and first-order Markov baselines. These are the sanity
// floors of session-based recommendation: any useful model must beat
// popularity, and Markov captures pure item-to-item sequence signal.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/recommender.h"
#include "data/click_log.h"

namespace serenade {

/// Recommends the globally most-clicked training items, ignoring the
/// session entirely.
class PopularityRecommender : public Recommender {
 public:
  explicit PopularityRecommender(const Dataset& train);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "popularity"; }

 private:
  std::vector<ScoredItem> ranked_;  // all items, most popular first
};

/// First-order Markov chain: scores items by their transition frequency
/// from the most recent session item, backing off to popularity when the
/// last item was never seen.
class MarkovRecommender : public Recommender {
 public:
  explicit MarkovRecommender(const Dataset& train);

  std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                        size_t how_many) override;
  std::string Name() const override { return "markov-1st"; }

 private:
  // item -> (successor, count) pairs sorted by descending count.
  std::unordered_map<ItemId, std::vector<ScoredItem>> transitions_;
  PopularityRecommender fallback_;
};

}  // namespace serenade
