#include "baselines/narm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "common/dary_heap.h"

namespace serenade {

namespace {
struct ScoredItemLess {
  bool operator()(const ScoredItem& a, const ScoredItem& b) const {
    return a.score < b.score || (a.score == b.score && a.item > b.item);
  }
};
}  // namespace

Narm::Narm(size_t num_items, NarmConfig config)
    : num_items_(num_items),
      config_(config),
      e_in_(num_items, config.embedding_dim),
      wz_(config.hidden_dim, config.embedding_dim),
      wr_(config.hidden_dim, config.embedding_dim),
      wc_(config.hidden_dim, config.embedding_dim),
      uz_(config.hidden_dim, config.hidden_dim),
      ur_(config.hidden_dim, config.hidden_dim),
      uc_(config.hidden_dim, config.hidden_dim),
      bz_(1, config.hidden_dim),
      br_(1, config.hidden_dim),
      bc_(1, config.hidden_dim),
      a1_(config.hidden_dim, config.hidden_dim),
      a2_(config.hidden_dim, config.hidden_dim),
      v_(1, config.hidden_dim),
      b_decoder_(config.hidden_dim, 2 * config.hidden_dim),
      e_out_(num_items, config.hidden_dim) {
  assert(num_items > 0);
  Rng rng(config.seed);
  e_in_.InitUniform(rng, config.init_range);
  wz_.InitUniform(rng, config.init_range);
  wr_.InitUniform(rng, config.init_range);
  wc_.InitUniform(rng, config.init_range);
  uz_.InitUniform(rng, config.init_range);
  ur_.InitUniform(rng, config.init_range);
  uc_.InitUniform(rng, config.init_range);
  a1_.InitUniform(rng, config.init_range);
  a2_.InitUniform(rng, config.init_range);
  v_.InitUniform(rng, config.init_range);
  b_decoder_.InitUniform(rng, config.init_range);
  e_out_.InitUniform(rng, config.init_range);
}

void Narm::GruForward(ItemId input, const std::vector<float>& hidden,
                      GruStep* step) const {
  const size_t h = config_.hidden_dim;
  const size_t d = config_.embedding_dim;
  step->x.assign(e_in_.Row(input), e_in_.Row(input) + d);
  step->h_in = hidden;

  step->z.assign(bz_.Row(0), bz_.Row(0) + h);
  MatVecAdd(wz_, step->x.data(), step->z.data());
  MatVecAdd(uz_, hidden.data(), step->z.data());
  SigmoidInPlace(step->z.data(), h);

  step->r.assign(br_.Row(0), br_.Row(0) + h);
  MatVecAdd(wr_, step->x.data(), step->r.data());
  MatVecAdd(ur_, hidden.data(), step->r.data());
  SigmoidInPlace(step->r.data(), h);

  step->rh.resize(h);
  for (size_t i = 0; i < h; ++i) step->rh[i] = step->r[i] * hidden[i];

  step->c.assign(bc_.Row(0), bc_.Row(0) + h);
  MatVecAdd(wc_, step->x.data(), step->c.data());
  MatVecAdd(uc_, step->rh.data(), step->c.data());
  TanhInPlace(step->c.data(), h);

  step->h_out.resize(h);
  for (size_t i = 0; i < h; ++i) {
    step->h_out[i] = (1.0f - step->z[i]) * hidden[i] + step->z[i] * step->c[i];
  }
}

void Narm::GruBackward(ItemId input, const GruStep& step,
                       const std::vector<float>& dh_out,
                       std::vector<uint32_t>* touched) {
  const size_t h = config_.hidden_dim;
  const size_t d = config_.embedding_dim;

  std::vector<float> dz(h), dc(h), dac(h), dar(h), daz(h), drh(h, 0.0f),
      dx(d, 0.0f);
  for (size_t i = 0; i < h; ++i) {
    dz[i] = dh_out[i] * (step.c[i] - step.h_in[i]);
    dc[i] = dh_out[i] * step.z[i];
    dac[i] = dc[i] * (1.0f - step.c[i] * step.c[i]);
  }
  AccumulateOuter(wc_, dac.data(), step.x.data());
  AccumulateOuter(uc_, dac.data(), step.rh.data());
  for (size_t i = 0; i < h; ++i) bc_.GradRow(0)[i] += dac[i];

  MatVecTransposeAdd(uc_, dac.data(), drh.data());
  for (size_t i = 0; i < h; ++i) {
    const float dr = drh[i] * step.h_in[i];
    dar[i] = dr * step.r[i] * (1.0f - step.r[i]);
    daz[i] = dz[i] * step.z[i] * (1.0f - step.z[i]);
  }
  AccumulateOuter(wr_, dar.data(), step.x.data());
  AccumulateOuter(ur_, dar.data(), step.h_in.data());
  AccumulateOuter(wz_, daz.data(), step.x.data());
  AccumulateOuter(uz_, daz.data(), step.h_in.data());
  for (size_t i = 0; i < h; ++i) {
    br_.GradRow(0)[i] += dar[i];
    bz_.GradRow(0)[i] += daz[i];
  }

  MatVecTransposeAdd(wc_, dac.data(), dx.data());
  MatVecTransposeAdd(wr_, dar.data(), dx.data());
  MatVecTransposeAdd(wz_, daz.data(), dx.data());
  float* e_grad = e_in_.GradRow(input);
  for (size_t i = 0; i < d; ++i) e_grad[i] += dx[i];
  touched->push_back(input);
}

bool Narm::Forward(const EvolvingSession& session,
                   ForwardState* state) const {
  const size_t h = config_.hidden_dim;

  state->prefix.clear();
  const size_t start = session.size() > config_.max_prefix_length
                           ? session.size() - config_.max_prefix_length
                           : 0;
  for (size_t i = start; i < session.size(); ++i) {
    if (session[i] < num_items_) state->prefix.push_back(session[i]);
  }
  if (state->prefix.empty()) return false;
  const size_t t = state->prefix.size();

  // GRU encoding.
  state->steps.assign(t, GruStep{});
  std::vector<float> hidden(h, 0.0f);
  for (size_t j = 0; j < t; ++j) {
    GruForward(state->prefix[j], hidden, &state->steps[j]);
    hidden = state->steps[j].h_out;
  }
  const std::vector<float>& h_t = state->steps.back().h_out;

  // Attention: alpha_j = v . sigmoid(A1 h_t + A2 h_j).
  std::vector<float> query(h);
  MatVec(a1_, h_t.data(), query.data());
  state->att.assign(t, std::vector<float>(h));
  state->alpha.assign(t, 0.0f);
  std::vector<float> c_local(h, 0.0f);
  for (size_t j = 0; j < t; ++j) {
    std::copy(query.begin(), query.end(), state->att[j].begin());
    MatVecAdd(a2_, state->steps[j].h_out.data(), state->att[j].data());
    SigmoidInPlace(state->att[j].data(), h);
    state->alpha[j] = Dot(v_.Row(0), state->att[j].data(), h);
    for (size_t i = 0; i < h; ++i) {
      c_local[i] += state->alpha[j] * state->steps[j].h_out[i];
    }
  }

  state->code.resize(2 * h);
  std::copy(h_t.begin(), h_t.end(), state->code.begin());
  std::copy(c_local.begin(), c_local.end(), state->code.begin() + h);

  state->p.resize(h);
  MatVec(b_decoder_, state->code.data(), state->p.data());
  return true;
}

void Narm::Backward(const ForwardState& state, const std::vector<float>& dp,
                    std::vector<uint32_t>* touched) {
  const size_t h = config_.hidden_dim;
  const size_t t = state.prefix.size();

  // Decoder: p = B code.
  AccumulateOuter(b_decoder_, dp.data(), state.code.data());
  std::vector<float> dcode(2 * h, 0.0f);
  MatVecTransposeAdd(b_decoder_, dp.data(), dcode.data());

  // Split code gradient.
  std::vector<float> dlocal(dcode.begin() + h, dcode.end());
  std::vector<std::vector<float>> dh(t, std::vector<float>(h, 0.0f));
  for (size_t i = 0; i < h; ++i) dh[t - 1][i] += dcode[i];  // global code

  // Attention backward.
  std::vector<float> dquery(h, 0.0f);
  std::vector<float> ds(h);
  for (size_t j = 0; j < t; ++j) {
    const std::vector<float>& h_j = state.steps[j].h_out;
    float dalpha = 0.0f;
    for (size_t i = 0; i < h; ++i) {
      dalpha += dlocal[i] * h_j[i];
      dh[j][i] += state.alpha[j] * dlocal[i];
    }
    for (size_t i = 0; i < h; ++i) {
      v_.GradRow(0)[i] += dalpha * state.att[j][i];
      ds[i] = dalpha * v_.Row(0)[i] * state.att[j][i] *
              (1.0f - state.att[j][i]);
    }
    AccumulateOuter(a2_, ds.data(), h_j.data());
    MatVecTransposeAdd(a2_, ds.data(), dh[j].data());
    for (size_t i = 0; i < h; ++i) dquery[i] += ds[i];
  }
  AccumulateOuter(a1_, dquery.data(), state.steps[t - 1].h_out.data());
  MatVecTransposeAdd(a1_, dquery.data(), dh[t - 1].data());

  // GRU backward per step (gradients truncated at each step boundary).
  for (size_t j = 0; j < t; ++j) {
    GruBackward(state.prefix[j], state.steps[j], dh[j], touched);
  }
}

void Narm::ApplyUpdates(const std::vector<uint32_t>& touched_in,
                        const std::vector<uint32_t>& touched_out) {
  const float lr = config_.learning_rate;
  wz_.ApplyAdagrad(lr);
  wr_.ApplyAdagrad(lr);
  wc_.ApplyAdagrad(lr);
  uz_.ApplyAdagrad(lr);
  ur_.ApplyAdagrad(lr);
  uc_.ApplyAdagrad(lr);
  bz_.ApplyAdagrad(lr);
  br_.ApplyAdagrad(lr);
  bc_.ApplyAdagrad(lr);
  a1_.ApplyAdagrad(lr);
  a2_.ApplyAdagrad(lr);
  v_.ApplyAdagrad(lr);
  b_decoder_.ApplyAdagrad(lr);
  e_in_.ApplyAdagradRows(touched_in, lr);
  e_out_.ApplyAdagradRows(touched_out, lr);
}

float Narm::Train(const Dataset& train) {
  const size_t h = config_.hidden_dim;
  float final_epoch_loss = 0.0f;

  std::vector<ForwardState> states(config_.batch_size);
  std::vector<ItemId> targets(config_.batch_size);

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    double loss_sum = 0.0;
    size_t loss_count = 0;
    size_t filled = 0;
    std::vector<uint32_t> touched_in, touched_out;

    auto flush_batch = [&]() {
      if (filled == 0) return;
      std::vector<ItemId> samples(targets.begin(), targets.begin() + filled);
      std::sort(samples.begin(), samples.end());
      samples.erase(std::unique(samples.begin(), samples.end()),
                    samples.end());
      std::unordered_map<ItemId, size_t> sample_pos;
      for (size_t i = 0; i < samples.size(); ++i) sample_pos[samples[i]] = i;

      touched_in.clear();
      touched_out.clear();
      std::vector<float> logits(samples.size());
      std::vector<float> dp(h);
      for (size_t b = 0; b < filled; ++b) {
        for (size_t i = 0; i < samples.size(); ++i) {
          logits[i] = Dot(e_out_.Row(samples[i]), states[b].p.data(), h);
        }
        SoftmaxInPlace(logits.data(), logits.size());
        const size_t target_index = sample_pos[targets[b]];
        loss_sum += -std::log(std::max(logits[target_index], 1e-12f));
        ++loss_count;

        std::fill(dp.begin(), dp.end(), 0.0f);
        for (size_t i = 0; i < samples.size(); ++i) {
          const float dlogit = logits[i] - (i == target_index ? 1.0f : 0.0f);
          const float* row = e_out_.Row(samples[i]);
          float* grad = e_out_.GradRow(samples[i]);
          for (size_t j = 0; j < h; ++j) {
            dp[j] += dlogit * row[j];
            grad[j] += dlogit * states[b].p[j];
          }
          touched_out.push_back(samples[i]);
        }
        Backward(states[b], dp, &touched_in);
      }
      std::sort(touched_in.begin(), touched_in.end());
      touched_in.erase(std::unique(touched_in.begin(), touched_in.end()),
                       touched_in.end());
      ApplyUpdates(touched_in, touched_out);
      filled = 0;
    };

    EvolvingSession prefix;
    for (const SessionData& session : train.sessions()) {
      prefix.clear();
      for (size_t pos = 0; pos + 1 < session.items.size(); ++pos) {
        prefix.push_back(session.items[pos]);
        if (!Forward(prefix, &states[filled])) continue;
        targets[filled] = session.items[pos + 1];
        if (++filled == config_.batch_size) flush_batch();
      }
    }
    flush_batch();
    final_epoch_loss =
        loss_count == 0 ? 0.0f : static_cast<float>(loss_sum / loss_count);
  }
  return final_epoch_loss;
}

std::vector<ScoredItem> Narm::RecommendNext(const EvolvingSession& session,
                                            size_t how_many) {
  if (session.empty() || how_many == 0) return {};
  ForwardState state;
  if (!Forward(session, &state)) return {};
  const size_t h = config_.hidden_dim;

  BoundedTopK<ScoredItem, 8, ScoredItemLess> top(how_many);
  for (ItemId item = 0; item < num_items_; ++item) {
    top.Offer(ScoredItem{item, Dot(e_out_.Row(item), state.p.data(), h)});
  }
  return top.TakeSortedDescending();
}

}  // namespace serenade
