#include "index/index_builder.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace serenade {

SessionIndex BuildIndexParallel(const Dataset& train,
                                const IndexBuilderOptions& options) {
  assert(options.max_sessions_per_item > 0);
  const size_t num_threads =
      options.num_threads > 0
          ? options.num_threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  ThreadPool pool(num_threads);

  const auto& sessions = train.sessions();
  const size_t num_sessions = sessions.size();
  const size_t num_items = train.num_items();
  const size_t m = options.max_sessions_per_item;

  SessionIndex::Raw raw;
  raw.max_sessions_per_item = m;

  // ---- Map phase 1 (parallel over sessions): timestamps and per-session
  // distinct item lists.
  raw.session_timestamps.resize(num_sessions);
  std::vector<std::vector<ItemId>> distinct_items(num_sessions);
  ParallelFor(pool, num_sessions, [&](size_t begin, size_t end) {
    std::vector<ItemId> scratch;
    for (size_t s = begin; s < end; ++s) {
      raw.session_timestamps[s] = sessions[s].end_time;
      scratch.assign(sessions[s].items.begin(), sessions[s].items.end());
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
      distinct_items[s] = scratch;
    }
  });

  // Session CSR (prefix sums are cheap; done serially).
  raw.session_offsets.assign(num_sessions + 1, 0);
  for (size_t s = 0; s < num_sessions; ++s) {
    raw.session_offsets[s + 1] =
        raw.session_offsets[s] + distinct_items[s].size();
  }
  raw.session_items.resize(raw.session_offsets.back());
  ParallelFor(pool, num_sessions, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      std::copy(distinct_items[s].begin(), distinct_items[s].end(),
                raw.session_items.begin() +
                    static_cast<ptrdiff_t>(raw.session_offsets[s]));
    }
  });

  // ---- Count phase (parallel over sessions, atomic increments): item
  // document frequencies h_i.
  std::vector<std::atomic<uint32_t>> item_frequency(num_items);
  ParallelFor(pool, num_sessions, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      for (ItemId item : distinct_items[s]) {
        item_frequency[item].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  raw.item_offsets.assign(num_items + 1, 0);
  for (size_t i = 0; i < num_items; ++i) {
    raw.item_offsets[i + 1] =
        raw.item_offsets[i] +
        std::min<size_t>(item_frequency[i].load(std::memory_order_relaxed),
                         m);
  }

  // ---- Shuffle/fill phase: item range partitions; each partition fills
  // its items' posting lists independently, walking sessions from most
  // recent to oldest (sessions are in ascending end-time order, so the
  // reverse walk yields descending-recency lists). One partition per
  // worker: total work is threads x clicks, fully parallel.
  const size_t num_partitions =
      options.num_partitions > 0 ? options.num_partitions : num_threads;
  const size_t items_per_partition =
      num_items == 0 ? 1 : (num_items + num_partitions - 1) / num_partitions;
  raw.session_lists.resize(raw.item_offsets.back());
  raw.item_idf.resize(num_items);
  raw.item_frequencies.resize(num_items);

  ParallelFor(pool, num_partitions, [&](size_t begin, size_t end) {
    std::vector<uint32_t> filled;
    for (size_t partition = begin; partition < end; ++partition) {
      const size_t item_lo = partition * items_per_partition;
      const size_t item_hi =
          std::min(num_items, item_lo + items_per_partition);
      if (item_lo >= item_hi) continue;
      filled.assign(item_hi - item_lo, 0);
      for (size_t s = num_sessions; s-- > 0;) {
        for (ItemId item : distinct_items[s]) {
          if (item < item_lo || item >= item_hi) continue;
          const size_t local = item - item_lo;
          const size_t cap = raw.item_offsets[item + 1] - raw.item_offsets[item];
          if (filled[local] < cap) {
            raw.session_lists[raw.item_offsets[item] + filled[local]] =
                static_cast<SessionId>(s);
            ++filled[local];
          }
        }
      }
      for (size_t item = item_lo; item < item_hi; ++item) {
        const uint32_t freq =
            item_frequency[item].load(std::memory_order_relaxed);
        raw.item_frequencies[item] = freq;
        raw.item_idf[item] =
            freq == 0 ? 0.0f
                      : static_cast<float>(std::log(
                            static_cast<double>(num_sessions) / freq));
      }
    }
  });

  return SessionIndex::FromRaw(std::move(raw));
}

}  // namespace serenade
