// Data-parallel offline index generation — the stand-in for the paper's
// Spark/MLLib pipeline (Section 4.2, "Offline index generation"). The
// dataflow is identical: partition the click log by item, per partition
// sort each item's sessions by recency and truncate to the m most recent,
// then concatenate partitions into the CSR index arrays.
#pragma once

#include <cstddef>

#include "core/session_index.h"
#include "data/click_log.h"

namespace serenade {

/// Options for the parallel build.
struct IndexBuilderOptions {
  /// m: most recent sessions retained per item.
  size_t max_sessions_per_item = 500;
  /// Worker threads for the partitioned phases (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Number of item partitions ("shuffle" granularity). 0 = 4x threads.
  size_t num_partitions = 0;
};

/// Builds a SessionIndex with a multi-threaded partition/shuffle/reduce
/// pipeline. Produces bit-identical output to SessionIndex::Build (the
/// single-threaded reference), which the tests assert.
SessionIndex BuildIndexParallel(const Dataset& train,
                                const IndexBuilderOptions& options);

}  // namespace serenade
