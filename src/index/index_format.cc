#include "index/index_format.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.h"

namespace serenade {

namespace {

constexpr char kMagic[8] = {'S', 'R', 'N', 'I', 'D', 'X', '1', '\0'};
constexpr uint32_t kVersion = 1;
constexpr size_t kNumSections = 6;

// --- varint primitives -----------------------------------------------------

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint(const char** cursor, const char* end, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*cursor < end && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(**cursor);
    ++*cursor;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

void PutFixed32(std::string* out, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  out->append(buf, 4);
}

void PutFixed64(std::string* out, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  out->append(buf, 8);
}

// --- section encoders ------------------------------------------------------

template <typename T>
std::string EncodeDelta(const std::vector<T>& values) {
  std::string payload;
  PutVarint(&payload, values.size());
  uint64_t previous = 0;
  for (T v : values) {
    PutVarint(&payload, static_cast<uint64_t>(v) - previous);
    previous = static_cast<uint64_t>(v);
  }
  return payload;
}

template <typename T>
std::string EncodePlain(const std::vector<T>& values) {
  std::string payload;
  PutVarint(&payload, values.size());
  for (T v : values) PutVarint(&payload, static_cast<uint64_t>(v));
  return payload;
}

std::string EncodeTimestamps(const std::vector<Timestamp>& values) {
  std::string payload;
  PutVarint(&payload, values.size());
  Timestamp min_value = ~Timestamp{0};
  for (Timestamp v : values) min_value = std::min(min_value, v);
  if (values.empty()) min_value = 0;
  PutVarint(&payload, min_value);
  for (Timestamp v : values) PutVarint(&payload, v - min_value);
  return payload;
}

std::string EncodeFloats(const std::vector<float>& values) {
  std::string payload;
  PutVarint(&payload, values.size());
  payload.append(reinterpret_cast<const char*>(values.data()),
                 values.size() * sizeof(float));
  return payload;
}

// --- section decoders ------------------------------------------------------

template <typename T>
Status DecodeDelta(const char* data, size_t size, std::vector<T>* out) {
  const char* cursor = data;
  const char* end = data + size;
  uint64_t count = 0;
  if (!GetVarint(&cursor, end, &count)) return Status::Corruption("count");
  out->clear();
  out->reserve(count);
  uint64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    if (!GetVarint(&cursor, end, &delta)) return Status::Corruption("delta");
    previous += delta;
    out->push_back(static_cast<T>(previous));
  }
  return Status::Ok();
}

template <typename T>
Status DecodePlain(const char* data, size_t size, std::vector<T>* out) {
  const char* cursor = data;
  const char* end = data + size;
  uint64_t count = 0;
  if (!GetVarint(&cursor, end, &count)) return Status::Corruption("count");
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t value = 0;
    if (!GetVarint(&cursor, end, &value)) return Status::Corruption("value");
    out->push_back(static_cast<T>(value));
  }
  return Status::Ok();
}

Status DecodeTimestamps(const char* data, size_t size,
                        std::vector<Timestamp>* out) {
  const char* cursor = data;
  const char* end = data + size;
  uint64_t count = 0, min_value = 0;
  if (!GetVarint(&cursor, end, &count) || !GetVarint(&cursor, end, &min_value)) {
    return Status::Corruption("timestamp header");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    if (!GetVarint(&cursor, end, &delta)) {
      return Status::Corruption("timestamp delta");
    }
    out->push_back(static_cast<Timestamp>(min_value + delta));
  }
  return Status::Ok();
}

Status DecodeFloats(const char* data, size_t size, std::vector<float>* out) {
  const char* cursor = data;
  const char* end = data + size;
  uint64_t count = 0;
  if (!GetVarint(&cursor, end, &count)) return Status::Corruption("count");
  if (static_cast<uint64_t>(end - cursor) < count * sizeof(float)) {
    return Status::Corruption("float payload truncated");
  }
  out->resize(count);
  if (count > 0) {  // memcpy with a null dst is UB even for zero bytes
    std::memcpy(out->data(), cursor, count * sizeof(float));
  }
  return Status::Ok();
}

void AppendSection(std::string* out, const std::string& payload) {
  PutFixed64(out, payload.size());
  out->append(payload);
  PutFixed32(out, Crc32(payload.data(), payload.size()));
}

Status ReadSection(const char** cursor, const char* end,
                   const char** payload, size_t* payload_size) {
  if (end - *cursor < 8) return Status::Corruption("section length");
  uint64_t size = 0;
  std::memcpy(&size, *cursor, 8);
  *cursor += 8;
  if (static_cast<uint64_t>(end - *cursor) < size + 4) {
    return Status::Corruption("section payload truncated");
  }
  *payload = *cursor;
  *payload_size = static_cast<size_t>(size);
  *cursor += size;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, *cursor, 4);
  *cursor += 4;
  if (Crc32(*payload, *payload_size) != stored_crc) {
    return Status::Corruption("section CRC mismatch");
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeIndex(const SessionIndex& index) {
  const SessionIndex::Raw raw = index.ToRaw();
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutFixed32(&out, kVersion);
  PutFixed64(&out, raw.max_sessions_per_item);
  AppendSection(&out, EncodeDelta(raw.item_offsets));
  AppendSection(&out, EncodePlain(raw.session_lists));
  AppendSection(&out, EncodeTimestamps(raw.session_timestamps));
  AppendSection(&out, EncodeDelta(raw.session_offsets));
  AppendSection(&out, EncodePlain(raw.session_items));
  AppendSection(&out, EncodeFloats(raw.item_idf));
  return out;
}

StatusOr<SessionIndex> DeserializeIndex(const std::string& bytes) {
  const char* cursor = bytes.data();
  const char* end = bytes.data() + bytes.size();
  if (end - cursor < static_cast<ptrdiff_t>(sizeof(kMagic) + 4 + 8)) {
    return Status::Corruption("index file too short");
  }
  if (std::memcmp(cursor, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic");
  }
  cursor += sizeof(kMagic);
  uint32_t version = 0;
  std::memcpy(&version, cursor, 4);
  cursor += 4;
  if (version != kVersion) {
    return Status::Corruption("unsupported index version " +
                              std::to_string(version));
  }
  SessionIndex::Raw raw;
  std::memcpy(&raw.max_sessions_per_item, cursor, 8);
  cursor += 8;

  const char* payloads[kNumSections];
  size_t payload_sizes[kNumSections];
  for (size_t i = 0; i < kNumSections; ++i) {
    SERENADE_RETURN_IF_ERROR(
        ReadSection(&cursor, end, &payloads[i], &payload_sizes[i]));
  }

  SERENADE_RETURN_IF_ERROR(
      DecodeDelta(payloads[0], payload_sizes[0], &raw.item_offsets));
  SERENADE_RETURN_IF_ERROR(
      DecodePlain(payloads[1], payload_sizes[1], &raw.session_lists));
  SERENADE_RETURN_IF_ERROR(DecodeTimestamps(payloads[2], payload_sizes[2],
                                            &raw.session_timestamps));
  SERENADE_RETURN_IF_ERROR(
      DecodeDelta(payloads[3], payload_sizes[3], &raw.session_offsets));
  SERENADE_RETURN_IF_ERROR(
      DecodePlain(payloads[4], payload_sizes[4], &raw.session_items));
  SERENADE_RETURN_IF_ERROR(
      DecodeFloats(payloads[5], payload_sizes[5], &raw.item_idf));

  // Structural validation so a logically-corrupt (but CRC-clean) file
  // cannot crash the query path.
  if (raw.item_offsets.empty() || raw.session_offsets.empty()) {
    return Status::Corruption("missing offset arrays");
  }
  if (raw.item_offsets.back() != raw.session_lists.size()) {
    return Status::Corruption("item offsets inconsistent with postings");
  }
  if (raw.session_offsets.back() != raw.session_items.size()) {
    return Status::Corruption("session offsets inconsistent with items");
  }
  if (raw.session_offsets.size() != raw.session_timestamps.size() + 1) {
    return Status::Corruption("session count mismatch");
  }
  if (raw.item_offsets.size() != raw.item_idf.size() + 1) {
    return Status::Corruption("item count mismatch");
  }
  const size_t num_sessions = raw.session_timestamps.size();
  for (SessionId s : raw.session_lists) {
    if (s >= num_sessions) return Status::Corruption("session id out of range");
  }
  return SessionIndex::FromRaw(std::move(raw));
}

Status WriteIndexFile(const std::string& path, const SessionIndex& index) {
  const std::string bytes = SerializeIndex(index);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

StatusOr<SessionIndex> ReadIndexFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IoError("read failure on " + path);
  return DeserializeIndex(buffer.str());
}

}  // namespace serenade
