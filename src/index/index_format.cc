#include "index/index_format.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.h"

namespace serenade {

namespace {

constexpr char kMagic[8] = {'S', 'R', 'N', 'I', 'D', 'X', '1', '\0'};
constexpr uint32_t kVersion = 2;
// Version 1 lacked the item_frequency section; readers still accept it.
constexpr size_t kNumSectionsV1 = 6;
constexpr size_t kNumSectionsV2 = 7;

constexpr char kDeltaMagic[8] = {'S', 'R', 'N', 'D', 'L', 'T', '1', '\0'};
constexpr uint32_t kDeltaVersion = 1;

// --- varint primitives -----------------------------------------------------

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint(const char** cursor, const char* end, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*cursor < end && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(**cursor);
    ++*cursor;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

void PutFixed32(std::string* out, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  out->append(buf, 4);
}

void PutFixed64(std::string* out, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  out->append(buf, 8);
}

// --- section encoders ------------------------------------------------------

template <typename T>
std::string EncodeDelta(const std::vector<T>& values) {
  std::string payload;
  PutVarint(&payload, values.size());
  uint64_t previous = 0;
  for (T v : values) {
    PutVarint(&payload, static_cast<uint64_t>(v) - previous);
    previous = static_cast<uint64_t>(v);
  }
  return payload;
}

template <typename T>
std::string EncodePlain(const std::vector<T>& values) {
  std::string payload;
  PutVarint(&payload, values.size());
  for (T v : values) PutVarint(&payload, static_cast<uint64_t>(v));
  return payload;
}

std::string EncodeTimestamps(const std::vector<Timestamp>& values) {
  std::string payload;
  PutVarint(&payload, values.size());
  Timestamp min_value = ~Timestamp{0};
  for (Timestamp v : values) min_value = std::min(min_value, v);
  if (values.empty()) min_value = 0;
  PutVarint(&payload, min_value);
  for (Timestamp v : values) PutVarint(&payload, v - min_value);
  return payload;
}

std::string EncodeFloats(const std::vector<float>& values) {
  std::string payload;
  PutVarint(&payload, values.size());
  payload.append(reinterpret_cast<const char*>(values.data()),
                 values.size() * sizeof(float));
  return payload;
}

// --- section decoders ------------------------------------------------------

template <typename T>
Status DecodeDelta(const char* data, size_t size, std::vector<T>* out) {
  const char* cursor = data;
  const char* end = data + size;
  uint64_t count = 0;
  if (!GetVarint(&cursor, end, &count)) return Status::Corruption("count");
  out->clear();
  out->reserve(count);
  uint64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    if (!GetVarint(&cursor, end, &delta)) return Status::Corruption("delta");
    previous += delta;
    out->push_back(static_cast<T>(previous));
  }
  return Status::Ok();
}

template <typename T>
Status DecodePlain(const char* data, size_t size, std::vector<T>* out) {
  const char* cursor = data;
  const char* end = data + size;
  uint64_t count = 0;
  if (!GetVarint(&cursor, end, &count)) return Status::Corruption("count");
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t value = 0;
    if (!GetVarint(&cursor, end, &value)) return Status::Corruption("value");
    out->push_back(static_cast<T>(value));
  }
  return Status::Ok();
}

Status DecodeTimestamps(const char* data, size_t size,
                        std::vector<Timestamp>* out) {
  const char* cursor = data;
  const char* end = data + size;
  uint64_t count = 0, min_value = 0;
  if (!GetVarint(&cursor, end, &count) || !GetVarint(&cursor, end, &min_value)) {
    return Status::Corruption("timestamp header");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    if (!GetVarint(&cursor, end, &delta)) {
      return Status::Corruption("timestamp delta");
    }
    out->push_back(static_cast<Timestamp>(min_value + delta));
  }
  return Status::Ok();
}

Status DecodeFloats(const char* data, size_t size, std::vector<float>* out) {
  const char* cursor = data;
  const char* end = data + size;
  uint64_t count = 0;
  if (!GetVarint(&cursor, end, &count)) return Status::Corruption("count");
  if (static_cast<uint64_t>(end - cursor) < count * sizeof(float)) {
    return Status::Corruption("float payload truncated");
  }
  out->resize(count);
  if (count > 0) {  // memcpy with a null dst is UB even for zero bytes
    std::memcpy(out->data(), cursor, count * sizeof(float));
  }
  return Status::Ok();
}

void AppendSection(std::string* out, const std::string& payload) {
  PutFixed64(out, payload.size());
  out->append(payload);
  PutFixed32(out, Crc32(payload.data(), payload.size()));
}

Status ReadSection(const char** cursor, const char* end,
                   const char** payload, size_t* payload_size) {
  if (end - *cursor < 8) return Status::Corruption("section length");
  uint64_t size = 0;
  std::memcpy(&size, *cursor, 8);
  *cursor += 8;
  if (static_cast<uint64_t>(end - *cursor) < size + 4) {
    return Status::Corruption("section payload truncated");
  }
  *payload = *cursor;
  *payload_size = static_cast<size_t>(size);
  *cursor += size;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, *cursor, 4);
  *cursor += 4;
  if (Crc32(*payload, *payload_size) != stored_crc) {
    return Status::Corruption("section CRC mismatch");
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeIndex(const SessionIndex& index) {
  const SessionIndex::Raw raw = index.ToRaw();
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutFixed32(&out, kVersion);
  PutFixed64(&out, raw.max_sessions_per_item);
  AppendSection(&out, EncodeDelta(raw.item_offsets));
  AppendSection(&out, EncodePlain(raw.session_lists));
  AppendSection(&out, EncodeTimestamps(raw.session_timestamps));
  AppendSection(&out, EncodeDelta(raw.session_offsets));
  AppendSection(&out, EncodePlain(raw.session_items));
  AppendSection(&out, EncodeFloats(raw.item_idf));
  AppendSection(&out, EncodePlain(raw.item_frequencies));
  return out;
}

StatusOr<SessionIndex> DeserializeIndex(const std::string& bytes) {
  const char* cursor = bytes.data();
  const char* end = bytes.data() + bytes.size();
  if (end - cursor < static_cast<ptrdiff_t>(sizeof(kMagic) + 4 + 8)) {
    return Status::Corruption("index file too short");
  }
  if (std::memcmp(cursor, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic");
  }
  cursor += sizeof(kMagic);
  uint32_t version = 0;
  std::memcpy(&version, cursor, 4);
  cursor += 4;
  if (version != 1 && version != kVersion) {
    return Status::Corruption("unsupported index version " +
                              std::to_string(version));
  }
  const size_t num_sections =
      version == 1 ? kNumSectionsV1 : kNumSectionsV2;
  SessionIndex::Raw raw;
  std::memcpy(&raw.max_sessions_per_item, cursor, 8);
  cursor += 8;

  const char* payloads[kNumSectionsV2];
  size_t payload_sizes[kNumSectionsV2];
  for (size_t i = 0; i < num_sections; ++i) {
    SERENADE_RETURN_IF_ERROR(
        ReadSection(&cursor, end, &payloads[i], &payload_sizes[i]));
  }

  SERENADE_RETURN_IF_ERROR(
      DecodeDelta(payloads[0], payload_sizes[0], &raw.item_offsets));
  SERENADE_RETURN_IF_ERROR(
      DecodePlain(payloads[1], payload_sizes[1], &raw.session_lists));
  SERENADE_RETURN_IF_ERROR(DecodeTimestamps(payloads[2], payload_sizes[2],
                                            &raw.session_timestamps));
  SERENADE_RETURN_IF_ERROR(
      DecodeDelta(payloads[3], payload_sizes[3], &raw.session_offsets));
  SERENADE_RETURN_IF_ERROR(
      DecodePlain(payloads[4], payload_sizes[4], &raw.session_items));
  SERENADE_RETURN_IF_ERROR(
      DecodeFloats(payloads[5], payload_sizes[5], &raw.item_idf));
  if (version >= 2) {
    SERENADE_RETURN_IF_ERROR(
        DecodePlain(payloads[6], payload_sizes[6], &raw.item_frequencies));
  }

  // Structural validation so a logically-corrupt (but CRC-clean) file
  // cannot crash the query path.
  if (raw.item_offsets.empty() || raw.session_offsets.empty()) {
    return Status::Corruption("missing offset arrays");
  }
  if (raw.item_offsets.back() != raw.session_lists.size()) {
    return Status::Corruption("item offsets inconsistent with postings");
  }
  if (raw.session_offsets.back() != raw.session_items.size()) {
    return Status::Corruption("session offsets inconsistent with items");
  }
  if (raw.session_offsets.size() != raw.session_timestamps.size() + 1) {
    return Status::Corruption("session count mismatch");
  }
  if (raw.item_offsets.size() != raw.item_idf.size() + 1) {
    return Status::Corruption("item count mismatch");
  }
  if (!raw.item_frequencies.empty() &&
      raw.item_frequencies.size() != raw.item_idf.size()) {
    return Status::Corruption("frequency count mismatch");
  }
  const size_t num_sessions = raw.session_timestamps.size();
  for (SessionId s : raw.session_lists) {
    if (s >= num_sessions) return Status::Corruption("session id out of range");
  }
  return SessionIndex::FromRaw(std::move(raw));
}

Status WriteIndexFile(const std::string& path, const SessionIndex& index) {
  const std::string bytes = SerializeIndex(index);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

StatusOr<SessionIndex> ReadIndexFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IoError("read failure on " + path);
  return DeserializeIndex(buffer.str());
}

// --- delta artifacts ---------------------------------------------------------

std::string SerializeDelta(const IndexDelta& delta) {
  std::string out;
  out.append(kDeltaMagic, sizeof(kDeltaMagic));
  PutFixed32(&out, kDeltaVersion);

  std::string lineage;
  PutVarint(&lineage, delta.base_version);
  PutVarint(&lineage, delta.base_crc32);
  PutVarint(&lineage, delta.delta_version);
  PutVarint(&lineage, delta.watermark_unix_ms);
  PutVarint(&lineage, delta.sessions.size());
  AppendSection(&out, lineage);

  std::string sessions;
  for (const DeltaSession& session : delta.sessions) {
    PutVarint(&sessions, session.end_time);
    PutVarint(&sessions, session.observed_unix_ms);
    PutVarint(&sessions, session.items.size());
    uint64_t previous = 0;
    for (ItemId item : session.items) {
      PutVarint(&sessions, static_cast<uint64_t>(item) - previous);
      previous = item;
    }
  }
  AppendSection(&out, sessions);
  return out;
}

StatusOr<IndexDelta> DeserializeDelta(const std::string& bytes) {
  const char* cursor = bytes.data();
  const char* end = bytes.data() + bytes.size();
  if (end - cursor < static_cast<ptrdiff_t>(sizeof(kDeltaMagic) + 4)) {
    return Status::Corruption("delta artifact too short");
  }
  if (std::memcmp(cursor, kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    return Status::Corruption("bad delta magic");
  }
  cursor += sizeof(kDeltaMagic);
  uint32_t version = 0;
  std::memcpy(&version, cursor, 4);
  cursor += 4;
  if (version != kDeltaVersion) {
    return Status::Corruption("unsupported delta version " +
                              std::to_string(version));
  }

  const char* lineage = nullptr;
  size_t lineage_size = 0;
  SERENADE_RETURN_IF_ERROR(ReadSection(&cursor, end, &lineage, &lineage_size));
  IndexDelta delta;
  uint64_t base_crc = 0, num_sessions = 0;
  {
    const char* c = lineage;
    const char* e = lineage + lineage_size;
    if (!GetVarint(&c, e, &delta.base_version) ||
        !GetVarint(&c, e, &base_crc) ||
        !GetVarint(&c, e, &delta.delta_version) ||
        !GetVarint(&c, e, &delta.watermark_unix_ms) ||
        !GetVarint(&c, e, &num_sessions)) {
      return Status::Corruption("delta lineage truncated");
    }
  }
  delta.base_crc32 = static_cast<uint32_t>(base_crc);
  if (delta.delta_version <= delta.base_version) {
    return Status::Corruption("delta version must exceed base version");
  }

  const char* payload = nullptr;
  size_t payload_size = 0;
  SERENADE_RETURN_IF_ERROR(ReadSection(&cursor, end, &payload, &payload_size));
  if (cursor != end) return Status::Corruption("trailing bytes after delta");

  const char* c = payload;
  const char* e = payload + payload_size;
  delta.sessions.reserve(num_sessions);
  Timestamp previous_end = 0;
  for (uint64_t s = 0; s < num_sessions; ++s) {
    DeltaSession session;
    uint64_t count = 0;
    if (!GetVarint(&c, e, &session.end_time) ||
        !GetVarint(&c, e, &session.observed_unix_ms) ||
        !GetVarint(&c, e, &count)) {
      return Status::Corruption("delta session header truncated");
    }
    if (count == 0) return Status::Corruption("empty delta session");
    if (s > 0 && session.end_time < previous_end) {
      return Status::Corruption("delta session end times regress");
    }
    previous_end = session.end_time;
    session.items.reserve(count);
    uint64_t previous_item = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t gap = 0;
      if (!GetVarint(&c, e, &gap)) {
        return Status::Corruption("delta session items truncated");
      }
      // Gap coding doubles as the sorted-distinct check: after the first
      // item every gap must be >= 1.
      if (i > 0 && gap == 0) {
        return Status::Corruption("delta session items not strictly ascending");
      }
      previous_item += gap;
      session.items.push_back(static_cast<ItemId>(previous_item));
    }
    delta.sessions.push_back(std::move(session));
  }
  if (c != e) return Status::Corruption("trailing bytes in delta sessions");
  return delta;
}

Status WriteDeltaFile(const std::string& path, const IndexDelta& delta) {
  const std::string bytes = SerializeDelta(delta);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

StatusOr<IndexDelta> ReadDeltaFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IoError("read failure on " + path);
  return DeserializeDelta(buffer.str());
}

StatusOr<SessionIndex> ApplyDeltaToIndex(const SessionIndex& base,
                                         const IndexDelta& delta) {
  if (!base.has_frequencies()) {
    return Status::InvalidArgument(
        "delta base lacks exact item frequencies (format-v1 artifact); "
        "rebuild the snapshot before streaming deltas");
  }
  const size_t base_sessions = base.num_sessions();
  const size_t base_items = base.num_items();
  const size_t m = base.max_sessions_per_item();
  if (m == 0) return Status::InvalidArgument("base index has m == 0");

  Timestamp base_max = 0;
  for (size_t s = 0; s < base_sessions; ++s) {
    base_max = std::max(base_max, base.SessionTimestamp(s));
  }

  size_t num_items = base_items;
  Timestamp previous_end = 0;
  for (size_t s = 0; s < delta.sessions.size(); ++s) {
    const DeltaSession& session = delta.sessions[s];
    if (session.items.empty()) {
      return Status::InvalidArgument("empty delta session");
    }
    if (base_sessions > 0 && session.end_time < base_max) {
      return Status::InvalidArgument(
          "delta session older than base index horizon");
    }
    if (s > 0 && session.end_time < previous_end) {
      return Status::InvalidArgument("delta session end times regress");
    }
    previous_end = session.end_time;
    for (size_t i = 0; i < session.items.size(); ++i) {
      if (i > 0 && session.items[i] <= session.items[i - 1]) {
        return Status::InvalidArgument(
            "delta session items not sorted distinct");
      }
      num_items = std::max<size_t>(num_items, session.items[i] + 1);
    }
  }

  const size_t num_delta = delta.sessions.size();
  const size_t num_sessions = base_sessions + num_delta;

  // Per-item delta postings, ascending session id (sessions iterate in id
  // order, so a plain append keeps them sorted).
  std::vector<uint32_t> delta_freq(num_items, 0);
  for (const DeltaSession& session : delta.sessions) {
    for (ItemId item : session.items) ++delta_freq[item];
  }
  std::vector<uint64_t> delta_offsets(num_items + 1, 0);
  for (size_t i = 0; i < num_items; ++i) {
    delta_offsets[i + 1] = delta_offsets[i] + delta_freq[i];
  }
  std::vector<SessionId> delta_postings(delta_offsets.back());
  {
    std::vector<uint64_t> fill = delta_offsets;
    for (size_t s = 0; s < num_delta; ++s) {
      for (ItemId item : delta.sessions[s].items) {
        delta_postings[fill[item]++] =
            static_cast<SessionId>(base_sessions + s);
      }
    }
  }

  SessionIndex::Raw raw;
  raw.max_sessions_per_item = m;

  // Merged frequencies, IDF, and truncated postings — exactly what a full
  // rebuild over base + delta sessions computes, so the merged artifact is
  // byte-identical to the rebuilt one.
  raw.item_frequencies.resize(num_items);
  raw.item_idf.resize(num_items);
  raw.item_offsets.assign(num_items + 1, 0);
  for (size_t i = 0; i < num_items; ++i) {
    const uint32_t freq =
        (i < base_items ? base.ItemFrequency(static_cast<ItemId>(i)) : 0) +
        delta_freq[i];
    raw.item_frequencies[i] = freq;
    raw.item_idf[i] =
        freq == 0 ? 0.0f
                  : static_cast<float>(std::log(
                        static_cast<double>(num_sessions) / freq));
    raw.item_offsets[i + 1] =
        raw.item_offsets[i] + std::min<size_t>(freq, m);
  }
  raw.session_lists.resize(raw.item_offsets.back());
  for (size_t i = 0; i < num_items; ++i) {
    const size_t cap = raw.item_offsets[i + 1] - raw.item_offsets[i];
    size_t out = raw.item_offsets[i];
    size_t taken = 0;
    // Delta sessions are the most recent: newest (highest id) first.
    for (size_t d = delta_offsets[i + 1]; d-- > delta_offsets[i];) {
      if (taken == cap) break;
      raw.session_lists[out++] = delta_postings[d];
      ++taken;
    }
    if (i < base_items) {
      const auto base_list = base.SessionsForItem(static_cast<ItemId>(i));
      for (SessionId s : base_list) {
        if (taken == cap) break;
        raw.session_lists[out++] = s;
        ++taken;
      }
    }
  }

  // Session side: base arrays plus the delta sessions appended.
  raw.session_timestamps.reserve(num_sessions);
  raw.session_offsets.reserve(num_sessions + 1);
  raw.session_offsets.push_back(0);
  for (size_t s = 0; s < base_sessions; ++s) {
    raw.session_timestamps.push_back(base.SessionTimestamp(s));
    const auto items = base.ItemsForSession(static_cast<SessionId>(s));
    raw.session_items.insert(raw.session_items.end(), items.begin(),
                             items.end());
    raw.session_offsets.push_back(raw.session_items.size());
  }
  for (const DeltaSession& session : delta.sessions) {
    raw.session_timestamps.push_back(session.end_time);
    raw.session_items.insert(raw.session_items.end(), session.items.begin(),
                             session.items.end());
    raw.session_offsets.push_back(raw.session_items.size());
  }

  return SessionIndex::FromRaw(std::move(raw));
}

}  // namespace serenade
