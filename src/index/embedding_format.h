// On-disk format for the embedding artifact (the second retrieval
// family's deployable), mirroring the SRNIDX1 discipline: CRC-framed
// sections, structural validation on load, deterministic serialization.
//
// Layout (little-endian):
//
//   magic   "SRNEMB1\0"                     (8 bytes)
//   u32     format version (currently 1)
//   section header:  varint num_items | varint dim
//   section vectors: varint count | count * float32 (row-major)
//
// Each section is framed as u64 payload length | payload | u32 CRC-32,
// exactly like the index codec, so truncation and bit flips anywhere past
// the magic are caught by length/CRC checks. The deserializer addition-
// ally rejects structural lies: dim == 0, count != num_items * dim,
// non-finite values, and trailing bytes after the last section.
//
// Serialization is deterministic: the same embeddings always produce the
// same bytes (embedding_determinism_test pins this, and the manifest CRC
// with it).
//
// The ANN graph is NOT persisted — it is rebuilt deterministically from
// these vectors at load time (see core/hnsw.h), keeping one artifact and
// one codec to torture.
#pragma once

#include <string>

#include "common/status.h"
#include "core/embedding.h"
#include "index/snapshot.h"

namespace serenade {

/// Deterministic: identical embeddings yield identical bytes.
std::string SerializeEmbeddings(const ItemEmbeddings& embeddings);

/// Validates framing (magic, version, section lengths, CRCs) and
/// structure; returns kCorruption on any mismatch.
StatusOr<ItemEmbeddings> DeserializeEmbeddings(const std::string& bytes);

Status WriteEmbeddingsFile(const std::string& path,
                           const ItemEmbeddings& embeddings);
StatusOr<ItemEmbeddings> ReadEmbeddingsFile(const std::string& path);

/// Writes the artifact plus its `<path>.manifest` sidecar in one step,
/// stamping kind="embedding", the vector counts, and the artifact CRC.
/// `manifest.version`, `build_id`, and `source` come from the caller
/// (same contract as WriteIndexWithManifest).
StatusOr<IndexManifest> WriteEmbeddingsWithManifest(
    const std::string& path, const ItemEmbeddings& embeddings,
    IndexManifest manifest);

}  // namespace serenade
