// Versioned index snapshots and zero-downtime hot swap — the serving-side
// half of the paper's nightly index rollout (Figure 1: the Spark job
// regenerates the VMIS-kNN index and distributes it to every serving
// pod). A pod must pick up a fresh index without restarting or dropping
// traffic, so index consumption is structured RCU-style:
//
//   * IndexSnapshot — an immutable (index, version, provenance) triple.
//     Readers pin a snapshot with a shared_ptr for the duration of one
//     request; the snapshot (and the index it holds) is freed only when
//     the last pin drops, never under a live reader.
//   * IndexManager — loads index artifacts, validates them (section CRCs
//     via the deserializer, whole-file CRC against the manifest, and the
//     serving configuration's knn.m compatibility), and publishes the
//     winner through an atomic handle. Publication is a single atomic
//     pointer store: concurrent readers see either the old or the new
//     snapshot, never a torn state. A failed load/validation leaves the
//     current snapshot untouched.
//   * IndexManifest — the sidecar stamped next to the artifact by
//     serenade_build_index (the stand-in for the batch job's rollout
//     metadata): version, build id, corpus counts, and a CRC-32 of the
//     artifact bytes.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/session_index.h"

namespace serenade {

struct IndexDelta;  // index/index_format.h

/// Rollout metadata for one index artifact. Stamped as a `<path>.manifest`
/// sidecar (plain `key=value` lines, human-readable and dependency-free).
struct IndexManifest {
  uint64_t version = 0;        ///< rollout version (monotone per pipeline)
  std::string build_id;        ///< free-form build identifier
  uint64_t built_unix = 0;     ///< build wall-clock (seconds since epoch)
  std::string source;          ///< training-data provenance
  uint64_t max_sessions_per_item = 0;  ///< the index's m
  uint64_t num_sessions = 0;
  uint64_t num_items = 0;
  uint64_t num_postings = 0;
  uint64_t index_bytes = 0;    ///< artifact size (0 = unknown)
  uint32_t index_crc32 = 0;    ///< CRC-32 of the artifact bytes (with bytes)

  // Freshness-pipeline lineage (kind "delta" snapshots only; older readers
  // skip these keys).
  std::string kind = "full";       ///< "full" | "delta" | "embedding"
  uint64_t base_version = 0;       ///< full snapshot a delta layers over
  uint32_t base_crc32 = 0;         ///< that snapshot's artifact CRC
  uint64_t watermark_unix_ms = 0;  ///< newest click covered (freshness SLO)

  // Embedding-artifact extension (kind "embedding" only; older readers
  // skip the key). Stamped by WriteEmbeddingsWithManifest.
  uint64_t embedding_dim = 0;      ///< vector dimensionality
};

/// `<index path>.manifest`.
std::string ManifestPathFor(const std::string& index_path);

/// Serializes/parses the sidecar format. ReadManifestFile returns
/// kNotFound when no sidecar exists (callers treat that as "unversioned
/// artifact", not an error).
Status WriteManifestFile(const std::string& path,
                         const IndexManifest& manifest);
StatusOr<IndexManifest> ReadManifestFile(const std::string& path);

/// Writes the artifact and its manifest sidecar in one step, filling the
/// manifest's corpus counts, size, and CRC from the serialized bytes.
/// `manifest.version`, `build_id`, and `source` are taken from the caller.
StatusOr<IndexManifest> WriteIndexWithManifest(const std::string& path,
                                               const SessionIndex& index,
                                               IndexManifest manifest);

/// Guards in-place rollouts against version regressions: returns kOk when
/// `index_path` has no manifest sidecar (nothing to clobber, or an
/// unversioned artifact), kAlreadyExists when the sidecar's version is >=
/// `new_version` (the caller is about to overwrite a same-or-newer
/// rollout), and passes through read errors otherwise. Used by
/// serenade_build_index before writing (override with --force).
Status CheckManifestOverwrite(const std::string& index_path,
                              uint64_t new_version);

/// The shared knn.m-vs-index compatibility check: a serving configuration
/// that samples m candidate sessions per item needs an index that retained
/// at least that many. Used by SerenadeService::Create *and* by every
/// IndexManager reload so a bad nightly artifact is rejected before it is
/// published (identical error text on both paths, by construction).
Status ValidateIndexForKnn(const SessionIndex& index, size_t knn_m);

/// One immutable published index version. Request handlers pin it for the
/// request lifetime; pooled per-thread recommenders pin it for as long as
/// their scratch state points into the index.
class IndexSnapshot {
 public:
  IndexSnapshot(std::shared_ptr<const SessionIndex> index,
                IndexManifest manifest)
      : index_(std::move(index)), manifest_(std::move(manifest)) {}

  const SessionIndex& index() const { return *index_; }
  std::shared_ptr<const SessionIndex> index_ptr() const { return index_; }
  const IndexManifest& manifest() const { return manifest_; }
  uint64_t version() const { return manifest_.version; }

 private:
  std::shared_ptr<const SessionIndex> index_;
  IndexManifest manifest_;
};

/// Loads, validates, and atomically publishes index snapshots. Readers
/// call Current() (wait-free pin); writers serialize on an internal mutex
/// and swap the handle only after the replacement fully validated.
class IndexManager {
 public:
  /// Boots a manager from an on-disk artifact (manifest sidecar honoured
  /// when present). The initial snapshot is validated like any reload.
  static StatusOr<std::shared_ptr<IndexManager>> CreateFromFile(
      const std::string& path);

  /// Boots a manager from an in-memory index (tests, benches, and the
  /// single-index compatibility path of SerenadeService::Create). The
  /// snapshot gets version `version` and source "in-memory" unless a
  /// manifest is supplied.
  static std::shared_ptr<IndexManager> CreateFromIndex(
      std::shared_ptr<const SessionIndex> index, uint64_t version = 1);

  /// Pins the currently published snapshot. Never null after construction.
  std::shared_ptr<const IndexSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  uint64_t current_version() const { return Current()->version(); }

  /// Registers a serving configuration's m with the manager: validates the
  /// current snapshot now and guards every future reload against it.
  /// Multiple services may register; the largest m wins.
  Status RequireKnnCompatibility(size_t knn_m);

  /// Loads `path` (or the last loaded path when empty), validates it, and
  /// publishes it as the new current snapshot. On any failure the current
  /// snapshot stays published and the error is returned. Thread-safe.
  Status ReloadFromFile(const std::string& path = "");

  /// Validates and publishes an in-memory index (the incremental-overlay
  /// promotion path and tests). A manifest version of 0 is auto-assigned
  /// `current version + 1`.
  Status Publish(std::shared_ptr<const SessionIndex> index,
                 IndexManifest manifest);

  /// What a successful ApplyDelta changed — fed into the click->servable
  /// freshness histogram by the serving layer.
  struct DeltaApplyInfo {
    uint64_t version = 0;          ///< the delta version now servable
    size_t sessions_applied = 0;   ///< sessions new vs. the previous delta
    /// Observe stamps of exactly those newly applied sessions.
    std::vector<uint64_t> observed_unix_ms;
  };

  /// Merges a cumulative delta over the pinned *base* snapshot (the last
  /// full snapshot, not the current delta overlay — deltas are cumulative,
  /// so intermediate versions can be skipped) and publishes the result
  /// with the same RCU discipline as a full swap. Rejections leave the
  /// current snapshot untouched and count in delta_rejects_total():
  ///   * lineage mismatch — the delta names a different base version, or a
  ///     different base CRC (both sides nonzero);
  ///   * structural failure — ApplyDeltaToIndex or knn validation failed.
  /// A delta at or below the already-applied version returns
  /// kAlreadyExists without counting as a reject (idempotent re-delivery).
  Status ApplyDelta(const IndexDelta& delta, DeltaApplyInfo* info = nullptr);

  /// Successful publications since construction (the boot load is not
  /// counted; /metrics exposes this as serenade_index_reloads_total).
  uint64_t reloads_total() const {
    return reloads_.load(std::memory_order_relaxed);
  }

  /// Failed reload/publish attempts (bad path, corruption, incompatible m).
  uint64_t reload_failures_total() const {
    return reload_failures_.load(std::memory_order_relaxed);
  }

  /// The artifact path backing the current snapshot ("" for in-memory).
  std::string source_path() const;

  /// Deltas successfully applied (over the lifetime, across base swaps).
  uint64_t deltas_applied_total() const {
    return deltas_applied_.load(std::memory_order_relaxed);
  }

  /// Deltas rejected (lineage mismatch, corruption, validation failure).
  uint64_t delta_rejects_total() const {
    return delta_rejects_.load(std::memory_order_relaxed);
  }

  /// The newest delta version applied over the current base (0 = none; a
  /// full reload/publish resets it).
  uint64_t applied_delta_version() const {
    return applied_delta_version_.load(std::memory_order_relaxed);
  }

  /// Version of the pinned base snapshot deltas must name.
  uint64_t base_version() const {
    return base_version_.load(std::memory_order_relaxed);
  }

  /// Newest click observe stamp (ms since epoch) covered by the published
  /// index (0 until a delta lands). now - watermark is the pod's
  /// freshness-SLO gauge.
  uint64_t freshness_watermark_unix_ms() const {
    return freshness_watermark_ms_.load(std::memory_order_relaxed);
  }

 private:
  IndexManager() = default;

  // Loads + validates without publishing; shared by boot and reload.
  StatusOr<std::shared_ptr<const IndexSnapshot>> LoadSnapshot(
      const std::string& path, size_t knn_m) const;

  // Installs `snapshot` as both the current snapshot and the delta base,
  // resetting per-base delta state. Caller holds mutex_.
  void PublishAsBase(std::shared_ptr<const IndexSnapshot> snapshot);

  std::atomic<std::shared_ptr<const IndexSnapshot>> current_;

  mutable std::mutex mutex_;  // serialises writers; guards fields below
  std::string source_path_;
  size_t required_knn_m_ = 0;
  // The last *full* snapshot: the merge base for cumulative deltas. Stays
  // pinned while delta overlays are published over it.
  std::shared_ptr<const IndexSnapshot> base_;
  size_t applied_delta_sessions_ = 0;  // sessions in the last applied delta

  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reload_failures_{0};
  std::atomic<uint64_t> deltas_applied_{0};
  std::atomic<uint64_t> delta_rejects_{0};
  std::atomic<uint64_t> applied_delta_version_{0};
  std::atomic<uint64_t> base_version_{0};
  std::atomic<uint64_t> freshness_watermark_ms_{0};
};

}  // namespace serenade
