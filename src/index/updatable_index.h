// Incrementally maintainable session index — the paper's second
// future-work direction ("whether we can incrementally maintain the index
// with a system such as Differential Dataflow", Section 7), and the
// answer to its cold-start caveat: the daily batch job means "Serenade
// will only see sessions for new items on the platform with a delay of
// one day".
//
// Design: an immutable base SessionIndex (the nightly batch artifact)
// plus a mutable overlay holding the sessions ingested since. Ingested
// sessions are by construction more recent than every base session, so a
// posting list is simply overlay-postings (newest first) followed by base
// postings, truncated to m — recency order is preserved and VMIS-kNN's
// early stopping stays exact. IDF is maintained from live frequency
// counts. Periodically the nightly batch job replaces the base and the
// overlay resets.
//
// Satisfies the same query concept as SessionIndex (see vmis_knn.h), so
// VmisKnnT<UpdatableSessionIndex> runs Algorithm 2 unmodified.
//
// Thread-compatibility: Ingest() must be externally synchronised with
// queries (the production pattern is a snapshot swap per serving worker;
// the serving layer here queries single-threaded per worker instance).
#pragma once

#include <cmath>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/session_index.h"
#include "data/click_log.h"

namespace serenade {

/// SessionIndex + in-memory delta for freshly observed sessions.
class UpdatableSessionIndex {
 public:
  /// Takes ownership of the nightly base index.
  explicit UpdatableSessionIndex(SessionIndex base);

  /// Ingests one finished session (its items, in click order, and its end
  /// timestamp). The timestamp must be >= every base/ingested timestamp
  /// (violations are clamped to the current maximum to keep recency
  /// order). Returns the id assigned to the new session.
  SessionId Ingest(const std::vector<ItemId>& items, Timestamp end_time);

  /// Sessions ingested since the base was built.
  size_t overlay_sessions() const { return overlay_items_.size(); }

  size_t num_sessions() const {
    return base_.num_sessions() + overlay_items_.size();
  }
  size_t num_items() const { return num_items_; }
  size_t max_sessions_per_item() const {
    return base_.max_sessions_per_item();
  }

  // --- query concept ---------------------------------------------------

  /// Overlay postings (newest first) followed by base postings, truncated
  /// to the index's m; decoded into `scratch` only when the overlay
  /// contributes (pure-base items return the base span directly).
  std::span<const SessionId> SessionsForItem(
      ItemId item, std::vector<SessionId>* scratch) const;

  /// SoA query path: ids + timestamps in one call. Pure-base items return
  /// the base index's parallel-array views directly; items the overlay
  /// touches are merged (overlay newest-first, then base) into `scratch`.
  /// Note: no IdfData() here — IDF is computed live from frequency counts
  /// (see Idf), so the scoring pass takes the scalar per-item path.
  PostingsRef PostingsForItem(ItemId item, PostingScratch* scratch) const;

  std::span<const ItemId> ItemsForSession(SessionId session,
                                          std::vector<ItemId>* scratch) const;

  Timestamp SessionTimestamp(SessionId session) const {
    return session < base_.num_sessions()
               ? base_.SessionTimestamp(session)
               : overlay_timestamps_[session - base_.num_sessions()];
  }

  /// Live IDF: log(total sessions / live frequency). For items whose
  /// frequency changed since the base build the value tracks the overlay;
  /// untouched items keep the base value rescaled to the grown corpus.
  double Idf(ItemId item) const;

 private:
  SessionIndex base_;
  size_t num_items_;

  // Overlay: per item, ingested sessions in ascending ingest order
  // (i.e. ascending recency; read back-to-front at query time).
  std::unordered_map<ItemId, std::vector<SessionId>> overlay_postings_;
  std::vector<std::vector<ItemId>> overlay_items_;  // distinct, sorted
  std::vector<Timestamp> overlay_timestamps_;
  std::unordered_map<ItemId, uint32_t> overlay_frequency_;
  Timestamp max_timestamp_ = 0;
};

}  // namespace serenade
