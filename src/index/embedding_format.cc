#include "index/embedding_format.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.h"

namespace serenade {

namespace {

constexpr char kMagic[8] = {'S', 'R', 'N', 'E', 'M', 'B', '1', '\0'};
constexpr uint32_t kVersion = 1;

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint(const char** cursor, const char* end, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*cursor < end && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(**cursor);
    ++*cursor;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

void PutFixed32(std::string* out, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  out->append(buf, 4);
}

void PutFixed64(std::string* out, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  out->append(buf, 8);
}

// Section CRCs are stored *masked* (rotate + add a constant, after
// LevelDB). Storing a raw CRC right after its payload makes the whole
// file's CRC a constant function of the framing: CRC is linear over
// GF(2), so `payload || crc(payload)` always leaves the same residue,
// and two different well-formed artifacts would collide in the
// manifest's whole-file index_crc32. The addition carries are
// non-linear, which breaks that cancellation — the manifest CRC
// actually distinguishes artifacts again (embedding_codec_test pins
// this).
constexpr uint32_t kCrcMaskDelta = 0xa282ead8u;

uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}

void AppendSection(std::string* out, const std::string& payload) {
  PutFixed64(out, payload.size());
  out->append(payload);
  PutFixed32(out, MaskCrc(Crc32(payload.data(), payload.size())));
}

Status ReadSection(const char** cursor, const char* end,
                   const char** payload, size_t* payload_size) {
  if (end - *cursor < 8) return Status::Corruption("section length");
  uint64_t size = 0;
  std::memcpy(&size, *cursor, 8);
  *cursor += 8;
  if (static_cast<uint64_t>(end - *cursor) < size + 4) {
    return Status::Corruption("section payload truncated");
  }
  *payload = *cursor;
  *payload_size = static_cast<size_t>(size);
  *cursor += size;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, *cursor, 4);
  *cursor += 4;
  if (MaskCrc(Crc32(*payload, *payload_size)) != stored_crc) {
    return Status::Corruption("section CRC mismatch");
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeEmbeddings(const ItemEmbeddings& embeddings) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutFixed32(&out, kVersion);

  std::string header;
  PutVarint(&header, embeddings.num_items);
  PutVarint(&header, embeddings.dim);
  AppendSection(&out, header);

  std::string vectors;
  PutVarint(&vectors, embeddings.values.size());
  vectors.append(reinterpret_cast<const char*>(embeddings.values.data()),
                 embeddings.values.size() * sizeof(float));
  AppendSection(&out, vectors);
  return out;
}

StatusOr<ItemEmbeddings> DeserializeEmbeddings(const std::string& bytes) {
  const char* cursor = bytes.data();
  const char* end = bytes.data() + bytes.size();
  if (end - cursor < static_cast<ptrdiff_t>(sizeof(kMagic) + 4)) {
    return Status::Corruption("embedding file too short");
  }
  if (std::memcmp(cursor, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad embedding magic");
  }
  cursor += sizeof(kMagic);
  uint32_t version = 0;
  std::memcpy(&version, cursor, 4);
  cursor += 4;
  if (version != kVersion) {
    return Status::Corruption("unsupported embedding version " +
                              std::to_string(version));
  }

  const char* header = nullptr;
  size_t header_size = 0;
  SERENADE_RETURN_IF_ERROR(ReadSection(&cursor, end, &header, &header_size));
  const char* header_cursor = header;
  const char* header_end = header + header_size;
  uint64_t num_items = 0, dim = 0;
  if (!GetVarint(&header_cursor, header_end, &num_items) ||
      !GetVarint(&header_cursor, header_end, &dim)) {
    return Status::Corruption("embedding header truncated");
  }
  if (header_cursor != header_end) {
    return Status::Corruption("embedding header has trailing bytes");
  }

  const char* vectors = nullptr;
  size_t vectors_size = 0;
  SERENADE_RETURN_IF_ERROR(ReadSection(&cursor, end, &vectors, &vectors_size));
  if (cursor != end) {
    return Status::Corruption("trailing bytes after embedding sections");
  }
  const char* vec_cursor = vectors;
  const char* vec_end = vectors + vectors_size;
  uint64_t count = 0;
  if (!GetVarint(&vec_cursor, vec_end, &count)) {
    return Status::Corruption("embedding vector count truncated");
  }
  if (count != num_items * dim) {
    return Status::Corruption("embedding vector count mismatch");
  }
  if (static_cast<uint64_t>(vec_end - vec_cursor) != count * sizeof(float)) {
    return Status::Corruption("embedding vector payload size mismatch");
  }

  ItemEmbeddings embeddings;
  embeddings.num_items = static_cast<size_t>(num_items);
  embeddings.dim = static_cast<size_t>(dim);
  embeddings.values.resize(static_cast<size_t>(count));
  if (count > 0) {
    std::memcpy(embeddings.values.data(), vec_cursor,
                static_cast<size_t>(count) * sizeof(float));
  }
  SERENADE_RETURN_IF_ERROR(ValidateEmbeddings(embeddings));
  return embeddings;
}

Status WriteEmbeddingsFile(const std::string& path,
                           const ItemEmbeddings& embeddings) {
  const std::string bytes = SerializeEmbeddings(embeddings);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

StatusOr<ItemEmbeddings> ReadEmbeddingsFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IoError("read failure on " + path);
  return DeserializeEmbeddings(buffer.str());
}

StatusOr<IndexManifest> WriteEmbeddingsWithManifest(
    const std::string& path, const ItemEmbeddings& embeddings,
    IndexManifest manifest) {
  SERENADE_RETURN_IF_ERROR(ValidateEmbeddings(embeddings));
  const std::string bytes = SerializeEmbeddings(embeddings);
  manifest.kind = "embedding";
  manifest.num_items = embeddings.num_items;
  manifest.embedding_dim = embeddings.dim;
  manifest.num_sessions = 0;
  manifest.num_postings = 0;
  manifest.index_bytes = bytes.size();
  manifest.index_crc32 = Crc32(bytes.data(), bytes.size());

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) return Status::IoError("write failure on " + path);

  SERENADE_RETURN_IF_ERROR(WriteManifestFile(ManifestPathFor(path), manifest));
  return manifest;
}

}  // namespace serenade
