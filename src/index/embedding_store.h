// Versioned embedding snapshots with the same RCU hot-swap discipline as
// IndexManager (index/snapshot.h): an immutable EmbeddingSnapshot pinned
// per request through an atomic handle, writers serialized on a mutex,
// and a failed load leaving the current snapshot untouched. The snapshot
// owns both the vectors and the HNSW graph rebuilt from them at load
// time, so one pin covers everything an ANN-engine request touches.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/embedding.h"
#include "core/hnsw.h"
#include "index/snapshot.h"

namespace serenade {

/// One immutable published embedding version: vectors + ANN graph +
/// provenance (manifest kind "embedding").
class EmbeddingSnapshot {
 public:
  EmbeddingSnapshot(ItemEmbeddings embeddings, const HnswConfig& hnsw,
                    IndexManifest manifest)
      : embeddings_(std::move(embeddings)),
        ann_(&embeddings_, hnsw),
        manifest_(std::move(manifest)) {}

  const ItemEmbeddings& embeddings() const { return embeddings_; }
  const HnswIndex& ann() const { return ann_; }
  const IndexManifest& manifest() const { return manifest_; }
  uint64_t version() const { return manifest_.version; }

 private:
  ItemEmbeddings embeddings_;
  HnswIndex ann_;
  IndexManifest manifest_;
};

/// Loads, validates, and atomically publishes embedding snapshots.
/// Mirrors IndexManager: Current() is a wait-free pin, ReloadFromFile
/// keeps the old snapshot on any failure, reload counters feed
/// /v1/metrics.
class EmbeddingManager {
 public:
  /// Boots from an on-disk SRNEMB1 artifact (manifest sidecar honoured
  /// when present; unversioned artifacts boot as version 1).
  static StatusOr<std::shared_ptr<EmbeddingManager>> CreateFromFile(
      const std::string& path, const HnswConfig& hnsw = {});

  /// Boots from in-memory embeddings (tests, benches, SimCluster).
  static StatusOr<std::shared_ptr<EmbeddingManager>> CreateFromEmbeddings(
      ItemEmbeddings embeddings, const HnswConfig& hnsw = {},
      uint64_t version = 1);

  /// Pins the currently published snapshot. Never null after construction.
  std::shared_ptr<const EmbeddingSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  uint64_t current_version() const { return Current()->version(); }

  /// Loads `path` (or the boot path when empty) and publishes on success;
  /// on failure the current snapshot stays and the error is returned.
  Status ReloadFromFile(const std::string& path = "");

  uint64_t reloads_total() const {
    return reloads_.load(std::memory_order_relaxed);
  }
  uint64_t reload_failures_total() const {
    return reload_failures_.load(std::memory_order_relaxed);
  }

 private:
  explicit EmbeddingManager(HnswConfig hnsw) : hnsw_(hnsw) {}

  StatusOr<std::shared_ptr<const EmbeddingSnapshot>> LoadSnapshot(
      const std::string& path) const;

  HnswConfig hnsw_;
  std::atomic<std::shared_ptr<const EmbeddingSnapshot>> current_;

  mutable std::mutex mutex_;  // serializes writers
  std::string source_path_;

  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reload_failures_{0};
};

}  // namespace serenade
