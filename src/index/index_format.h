// Compact binary on-disk formats for the session similarity index and
// for index *deltas* — the stand-in for the paper's Avro index files
// written by the Spark job and ingested by the serving component, plus
// the streaming-freshness delta artifacts the index-builder role
// publishes between nightly rebuilds (ROADMAP: "Streaming index
// freshness pipeline"). Both formats are compressed with varint/delta
// coding (the paper: "a compressed representation of our index") and
// every section carries a CRC-32 so a corrupted replica is rejected at
// load time rather than serving garbage.
//
// Index layout (version 2):
//   header:  magic "SRNIDX1\0" | u32 version | u64 m | sections
//   sections (each varint-coded payload followed by u32 CRC of payload):
//     1 item_offsets        (delta + varint; monotone non-decreasing)
//     2 session_lists       (varint)
//     3 session_timestamps  (delta vs min + varint, preceded by min)
//     4 session_offsets     (delta + varint)
//     5 session_items       (varint)
//     6 item_idf            (raw float32 little-endian)
//     7 item_frequencies    (varint; exact h_i counts, v2 only)
// Version-1 artifacts (six sections, no frequencies) still load; their
// indexes report has_frequencies() == false and cannot serve as a delta
// base (IDF after a merge must be recomputed from exact counts).
//
// Delta layout (version 1):
//   header:  magic "SRNDLT1\0" | u32 version | sections
//   sections:
//     1 lineage   (varint: base_version, base_crc32, delta_version,
//                  watermark_unix_ms, num_sessions)
//     2 sessions  (per session: end_time, observed_unix_ms, item count,
//                  items delta-coded ascending)
// A delta is *cumulative*: it carries every session the builder sealed
// since the base snapshot it names, so a pod can skip intermediate delta
// versions and always apply the newest one directly over its pinned
// base. Serialization is deterministic — the same sealed sessions always
// produce byte-identical artifacts (the replay-determinism contract the
// tests pin down).
#pragma once

#include <string>

#include "common/status.h"
#include "core/session_index.h"

namespace serenade {

/// Serializes the index to `path`, replacing any existing file.
Status WriteIndexFile(const std::string& path, const SessionIndex& index);

/// Loads an index previously written by WriteIndexFile. Returns
/// kCorruption for truncated files, bad magic/version or CRC mismatches.
StatusOr<SessionIndex> ReadIndexFile(const std::string& path);

/// In-memory variants (used by tests and by the replication path of the
/// serving layer, which ships index bytes to each serving machine).
std::string SerializeIndex(const SessionIndex& index);
StatusOr<SessionIndex> DeserializeIndex(const std::string& bytes);

// --- delta artifacts ---------------------------------------------------------

/// One session sealed by the index builder since the base snapshot.
struct DeltaSession {
  /// Distinct items, ascending (the builder deduplicates + sorts; the
  /// deserializer rejects anything else).
  std::vector<ItemId> items;
  /// Index-time end timestamp. Must be >= the base index's maximum
  /// timestamp and non-decreasing across the delta's sessions, so delta
  /// sessions are by construction the most recent — the invariant the
  /// overlay merge and VMIS-kNN's early stopping rely on.
  Timestamp end_time = 0;
  /// Wall clock (ms since epoch) when the session's last click was
  /// observed on a pod — the freshness-SLO anchor: click -> servable
  /// latency is measured against this stamp.
  uint64_t observed_unix_ms = 0;
};

/// A cumulative, versioned index delta: every session sealed since
/// `base_version`, plus the lineage needed to refuse application over
/// the wrong base.
struct IndexDelta {
  uint64_t base_version = 0;   ///< snapshot version this delta layers over
  uint32_t base_crc32 = 0;     ///< base artifact CRC (0 = in-memory base)
  uint64_t delta_version = 0;  ///< monotone per builder; > base_version
  /// Newest observed_unix_ms covered by this delta (0 = empty delta).
  /// Pods export now - watermark as serenade_index_freshness_seconds.
  uint64_t watermark_unix_ms = 0;
  std::vector<DeltaSession> sessions;  ///< ascending end_time
};

/// Deterministic serialization: equal deltas yield byte-identical
/// artifacts.
std::string SerializeDelta(const IndexDelta& delta);

/// Validates magic, section CRCs, lineage sanity (delta_version >
/// base_version), and per-session structure (sorted distinct items,
/// non-decreasing end times). Returns kCorruption on any violation.
StatusOr<IndexDelta> DeserializeDelta(const std::string& bytes);

Status WriteDeltaFile(const std::string& path, const IndexDelta& delta);
StatusOr<IndexDelta> ReadDeltaFile(const std::string& path);

/// Structurally merges `delta` over `base`, producing the index a full
/// batch rebuild over base-sessions + delta-sessions would build —
/// byte-identical (same serialized artifact), not just equivalent:
/// postings keep descending recency with delta sessions prepended,
/// per-item truncation re-applies min(h_i, m), and IDF is recomputed as
/// float32(log(N_new / h_i)) from exact merged frequencies. Requires
/// base.has_frequencies() (a format-v2 base); rejects deltas whose
/// end_times regress below the base's maximum timestamp.
StatusOr<SessionIndex> ApplyDeltaToIndex(const SessionIndex& base,
                                         const IndexDelta& delta);

}  // namespace serenade
