// Compact binary on-disk format for the session similarity index — the
// stand-in for the paper's Avro index files written by the Spark job and
// ingested by the serving component. The format is compressed with
// varint/delta coding (the paper: "a compressed representation of our
// index") and every section carries a CRC-32 so a corrupted replica is
// rejected at load time rather than serving garbage.
//
// Layout:
//   header:  magic "SRNIDX1\0" | u32 version | u64 m | 6 section lengths
//   sections (each varint-coded payload followed by u32 CRC of payload):
//     1 item_offsets        (delta + varint; monotone non-decreasing)
//     2 session_lists       (varint)
//     3 session_timestamps  (delta vs min + varint, preceded by min)
//     4 session_offsets     (delta + varint)
//     5 session_items       (varint)
//     6 item_idf            (raw float32 little-endian)
#pragma once

#include <string>

#include "common/status.h"
#include "core/session_index.h"

namespace serenade {

/// Serializes the index to `path`, replacing any existing file.
Status WriteIndexFile(const std::string& path, const SessionIndex& index);

/// Loads an index previously written by WriteIndexFile. Returns
/// kCorruption for truncated files, bad magic/version or CRC mismatches.
StatusOr<SessionIndex> ReadIndexFile(const std::string& path);

/// In-memory variants (used by tests and by the replication path of the
/// serving layer, which ships index bytes to each serving machine).
std::string SerializeIndex(const SessionIndex& index);
StatusOr<SessionIndex> DeserializeIndex(const std::string& bytes);

}  // namespace serenade
