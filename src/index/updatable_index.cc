#include "index/updatable_index.h"

#include <algorithm>

#include "core/vmis_knn.h"

namespace serenade {

UpdatableSessionIndex::UpdatableSessionIndex(SessionIndex base)
    : base_(std::move(base)), num_items_(base_.num_items()) {
  for (SessionId s = 0; s < base_.num_sessions(); ++s) {
    max_timestamp_ = std::max(max_timestamp_, base_.SessionTimestamp(s));
  }
}

SessionId UpdatableSessionIndex::Ingest(const std::vector<ItemId>& items,
                                        Timestamp end_time) {
  const SessionId id =
      static_cast<SessionId>(base_.num_sessions() + overlay_items_.size());
  // Clamp regressions so recency stays a total order (ids ascend with
  // ingest order, so equal timestamps still order correctly).
  max_timestamp_ = std::max(max_timestamp_, end_time);

  std::vector<ItemId> distinct = items;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (ItemId item : distinct) {
    overlay_postings_[item].push_back(id);
    ++overlay_frequency_[item];
    num_items_ = std::max(num_items_, static_cast<size_t>(item) + 1);
  }
  overlay_items_.push_back(std::move(distinct));
  overlay_timestamps_.push_back(max_timestamp_);
  return id;
}

std::span<const SessionId> UpdatableSessionIndex::SessionsForItem(
    ItemId item, std::vector<SessionId>* scratch) const {
  const auto overlay = overlay_postings_.find(item);
  const std::span<const SessionId> base_postings =
      base_.SessionsForItem(item);
  if (overlay == overlay_postings_.end()) return base_postings;

  const size_t m = base_.max_sessions_per_item();
  scratch->clear();
  // Overlay sessions, newest first.
  for (auto it = overlay->second.rbegin();
       it != overlay->second.rend() && scratch->size() < m; ++it) {
    scratch->push_back(*it);
  }
  for (SessionId candidate : base_postings) {
    if (scratch->size() >= m) break;
    scratch->push_back(candidate);
  }
  return {scratch->data(), scratch->size()};
}

PostingsRef UpdatableSessionIndex::PostingsForItem(
    ItemId item, PostingScratch* scratch) const {
  const auto overlay = overlay_postings_.find(item);
  if (overlay == overlay_postings_.end()) {
    return base_.PostingsForItem(item, scratch);
  }

  const size_t m = base_.max_sessions_per_item();
  scratch->sessions.clear();
  scratch->timestamps.clear();
  for (auto it = overlay->second.rbegin();
       it != overlay->second.rend() && scratch->sessions.size() < m; ++it) {
    scratch->sessions.push_back(*it);
    scratch->timestamps.push_back(
        overlay_timestamps_[*it - base_.num_sessions()]);
  }
  const PostingsRef base_postings = base_.PostingsForItem(item, scratch);
  for (size_t i = 0;
       i < base_postings.size && scratch->sessions.size() < m; ++i) {
    scratch->sessions.push_back(base_postings.sessions[i]);
    scratch->timestamps.push_back(base_postings.timestamps[i]);
  }
  return {scratch->sessions.data(), scratch->timestamps.data(),
          scratch->sessions.size()};
}

std::span<const ItemId> UpdatableSessionIndex::ItemsForSession(
    SessionId session, std::vector<ItemId>* scratch) const {
  (void)scratch;
  if (session < base_.num_sessions()) return base_.ItemsForSession(session);
  const auto& items = overlay_items_[session - base_.num_sessions()];
  return {items.data(), items.size()};
}

double UpdatableSessionIndex::Idf(ItemId item) const {
  const double total = static_cast<double>(num_sessions());
  const auto overlay = overlay_frequency_.find(item);
  const uint32_t delta =
      overlay == overlay_frequency_.end() ? 0 : overlay->second;

  if (item < base_.num_items()) {
    // Exact h_i when the base carries frequencies (format v2+); otherwise
    // recover it from the stored base IDF: idf = log(N_base / h) =>
    // h = N_base / exp(idf). An idf of 0 is ambiguous ("in every session"
    // vs "never seen"); empty base postings disambiguate exactly.
    const double base_frequency =
        base_.has_frequencies()
            ? static_cast<double>(base_.ItemFrequency(item))
            : (base_.SessionsForItem(item).empty()
                   ? 0.0
                   : std::round(static_cast<double>(base_.num_sessions()) /
                                std::exp(base_.Idf(item))));
    const double frequency = base_frequency + delta;
    if (frequency <= 0.0) return 0.0;
    return std::log(total / frequency);
  }
  if (delta == 0) return 0.0;
  return std::log(total / delta);
}

// Anchor the updatable-index query-engine instantiation.
template class VmisKnnT<UpdatableSessionIndex>;

}  // namespace serenade
