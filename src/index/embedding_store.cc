#include "index/embedding_store.h"

#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "index/embedding_format.h"
#include "testing/fault_injection.h"

namespace serenade {

StatusOr<std::shared_ptr<const EmbeddingSnapshot>>
EmbeddingManager::LoadSnapshot(const std::string& path) const {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IoError("read failure on " + path);
  std::string bytes = buffer.str();

  SERENADE_FAULT_POINT(FaultSite::kEmbeddingLoadTruncate, {
    // A torn rollout read: the CRC-framed sections make the deserializer
    // reject it below, leaving the current snapshot published.
    bytes.resize(serenade_fi->RandBelow(bytes.size() + 1));
  });

  IndexManifest manifest;
  auto sidecar = ReadManifestFile(ManifestPathFor(path));
  if (sidecar.ok()) {
    manifest = std::move(sidecar).value();
    if (manifest.index_bytes != 0 && manifest.index_bytes != bytes.size()) {
      return Status::Corruption("manifest/embedding size mismatch for " +
                                path);
    }
    if (manifest.index_bytes != 0 &&
        manifest.index_crc32 != Crc32(bytes.data(), bytes.size())) {
      return Status::Corruption("manifest/embedding CRC mismatch for " +
                                path);
    }
    if (manifest.kind != "embedding" && manifest.kind != "full") {
      return Status::Corruption("manifest kind '" + manifest.kind +
                                "' is not an embedding artifact");
    }
  } else if (sidecar.status().code() != StatusCode::kNotFound) {
    return sidecar.status();
  }

  auto embeddings = DeserializeEmbeddings(bytes);
  if (!embeddings.ok()) return embeddings.status();

  manifest.kind = "embedding";
  manifest.num_items = embeddings->num_items;
  manifest.embedding_dim = embeddings->dim;
  if (manifest.source.empty()) manifest.source = path;
  return std::make_shared<const EmbeddingSnapshot>(
      std::move(embeddings).value(), hnsw_, std::move(manifest));
}

StatusOr<std::shared_ptr<EmbeddingManager>> EmbeddingManager::CreateFromFile(
    const std::string& path, const HnswConfig& hnsw) {
  auto manager =
      std::shared_ptr<EmbeddingManager>(new EmbeddingManager(hnsw));
  auto snapshot = manager->LoadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  auto loaded = std::move(snapshot).value();
  if (loaded->version() == 0) {
    IndexManifest manifest = loaded->manifest();
    manifest.version = 1;
    loaded = std::make_shared<const EmbeddingSnapshot>(
        loaded->embeddings(), manager->hnsw_, std::move(manifest));
  }
  manager->current_.store(std::move(loaded), std::memory_order_release);
  manager->source_path_ = path;
  return manager;
}

StatusOr<std::shared_ptr<EmbeddingManager>>
EmbeddingManager::CreateFromEmbeddings(ItemEmbeddings embeddings,
                                       const HnswConfig& hnsw,
                                       uint64_t version) {
  SERENADE_RETURN_IF_ERROR(ValidateEmbeddings(embeddings));
  auto manager =
      std::shared_ptr<EmbeddingManager>(new EmbeddingManager(hnsw));
  IndexManifest manifest;
  manifest.version = version == 0 ? 1 : version;
  manifest.source = "in-memory";
  manifest.kind = "embedding";
  manifest.num_items = embeddings.num_items;
  manifest.embedding_dim = embeddings.dim;
  manager->current_.store(std::make_shared<const EmbeddingSnapshot>(
                              std::move(embeddings), hnsw,
                              std::move(manifest)),
                          std::memory_order_release);
  return manager;
}

Status EmbeddingManager::ReloadFromFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string target = path.empty() ? source_path_ : path;
  if (target.empty()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "no reload path given and the current embeddings are not "
        "file-backed");
  }
  auto snapshot = LoadSnapshot(target);
  if (!snapshot.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return snapshot.status();
  }
  auto loaded = std::move(snapshot).value();
  if (loaded->version() == 0 || loaded->version() == current_version()) {
    // Unversioned artifact or a reused version number: force a visible
    // bump so the fleet can observe the rollout.
    IndexManifest manifest = loaded->manifest();
    manifest.version = current_version() + 1;
    loaded = std::make_shared<const EmbeddingSnapshot>(
        loaded->embeddings(), hnsw_, std::move(manifest));
  }
  current_.store(std::move(loaded), std::memory_order_release);
  source_path_ = target;
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace serenade
