#include "index/snapshot.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "index/index_format.h"

namespace serenade {

namespace {

constexpr char kManifestMagic[] = "serenade-index-manifest v1";

Status ParseUint64(const std::string& text, uint64_t* out) {
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    return Status::Corruption("manifest: bad integer '" + text + "'");
  }
  return Status::Ok();
}

}  // namespace

std::string ManifestPathFor(const std::string& index_path) {
  return index_path + ".manifest";
}

Status WriteManifestFile(const std::string& path,
                         const IndexManifest& manifest) {
  std::ostringstream out;
  out << kManifestMagic << "\n"
      << "version=" << manifest.version << "\n"
      << "build_id=" << manifest.build_id << "\n"
      << "built_unix=" << manifest.built_unix << "\n"
      << "source=" << manifest.source << "\n"
      << "m=" << manifest.max_sessions_per_item << "\n"
      << "num_sessions=" << manifest.num_sessions << "\n"
      << "num_items=" << manifest.num_items << "\n"
      << "num_postings=" << manifest.num_postings << "\n"
      << "index_bytes=" << manifest.index_bytes << "\n"
      << "index_crc32=" << manifest.index_crc32 << "\n"
      << "kind=" << (manifest.kind.empty() ? "full" : manifest.kind) << "\n"
      << "base_version=" << manifest.base_version << "\n"
      << "base_crc32=" << manifest.base_crc32 << "\n"
      << "watermark_unix_ms=" << manifest.watermark_unix_ms << "\n"
      << "embedding_dim=" << manifest.embedding_dim << "\n";
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << out.str();
  file.flush();
  if (!file) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

StatusOr<IndexManifest> ReadManifestFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("no manifest at " + path);
  std::string line;
  if (!std::getline(file, line) || line != kManifestMagic) {
    return Status::Corruption("manifest: bad magic in " + path);
  }
  IndexManifest manifest;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::Corruption("manifest: malformed line '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    uint64_t number = 0;
    if (key == "build_id") {
      manifest.build_id = value;
    } else if (key == "source") {
      manifest.source = value;
    } else if (key == "version") {
      SERENADE_RETURN_IF_ERROR(ParseUint64(value, &manifest.version));
    } else if (key == "built_unix") {
      SERENADE_RETURN_IF_ERROR(ParseUint64(value, &manifest.built_unix));
    } else if (key == "m") {
      SERENADE_RETURN_IF_ERROR(
          ParseUint64(value, &manifest.max_sessions_per_item));
    } else if (key == "num_sessions") {
      SERENADE_RETURN_IF_ERROR(ParseUint64(value, &manifest.num_sessions));
    } else if (key == "num_items") {
      SERENADE_RETURN_IF_ERROR(ParseUint64(value, &manifest.num_items));
    } else if (key == "num_postings") {
      SERENADE_RETURN_IF_ERROR(ParseUint64(value, &manifest.num_postings));
    } else if (key == "index_bytes") {
      SERENADE_RETURN_IF_ERROR(ParseUint64(value, &manifest.index_bytes));
    } else if (key == "index_crc32") {
      SERENADE_RETURN_IF_ERROR(ParseUint64(value, &number));
      manifest.index_crc32 = static_cast<uint32_t>(number);
    } else if (key == "kind") {
      manifest.kind = value.empty() ? "full" : value;
    } else if (key == "base_version") {
      SERENADE_RETURN_IF_ERROR(ParseUint64(value, &manifest.base_version));
    } else if (key == "base_crc32") {
      SERENADE_RETURN_IF_ERROR(ParseUint64(value, &number));
      manifest.base_crc32 = static_cast<uint32_t>(number);
    } else if (key == "watermark_unix_ms") {
      SERENADE_RETURN_IF_ERROR(
          ParseUint64(value, &manifest.watermark_unix_ms));
    } else if (key == "embedding_dim") {
      SERENADE_RETURN_IF_ERROR(ParseUint64(value, &manifest.embedding_dim));
    }
    // Unknown keys are skipped so future pipelines can add fields.
  }
  return manifest;
}

StatusOr<IndexManifest> WriteIndexWithManifest(const std::string& path,
                                               const SessionIndex& index,
                                               IndexManifest manifest) {
  const std::string bytes = SerializeIndex(index);
  manifest.max_sessions_per_item = index.max_sessions_per_item();
  manifest.num_sessions = index.num_sessions();
  manifest.num_items = index.num_items();
  manifest.num_postings = index.num_postings();
  manifest.index_bytes = bytes.size();
  manifest.index_crc32 = Crc32(bytes.data(), bytes.size());

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) return Status::IoError("write failure on " + path);

  SERENADE_RETURN_IF_ERROR(WriteManifestFile(ManifestPathFor(path), manifest));
  return manifest;
}

Status CheckManifestOverwrite(const std::string& index_path,
                              uint64_t new_version) {
  auto existing = ReadManifestFile(ManifestPathFor(index_path));
  if (!existing.ok()) {
    // No sidecar: nothing versioned to protect.
    if (existing.status().code() == StatusCode::kNotFound) {
      return Status::Ok();
    }
    return existing.status();
  }
  if (existing->version >= new_version) {
    return Status::AlreadyExists(
        index_path + " already holds version " +
        std::to_string(existing->version) + " (>= " +
        std::to_string(new_version) + "); refusing to overwrite");
  }
  return Status::Ok();
}

Status ValidateIndexForKnn(const SessionIndex& index, size_t knn_m) {
  if (knn_m > index.max_sessions_per_item()) {
    return Status::InvalidArgument(
        "knn.m exceeds the index's max_sessions_per_item; rebuild the index "
        "with a larger m");
  }
  return Status::Ok();
}

StatusOr<std::shared_ptr<const IndexSnapshot>> IndexManager::LoadSnapshot(
    const std::string& path, size_t knn_m) const {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IoError("read failure on " + path);
  const std::string bytes = buffer.str();

  IndexManifest manifest;
  auto sidecar = ReadManifestFile(ManifestPathFor(path));
  if (sidecar.ok()) {
    manifest = std::move(sidecar).value();
    // The sidecar pins the exact artifact it was stamped for; a mismatch
    // means a torn rollout (index replaced, manifest not, or vice versa).
    if (manifest.index_bytes != 0 && manifest.index_bytes != bytes.size()) {
      return Status::Corruption("manifest/index size mismatch for " + path);
    }
    if (manifest.index_bytes != 0 &&
        manifest.index_crc32 != Crc32(bytes.data(), bytes.size())) {
      return Status::Corruption("manifest/index CRC mismatch for " + path);
    }
  } else if (sidecar.status().code() != StatusCode::kNotFound) {
    return sidecar.status();
  }

  // Section CRCs + structural validation happen inside the deserializer.
  auto index = DeserializeIndex(bytes);
  if (!index.ok()) return index.status();
  auto shared = std::make_shared<const SessionIndex>(std::move(index).value());

  SERENADE_RETURN_IF_ERROR(ValidateIndexForKnn(*shared, knn_m));

  manifest.max_sessions_per_item = shared->max_sessions_per_item();
  manifest.num_sessions = shared->num_sessions();
  manifest.num_items = shared->num_items();
  manifest.num_postings = shared->num_postings();
  if (manifest.source.empty()) manifest.source = path;
  return std::make_shared<const IndexSnapshot>(std::move(shared),
                                               std::move(manifest));
}

StatusOr<std::shared_ptr<IndexManager>> IndexManager::CreateFromFile(
    const std::string& path) {
  auto manager = std::shared_ptr<IndexManager>(new IndexManager());
  auto snapshot = manager->LoadSnapshot(path, /*knn_m=*/0);
  if (!snapshot.ok()) return snapshot.status();
  auto loaded = std::move(snapshot).value();
  if (loaded->version() == 0) {
    // Unversioned artifact (no sidecar): boot as version 1.
    IndexManifest manifest = loaded->manifest();
    manifest.version = 1;
    loaded = std::make_shared<const IndexSnapshot>(loaded->index_ptr(),
                                                   std::move(manifest));
  }
  manager->PublishAsBase(std::move(loaded));
  manager->source_path_ = path;
  return manager;
}

std::shared_ptr<IndexManager> IndexManager::CreateFromIndex(
    std::shared_ptr<const SessionIndex> index, uint64_t version) {
  auto manager = std::shared_ptr<IndexManager>(new IndexManager());
  IndexManifest manifest;
  manifest.version = version == 0 ? 1 : version;
  manifest.source = "in-memory";
  manifest.max_sessions_per_item = index->max_sessions_per_item();
  manifest.num_sessions = index->num_sessions();
  manifest.num_items = index->num_items();
  manifest.num_postings = index->num_postings();
  manager->PublishAsBase(std::make_shared<const IndexSnapshot>(
      std::move(index), std::move(manifest)));
  return manager;
}

void IndexManager::PublishAsBase(
    std::shared_ptr<const IndexSnapshot> snapshot) {
  base_ = snapshot;
  base_version_.store(snapshot->version(), std::memory_order_relaxed);
  applied_delta_version_.store(0, std::memory_order_relaxed);
  applied_delta_sessions_ = 0;
  // A full snapshot supersedes any delta overlay; the freshness clock
  // restarts from the new base (its watermark when stamped, else unknown).
  freshness_watermark_ms_.store(snapshot->manifest().watermark_unix_ms,
                                std::memory_order_relaxed);
  current_.store(std::move(snapshot), std::memory_order_release);
}

Status IndexManager::RequireKnnCompatibility(size_t knn_m) {
  std::lock_guard<std::mutex> lock(mutex_);
  SERENADE_RETURN_IF_ERROR(ValidateIndexForKnn(Current()->index(), knn_m));
  required_knn_m_ = std::max(required_knn_m_, knn_m);
  return Status::Ok();
}

Status IndexManager::ReloadFromFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string target = path.empty() ? source_path_ : path;
  if (target.empty()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "no reload path given and the current snapshot is not file-backed");
  }
  auto snapshot = LoadSnapshot(target, required_knn_m_);
  if (!snapshot.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return snapshot.status();
  }
  auto loaded = std::move(snapshot).value();
  if (loaded->version() == 0 || loaded->version() == current_version()) {
    // Unversioned artifact, or a pipeline that reuses version numbers:
    // force a visible version bump so the fleet can observe the rollout.
    IndexManifest manifest = loaded->manifest();
    manifest.version = current_version() + 1;
    loaded = std::make_shared<const IndexSnapshot>(loaded->index_ptr(),
                                                   std::move(manifest));
  }
  PublishAsBase(std::move(loaded));
  source_path_ = target;
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status IndexManager::Publish(std::shared_ptr<const SessionIndex> index,
                             IndexManifest manifest) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index == nullptr) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("cannot publish a null index");
  }
  if (Status valid = ValidateIndexForKnn(*index, required_knn_m_);
      !valid.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return valid;
  }
  if (manifest.version == 0) manifest.version = current_version() + 1;
  if (manifest.source.empty()) manifest.source = "in-memory";
  manifest.max_sessions_per_item = index->max_sessions_per_item();
  manifest.num_sessions = index->num_sessions();
  manifest.num_items = index->num_items();
  manifest.num_postings = index->num_postings();
  PublishAsBase(std::make_shared<const IndexSnapshot>(std::move(index),
                                                      std::move(manifest)));
  source_path_.clear();
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status IndexManager::ApplyDelta(const IndexDelta& delta,
                                DeltaApplyInfo* info) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (base_ == nullptr) {
    delta_rejects_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("no base snapshot to apply a delta over");
  }
  if (delta.base_version != base_->version()) {
    delta_rejects_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "delta lineage mismatch: delta targets base version " +
        std::to_string(delta.base_version) + " but this pod pins version " +
        std::to_string(base_->version()));
  }
  const uint32_t pinned_crc = base_->manifest().index_crc32;
  if (delta.base_crc32 != 0 && pinned_crc != 0 &&
      delta.base_crc32 != pinned_crc) {
    delta_rejects_.fetch_add(1, std::memory_order_relaxed);
    return Status::Corruption(
        "delta lineage mismatch: base CRC differs for version " +
        std::to_string(delta.base_version));
  }
  // Cumulative deltas make re-delivery idempotent: at-or-below the applied
  // version is a no-op, not a failure.
  const uint64_t applied =
      applied_delta_version_.load(std::memory_order_relaxed);
  if (delta.delta_version <= applied) {
    return Status::AlreadyExists(
        "delta version " + std::to_string(delta.delta_version) +
        " already covered (applied " + std::to_string(applied) + ")");
  }

  auto merged = ApplyDeltaToIndex(base_->index(), delta);
  if (!merged.ok()) {
    delta_rejects_.fetch_add(1, std::memory_order_relaxed);
    return merged.status();
  }
  auto shared =
      std::make_shared<const SessionIndex>(std::move(merged).value());
  if (Status valid = ValidateIndexForKnn(*shared, required_knn_m_);
      !valid.ok()) {
    delta_rejects_.fetch_add(1, std::memory_order_relaxed);
    return valid;
  }

  IndexManifest manifest = base_->manifest();
  manifest.kind = "delta";
  manifest.version = delta.delta_version;
  manifest.base_version = delta.base_version;
  manifest.base_crc32 = delta.base_crc32;
  manifest.watermark_unix_ms = delta.watermark_unix_ms;
  manifest.num_sessions = shared->num_sessions();
  manifest.num_items = shared->num_items();
  manifest.num_postings = shared->num_postings();
  // The merged index exists only in memory; no artifact bytes to pin.
  manifest.index_bytes = 0;
  manifest.index_crc32 = 0;
  manifest.source = "delta v" + std::to_string(delta.delta_version) +
                    " over " + base_->manifest().source;

  if (info != nullptr) {
    info->version = delta.delta_version;
    const size_t prev = std::min(applied_delta_sessions_,
                                 delta.sessions.size());
    info->sessions_applied = delta.sessions.size() - prev;
    info->observed_unix_ms.clear();
    for (size_t s = prev; s < delta.sessions.size(); ++s) {
      info->observed_unix_ms.push_back(delta.sessions[s].observed_unix_ms);
    }
  }

  // Same RCU publication as a full swap: base_ stays pinned, readers see
  // either the previous snapshot or the merged one, never a torn state.
  current_.store(std::make_shared<const IndexSnapshot>(std::move(shared),
                                                       std::move(manifest)),
                 std::memory_order_release);
  applied_delta_version_.store(delta.delta_version,
                               std::memory_order_relaxed);
  applied_delta_sessions_ = delta.sessions.size();
  freshness_watermark_ms_.store(delta.watermark_unix_ms,
                                std::memory_order_relaxed);
  deltas_applied_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

std::string IndexManager::source_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return source_path_.empty() ? Current()->manifest().source : source_path_;
}

}  // namespace serenade
