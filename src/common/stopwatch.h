// Monotonic timing helpers for benchmarks and request instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace serenade {

/// Wall clock, milliseconds since the Unix epoch. The freshness pipeline
/// stamps click observe times with this; tests and benches pass explicit
/// times instead so replay stays deterministic.
inline uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock stopwatch over the monotonic steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }
  uint64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  uint64_t ElapsedMillis() const { return ElapsedNanos() / 1000000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace serenade
