// CRC-32 (IEEE 802.3 polynomial) for file-format integrity checks in the
// index format and the session-store write-ahead log.
#pragma once

#include <cstddef>
#include <cstdint>

namespace serenade {

/// Computes/extends a CRC-32. Start with crc = 0 for a fresh checksum.
uint32_t Crc32(const void* data, size_t length, uint32_t crc = 0);

}  // namespace serenade
