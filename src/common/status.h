// Lightweight Status / StatusOr error-handling primitives (no exceptions on
// hot paths; exceptions are confined to construction-time fatal errors).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace serenade {

/// Error categories used across the codebase.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kCorruption,
  kUnavailable,
  kInternal,
  kDeadlineExceeded,
  /// Load shedding: the server is up but refusing work (full queue,
  /// admission control). Distinct from kUnavailable so clients can back
  /// off (HTTP 429 + Retry-After) instead of failing over.
  kResourceExhausted,
};

/// Returns a human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A cheap, movable success-or-error value. Functions that can fail in
/// recoverable ways return Status (or StatusOr<T> below) instead of
/// throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr is a programming error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status)                        // NOLINT(runtime/explicit)
      : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr must not be built from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

/// Propagates a non-OK status to the caller.
#define SERENADE_RETURN_IF_ERROR(expr)       \
  do {                                       \
    ::serenade::Status _st = (expr);         \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace serenade
