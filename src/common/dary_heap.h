// D-ary heaps. The paper's micro-optimisation (Section 3) replaces binary
// heaps with octonary (8-ary) heaps: wider nodes mean shallower trees and
// fewer cache misses for insertion-heavy workloads like the VMIS-kNN
// candidate maintenance loop.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace serenade {

/// A d-ary heap over elements of type T. With the default Compare
/// (std::less), the root (Top()) is the *smallest* element, i.e. this is a
/// min-heap; pass std::greater for a max-heap.
///
/// Beyond push/pop, the heap supports ReplaceTop — pop+push fused into a
/// single sift-down — which is the operation VMIS-kNN uses to evict the
/// oldest candidate session (Algorithm 2, line 31) and to maintain the
/// bounded top-k result heap (lines 37-38).
template <typename T, size_t Arity = 8, typename Compare = std::less<T>>
class DaryHeap {
  static_assert(Arity >= 2, "heap arity must be at least 2");

 public:
  explicit DaryHeap(Compare compare = Compare()) : compare_(compare) {}

  bool empty() const { return elements_.empty(); }
  size_t size() const { return elements_.size(); }

  /// Pre-allocates storage for n elements.
  void Reserve(size_t n) { elements_.reserve(n); }

  /// Removes all elements but keeps the allocated storage.
  void Clear() { elements_.clear(); }

  /// The root element (minimum under Compare). Heap must be non-empty.
  const T& Top() const {
    assert(!elements_.empty());
    return elements_.front();
  }

  /// Inserts an element in O(log_d n).
  void Push(T value) {
    elements_.push_back(std::move(value));
    SiftUp(elements_.size() - 1);
  }

  /// Appends an element WITHOUT restoring the heap property. Only valid
  /// as part of a bulk build: after a run of PushUnordered calls the heap
  /// is unusable until Heapify(). VMIS-kNN uses this for the first
  /// posting list of a query, where every candidate is known to be
  /// admitted — one Floyd heapify beats n sift-ups.
  void PushUnordered(T value) { elements_.push_back(std::move(value)); }

  /// Adopts `values` as the backing array WITHOUT restoring the heap
  /// property — the bulk-build counterpart of PushUnordered for callers
  /// that accumulated elements in their own vector. Call Heapify() next.
  void Assign(std::vector<T> values) { elements_ = std::move(values); }

  /// Restores the heap property over the whole array (Floyd's bottom-up
  /// construction, O(n)). Pairs with PushUnordered.
  void Heapify() {
    if (elements_.size() < 2) return;
    for (size_t index = (elements_.size() - 2) / Arity + 1; index-- > 0;) {
      SiftDown(index);
    }
  }

  /// Removes and returns the root in O(d log_d n).
  T Pop() {
    assert(!elements_.empty());
    T result = std::move(elements_.front());
    elements_.front() = std::move(elements_.back());
    elements_.pop_back();
    if (!elements_.empty()) SiftDown(0);
    return result;
  }

  /// Replaces the root with a new value and restores the heap property.
  /// Equivalent to Pop()+Push(value) but with a single sift-down.
  void ReplaceTop(T value) {
    assert(!elements_.empty());
    elements_.front() = std::move(value);
    SiftDown(0);
  }

  /// Destructively drains the heap in unspecified order (the underlying
  /// array). Useful when the consumer sorts or filters anyway.
  std::vector<T> TakeElements() { return std::move(elements_); }

  /// Read-only view of the underlying array (heap order, not sorted).
  const std::vector<T>& elements() const { return elements_; }

 private:
  void SiftUp(size_t index) {
    while (index > 0) {
      const size_t parent = (index - 1) / Arity;
      if (!compare_(elements_[index], elements_[parent])) break;
      std::swap(elements_[index], elements_[parent]);
      index = parent;
    }
  }

  void SiftDown(size_t index) {
    const size_t n = elements_.size();
    while (true) {
      const size_t first_child = index * Arity + 1;
      if (first_child >= n) break;
      size_t best = first_child;
      const size_t last_child =
          first_child + Arity < n ? first_child + Arity : n;
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (compare_(elements_[c], elements_[best])) best = c;
      }
      if (!compare_(elements_[best], elements_[index])) break;
      std::swap(elements_[index], elements_[best]);
      index = best;
    }
  }

  std::vector<T> elements_;
  Compare compare_;
};

/// Keeps the k largest elements (under Compare as a less-than) seen so far,
/// backed by a size-k d-ary min-heap whose root is the weakest element kept.
/// Offer() is O(1) when the candidate does not qualify — the common case in
/// top-k selection over many candidates.
template <typename T, size_t Arity = 8, typename Compare = std::less<T>>
class BoundedTopK {
 public:
  explicit BoundedTopK(size_t k, Compare compare = Compare())
      : k_(k), heap_(compare), compare_(compare) {
    assert(k > 0);
    heap_.Reserve(k);
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }
  bool full() const { return heap_.size() == k_; }

  /// The weakest element currently kept. Must be non-empty.
  const T& Weakest() const { return heap_.Top(); }

  /// Offers a candidate; keeps it iff it beats the current weakest (or the
  /// heap is not yet full). Returns true if the candidate was kept.
  bool Offer(T value) {
    if (heap_.size() < k_) {
      heap_.Push(std::move(value));
      return true;
    }
    if (compare_(heap_.Top(), value)) {
      heap_.ReplaceTop(std::move(value));
      return true;
    }
    return false;
  }

  /// Drains the kept elements, strongest first. The heap is empty after.
  std::vector<T> TakeSortedDescending() {
    std::vector<T> result = heap_.TakeElements();
    std::sort(result.begin(), result.end(),
              [this](const T& a, const T& b) { return compare_(b, a); });
    return result;
  }

  /// Unordered view of the kept elements.
  const std::vector<T>& elements() const { return heap_.elements(); }

  void Clear() { heap_.Clear(); }

 private:
  size_t k_;
  DaryHeap<T, Arity, Compare> heap_;
  Compare compare_;
};

}  // namespace serenade
