// Deterministic, fast random number generation for workload synthesis and
// property tests. We avoid std::mt19937 on hot paths in favour of
// xoshiro256**, seeded via SplitMix64 (the standard seeding recipe).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace serenade {

/// SplitMix64 step; used for seeding and cheap stateless mixing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    for (auto& word : state_) word = SplitMix64(seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift reduction (slightly biased for huge bounds; fine for
  /// workload generation).
  uint64_t Below(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Approximately normal draw (sum of uniforms is good enough for
  /// latency/jitter synthesis).
  double Gaussian(double mean, double stddev) {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += NextDouble();
    return mean + stddev * (sum - 6.0);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

/// Bounded Zipf(s) sampler over {0, ..., n-1} using rejection-inversion
/// (Hormann & Derflinger), the same approach as Apache Commons' and the
/// JDK's samplers. O(1) amortised per sample, supports n in the millions.
class ZipfDistribution {
 public:
  /// n: number of elements; exponent: the Zipf skew s (> 0, typically ~1).
  ZipfDistribution(uint64_t n, double exponent);

  /// Samples a value in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double exponent() const { return exponent_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double exponent_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double s_;
};

/// Walker alias table for sampling from an arbitrary discrete
/// distribution in O(1). Used for popularity-weighted item draws.
class AliasTable {
 public:
  /// weights: non-negative, at least one positive.
  explicit AliasTable(const std::vector<double>& weights);

  /// Samples an index in [0, weights.size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace serenade
