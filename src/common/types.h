// Core identifier and event types shared by all Serenade modules.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace serenade {

/// Dense identifier of a catalog item. Items are remapped to a contiguous
/// [0, num_items) range during dataset loading / index construction.
using ItemId = uint32_t;

/// Dense identifier of a historical session. The offline index builder
/// assigns consecutive integers so that per-session metadata (timestamps,
/// item lists) can live in flat arrays with O(1) random access.
using SessionId = uint32_t;

/// Seconds since the UNIX epoch (or any monotone integer clock; only the
/// relative order of timestamps matters to the algorithms).
using Timestamp = uint64_t;

/// Sentinel for "no item".
inline constexpr ItemId kInvalidItem = std::numeric_limits<ItemId>::max();

/// Sentinel for "no session".
inline constexpr SessionId kInvalidSession =
    std::numeric_limits<SessionId>::max();

/// A single user-item interaction event ("click") as produced by the
/// shopping frontend and stored in the historical click log.
struct Click {
  SessionId session_id = kInvalidSession;
  ItemId item_id = kInvalidItem;
  Timestamp timestamp = 0;

  friend bool operator==(const Click&, const Click&) = default;
};

/// The evolving session held by the serving layer: items in insertion
/// order (oldest first). Position i has 1-based insertion order i + 1,
/// matching the paper's omega(s) function.
using EvolvingSession = std::vector<ItemId>;

}  // namespace serenade
