// Fixed-size thread pool with a shared queue plus a ParallelFor helper for
// the offline index-building pipeline and benchmark drivers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace serenade {

/// A simple FIFO thread pool. Tasks are std::function<void()>; use Submit
/// for a future-returning variant. Destruction drains outstanding tasks.
class ThreadPool {
 public:
  /// Creates a pool with num_threads workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a fire-and-forget task.
  void Schedule(std::function<void()> task);

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto Submit(F&& func) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(func));
    std::future<R> result = task->get_future();
    Schedule([task]() { (*task)(); });
    return result;
  }

  /// Blocks until all scheduled tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Splits [0, count) into roughly equal contiguous chunks and runs
/// body(begin, end) for each chunk on the pool, blocking until done.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t begin, size_t end)>& body);

}  // namespace serenade
