#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace serenade {

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t begin, size_t end)>& body) {
  if (count == 0) return;
  const size_t num_chunks = std::min(count, pool.num_threads() * 4);
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (size_t begin = 0; begin < count; begin += chunk) {
    const size_t end = std::min(begin + chunk, count);
    futures.push_back(pool.Submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace serenade
