#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace serenade {

namespace {

// (exp(t) - 1) / t, numerically stable near t == 0.
double Expm1OverT(double t) {
  return std::abs(t) > 1e-8 ? std::expm1(t) / t : 1.0 + t / 2.0;
}

// log(1 + t) / t, numerically stable near t == 0.
double Log1pOverT(double t) {
  return std::abs(t) > 1e-8 ? std::log1p(t) / t : 1.0 - t / 2.0;
}

}  // namespace

ZipfDistribution::ZipfDistribution(uint64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  if (exponent <= 0.0) {
    throw std::invalid_argument("ZipfDistribution: exponent must be > 0");
  }
  h_integral_x1_ = H(1.5) - 1.0;
  h_integral_num_elements_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::exp(-exponent_ * std::log(2.0)));
}

// H(x) = integral of x^-exponent; written via expm1 to stay stable as the
// exponent approaches 1 (where the closed form degenerates to log(x)).
double ZipfDistribution::H(double x) const {
  const double log_x = std::log(x);
  return Expm1OverT((1.0 - exponent_) * log_x) * log_x;
}

double ZipfDistribution::HInverse(double x) const {
  double t = x * (1.0 - exponent_);
  if (t < -1.0) t = -1.0;  // guard against rounding below the pole
  return std::exp(Log1pOverT(t) * x);
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  // Rejection-inversion after Hormann & Derflinger; identical structure to
  // Apache Commons' RejectionInversionZipfSampler.
  while (true) {
    const double u =
        h_integral_num_elements_ +
        rng.NextDouble() * (h_integral_x1_ - h_integral_num_elements_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double k_double = static_cast<double>(k);
    const double h_k = std::exp(-exponent_ * std::log(k_double));
    if (k_double - x <= s_ || u >= H(k_double + 0.5) - h_k) {
      return k - 1;  // shift to [0, n)
    }
  }
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  assert(n > 0);
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  prob_.resize(n);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t column = rng.Below(prob_.size());
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace serenade
