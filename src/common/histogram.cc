#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <thread>

#include "common/hash.h"

namespace serenade {

Histogram::Histogram() : buckets_(BucketIndex(~0ULL) + 1, 0) {}

size_t Histogram::BucketIndex(uint64_t value) {
  // Values below kSubBuckets map 1:1 to the first kSubBuckets buckets;
  // beyond that, each power of two is split into kSubBuckets linear
  // sub-buckets (top kSubBucketBits bits after the leading one).
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketBits;
  const uint64_t sub = (value >> shift) - kSubBuckets;  // in [0, kSubBuckets)
  return static_cast<size_t>(
      kSubBuckets + static_cast<uint64_t>(msb - kSubBucketBits) * kSubBuckets +
      sub);
}

uint64_t Histogram::BucketMidpoint(size_t index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const size_t i = index - kSubBuckets;
  const int shift = static_cast<int>(i / kSubBuckets);
  const uint64_t sub = i % kSubBuckets;
  const uint64_t low = (kSubBuckets + sub) << shift;
  const uint64_t width = 1ULL << shift;
  return low + width / 2;
}

void Histogram::Record(uint64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(uint64_t value, uint64_t count) {
  if (count == 0) return;
  buckets_[BucketIndex(value)] += count;
  count_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = ~0ULL;
  max_ = 0;
  sum_ = 0.0;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu min=%llu p50=%llu p75=%llu p90=%llu p99=%llu "
                "p99.5=%llu max=%llu mean=%.1f",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.75)),
                static_cast<unsigned long long>(Percentile(0.90)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(Percentile(0.995)),
                static_cast<unsigned long long>(max()), Mean());
  return buf;
}

ShardedHistogram::ShardedHistogram(size_t num_shards)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      shards_(new Shard[num_shards_]) {}

ShardedHistogram::Shard& ShardedHistogram::ShardForThisThread() {
  const size_t id = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[Mix64(static_cast<uint64_t>(id)) % num_shards_];
}

void ShardedHistogram::Record(uint64_t value) {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.histogram.Record(value);
}

Histogram ShardedHistogram::Merged() const {
  Histogram merged;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    merged.Merge(shards_[i].histogram);
  }
  return merged;
}

void ShardedHistogram::Clear() {
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    shards_[i].histogram.Clear();
  }
}

}  // namespace serenade
