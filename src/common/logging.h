// Minimal leveled logger. Thread-safe; writes to stderr. Intended for the
// serving layer and offline pipelines, not for hot per-request paths.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace serenade {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Returns the global minimum level.
LogLevel GetLogLevel();

/// Receives each formatted log line (without trailing newline) instead of
/// stderr. Used by tests to assert on emitted lines (e.g. that a
/// backend's slow-request log carries the gateway's trace id).
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Installs a sink ({} restores stderr output). Thread-safe.
void SetLogSink(LogSink sink);

namespace internal {

/// Accumulates one log line and emits it (with timestamp, level, and
/// source location) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal

#define SERENADE_LOG(level)                                              \
  (::serenade::LogLevel::k##level < ::serenade::GetLogLevel())           \
      ? (void)0                                                          \
      : ::serenade::internal::LogMessageVoidify() &                      \
            ::serenade::internal::LogMessage(                            \
                ::serenade::LogLevel::k##level, __FILE__, __LINE__)

#define LOG_DEBUG SERENADE_LOG(Debug)
#define LOG_INFO SERENADE_LOG(Info)
#define LOG_WARNING SERENADE_LOG(Warning)
#define LOG_ERROR SERENADE_LOG(Error)

}  // namespace serenade
