// Hashing utilities: a strong 64-bit mixer for partitioning (the sticky-
// session router and session-store sharding both hash session identifiers)
// and FNV-1a for byte strings.
#pragma once

#include <cstdint>
#include <string_view>

namespace serenade {

/// Finalization mixer from MurmurHash3 (fmix64); a high-quality avalanche
/// function for integer keys.
inline uint64_t Mix64(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  key *= 0xc4ceb9fe1a85ec53ULL;
  key ^= key >> 33;
  return key;
}

/// FNV-1a over arbitrary bytes; used for string session keys and file
/// checksums where cryptographic strength is not needed.
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Combines two hashes (boost::hash_combine recipe, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace serenade
