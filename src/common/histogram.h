// HDR-style latency histogram: log2 buckets with linear sub-buckets, giving
// bounded relative error at any magnitude. Used by the load-test and A/B
// benchmark harnesses to report the latency percentiles the paper plots
// (p75 / p90 / p99.5 in Figures 3(b) and 3(c)).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace serenade {

/// Records non-negative integer values (typically latencies in
/// microseconds or nanoseconds) and answers percentile queries with a
/// relative error bounded by 1/kSubBuckets.
class Histogram {
 public:
  Histogram();

  /// Records one observation.
  void Record(uint64_t value);

  /// Records n identical observations.
  void RecordMany(uint64_t value, uint64_t count);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Number of recorded observations.
  uint64_t count() const { return count_; }

  /// Smallest / largest recorded value (exact). 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return count_ == 0 ? 0 : max_; }

  /// Arithmetic mean of recorded values (from exact running sum).
  double Mean() const;

  /// Value at quantile q in [0, 1]; approximate within one sub-bucket.
  uint64_t Percentile(double q) const;

  /// Convenience: p50 / p75 / p90 / p99 / p99.5 / p99.9 summary string.
  std::string Summary() const;

  /// Resets to empty.
  void Clear();

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets => <1.6% error
  static constexpr uint64_t kSubBuckets = 1ULL << kSubBucketBits;

  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketMidpoint(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// A histogram sharded across cache-line-separated locks so that many
/// recording threads (HTTP connection threads, gateway forwarders) do not
/// serialise on one mutex. Threads are spread over the shards by a hash
/// of their thread id; Merged() folds all shards into one Histogram for
/// scraping, which is rare relative to recording.
class ShardedHistogram {
 public:
  explicit ShardedHistogram(size_t num_shards = 16);

  /// Records one observation into the calling thread's shard.
  void Record(uint64_t value);

  /// Locks each shard in turn and returns the merged view.
  Histogram Merged() const;

  /// Resets every shard to empty.
  void Clear();

 private:
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    Histogram histogram;
  };

  Shard& ShardForThisThread();

  size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace serenade
