#include "common/status.h"

namespace serenade {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace serenade
