#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace serenade {

namespace {
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};
std::mutex g_log_mutex;
LogSink g_log_sink;  // guarded by g_log_mutex; empty = stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_log_sink = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = std::strrchr(file, '/');
  basename = basename != nullptr ? basename + 1 : file;
  stream_ << "[" << LevelName(level_) << " " << basename << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  auto now = std::chrono::system_clock::now();
  std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf;
  localtime_r(&tt, &tm_buf);
  char time_str[32];
  std::strftime(time_str, sizeof(time_str), "%H:%M:%S", &tm_buf);

  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_log_sink) {
    g_log_sink(level_, stream_.str());
  } else {
    std::fprintf(stderr, "%s %s\n", time_str, stream_.str().c_str());
  }
}

}  // namespace internal

}  // namespace serenade
