#include "store/session_store.h"

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common/hash.h"
#include "testing/fault_injection.h"

namespace serenade {

uint64_t SystemClockSeconds() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

SessionStore::SessionStore(SessionStoreOptions options)
    : options_(std::move(options)), shards_(options_.num_shards) {}

SessionStore::~SessionStore() {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  if (wal_.is_open()) wal_.Sync();
}

StatusOr<std::unique_ptr<SessionStore>> SessionStore::Open(
    SessionStoreOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be > 0");
  }
  auto store = std::unique_ptr<SessionStore>(new SessionStore(options));

  if (!options.wal_path.empty()) {
    // Recover existing state (a missing file is a fresh store).
    const uint64_t now = store->options_.clock();
    uint64_t valid_bytes = 0;
    auto replayed = ReplayWal(
        options.wal_path,
        [&](const WalRecord& record) {
          Shard& shard = store->ShardFor(record.key);
          if (record.type == WalRecordType::kDelete) {
            shard.table.erase(record.key);
          } else {
            shard.table[record.key] = Entry{record.value, record.timestamp};
          }
        },
        &valid_bytes);
    if (!replayed.ok() &&
        replayed.status().code() != StatusCode::kIoError) {
      return replayed.status();  // corruption: refuse to open silently
    }
    if (replayed.ok()) {
      // Chop any torn tail before reopening for append. Without this, a
      // post-crash write would land after the garbage bytes and the next
      // replay would stop at the tear — silently losing every write
      // acknowledged after recovery.
      std::error_code ec;
      const auto size = std::filesystem::file_size(options.wal_path, ec);
      if (!ec && size > valid_bytes) {
        std::filesystem::resize_file(options.wal_path, valid_bytes, ec);
        if (ec) {
          return Status::IoError("cannot truncate torn WAL tail at " +
                                 options.wal_path + ": " + ec.message());
        }
      }
    }
    // Drop entries that expired while the store was down.
    for (Shard& shard : store->shards_) {
      std::erase_if(shard.table, [&](const auto& kv) {
        return store->IsExpired(kv.second, now);
      });
    }
    SERENADE_RETURN_IF_ERROR(store->wal_.Open(options.wal_path));
  }
  return store;
}

SessionStore::Shard& SessionStore::ShardFor(const std::string& key) {
  return shards_[Fnv1a(key) % shards_.size()];
}

bool SessionStore::IsExpired(const Entry& entry, uint64_t now) const {
  return now > entry.last_access &&
         now - entry.last_access > options_.ttl_seconds;
}

Status SessionStore::LogWrite(WalRecordType type, const std::string& key,
                              const std::string& value, uint64_t now) {
  if (options_.wal_path.empty()) return Status::Ok();
  std::lock_guard<std::mutex> lock(wal_mutex_);
  WalRecord record{type, key, value, now};
  SERENADE_RETURN_IF_ERROR(wal_.Append(record));
  if (options_.sync_every_write) return wal_.Sync();
  return Status::Ok();
}

Status SessionStore::Put(const std::string& key, const std::string& value) {
  const uint64_t now = options_.clock();
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.table[key] = Entry{value, now};
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  return LogWrite(WalRecordType::kPut, key, value, now);
}

StatusOr<std::string> SessionStore::Get(const std::string& key,
                                        Trace* trace) {
  Span span(trace, TraceStage::kStoreGet);
  const uint64_t now = options_.clock();
  reads_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) {
    read_misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound(key);
  }
  if (IsExpired(it->second, now)) {
    shard.table.erase(it);
    read_misses_.fetch_add(1, std::memory_order_relaxed);
    expirations_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound(key + " (expired)");
  }
  it->second.last_access = now;  // touch: active sessions stay alive
  return it->second.value;
}

Status SessionStore::Delete(const std::string& key) {
  const uint64_t now = options_.clock();
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.table.erase(key);
  }
  deletes_.fetch_add(1, std::memory_order_relaxed);
  return LogWrite(WalRecordType::kDelete, key, "", now);
}

Status SessionStore::Update(
    const std::string& key,
    const std::function<std::string(const std::string&)>& mutator,
    Trace* trace) {
  Span span(trace, TraceStage::kStorePut);
  const uint64_t now = options_.clock();
  std::string new_value;
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.table.find(key);
    const bool live = it != shard.table.end() && !IsExpired(it->second, now);
    new_value = mutator(live ? it->second.value : std::string());
    shard.table[key] = Entry{new_value, now};
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  return LogWrite(WalRecordType::kPut, key, new_value, now);
}

void SessionStore::MultiGet(const std::vector<std::string>& keys,
                            std::vector<std::string>* values,
                            std::vector<bool>* found, Trace* trace) {
  Span span(trace, TraceStage::kStoreGet);
  const uint64_t now = options_.clock();
  values->assign(keys.size(), std::string());
  found->assign(keys.size(), false);
  reads_.fetch_add(keys.size(), std::memory_order_relaxed);

  // Group key positions by shard so each shard mutex is locked once.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    by_shard[Fnv1a(keys[i]) % shards_.size()].push_back(i);
  }

  uint64_t misses = 0, expired = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (size_t i : by_shard[s]) {
      auto it = shard.table.find(keys[i]);
      if (it == shard.table.end()) {
        ++misses;
        continue;
      }
      if (IsExpired(it->second, now)) {
        shard.table.erase(it);
        ++misses;
        ++expired;
        continue;
      }
      it->second.last_access = now;  // touch: active sessions stay alive
      (*values)[i] = it->second.value;
      (*found)[i] = true;
    }
  }
  read_misses_.fetch_add(misses, std::memory_order_relaxed);
  expirations_.fetch_add(expired, std::memory_order_relaxed);
}

Status SessionStore::MultiPut(
    const std::vector<std::pair<std::string, std::string>>& entries,
    Trace* trace) {
  Span span(trace, TraceStage::kStorePut);
  // Fails before any shard mutates, so a rejected batch is all-or-nothing
  // from the caller's view: no ack, no visible writes.
  SERENADE_FAULT_POINT(FaultSite::kStoreMultiPut, {
    return Status::IoError("injected: batched write rejected");
  });
  const uint64_t now = options_.clock();

  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    by_shard[Fnv1a(entries[i].first) % shards_.size()].push_back(i);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Positions are in batch order, so a later duplicate key overwrites
    // an earlier one exactly as sequential Puts would.
    for (size_t i : by_shard[s]) {
      shard.table[entries[i].first] = Entry{entries[i].second, now};
    }
  }
  writes_.fetch_add(entries.size(), std::memory_order_relaxed);

  if (options_.wal_path.empty() || entries.empty()) return Status::Ok();
  std::lock_guard<std::mutex> lock(wal_mutex_);
  for (const auto& [key, value] : entries) {
    SERENADE_RETURN_IF_ERROR(
        wal_.Append(WalRecord{WalRecordType::kPut, key, value, now}));
  }
  if (options_.sync_every_write) return wal_.Sync();
  return Status::Ok();
}

std::vector<SessionStore::RestoreEntry> SessionStore::DumpEntries() const {
  const uint64_t now = options_.clock();
  std::vector<RestoreEntry> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, entry] : shard.table) {
      if (IsExpired(entry, now)) continue;
      out.push_back(RestoreEntry{key, entry.value, entry.last_access});
    }
  }
  return out;
}

std::optional<SessionStore::RestoreEntry> SessionStore::PeekEntry(
    const std::string& key) {
  const uint64_t now = options_.clock();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.table.find(key);
  if (it == shard.table.end() || IsExpired(it->second, now)) {
    return std::nullopt;
  }
  return RestoreEntry{key, it->second.value, it->second.last_access};
}

StatusOr<size_t> SessionStore::Restore(
    const std::vector<RestoreEntry>& entries) {
  const uint64_t now = options_.clock();
  size_t applied = 0;
  for (const RestoreEntry& incoming : entries) {
    if (IsExpired(Entry{incoming.value, incoming.last_access}, now)) {
      continue;  // never resurrect a session past its TTL
    }
    Shard& shard = ShardFor(incoming.key);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.table[incoming.key] = Entry{incoming.value, incoming.last_access};
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    SERENADE_RETURN_IF_ERROR(LogWrite(WalRecordType::kPut, incoming.key,
                                      incoming.value, incoming.last_access));
    ++applied;
  }
  return applied;
}

Status SessionStore::SyncWal() {
  if (options_.wal_path.empty()) return Status::Ok();
  std::lock_guard<std::mutex> lock(wal_mutex_);
  if (!wal_.is_open()) return Status::Ok();
  return wal_.Sync();
}

size_t SessionStore::SweepExpired() {
  const uint64_t now = options_.clock();
  size_t evicted = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    evicted += std::erase_if(shard.table, [&](const auto& kv) {
      return IsExpired(kv.second, now);
    });
  }
  expirations_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

Status SessionStore::Compact() {
  if (options_.wal_path.empty()) return Status::Ok();
  const uint64_t now = options_.clock();
  std::lock_guard<std::mutex> wal_lock(wal_mutex_);
  SERENADE_RETURN_IF_ERROR(wal_.Open(options_.wal_path + ".tmp",
                                     /*truncate=*/true));
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, entry] : shard.table) {
      if (IsExpired(entry, now)) continue;
      SERENADE_RETURN_IF_ERROR(wal_.Append(
          WalRecord{WalRecordType::kPut, key, entry.value,
                    entry.last_access}));
    }
  }
  SERENADE_RETURN_IF_ERROR(wal_.Sync());
  wal_.Close();
  if (std::rename((options_.wal_path + ".tmp").c_str(),
                  options_.wal_path.c_str()) != 0) {
    return Status::IoError("compaction rename failed");
  }
  wal_generation_.fetch_add(1, std::memory_order_acq_rel);
  return wal_.Open(options_.wal_path);
}

SessionStoreStats SessionStore::Stats() const {
  SessionStoreStats stats;
  stats.reads = reads_.load(std::memory_order_relaxed);
  stats.read_misses = read_misses_.load(std::memory_order_relaxed);
  stats.writes = writes_.load(std::memory_order_relaxed);
  stats.deletes = deletes_.load(std::memory_order_relaxed);
  stats.expirations = expirations_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.live_entries += shard.table.size();
  }
  return stats;
}

}  // namespace serenade
