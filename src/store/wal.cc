#include "store/wal.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/crc32.h"
#include "testing/fault_injection.h"

namespace serenade {

namespace {
constexpr size_t kHeaderSize = 1 + 4 + 4 + 8;  // type, key_len, value_len, ts
}  // namespace

void EncodeWalRecord(const WalRecord& record, std::string* out) {
  const size_t start = out->size();
  out->push_back(static_cast<char>(record.type));
  const uint32_t key_len = static_cast<uint32_t>(record.key.size());
  const uint32_t value_len = static_cast<uint32_t>(record.value.size());
  out->append(reinterpret_cast<const char*>(&key_len), 4);
  out->append(reinterpret_cast<const char*>(&value_len), 4);
  out->append(reinterpret_cast<const char*>(&record.timestamp), 8);
  out->append(record.key);
  out->append(record.value);
  const uint32_t crc = Crc32(out->data() + start, out->size() - start);
  out->append(reinterpret_cast<const char*>(&crc), 4);
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path, bool truncate) {
  Close();
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open WAL at " + path);
  }
  return Status::Ok();
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) return Status::Internal("WAL not open");
  std::string encoded;
  EncodeWalRecord(record, &encoded);
  SERENADE_FAULT_POINT(FaultSite::kWalAppendFail, {
    return Status::IoError("injected: WAL append failed, nothing written");
  });
  // A torn write lands a strict prefix of the record on disk and then
  // fails — the crash shape replay's torn-tail handling must absorb.
  SERENADE_FAULT_POINT(FaultSite::kWalTornWrite, {
    const size_t torn =
        static_cast<size_t>(serenade_fi->RandBelow(encoded.size()));
    std::fwrite(encoded.data(), 1, torn, file_);
    std::fflush(file_);
    return Status::IoError("injected: torn WAL write (" +
                           std::to_string(torn) + " of " +
                           std::to_string(encoded.size()) + " bytes)");
  });
  if (std::fwrite(encoded.data(), 1, encoded.size(), file_) !=
      encoded.size()) {
    return Status::IoError("WAL append failed");
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::Internal("WAL not open");
  SERENADE_FAULT_POINT(FaultSite::kWalSyncFail,
                       { return Status::IoError("injected: WAL flush failed"); });
  if (std::fflush(file_) != 0) return Status::IoError("WAL flush failed");
  return Status::Ok();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

StatusOr<uint64_t> ReplayWal(
    const std::string& path,
    const std::function<void(const WalRecord&)>& cb,
    uint64_t* valid_bytes) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open WAL at " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string bytes = buffer.str();
  // Models the filesystem handing back fewer bytes than the file holds
  // (a short read); replay must degrade exactly like a torn tail.
  SERENADE_FAULT_POINT(FaultSite::kWalReplayShortRead, {
    bytes.resize(
        static_cast<size_t>(serenade_fi->RandBelow(bytes.size() + 1)));
  });

  return ReplayWalBytes(bytes, cb, valid_bytes);
}

StatusOr<uint64_t> ReplayWalBytes(
    std::string_view bytes, const std::function<void(const WalRecord&)>& cb,
    uint64_t* valid_bytes) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  uint64_t replayed = 0;
  size_t cursor = 0;
  while (cursor < bytes.size()) {
    if (bytes.size() - cursor < kHeaderSize + 4) break;  // torn tail
    const char* base = bytes.data() + cursor;
    WalRecord record;
    record.type = static_cast<WalRecordType>(base[0]);
    uint32_t key_len = 0, value_len = 0;
    std::memcpy(&key_len, base + 1, 4);
    std::memcpy(&value_len, base + 5, 4);
    std::memcpy(&record.timestamp, base + 9, 8);
    const size_t total =
        kHeaderSize + static_cast<size_t>(key_len) + value_len + 4;
    if (bytes.size() - cursor < total) break;  // torn tail

    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, base + total - 4, 4);
    if (Crc32(base, total - 4) != stored_crc) {
      if (cursor + total >= bytes.size()) break;  // corrupt final record
      return Status::Corruption("WAL record CRC mismatch at offset " +
                                std::to_string(cursor));
    }
    if (record.type != WalRecordType::kPut &&
        record.type != WalRecordType::kDelete) {
      return Status::Corruption("unknown WAL record type");
    }
    record.key.assign(base + kHeaderSize, key_len);
    record.value.assign(base + kHeaderSize + key_len, value_len);
    cb(record);
    ++replayed;
    cursor += total;
    if (valid_bytes != nullptr) *valid_bytes = cursor;
  }
  return replayed;
}

}  // namespace serenade
