// Embedded key-value store for evolving sessions — the stand-in for the
// RocksDB instance the paper colocates with each serving machine
// (Section 4.2). Matches the paper's usage pattern: machine-local point
// reads/writes at microsecond latency, and automatic removal of session
// state "after 30 minutes of inactivity".
//
// Architecture: hash-sharded in-memory tables (per-shard mutex, so
// concurrent requests for different sessions never contend), an optional
// write-ahead log for durability with crash recovery, lazy TTL expiry on
// read plus an explicit sweep for background eviction, and a compaction
// that rewrites the log with only the live entries.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "store/wal.h"

namespace serenade {

/// Injectable time source (seconds); tests use a manual clock.
using ClockFn = std::function<uint64_t()>;

/// Wall-clock seconds.
uint64_t SystemClockSeconds();

struct SessionStoreOptions {
  /// Entries untouched for this long are expired (paper: 30 minutes).
  uint64_t ttl_seconds = 30 * 60;
  /// Number of hash shards (power of two recommended).
  size_t num_shards = 16;
  /// WAL file path; empty = volatile in-memory store.
  std::string wal_path;
  /// fflush the WAL after every write (slower, more durable).
  bool sync_every_write = false;
  /// Time source override for tests.
  ClockFn clock = SystemClockSeconds;
};

/// Counters exposed for monitoring and the store microbenchmark.
struct SessionStoreStats {
  uint64_t reads = 0;
  uint64_t read_misses = 0;
  uint64_t writes = 0;
  uint64_t deletes = 0;
  uint64_t expirations = 0;
  uint64_t live_entries = 0;
};

/// Thread-safe TTL key-value store.
class SessionStore {
 public:
  /// Creates the store; if options.wal_path exists, recovers state from it
  /// (expired entries are dropped during recovery).
  static StatusOr<std::unique_ptr<SessionStore>> Open(
      SessionStoreOptions options);

  ~SessionStore();

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  /// Inserts or replaces a value and refreshes its TTL.
  Status Put(const std::string& key, const std::string& value);

  /// Reads a value; refreshes its TTL (an active session stays alive).
  /// kNotFound for missing or expired keys. A non-null `trace` records
  /// the lookup as a store_get span.
  StatusOr<std::string> Get(const std::string& key, Trace* trace = nullptr);

  /// Removes a key (idempotent).
  Status Delete(const std::string& key);

  /// Read-modify-write under the shard lock: the mutator receives the
  /// current value ("" if absent) and returns the new value. Used by the
  /// serving layer to append a click to the evolving session atomically.
  /// A non-null `trace` records the whole operation (including the WAL
  /// append) as a store_put span.
  Status Update(const std::string& key,
                const std::function<std::string(const std::string&)>& mutator,
                Trace* trace = nullptr);

  /// Batched point reads for the micro-batch executor: fills
  /// `(*values)[i]` / `(*found)[i]` for `keys[i]`, grouping keys by shard
  /// so each shard lock is taken once per batch instead of once per key.
  /// Found entries get their TTL refreshed exactly like Get(); missing or
  /// expired keys yield found=false with an empty value (not a Status —
  /// an absent session is a normal new-visitor case on this path). A
  /// non-null `trace` records one store_get span for the whole batch.
  void MultiGet(const std::vector<std::string>& keys,
                std::vector<std::string>* values, std::vector<bool>* found,
                Trace* trace = nullptr);

  /// Batched upserts: one shard-lock acquisition per distinct shard and
  /// one WAL-lock acquisition (plus at most one sync) for the whole
  /// batch. Later duplicates of a key win, matching sequential Put order.
  /// A non-null `trace` records one store_put span for the whole batch.
  Status MultiPut(
      const std::vector<std::pair<std::string, std::string>>& entries,
      Trace* trace = nullptr);

  /// Drops all expired entries; returns how many were evicted.
  size_t SweepExpired();

  /// Rewrites the WAL with only the live entries (no-op when volatile).
  /// Bumps wal_generation() so a WAL shipper knows the byte stream it was
  /// tailing has been rewritten and must restart from offset zero.
  Status Compact();

  /// One live entry as exported for replication / hand-off.
  struct RestoreEntry {
    std::string key;
    std::string value;
    uint64_t last_access = 0;
  };

  /// Copies every live (non-expired) entry without refreshing TTLs.
  std::vector<RestoreEntry> DumpEntries() const;

  /// Reads one entry without the TTL touch of Get(); nullopt for missing
  /// or expired keys. Used by the hand-off cutover check.
  std::optional<RestoreEntry> PeekEntry(const std::string& key);

  /// Applies entries received from a peer (hand-off / promotion).
  /// Unconditional put that PRESERVES the incoming last_access (no TTL
  /// refresh — a restored session expires on its original schedule, so a
  /// hand-off can never resurrect an expired session). Entries already
  /// expired at the local clock are skipped. Returns how many were
  /// applied; each applied entry is WAL-logged with its original
  /// timestamp.
  StatusOr<size_t> Restore(const std::vector<RestoreEntry>& entries);

  /// Flushes buffered WAL bytes to the OS (no-op when volatile). The WAL
  /// shipper calls this before reading the file so every acknowledged
  /// write is visible to the byte stream it tails.
  Status SyncWal();

  /// Bumped whenever the WAL file is rewritten in place (compaction).
  uint64_t wal_generation() const {
    return wal_generation_.load(std::memory_order_acquire);
  }

  const SessionStoreOptions& options() const { return options_; }

  SessionStoreStats Stats() const;

 private:
  struct Entry {
    std::string value;
    uint64_t last_access = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> table;
  };

  explicit SessionStore(SessionStoreOptions options);

  Shard& ShardFor(const std::string& key);
  bool IsExpired(const Entry& entry, uint64_t now) const;
  Status LogWrite(WalRecordType type, const std::string& key,
                  const std::string& value, uint64_t now);

  SessionStoreOptions options_;
  std::vector<Shard> shards_;

  std::mutex wal_mutex_;
  WalWriter wal_;
  std::atomic<uint64_t> wal_generation_{0};

  mutable std::atomic<uint64_t> reads_{0}, read_misses_{0}, writes_{0},
      deletes_{0}, expirations_{0};
};

}  // namespace serenade
