// Append-only write-ahead log for the session store. Record layout:
//   u8 type | u32 key_len | u32 value_len | u64 timestamp | key | value |
//   u32 crc32(everything before the crc)
// Replay stops cleanly at the first truncated/corrupt record (a torn tail
// from a crash loses at most the final writes, never earlier ones).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace serenade {

enum class WalRecordType : uint8_t { kPut = 1, kDelete = 2 };

struct WalRecord {
  WalRecordType type = WalRecordType::kPut;
  std::string key;
  std::string value;    // empty for deletes
  uint64_t timestamp = 0;
};

/// Sequential writer. Not thread-safe; the store serialises access.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  /// Opens (creating or appending to) the log at `path`.
  Status Open(const std::string& path, bool truncate = false);

  /// Appends one record. Buffered; call Sync() to flush to the OS.
  Status Append(const WalRecord& record);

  /// Flushes buffered writes.
  Status Sync();

  void Close();
  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

/// Replays a log file, invoking the callback per intact record in order.
/// Returns the number of records replayed; a trailing partial record is
/// ignored (normal after a crash), but corruption in the middle of the
/// file yields kCorruption.
///
/// When `valid_bytes` is non-null it receives the byte offset of the end
/// of the last intact record (0 for an empty or fully-torn log) — the
/// length the file must be truncated to before appending again, so new
/// records never land after garbage tail bytes.
StatusOr<uint64_t> ReplayWal(const std::string& path,
                             const std::function<void(const WalRecord&)>& cb,
                             uint64_t* valid_bytes = nullptr);

/// Replays WAL-framed records from an in-memory byte range with the exact
/// semantics of ReplayWal: stops cleanly at a torn tail, yields kCorruption
/// for mid-stream damage, and reports the end offset of the last intact
/// record via `valid_bytes`. Replication uses this to frame shipped batches
/// identically to the on-disk log.
StatusOr<uint64_t> ReplayWalBytes(
    std::string_view bytes, const std::function<void(const WalRecord&)>& cb,
    uint64_t* valid_bytes = nullptr);

/// Encodes one record in the on-disk framing (including the CRC trailer),
/// appending to `out`. Exposed so tests and the replica hub can build
/// byte-exact log fragments.
void EncodeWalRecord(const WalRecord& record, std::string* out);

}  // namespace serenade
