// Serving-path click tap: streams accepted session events from a pod to
// the index-builder role over the existing HTTP client, with bounded
// buffering and drop-counting under backpressure (DESIGN.md §9).
//
// The tap is strictly off the request path: Observe() stamps the click,
// appends to a bounded in-memory buffer, and returns; a single flusher
// thread batches pending clicks into POST /v1/ingest calls. When the
// buffer is full the click is dropped and counted — recommendation
// latency is never held hostage to builder availability. A 429 from the
// builder (load shedding) honours its Retry-After header before the next
// ship attempt.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/types.h"
#include "serving/http.h"

namespace serenade {

struct ClickTapConfig {
  uint16_t builder_port = 0;       ///< index-builder ingest endpoint
  size_t max_buffer = 4096;        ///< pending clicks before drops start
  size_t max_batch = 256;          ///< clicks per ingest POST
  uint64_t flush_interval_ms = 50; ///< flusher wakeup cadence
  uint64_t io_timeout_ms = 1000;   ///< HTTP connect/io deadline
};

class ClickTap {
 public:
  explicit ClickTap(ClickTapConfig config);
  ~ClickTap();

  ClickTap(const ClickTap&) = delete;
  ClickTap& operator=(const ClickTap&) = delete;

  /// Starts the flusher thread. Idempotent.
  Status Start();

  /// Drains what it can with one final flush attempt, then stops.
  void Stop();

  /// Buffers one click, stamped NowUnixMs(). Never blocks on the network;
  /// drops (and counts) when the buffer is full.
  void Observe(const std::string& session_key, ItemId item);

  /// Explicit-stamp overload for deterministic tests and benches.
  void Observe(const std::string& session_key, ItemId item,
               uint64_t observed_unix_ms);

  /// Synchronously ships every buffered click (tests and shutdown). The
  /// error of the first failing batch is returned; remaining clicks stay
  /// buffered.
  Status FlushNow();

  // --- counters (relaxed; exported via the pod's /v1/metrics) ---
  uint64_t clicks_observed() const {
    return observed_.load(std::memory_order_relaxed);
  }
  uint64_t clicks_shipped() const {
    return shipped_.load(std::memory_order_relaxed);
  }
  /// Dropped at Observe() because the buffer was full (backpressure).
  uint64_t clicks_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t ship_failures() const {
    return ship_failures_.load(std::memory_order_relaxed);
  }
  /// 429 responses honoured with a Retry-After backoff.
  uint64_t backoffs() const {
    return backoffs_.load(std::memory_order_relaxed);
  }
  size_t buffered() const;

 private:
  struct PendingClick {
    std::string session_key;
    ItemId item = 0;
    uint64_t observed_unix_ms = 0;
  };

  void FlusherLoop();
  /// Pops up to max_batch clicks and ships them; re-queues on failure if
  /// the buffer still has room. Returns kOk when the buffer was empty.
  Status ShipOneBatch();

  const ClickTapConfig config_;

  mutable std::mutex mutex_;  // guards buffer_ + backoff deadline
  std::condition_variable cv_;
  std::deque<PendingClick> buffer_;
  uint64_t backoff_until_ms_ = 0;  // NowUnixMs horizon from Retry-After
  bool stopping_ = false;
  std::thread flusher_;

  std::mutex io_mutex_;  // serialises the HTTP client (flusher + FlushNow)
  HttpClient client_;

  std::atomic<uint64_t> observed_{0};
  std::atomic<uint64_t> shipped_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> ship_failures_{0};
  std::atomic<uint64_t> backoffs_{0};
};

}  // namespace serenade
