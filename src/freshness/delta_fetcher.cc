#include "freshness/delta_fetcher.h"

#include <chrono>

#include "testing/fault_injection.h"

namespace serenade {

DeltaFetcher::DeltaFetcher(DeltaFetcherConfig config, ApplyFn apply)
    : config_(config),
      apply_(std::move(apply)),
      client_(HttpClientOptions{config.io_timeout_ms, config.io_timeout_ms}) {}

DeltaFetcher::~DeltaFetcher() { Stop(); }

Status DeltaFetcher::Start() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (poller_.joinable()) return Status::Ok();
  stopping_ = false;
  poller_ = std::thread([this] { PollLoop(); });
  return Status::Ok();
}

void DeltaFetcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
}

void DeltaFetcher::PollLoop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stopping_) {
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(config_.poll_interval_ms),
                      [&] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    PollOnce();  // failures are counted and retried next round
    lock.lock();
  }
}

Status DeltaFetcher::PollOnce() {
  std::lock_guard<std::mutex> lock(mutex_);
  polls_.fetch_add(1, std::memory_order_relaxed);

  if (!connected_) {
    if (Status connect = client_.Connect(config_.builder_port);
        !connect.ok()) {
      fetch_failures_.fetch_add(1, std::memory_order_relaxed);
      return connect;
    }
    connected_ = true;
  }
  const uint64_t after = applied_version_.load(std::memory_order_relaxed);
  auto response =
      client_.Get("/v1/delta/latest?after=" + std::to_string(after));
  if (!response.ok()) {
    fetch_failures_.fetch_add(1, std::memory_order_relaxed);
    client_.Close();
    connected_ = false;
    return response.status();
  }
  if (response->status == 204) return Status::Ok();  // fleet is current
  if (response->status != 200) {
    fetch_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("builder delta endpoint returned HTTP " +
                               std::to_string(response->status));
  }

  std::string bytes = std::move(response->body);
  SERENADE_FAULT_POINT(FaultSite::kDeltaTruncate, {
    // A torn transfer: the CRC-stamped sections make the deserializer
    // reject it below instead of applying garbage.
    bytes.resize(serenade_fi->RandBelow(bytes.size()));
  });
  fetched_.fetch_add(1, std::memory_order_relaxed);

  auto delta = DeserializeDelta(bytes);
  if (!delta.ok()) {
    fetch_failures_.fetch_add(1, std::memory_order_relaxed);
    return delta.status();
  }

  Status applied = apply_(*delta);
  if (applied.ok() || applied.code() == StatusCode::kAlreadyExists) {
    // Applied, or already covered by what the pod serves: either way this
    // version is done — advance so the next poll asks past it.
    if (applied.ok()) applied_.fetch_add(1, std::memory_order_relaxed);
    uint64_t previous = applied_version_.load(std::memory_order_relaxed);
    while (previous < delta->delta_version &&
           !applied_version_.compare_exchange_weak(
               previous, delta->delta_version, std::memory_order_relaxed)) {
    }
    return Status::Ok();
  }
  apply_failures_.fetch_add(1, std::memory_order_relaxed);
  return applied;
}

}  // namespace serenade
