// Pod-side delta distribution: polls the index builder for the newest
// cumulative delta and hands it to an apply callback (in practice
// SerenadeServer::ApplyDelta, which layers it over the pinned base
// snapshot under the RCU publication discipline) — the last hop of the
// streaming freshness pipeline (DESIGN.md §9).
//
// Deltas are cumulative, so the fetcher only ever asks for "newer than
// what I applied" (?after=V) and skipped intermediate versions cost
// nothing. Corrupt or lineage-mismatched deltas are rejected by the
// deserializer / apply path; the fetcher counts the failure and retries
// on the next poll, so a bad artifact can delay freshness but never
// regress serving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "index/index_format.h"
#include "serving/http.h"

namespace serenade {

struct DeltaFetcherConfig {
  uint16_t builder_port = 0;
  uint64_t poll_interval_ms = 200;
  uint64_t io_timeout_ms = 1000;
};

class DeltaFetcher {
 public:
  /// Applies one fetched delta; kAlreadyExists means "covered, advance".
  using ApplyFn = std::function<Status(const IndexDelta&)>;

  DeltaFetcher(DeltaFetcherConfig config, ApplyFn apply);
  ~DeltaFetcher();

  DeltaFetcher(const DeltaFetcher&) = delete;
  DeltaFetcher& operator=(const DeltaFetcher&) = delete;

  /// Starts the poll thread. Idempotent.
  Status Start();
  void Stop();

  /// One synchronous poll+apply round (deterministic tests drive this
  /// directly; the poll thread calls the same path). kOk covers both
  /// "nothing new" (204) and "applied". The kDeltaTruncate fault site
  /// truncates the fetched bytes before deserialization.
  Status PollOnce();

  // --- counters ---
  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  uint64_t deltas_fetched() const {
    return fetched_.load(std::memory_order_relaxed);
  }
  uint64_t deltas_applied() const {
    return applied_.load(std::memory_order_relaxed);
  }
  /// Network / HTTP / corrupt-artifact failures.
  uint64_t fetch_failures() const {
    return fetch_failures_.load(std::memory_order_relaxed);
  }
  /// Apply callback rejections (lineage mismatch, validation).
  uint64_t apply_failures() const {
    return apply_failures_.load(std::memory_order_relaxed);
  }
  /// Newest delta version this fetcher has applied (or seen covered).
  uint64_t applied_version() const {
    return applied_version_.load(std::memory_order_relaxed);
  }

 private:
  void PollLoop();

  const DeltaFetcherConfig config_;
  const ApplyFn apply_;

  std::mutex mutex_;  // serialises PollOnce (poll thread vs. tests)
  HttpClient client_;
  bool connected_ = false;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread poller_;

  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> fetched_{0};
  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> fetch_failures_{0};
  std::atomic<uint64_t> apply_failures_{0};
  std::atomic<uint64_t> applied_version_{0};
};

}  // namespace serenade
