// The index-builder role: an HTTP server that accepts the click stream
// tapped off serving pods (POST /v1/ingest), sessionizes it through a
// DeltaBuilder, and publishes cumulative versioned delta artifacts for
// the fleet to poll (GET /v1/delta/latest) — the middle of the streaming
// freshness pipeline (DESIGN.md §9).
//
// Surface:
//   POST /v1/ingest        {"clicks":[{"session_id","item_id",
//                          "observed_unix_ms"}]} -> {"accepted":N}
//   GET  /v1/delta/latest  ?after=V: 200 + delta bytes (headers
//                          X-Serenade-Delta-Version /
//                          X-Serenade-Base-Version) when a version newer
//                          than V is published, else 204
//   GET  /v1/healthz       {"status":"ok","role":"index-builder",...}
//   GET  /v1/stats         builder counters as JSON
//   GET  /v1/metrics       Prometheus text exposition
//
// Compaction (seal idle sessions, cut a new delta version, optionally
// stamp it to publish_dir) runs on an optional background cadence or
// explicitly via CompactNow(now) for deterministic tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "common/status.h"
#include "freshness/delta_builder.h"
#include "obs/metrics.h"
#include "serving/http.h"

namespace serenade {

struct IndexBuilderConfig {
  uint16_t port = 0;  ///< 0 = ephemeral
  DeltaBuilderConfig builder;
  /// Background seal+compact cadence; 0 = manual CompactNow() only.
  uint64_t compact_interval_ms = 0;
  /// When set, each published delta is also stamped to
  /// `<publish_dir>/delta-v<version>.srndelta` plus a kind=delta
  /// manifest sidecar.
  std::string publish_dir;
  /// Reactor tuning for the builder's HTTP front door (connection cap,
  /// idle/deadline timeouts, thread counts).
  HttpServerOptions http;
};

class IndexBuilderServer {
 public:
  explicit IndexBuilderServer(IndexBuilderConfig config);
  ~IndexBuilderServer();

  IndexBuilderServer(const IndexBuilderServer&) = delete;
  IndexBuilderServer& operator=(const IndexBuilderServer&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const { return http_.port(); }

  /// Seals idle sessions and publishes a new delta version if the sealed
  /// content changed. `now_unix_ms` 0 means wall clock; tests pass
  /// explicit times. Returns the published (or still-current) delta
  /// version, or 0 when nothing has ever been sealed. The
  /// kDeltaPublishCrash fault site aborts mid-publish: a torn artifact
  /// may land on disk, but the served in-memory version never advances.
  StatusOr<uint64_t> CompactNow(uint64_t now_unix_ms = 0);

  DeltaBuilder& builder() { return builder_; }
  MetricsRegistry& metrics() { return registry_; }

  /// The delta version currently served by /v1/delta/latest (0 = none).
  uint64_t published_version() const;
  uint64_t published_watermark_unix_ms() const;

 private:
  void BuildRoutes();
  void RegisterMetrics();
  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleDeltaLatest(const HttpRequest& request);
  HttpResponse HandleHealthz(const HttpRequest& request);
  HttpResponse HandleStats(const HttpRequest& request);
  void CompactLoop();

  const IndexBuilderConfig config_;
  DeltaBuilder builder_;
  MetricsRegistry registry_;
  Router router_;
  HttpServer http_;

  mutable std::mutex publish_mutex_;  // guards the published artifact
  std::optional<IndexDelta> published_;
  std::string published_bytes_;

  std::mutex compact_mutex_;  // serialises CompactNow vs. the loop
  std::condition_variable compact_cv_;
  bool stopping_ = false;
  std::thread compactor_;

  MetricHistogram* click_to_publish_ms_ = nullptr;
  std::atomic<uint64_t> publish_failures_{0};
};

}  // namespace serenade
