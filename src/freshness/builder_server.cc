#include "freshness/builder_server.h"

#include <charconv>
#include <chrono>
#include <fstream>

#include "common/crc32.h"
#include "common/stopwatch.h"
#include "index/snapshot.h"
#include "serving/json.h"
#include "testing/fault_injection.h"

namespace serenade {

namespace {

uint64_t ParseUint(const std::string& text, uint64_t fallback) {
  uint64_t value = fallback;
  std::from_chars(text.data(), text.data() + text.size(), value);
  return value;
}

}  // namespace

IndexBuilderServer::IndexBuilderServer(IndexBuilderConfig config)
    : config_(std::move(config)),
      builder_(config_.builder),
      http_([this](const HttpRequest& request) { return Handle(request); },
            config_.http) {
  BuildRoutes();
  RegisterMetrics();
}

IndexBuilderServer::~IndexBuilderServer() { Stop(); }

Status IndexBuilderServer::Start() {
  SERENADE_RETURN_IF_ERROR(http_.Start(config_.port));
  if (config_.compact_interval_ms > 0 && !compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(compact_mutex_);
      stopping_ = false;
    }
    compactor_ = std::thread([this] { CompactLoop(); });
  }
  return Status::Ok();
}

void IndexBuilderServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(compact_mutex_);
    stopping_ = true;
  }
  compact_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
  http_.Stop();
}

void IndexBuilderServer::CompactLoop() {
  std::unique_lock<std::mutex> lock(compact_mutex_);
  while (!stopping_) {
    compact_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.compact_interval_ms),
        [&] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    CompactNow(0);
    lock.lock();
  }
}

StatusOr<uint64_t> IndexBuilderServer::CompactNow(uint64_t now_unix_ms) {
  const uint64_t now = now_unix_ms == 0 ? NowUnixMs() : now_unix_ms;
  builder_.SealIdle(now);
  std::optional<IndexDelta> delta = builder_.Compact(now);
  if (!delta.has_value()) return published_version();

  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    if (published_.has_value() &&
        published_->delta_version == delta->delta_version) {
      return delta->delta_version;  // unchanged content, nothing to publish
    }
  }

  const std::string bytes = SerializeDelta(*delta);
  const std::string artifact_path =
      config_.publish_dir.empty()
          ? ""
          : config_.publish_dir + "/delta-v" +
                std::to_string(delta->delta_version) + ".srndelta";

  SERENADE_FAULT_POINT(FaultSite::kDeltaPublishCrash, {
    // Builder dies mid-publish: a torn artifact can land on disk, but the
    // served in-memory delta never advances — pods keep applying the
    // previous version and the next publish re-stamps a clean artifact.
    if (!artifact_path.empty()) {
      std::ofstream torn(artifact_path, std::ios::binary | std::ios::trunc);
      torn.write(bytes.data(),
                 static_cast<std::streamsize>(
                     serenade_fi->RandBelow(bytes.size())));
    }
    publish_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("injected: builder crashed mid-publish");
  });

  if (!artifact_path.empty()) {
    if (Status write = WriteDeltaFile(artifact_path, *delta); !write.ok()) {
      publish_failures_.fetch_add(1, std::memory_order_relaxed);
      return write;
    }
    IndexManifest manifest;
    manifest.kind = "delta";
    manifest.version = delta->delta_version;
    manifest.base_version = delta->base_version;
    manifest.base_crc32 = delta->base_crc32;
    manifest.watermark_unix_ms = delta->watermark_unix_ms;
    manifest.built_unix = now / 1000;
    manifest.source = "streaming click tap";
    manifest.num_sessions = delta->sessions.size();
    manifest.index_bytes = bytes.size();
    manifest.index_crc32 = Crc32(bytes.data(), bytes.size());
    if (Status write = WriteManifestFile(ManifestPathFor(artifact_path),
                                         manifest);
        !write.ok()) {
      publish_failures_.fetch_add(1, std::memory_order_relaxed);
      return write;
    }
  }

  std::lock_guard<std::mutex> lock(publish_mutex_);
  // Click -> publish latency for the sessions this version adds.
  const size_t previously =
      published_.has_value() ? published_->sessions.size() : 0;
  if (click_to_publish_ms_ != nullptr) {
    for (size_t s = previously; s < delta->sessions.size(); ++s) {
      const uint64_t observed = delta->sessions[s].observed_unix_ms;
      click_to_publish_ms_->Record(now > observed ? now - observed : 0);
    }
  }
  published_bytes_ = bytes;
  published_ = std::move(delta);
  return published_->delta_version;
}

uint64_t IndexBuilderServer::published_version() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return published_.has_value() ? published_->delta_version : 0;
}

uint64_t IndexBuilderServer::published_watermark_unix_ms() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return published_.has_value() ? published_->watermark_unix_ms : 0;
}

void IndexBuilderServer::BuildRoutes() {
  router_.Handle("POST", "/v1/ingest",
                 [this](const HttpRequest& request, Trace*) {
                   return HandleIngest(request);
                 });
  router_.Handle("GET", "/v1/delta/latest",
                 [this](const HttpRequest& request, Trace*) {
                   return HandleDeltaLatest(request);
                 });
  router_.Handle("GET", "/v1/healthz",
                 [this](const HttpRequest& request, Trace*) {
                   return HandleHealthz(request);
                 });
  router_.Handle("GET", "/v1/stats",
                 [this](const HttpRequest& request, Trace*) {
                   return HandleStats(request);
                 });
  router_.Handle("GET", "/v1/metrics",
                 [this](const HttpRequest&, Trace*) {
                   return HttpResponse::Text(registry_.RenderPrometheus(),
                                             MetricsRegistry::ContentType());
                 });
}

HttpResponse IndexBuilderServer::Handle(const HttpRequest& request) {
  return router_.Dispatch(request, nullptr);
}

HttpResponse IndexBuilderServer::HandleIngest(const HttpRequest& request) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "ingest body: " + doc.status().message());
  }
  const JsonValue* clicks = doc->Find("clicks");
  if (clicks == nullptr || clicks->type() != JsonValue::Type::kArray) {
    return ApiError(400, "ingest body must carry a \"clicks\" array");
  }
  size_t accepted = 0;
  for (const JsonValue& click : clicks->AsArray()) {
    const JsonValue* session = click.Find("session_id");
    const JsonValue* item = click.Find("item_id");
    if (session == nullptr || item == nullptr ||
        session->type() != JsonValue::Type::kString ||
        item->type() != JsonValue::Type::kNumber) {
      return ApiError(400,
                      "each click needs a string session_id and a numeric "
                      "item_id");
    }
    const JsonValue* observed = click.Find("observed_unix_ms");
    const uint64_t observed_ms =
        observed != nullptr && observed->type() == JsonValue::Type::kNumber
            ? static_cast<uint64_t>(observed->AsInt())
            : NowUnixMs();
    builder_.Ingest(session->AsString(),
                    static_cast<ItemId>(item->AsInt()), observed_ms);
    ++accepted;
  }
  JsonWriter json;
  json.BeginObject().Key("accepted").Value(static_cast<uint64_t>(accepted));
  json.EndObject();
  return HttpResponse::Json(json.str());
}

HttpResponse IndexBuilderServer::HandleDeltaLatest(
    const HttpRequest& request) {
  const uint64_t after = ParseUint(request.Param("after", "0"), 0);
  std::lock_guard<std::mutex> lock(publish_mutex_);
  if (!published_.has_value() || published_->delta_version <= after) {
    HttpResponse response;
    response.status = 204;
    response.content_type = "application/octet-stream";
    return response;
  }
  std::string bytes = published_bytes_;
  SERENADE_FAULT_POINT(FaultSite::kDeltaLineageMismatch, {
    // Serve a delta stamped for a different base: CRC-clean bytes, wrong
    // lineage. The pod-side lineage check must reject it.
    IndexDelta mismatched = *published_;
    mismatched.base_version += 1 + serenade_fi->RandBelow(3);
    bytes = SerializeDelta(mismatched);
  });
  HttpResponse response =
      HttpResponse::Text(std::move(bytes), "application/octet-stream");
  response.headers["X-Serenade-Delta-Version"] =
      std::to_string(published_->delta_version);
  response.headers["X-Serenade-Base-Version"] =
      std::to_string(published_->base_version);
  return response;
}

HttpResponse IndexBuilderServer::HandleHealthz(const HttpRequest&) {
  JsonWriter json;
  json.BeginObject()
      .Key("status")
      .Value("ok")
      .Key("role")
      .Value("index-builder")
      .Key("delta_version")
      .Value(published_version())
      .Key("base_version")
      .Value(builder_.base_version())
      .EndObject();
  return HttpResponse::Json(json.str());
}

HttpResponse IndexBuilderServer::HandleStats(const HttpRequest&) {
  JsonWriter json;
  json.BeginObject()
      .Key("role")
      .Value("index-builder")
      .Key("clicks_ingested")
      .Value(builder_.clicks_ingested())
      .Key("clicks_dropped_overflow")
      .Value(builder_.clicks_dropped_overflow())
      .Key("open_sessions")
      .Value(static_cast<uint64_t>(builder_.open_sessions()))
      .Key("sealed_sessions")
      .Value(static_cast<uint64_t>(builder_.sealed_sessions()))
      .Key("sessions_sealed_total")
      .Value(builder_.sessions_sealed())
      .Key("sessions_dropped_short")
      .Value(builder_.sessions_dropped_short())
      .Key("sessions_expired")
      .Value(builder_.sessions_expired())
      .Key("delta_version")
      .Value(published_version())
      .Key("base_version")
      .Value(builder_.base_version())
      .Key("watermark_unix_ms")
      .Value(published_watermark_unix_ms())
      .Key("publish_failures")
      .Value(publish_failures_.load(std::memory_order_relaxed))
      .EndObject();
  return HttpResponse::Json(json.str());
}

void IndexBuilderServer::RegisterMetrics() {
  registry_.AddCallback(
      "serenade_builder_clicks_ingested_total",
      "clicks accepted from pod click taps", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", builder_.clicks_ingested()}};
      });
  registry_.AddCallback(
      "serenade_builder_clicks_dropped_total",
      "clicks dropped at the open-session cap", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", builder_.clicks_dropped_overflow()}};
      });
  registry_.AddCallback(
      "serenade_builder_sessions_sealed_total",
      "sessions sealed into the delta log", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", builder_.sessions_sealed()}};
      });
  registry_.AddCallback(
      "serenade_builder_sessions_dropped_short_total",
      "sealed sessions dropped below min_session_length",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", builder_.sessions_dropped_short()}};
      });
  registry_.AddCallback(
      "serenade_builder_sessions_expired_total",
      "sealed sessions aged out of the cumulative delta",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", builder_.sessions_expired()}};
      });
  registry_.AddCallback(
      "serenade_builder_open_sessions", "sessions currently open",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", static_cast<uint64_t>(builder_.open_sessions())}};
      });
  registry_.AddCallback(
      "serenade_builder_delta_version",
      "delta version currently served to the fleet", MetricType::kGauge, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", published_version()}};
      });
  registry_.AddCallback(
      "serenade_builder_publish_failures_total",
      "delta publications that failed or crashed mid-write",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", publish_failures_.load(std::memory_order_relaxed)}};
      });
  registry_.AddCallback(
      "serenade_index_freshness_seconds",
      "age of the newest click covered by the published delta",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        const uint64_t watermark = published_watermark_unix_ms();
        const uint64_t now = NowUnixMs();
        return {{"", watermark == 0 || now < watermark
                         ? 0
                         : (now - watermark) / 1000}};
      });
  click_to_publish_ms_ = &registry_.AddHistogram(
      "serenade_click_to_publish_milliseconds",
      "click observe time to delta publication");
}

}  // namespace serenade
