#include "freshness/click_tap.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <vector>

#include "common/stopwatch.h"
#include "serving/json.h"

namespace serenade {

namespace {

// Retry-After is advisory; cap it so a misbehaving builder cannot stall
// the tap for minutes (drops are preferable to unbounded lag).
constexpr uint64_t kMaxBackoffMs = 10'000;

uint64_t ParseRetryAfterMs(const HttpResponse& response) {
  const std::string header = response.Header("retry-after", "1");
  uint64_t seconds = 1;
  std::from_chars(header.data(), header.data() + header.size(), seconds);
  return std::min(seconds * 1000, kMaxBackoffMs);
}

}  // namespace

ClickTap::ClickTap(ClickTapConfig config)
    : config_(config),
      client_(HttpClientOptions{config.io_timeout_ms, config.io_timeout_ms}) {}

ClickTap::~ClickTap() { Stop(); }

Status ClickTap::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (flusher_.joinable()) return Status::Ok();
  stopping_ = false;
  flusher_ = std::thread([this] { FlusherLoop(); });
  return Status::Ok();
}

void ClickTap::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !flusher_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void ClickTap::Observe(const std::string& session_key, ItemId item) {
  Observe(session_key, item, NowUnixMs());
}

void ClickTap::Observe(const std::string& session_key, ItemId item,
                       uint64_t observed_unix_ms) {
  observed_.fetch_add(1, std::memory_order_relaxed);
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (buffer_.size() >= config_.max_buffer) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buffer_.push_back(PendingClick{session_key, item, observed_unix_ms});
    notify = buffer_.size() >= config_.max_batch;
  }
  if (notify) cv_.notify_one();
}

size_t ClickTap::buffered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffer_.size();
}

Status ClickTap::FlushNow() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (buffer_.empty()) return Status::Ok();
    }
    SERENADE_RETURN_IF_ERROR(ShipOneBatch());
  }
}

Status ClickTap::ShipOneBatch() {
  std::vector<PendingClick> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (buffer_.empty()) return Status::Ok();
    if (backoff_until_ms_ > NowUnixMs()) {
      return Status::Unavailable("builder Retry-After backoff in effect");
    }
    const size_t take = std::min(config_.max_batch, buffer_.size());
    batch.assign(buffer_.begin(),
                 buffer_.begin() + static_cast<ptrdiff_t>(take));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(take));
  }

  JsonWriter json;
  json.BeginObject().Key("clicks").BeginArray();
  for (const PendingClick& click : batch) {
    json.BeginObject()
        .Key("session_id")
        .Value(click.session_key)
        .Key("item_id")
        .Value(static_cast<uint64_t>(click.item))
        .Key("observed_unix_ms")
        .Value(click.observed_unix_ms)
        .EndObject();
  }
  json.EndArray().EndObject();

  StatusOr<HttpResponse> response = Status::Internal("unsent");
  {
    std::lock_guard<std::mutex> io_lock(io_mutex_);
    if (Status connect = client_.Connect(config_.builder_port);
        !connect.ok()) {
      response = connect;
    } else {
      response = client_.Post("/v1/ingest", json.str());
    }
  }

  Status result = Status::Ok();
  if (response.ok() && response->status == 200) {
    shipped_.fetch_add(batch.size(), std::memory_order_relaxed);
    return Status::Ok();
  }
  if (response.ok() && response->status == 429) {
    // The builder is shedding load: honour its Retry-After before the
    // next attempt, keep the clicks buffered.
    backoffs_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t backoff = ParseRetryAfterMs(*response);
    std::lock_guard<std::mutex> lock(mutex_);
    backoff_until_ms_ = NowUnixMs() + backoff;
    result = Status::Unavailable("builder shed the ingest batch (429)");
  } else {
    ship_failures_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> io_lock(io_mutex_);
    client_.Close();  // force a clean reconnect next attempt
    result = response.ok() ? Status::Unavailable(
                                 "builder ingest returned HTTP " +
                                 std::to_string(response->status))
                           : response.status();
  }

  // Requeue at the front (preserving order) as far as capacity allows;
  // the rest is dropped and counted, same as at Observe().
  std::lock_guard<std::mutex> lock(mutex_);
  size_t room = config_.max_buffer > buffer_.size()
                    ? config_.max_buffer - buffer_.size()
                    : 0;
  const size_t keep = std::min(room, batch.size());
  dropped_.fetch_add(batch.size() - keep, std::memory_order_relaxed);
  for (size_t i = keep; i-- > 0;) {
    buffer_.push_front(std::move(batch[i]));
  }
  return result;
}

void ClickTap::FlusherLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, std::chrono::milliseconds(config_.flush_interval_ms),
                   [&] {
                     return stopping_ || buffer_.size() >= config_.max_batch;
                   });
      if (stopping_) break;
      if (buffer_.empty()) continue;
    }
    // Drain until empty or the first failure (backoff/unavailable); the
    // wait above paces retries.
    while (ShipOneBatch().ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (buffer_.empty()) break;
    }
  }
  // Best-effort final drain so short-lived tests and clean shutdowns do
  // not strand observed clicks.
  FlushNow();
}

}  // namespace serenade
