#include "freshness/delta_builder.h"

#include <algorithm>

namespace serenade {

DeltaBuilder::DeltaBuilder(DeltaBuilderConfig config)
    : config_(config), version_(config.base_version) {}

void DeltaBuilder::Ingest(const std::string& session_key, ItemId item,
                          uint64_t observed_unix_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++clicks_;
  auto it = open_.find(session_key);
  if (it == open_.end()) {
    if (open_.size() >= config_.max_open_sessions) {
      ++clicks_dropped_;
      return;
    }
    OpenSession session;
    session.first_ms = observed_unix_ms;
    session.arrival_seq = arrival_seq_++;
    it = open_.emplace(session_key, std::move(session)).first;
  }
  OpenSession& session = it->second;
  session.items.push_back(item);
  // Clamp regressions so a skewed pod clock cannot push a session's idle
  // horizon backwards.
  session.last_ms = std::max(session.last_ms, observed_unix_ms);
  if (session.first_ms == 0) session.first_ms = observed_unix_ms;
}

size_t DeltaBuilder::SealIdle(uint64_t now_unix_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Collect idle sessions, then seal in (last_ms, first_ms, arrival_seq)
  // order: hash-map iteration order must never leak into the sealed log,
  // or delta replay determinism dies.
  std::vector<std::pair<const std::string*, OpenSession*>> idle;
  for (auto& [key, session] : open_) {
    if (session.last_ms + config_.seal_idle_ms <= now_unix_ms) {
      idle.emplace_back(&key, &session);
    }
  }
  std::sort(idle.begin(), idle.end(), [](const auto& a, const auto& b) {
    const OpenSession& sa = *a.second;
    const OpenSession& sb = *b.second;
    if (sa.last_ms != sb.last_ms) return sa.last_ms < sb.last_ms;
    if (sa.first_ms != sb.first_ms) return sa.first_ms < sb.first_ms;
    return sa.arrival_seq < sb.arrival_seq;
  });

  size_t sealed = 0;
  for (auto& [key, session] : idle) {
    std::vector<ItemId> distinct = std::move(session->items);
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (distinct.size() < config_.min_session_length) {
      ++dropped_short_;
    } else {
      SealedSession entry;
      entry.items = std::move(distinct);
      entry.last_ms = session->last_ms;
      sealed_.push_back(std::move(entry));
      ++sealed_total_;
    }
    ++sealed;
    open_.erase(*key);
  }
  return sealed;
}

std::optional<IndexDelta> DeltaBuilder::Compact(uint64_t now_unix_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.session_ttl_ms > 0) {
    // The sealed log is in seal order and seal order is non-decreasing in
    // last_ms, so expiry only ever eats the front.
    while (!sealed_.empty() &&
           sealed_.front().last_ms + config_.session_ttl_ms <= now_unix_ms) {
      sealed_.pop_front();
      ++expired_total_;
    }
  }
  if (sealed_.empty()) return std::nullopt;

  if (sealed_total_ != compacted_sealed_total_ ||
      expired_total_ != compacted_expired_total_) {
    // Content changed since the last compaction: new version. Start from
    // max(version_, base_version) so versions stay monotone even after a
    // builder restart against the same base.
    version_ = std::max(version_, config_.base_version) + 1;
    compacted_sealed_total_ = sealed_total_;
    compacted_expired_total_ = expired_total_;
  }

  IndexDelta delta;
  delta.base_version = config_.base_version;
  delta.base_crc32 = config_.base_crc32;
  delta.delta_version = version_;
  uint64_t watermark = 0;
  Timestamp end_time = config_.base_max_timestamp;
  for (const SealedSession& session : sealed_) {
    DeltaSession out;
    out.items = session.items;
    out.end_time = ++end_time;  // dense, strictly above the base horizon
    out.observed_unix_ms = session.last_ms;
    watermark = std::max(watermark, session.last_ms);
    delta.sessions.push_back(std::move(out));
  }
  delta.watermark_unix_ms = watermark;
  watermark_ms_ = watermark;
  return delta;
}

uint64_t DeltaBuilder::clicks_ingested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clicks_;
}

uint64_t DeltaBuilder::clicks_dropped_overflow() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clicks_dropped_;
}

uint64_t DeltaBuilder::sessions_sealed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sealed_total_;
}

uint64_t DeltaBuilder::sessions_dropped_short() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_short_;
}

uint64_t DeltaBuilder::sessions_expired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return expired_total_;
}

size_t DeltaBuilder::open_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_.size();
}

size_t DeltaBuilder::sealed_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sealed_.size();
}

uint64_t DeltaBuilder::delta_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

uint64_t DeltaBuilder::watermark_unix_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watermark_ms_;
}

}  // namespace serenade
