// Sessionizes the click stream tapped off the serving pods into
// cumulative, versioned index deltas — the in-memory half of the
// index-builder role of the streaming freshness pipeline (DESIGN.md §9).
//
// Clicks arrive as (session key, item, observe stamp). Open sessions are
// keyed by session key; an idle gap of seal_idle_ms seals a session,
// deduplicates + sorts its items, and appends it to the sealed log.
// Compact() turns the sealed log into one *cumulative* IndexDelta over
// the configured base snapshot: every compaction re-emits all live
// sealed sessions, so pods can always apply the newest delta directly
// over their pinned base, skipping intermediate versions.
//
// Determinism contract (pinned by tests): all time is passed in
// explicitly, idle sessions seal in a deterministic order (last click
// ms, first click ms, arrival sequence — never hash-map iteration
// order), and delta end_times are assigned densely at Compact() as
// base_max_timestamp + position + 1. Replaying the same clicks through
// two builders yields byte-identical delta artifacts.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/index_format.h"

namespace serenade {

struct DeltaBuilderConfig {
  /// Version + artifact CRC of the full snapshot deltas layer over.
  uint64_t base_version = 1;
  uint32_t base_crc32 = 0;
  /// The base index's maximum session timestamp; delta end_times are
  /// assigned strictly above it.
  Timestamp base_max_timestamp = 0;
  /// Sessions with fewer distinct items are dropped at seal time (the
  /// same rule Dataset::FromClicks applies to training data).
  size_t min_session_length = 2;
  /// Idle gap (ms since the session's last click) that seals it.
  uint64_t seal_idle_ms = 30'000;
  /// Sealed sessions older than this (vs. their last click) fall out of
  /// subsequent deltas. 0 = keep until a new base snapshot rolls out.
  uint64_t session_ttl_ms = 0;
  /// Open-session cap; clicks for *new* sessions beyond it are dropped
  /// (and counted) instead of growing without bound.
  size_t max_open_sessions = 100'000;
};

class DeltaBuilder {
 public:
  explicit DeltaBuilder(DeltaBuilderConfig config);

  /// Folds one click into its open session. Thread-safe.
  void Ingest(const std::string& session_key, ItemId item,
              uint64_t observed_unix_ms);

  /// Seals every open session idle for >= seal_idle_ms at `now_unix_ms`,
  /// in deterministic order. Returns the number sealed (dropped-short
  /// sessions count as sealed work but are not added to the log).
  size_t SealIdle(uint64_t now_unix_ms);

  /// Builds the cumulative delta over all live sealed sessions, expiring
  /// TTL'd ones first. Returns nullopt when nothing is sealed. The delta
  /// version bumps only when the sealed content changed since the last
  /// Compact(), so re-compacting an unchanged builder re-emits the same
  /// version with byte-identical serialization (compaction idempotence).
  std::optional<IndexDelta> Compact(uint64_t now_unix_ms);

  // --- stats (all thread-safe) ---
  uint64_t clicks_ingested() const;
  uint64_t clicks_dropped_overflow() const;
  uint64_t sessions_sealed() const;
  uint64_t sessions_dropped_short() const;
  uint64_t sessions_expired() const;
  size_t open_sessions() const;
  size_t sealed_sessions() const;
  /// The last compacted delta version (base_version until content lands).
  uint64_t delta_version() const;
  /// Newest observe stamp across live sealed sessions (0 when none).
  uint64_t watermark_unix_ms() const;
  uint64_t base_version() const { return config_.base_version; }

 private:
  struct OpenSession {
    std::vector<ItemId> items;  // click order, duplicates kept until seal
    uint64_t first_ms = 0;
    uint64_t last_ms = 0;
    uint64_t arrival_seq = 0;  // tie-break for deterministic seal order
  };
  struct SealedSession {
    std::vector<ItemId> items;  // distinct, ascending
    uint64_t last_ms = 0;       // observe stamp of the final click
  };

  const DeltaBuilderConfig config_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, OpenSession> open_;
  std::deque<SealedSession> sealed_;  // seal order; TTL expires the front
  uint64_t arrival_seq_ = 0;
  uint64_t version_ = 0;           // last compacted version
  uint64_t sealed_total_ = 0;      // monotone: sessions ever sealed
  uint64_t expired_total_ = 0;     // monotone: sessions ever expired
  // Signature of the sealed log at the last Compact(); content changed
  // iff (sealed_total_, expired_total_) moved.
  uint64_t compacted_sealed_total_ = 0;
  uint64_t compacted_expired_total_ = 0;
  uint64_t watermark_ms_ = 0;

  uint64_t clicks_ = 0;
  uint64_t clicks_dropped_ = 0;
  uint64_t dropped_short_ = 0;
};

}  // namespace serenade
