#include "obs/trace.h"

#include <chrono>

#include "common/hash.h"
#include "common/logging.h"

namespace serenade {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kParse: return "parse";
    case TraceStage::kStoreGet: return "store_get";
    case TraceStage::kStorePut: return "store_put";
    case TraceStage::kSnapshotPin: return "snapshot_pin";
    case TraceStage::kKnnRetrieve: return "knn_retrieve";
    case TraceStage::kRank: return "rank";
    case TraceStage::kSerialize: return "serialize";
    case TraceStage::kForward: return "forward";
    case TraceStage::kQueueWait: return "queue_wait";
  }
  return "unknown";
}

std::string GenerateTraceId() {
  // Process-unique without coordination: a global draw counter mixed with
  // the process start time, pushed through a 64-bit finalizer. Two
  // processes (gateway + pods) disagree on the time component, so ids
  // stay distinct across the fleet with overwhelming probability.
  static std::atomic<uint64_t> counter{0};
  static const uint64_t process_seed = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (static_cast<uint64_t>(
           std::chrono::system_clock::now().time_since_epoch().count())
       << 1);
  const uint64_t draw =
      Mix64(process_seed + 0x9e3779b97f4a7c15ULL *
                               (counter.fetch_add(1,
                                                  std::memory_order_relaxed) +
                                1));
  static constexpr char kHex[] = "0123456789abcdef";
  std::string id(16, '0');
  for (int i = 0; i < 16; ++i) {
    id[15 - i] = kHex[(draw >> (4 * i)) & 0xF];
  }
  return id;
}

bool IsValidTraceId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                     (c >= 'A' && c <= 'F');
    if (!hex) return false;
  }
  return true;
}

std::string Trace::Describe() const {
  std::string out = "trace_id=" + id_;
  out += " total_us=" + std::to_string(TotalMicros());
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    if (stage_counts_[i] == 0) continue;
    out += ' ';
    out += TraceStageName(static_cast<TraceStage>(i));
    out += "_us=" + std::to_string(stage_micros_[i]);
  }
  return out;
}

bool SlowRequestLogger::MaybeLog(const Trace& trace, const char* tier,
                                 const std::string& path, int http_status) {
  if (config_.slow_request_micros == 0) return false;
  if (trace.TotalMicros() < config_.slow_request_micros) return false;
  const uint64_t seen = seen_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t every = config_.sample_every_n == 0 ? 1
                                                     : config_.sample_every_n;
  if (seen % every != 0) return false;
  logged_.fetch_add(1, std::memory_order_relaxed);
  LOG_WARNING << "slow_request tier=" << tier << " path=" << path
              << " status=" << http_status << " " << trace.Describe();
  return true;
}

}  // namespace serenade
