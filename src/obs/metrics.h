// Process-wide metrics substrate for the serving tiers: one
// MetricsRegistry per server instance hands out typed handles (counters,
// gauges, latency histograms, callback-backed metrics) and renders them
// all through a single Prometheus text-exposition writer — the shared
// replacement for the bespoke snprintf /metrics emitters the pod server
// and the cluster gateway used to duplicate.
//
// Hot-path cost model: counters and gauges are single relaxed atomics;
// histograms reuse ShardedHistogram (per-thread shard selection, one
// cache-line-separated lock per shard) so concurrent request threads do
// not serialise. Registration and rendering take the registry mutex;
// both are rare (startup / scrape) relative to recording.
//
// Naming conventions (see DESIGN.md §8):
//   <tier>_<noun>_total        counters   (tier = serenade | gateway)
//   <tier>_<noun>              gauges
//   <tier>_<noun>_microseconds histograms, rendered as summaries with
//                              quantile labels + _count + _sum
// Labeled families carry exactly one label key (backend=..., stage=...).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace serenade {

/// Monotonic counter. Lock-free; safe for concurrent Increment.
class MetricCounter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time gauge. Lock-free; safe for concurrent Set.
class MetricGauge {
 public:
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Latency histogram rendered as a Prometheus summary (quantiles 0.5,
/// 0.75, 0.9, 0.99, 0.995 plus _count and _sum). Recording goes to the
/// calling thread's shard.
class MetricHistogram {
 public:
  void Record(uint64_t value) { sharded_.Record(value); }
  Histogram Merged() const { return sharded_.Merged(); }

 private:
  ShardedHistogram sharded_;
};

enum class MetricType { kCounter, kGauge };

/// One sample produced by a callback metric: `label_value` is rendered
/// with the family's label key ("" = unlabeled single sample).
struct MetricSample {
  std::string label_value;
  uint64_t value = 0;
};

/// Pull-style metric: invoked at scrape time. Used for values owned by
/// other components (session-store stats, index-manager versions, health
/// snapshots) so the registry never caches stale copies of them.
using MetricCallback = std::function<std::vector<MetricSample>()>;

/// Thread-safe metric registry + Prometheus text renderer. Handles
/// returned by Add* are stable for the registry's lifetime; registering
/// the same (name, label) twice returns the existing handle.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Unlabeled counter.
  MetricCounter& AddCounter(const std::string& name, const std::string& help);
  /// Member of a one-label counter family (e.g. backend="pod-0").
  MetricCounter& AddCounter(const std::string& name, const std::string& help,
                            const std::string& label_key,
                            const std::string& label_value);

  MetricGauge& AddGauge(const std::string& name, const std::string& help);
  MetricGauge& AddGauge(const std::string& name, const std::string& help,
                        const std::string& label_key,
                        const std::string& label_value);

  MetricHistogram& AddHistogram(const std::string& name,
                                const std::string& help);
  MetricHistogram& AddHistogram(const std::string& name,
                                const std::string& help,
                                const std::string& label_key,
                                const std::string& label_value);

  /// Callback-backed counter or gauge; `label_key` is "" for a single
  /// unlabeled sample.
  void AddCallback(const std::string& name, const std::string& help,
                   MetricType type, const std::string& label_key,
                   MetricCallback callback);

  /// Renders every registered metric in registration order as Prometheus
  /// text exposition format 0.0.4.
  std::string RenderPrometheus() const;

  /// The scrape Content-Type for RenderPrometheus output.
  static const char* ContentType() { return "text/plain; version=0.0.4"; }

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };

  struct Member {
    std::string label_value;  // "" = unlabeled
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
  };

  struct Family {
    std::string name;
    std::string help;
    std::string label_key;  // "" = unlabeled family
    Kind kind = Kind::kCounter;
    MetricType callback_type = MetricType::kCounter;
    MetricCallback callback;
    std::vector<std::unique_ptr<Member>> members;
  };

  Family& FamilyFor(const std::string& name, const std::string& help,
                    const std::string& label_key, Kind kind);
  Member& MemberFor(Family& family, const std::string& label_value);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;
};

}  // namespace serenade
