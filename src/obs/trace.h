// Per-request tracing for the serving tiers. A Trace is created when a
// request enters a tier (gateway accept or pod accept), carries a
// process-unique hex trace id plus per-stage accumulated timings, and is
// threaded by pointer through the handler, the service, and the session
// store. Stages are recorded with RAII Span guards, so every early
// return is timed correctly.
//
// Trace-context propagation: the gateway stamps the id onto proxied
// requests as the `X-Serenade-Trace-Id` header; backends adopt an
// incoming id instead of minting their own and echo it on the response,
// so one id follows a request gateway -> pod -> stage breakdown.
//
// A Trace is owned by exactly one request thread; it is intentionally
// unsynchronised (plain uint64 accumulation, no atomics) — never share
// one Trace across threads. All APIs accept a null Trace* and degrade to
// no-ops so untraced callers (tests, offline tools) pay nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/stopwatch.h"

namespace serenade {

/// Request stages the serving tiers attribute latency to (the per-stage
/// breakdown behind the paper's Figure 3 latency analysis).
enum class TraceStage {
  kParse = 0,      ///< HTTP parse + request validation
  kStoreGet,       ///< session-store point read
  kStorePut,       ///< session-store read-modify-write
  kSnapshotPin,    ///< index-snapshot pin + recommender acquisition
  kKnnRetrieve,    ///< VMIS-kNN scoring
  kRank,           ///< business rules / ranking
  kSerialize,      ///< response JSON serialization
  kForward,        ///< gateway: backend forwarding (all attempts)
  kQueueWait,      ///< micro-batch executor: time spent queued
};
inline constexpr size_t kNumTraceStages = 9;

/// Stable label for a stage (used as the Prometheus `stage` label and in
/// slow-request log lines).
const char* TraceStageName(TraceStage stage);

/// Generates a process-unique 16-hex-digit trace id.
std::string GenerateTraceId();

/// Returns true when `id` looks like a well-formed trace id (1-64 hex
/// chars) — malformed inbound headers are replaced, not propagated.
bool IsValidTraceId(const std::string& id);

/// One request's trace context: id + per-stage accumulated timings.
class Trace {
 public:
  /// Mints a fresh id.
  Trace() : id_(GenerateTraceId()) {}
  /// Adopts a propagated id (gateway -> pod).
  explicit Trace(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }

  /// Adds one timed occurrence of `stage`. Stages hit multiple times per
  /// request (e.g. store reads) accumulate.
  void Record(TraceStage stage, uint64_t micros) {
    stage_micros_[static_cast<size_t>(stage)] += micros;
    stage_counts_[static_cast<size_t>(stage)] += 1;
  }

  uint64_t StageMicros(TraceStage stage) const {
    return stage_micros_[static_cast<size_t>(stage)];
  }
  uint64_t StageCount(TraceStage stage) const {
    return stage_counts_[static_cast<size_t>(stage)];
  }

  /// Wall time since the trace was created (request admission).
  uint64_t TotalMicros() const { return lifetime_.ElapsedMicros(); }

  /// `trace_id=... total_us=... parse_us=... ...` — stages that never ran
  /// are omitted. The structured tail of a slow-request log line.
  std::string Describe() const;

 private:
  std::string id_;
  Stopwatch lifetime_;
  uint64_t stage_micros_[kNumTraceStages] = {};
  uint64_t stage_counts_[kNumTraceStages] = {};
};

/// RAII stage timer: records elapsed time into the trace on destruction
/// (or at an explicit End()). Null trace = no-op.
class Span {
 public:
  Span(Trace* trace, TraceStage stage) : trace_(trace), stage_(stage) {}
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Stops the span early; idempotent.
  void End() {
    if (trace_ == nullptr) return;
    trace_->Record(stage_, watch_.ElapsedMicros());
    trace_ = nullptr;
  }

 private:
  Trace* trace_;
  TraceStage stage_;
  Stopwatch watch_;
};

/// Slow-request logging policy. threshold 0 disables; sample_every_n = N
/// logs every Nth slow request (1 = all), bounding log volume when a
/// whole fleet degrades at once.
struct TraceConfig {
  uint64_t slow_request_micros = 0;
  uint64_t sample_every_n = 1;
};

/// Emits sampled structured slow-request lines through common/logging.
/// Thread-safe: the sampling counter is atomic.
class SlowRequestLogger {
 public:
  explicit SlowRequestLogger(TraceConfig config) : config_(config) {}

  /// Logs `trace` if it exceeded the threshold and the sampler picks it.
  /// Returns true when a line was emitted.
  bool MaybeLog(const Trace& trace, const char* tier, const std::string& path,
                int http_status);

  uint64_t slow_requests_seen() const {
    return seen_.load(std::memory_order_relaxed);
  }
  uint64_t slow_requests_logged() const {
    return logged_.load(std::memory_order_relaxed);
  }

 private:
  TraceConfig config_;
  std::atomic<uint64_t> seen_{0};
  std::atomic<uint64_t> logged_{0};
};

}  // namespace serenade
