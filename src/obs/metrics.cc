#include "obs/metrics.h"

#include <cstdio>

namespace serenade {

namespace {

const char* TypeName(MetricType type) {
  return type == MetricType::kCounter ? "counter" : "gauge";
}

// Label values land inside double quotes; escape per the exposition spec.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void AppendHeader(std::string* body, const std::string& name,
                  const std::string& help, const char* type) {
  *body += "# HELP " + name + " " + help + "\n";
  *body += "# TYPE " + name + " " + std::string(type) + "\n";
}

void AppendSample(std::string* body, const std::string& name,
                  const std::string& labels, uint64_t value) {
  *body += name;
  *body += labels;
  *body += ' ';
  *body += std::to_string(value);
  *body += '\n';
}

// Renders `{key="value"}` (or "" when the family is unlabeled), with an
// optional extra quantile label appended for summary samples.
std::string RenderLabels(const std::string& key, const std::string& value) {
  if (key.empty()) return "";
  return "{" + key + "=\"" + EscapeLabelValue(value) + "\"}";
}

std::string RenderLabelsWithQuantile(const std::string& key,
                                     const std::string& value,
                                     const char* quantile) {
  std::string out = "{";
  if (!key.empty()) {
    out += key + "=\"" + EscapeLabelValue(value) + "\",";
  }
  out += "quantile=\"";
  out += quantile;
  out += "\"}";
  return out;
}

constexpr struct {
  double q;
  const char* text;
} kSummaryQuantiles[] = {{0.5, "0.5"},
                         {0.75, "0.75"},
                         {0.9, "0.9"},
                         {0.99, "0.99"},
                         {0.995, "0.995"}};

}  // namespace

MetricsRegistry::Family& MetricsRegistry::FamilyFor(
    const std::string& name, const std::string& help,
    const std::string& label_key, Kind kind) {
  for (auto& family : families_) {
    if (family->name == name) return *family;
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->label_key = label_key;
  family->kind = kind;
  families_.push_back(std::move(family));
  return *families_.back();
}

MetricsRegistry::Member& MetricsRegistry::MemberFor(
    Family& family, const std::string& label_value) {
  for (auto& member : family.members) {
    if (member->label_value == label_value) return *member;
  }
  auto member = std::make_unique<Member>();
  member->label_value = label_value;
  switch (family.kind) {
    case Kind::kCounter:
      member->counter = std::make_unique<MetricCounter>();
      break;
    case Kind::kGauge:
      member->gauge = std::make_unique<MetricGauge>();
      break;
    case Kind::kHistogram:
      member->histogram = std::make_unique<MetricHistogram>();
      break;
    case Kind::kCallback:
      break;
  }
  family.members.push_back(std::move(member));
  return *family.members.back();
}

MetricCounter& MetricsRegistry::AddCounter(const std::string& name,
                                           const std::string& help) {
  return AddCounter(name, help, "", "");
}

MetricCounter& MetricsRegistry::AddCounter(const std::string& name,
                                           const std::string& help,
                                           const std::string& label_key,
                                           const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, label_key, Kind::kCounter);
  return *MemberFor(family, label_value).counter;
}

MetricGauge& MetricsRegistry::AddGauge(const std::string& name,
                                       const std::string& help) {
  return AddGauge(name, help, "", "");
}

MetricGauge& MetricsRegistry::AddGauge(const std::string& name,
                                       const std::string& help,
                                       const std::string& label_key,
                                       const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, label_key, Kind::kGauge);
  return *MemberFor(family, label_value).gauge;
}

MetricHistogram& MetricsRegistry::AddHistogram(const std::string& name,
                                               const std::string& help) {
  return AddHistogram(name, help, "", "");
}

MetricHistogram& MetricsRegistry::AddHistogram(const std::string& name,
                                               const std::string& help,
                                               const std::string& label_key,
                                               const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, label_key, Kind::kHistogram);
  return *MemberFor(family, label_value).histogram;
}

void MetricsRegistry::AddCallback(const std::string& name,
                                  const std::string& help, MetricType type,
                                  const std::string& label_key,
                                  MetricCallback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, label_key, Kind::kCallback);
  family.callback_type = type;
  family.callback = std::move(callback);
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body;
  body.reserve(4096);
  for (const auto& family : families_) {
    switch (family->kind) {
      case Kind::kCounter:
        AppendHeader(&body, family->name, family->help, "counter");
        for (const auto& member : family->members) {
          AppendSample(&body, family->name,
                       RenderLabels(family->label_key, member->label_value),
                       member->counter->value());
        }
        break;
      case Kind::kGauge:
        AppendHeader(&body, family->name, family->help, "gauge");
        for (const auto& member : family->members) {
          AppendSample(&body, family->name,
                       RenderLabels(family->label_key, member->label_value),
                       member->gauge->value());
        }
        break;
      case Kind::kHistogram:
        AppendHeader(&body, family->name, family->help, "summary");
        for (const auto& member : family->members) {
          const Histogram merged = member->histogram->Merged();
          for (const auto& quantile : kSummaryQuantiles) {
            AppendSample(
                &body, family->name,
                RenderLabelsWithQuantile(family->label_key,
                                         member->label_value, quantile.text),
                merged.Percentile(quantile.q));
          }
          const std::string labels =
              RenderLabels(family->label_key, member->label_value);
          AppendSample(&body, family->name + "_count", labels,
                       merged.count());
          AppendSample(&body, family->name + "_sum", labels,
                       static_cast<uint64_t>(merged.Mean() *
                                             static_cast<double>(
                                                 merged.count())));
        }
        break;
      case Kind::kCallback: {
        AppendHeader(&body, family->name, family->help,
                     TypeName(family->callback_type));
        if (!family->callback) break;
        for (const MetricSample& sample : family->callback()) {
          AppendSample(&body, family->name,
                       RenderLabels(family->label_key, sample.label_value),
                       sample.value);
        }
        break;
      }
    }
  }
  return body;
}

}  // namespace serenade
