// Offline ranking metrics for session-based recommendation, following the
// evaluation protocol of the paper (Section 5.1.1) and the session-rec
// benchmark it replicates: for every prefix of a test session, the model
// predicts a top-N list; MRR/HitRate judge the immediate next item, while
// Precision/Recall/MAP judge the remainder of the session.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/recommender.h"

namespace serenade {

/// Accumulates metric sums over prediction events; Finalize() divides by
/// the event count. All metrics are @N for the cutoff passed at Add time.
class MetricsAccumulator {
 public:
  /// Scores one prediction event.
  /// `recommended`: model output, best first (already cut to N).
  /// `next_item`:   the immediate next item of the session.
  /// `remainder`:   all remaining items of the session (starts with
  ///                next_item).
  void Add(const std::vector<ScoredItem>& recommended, ItemId next_item,
           const std::vector<ItemId>& remainder);

  size_t num_events() const { return num_events_; }

  double Mrr() const;        ///< mean reciprocal rank of the next item
  double HitRate() const;    ///< fraction of events with the next item in the list
  double Precision() const;  ///< |recommended ∩ remainder| / N
  double Recall() const;     ///< |recommended ∩ remainder| / |remainder|
  double Map() const;        ///< mean average precision over the remainder

  void Merge(const MetricsAccumulator& other);

  /// "MRR@20=0.2860 P@20=0.0722 ..." summary.
  std::string Summary(size_t cutoff) const;

 private:
  size_t num_events_ = 0;
  double mrr_sum_ = 0.0;
  double hit_sum_ = 0.0;
  double precision_sum_ = 0.0;
  double recall_sum_ = 0.0;
  double map_sum_ = 0.0;
};

}  // namespace serenade
