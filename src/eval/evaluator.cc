#include "eval/evaluator.h"

#include <map>

#include "common/stopwatch.h"

namespace serenade {

EvalResult EvaluateRecommender(Recommender& recommender, const Dataset& test,
                               const EvalOptions& options) {
  EvalResult result;
  size_t session_count = 0;
  EvolvingSession evolving;
  for (const SessionData& session : test.sessions()) {
    if (options.max_sessions > 0 && session_count >= options.max_sessions) {
      break;
    }
    ++session_count;
    if (session.items.size() < 2) continue;

    evolving.clear();
    for (size_t position = 0; position + 1 < session.items.size();
         ++position) {
      evolving.push_back(session.items[position]);

      Stopwatch stopwatch;
      const std::vector<ScoredItem> recommended =
          recommender.RecommendNext(evolving, options.cutoff);
      if (options.record_latency) {
        result.latency_micros.Record(stopwatch.ElapsedMicros());
      }

      const ItemId next_item = session.items[position + 1];
      const std::vector<ItemId> remainder(
          session.items.begin() + static_cast<ptrdiff_t>(position + 1),
          session.items.end());
      result.metrics.Add(recommended, next_item, remainder);
    }
  }
  return result;
}

std::vector<DailyEvalResult> EvaluateRecommenderPerDay(
    Recommender& recommender, const Dataset& test,
    const EvalOptions& options) {
  std::vector<DailyEvalResult> results;
  if (test.num_sessions() == 0) return results;
  const Timestamp window_start = test.min_timestamp();

  // Group sessions by their end-time day, preserving chronological order
  // (the dataset is already sorted by end time).
  std::map<size_t, DailyEvalResult> by_day;
  size_t session_count = 0;
  EvolvingSession evolving;
  for (const SessionData& session : test.sessions()) {
    if (options.max_sessions > 0 && session_count >= options.max_sessions) {
      break;
    }
    ++session_count;
    if (session.items.size() < 2) continue;
    const size_t day =
        static_cast<size_t>((session.end_time - window_start) / 86400);
    DailyEvalResult& daily = by_day[day];
    daily.day_index = day;
    ++daily.num_sessions;

    evolving.clear();
    for (size_t position = 0; position + 1 < session.items.size();
         ++position) {
      evolving.push_back(session.items[position]);
      const std::vector<ScoredItem> recommended =
          recommender.RecommendNext(evolving, options.cutoff);
      const std::vector<ItemId> remainder(
          session.items.begin() + static_cast<ptrdiff_t>(position + 1),
          session.items.end());
      daily.metrics.Add(recommended, session.items[position + 1], remainder);
    }
  }
  results.reserve(by_day.size());
  for (auto& [day, daily] : by_day) results.push_back(std::move(daily));
  return results;
}

}  // namespace serenade
