#include "eval/grid_search.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <thread>

#include "common/thread_pool.h"
#include "eval/evaluator.h"

namespace serenade {

std::vector<GridCell> GridSearch(const Dataset& train, const Dataset& test,
                                 const GridSearchOptions& options) {
  const size_t num_threads =
      options.num_threads > 0
          ? options.num_threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  ThreadPool pool(num_threads);

  // One index per distinct m (the index's per-item cap must cover m).
  std::set<size_t> distinct_m(options.m_values.begin(),
                              options.m_values.end());
  std::map<size_t, SessionIndex> indexes;
  for (size_t m : distinct_m) {
    indexes.emplace(m, SessionIndex::Build(train, m));
  }

  std::vector<GridCell> cells(options.k_values.size() *
                              options.m_values.size());
  for (size_t ki = 0; ki < options.k_values.size(); ++ki) {
    for (size_t mi = 0; mi < options.m_values.size(); ++mi) {
      const size_t index = ki * options.m_values.size() + mi;
      const size_t k = options.k_values[ki];
      const size_t m = options.m_values[mi];
      pool.Schedule([&, index, k, m] {
        KnnConfig config = options.base_config;
        config.m = m;
        config.k = std::min(k, m);  // k <= m by definition
        VmisKnn model(&indexes.at(m), config);
        EvalOptions eval_options;
        eval_options.cutoff = options.cutoff;
        eval_options.max_sessions = options.max_test_sessions;
        const EvalResult result =
            EvaluateRecommender(model, test, eval_options);
        cells[index] =
            GridCell{k, m, result.metrics.Mrr(), result.metrics.Precision(),
                     result.metrics.Recall(), result.metrics.Map()};
      });
    }
  }
  pool.Wait();
  return cells;
}

std::string FormatGrid(const std::vector<GridCell>& cells,
                       const std::string& metric) {
  if (cells.empty()) return "";
  std::vector<size_t> k_values, m_values;
  for (const GridCell& cell : cells) {
    if (std::find(k_values.begin(), k_values.end(), cell.k) == k_values.end())
      k_values.push_back(cell.k);
    if (std::find(m_values.begin(), m_values.end(), cell.m) == m_values.end())
      m_values.push_back(cell.m);
  }

  auto metric_of = [&](const GridCell& cell) {
    if (metric == "precision") return cell.precision;
    if (metric == "recall") return cell.recall;
    if (metric == "map") return cell.map;
    return cell.mrr;
  };

  std::string out = "k \\ m ";
  char buf[64];
  for (size_t m : m_values) {
    std::snprintf(buf, sizeof(buf), "%8zu", m);
    out += buf;
  }
  out += '\n';
  for (size_t ki = 0; ki < k_values.size(); ++ki) {
    std::snprintf(buf, sizeof(buf), "%-6zu", k_values[ki]);
    out += buf;
    for (size_t mi = 0; mi < m_values.size(); ++mi) {
      std::snprintf(buf, sizeof(buf), "%8.4f",
                    metric_of(cells[ki * m_values.size() + mi]));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace serenade
