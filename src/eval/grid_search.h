// Exhaustive hyperparameter grid search over (k, m) for VMIS-kNN — the
// machinery behind the Figure 2 sensitivity heatmaps and the paper's
// observation that "VMIS-kNN is easy to tune via offline grid search".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "data/click_log.h"

namespace serenade {

/// One grid cell result.
struct GridCell {
  size_t k = 0;
  size_t m = 0;
  double mrr = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double map = 0.0;
};

struct GridSearchOptions {
  std::vector<size_t> k_values{50, 100, 500, 1000, 1500};
  std::vector<size_t> m_values{20, 50, 100, 500, 1000, 2500, 5000, 10000};
  KnnConfig base_config;         ///< everything but k/m is taken from here
  size_t cutoff = 20;
  size_t max_test_sessions = 0;  ///< 0 = all
  size_t num_threads = 0;        ///< 0 = hardware concurrency
};

/// Runs the full k x m grid in parallel (one index per distinct m, shared
/// across the k sweep). Cells are returned in row-major (k-major) order.
std::vector<GridCell> GridSearch(const Dataset& train, const Dataset& test,
                                 const GridSearchOptions& options);

/// Renders a heatmap-style text table of one metric ("mrr", "precision",
/// "recall", "map") with k rows and m columns, mimicking Figure 2.
std::string FormatGrid(const std::vector<GridCell>& cells,
                       const std::string& metric);

}  // namespace serenade
