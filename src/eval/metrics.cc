#include "eval/metrics.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace serenade {

void MetricsAccumulator::Add(const std::vector<ScoredItem>& recommended,
                             ItemId next_item,
                             const std::vector<ItemId>& remainder) {
  ++num_events_;
  if (recommended.empty() || remainder.empty()) return;

  const size_t n = recommended.size();

  // MRR / HitRate on the immediate next item.
  for (size_t rank = 0; rank < n; ++rank) {
    if (recommended[rank].item == next_item) {
      mrr_sum_ += 1.0 / static_cast<double>(rank + 1);
      hit_sum_ += 1.0;
      break;
    }
  }

  // Precision / Recall / MAP on the session remainder (distinct items).
  std::unordered_set<ItemId> relevant(remainder.begin(), remainder.end());
  size_t hits = 0;
  double average_precision = 0.0;
  for (size_t rank = 0; rank < n; ++rank) {
    if (relevant.find(recommended[rank].item) != relevant.end()) {
      ++hits;
      average_precision +=
          static_cast<double>(hits) / static_cast<double>(rank + 1);
    }
  }
  precision_sum_ += static_cast<double>(hits) / static_cast<double>(n);
  recall_sum_ +=
      static_cast<double>(hits) / static_cast<double>(relevant.size());
  if (!relevant.empty()) {
    average_precision /=
        static_cast<double>(std::min(relevant.size(), n));
    map_sum_ += average_precision;
  }
}

double MetricsAccumulator::Mrr() const {
  return num_events_ == 0 ? 0.0 : mrr_sum_ / num_events_;
}
double MetricsAccumulator::HitRate() const {
  return num_events_ == 0 ? 0.0 : hit_sum_ / num_events_;
}
double MetricsAccumulator::Precision() const {
  return num_events_ == 0 ? 0.0 : precision_sum_ / num_events_;
}
double MetricsAccumulator::Recall() const {
  return num_events_ == 0 ? 0.0 : recall_sum_ / num_events_;
}
double MetricsAccumulator::Map() const {
  return num_events_ == 0 ? 0.0 : map_sum_ / num_events_;
}

void MetricsAccumulator::Merge(const MetricsAccumulator& other) {
  num_events_ += other.num_events_;
  mrr_sum_ += other.mrr_sum_;
  hit_sum_ += other.hit_sum_;
  precision_sum_ += other.precision_sum_;
  recall_sum_ += other.recall_sum_;
  map_sum_ += other.map_sum_;
}

std::string MetricsAccumulator::Summary(size_t cutoff) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "MRR@%zu=%.4f HR@%zu=%.4f P@%zu=%.4f R@%zu=%.4f MAP@%zu=%.4f "
                "(events=%zu)",
                cutoff, Mrr(), cutoff, HitRate(), cutoff, Precision(), cutoff,
                Recall(), cutoff, Map(), num_events_);
  return buf;
}

}  // namespace serenade
