// The incremental next-item evaluation loop: replays every test session
// click by click against a recommender and scores each prediction, also
// recording per-prediction latency (the measurement behind Figure 3(a)).
#pragma once

#include <cstddef>

#include "common/histogram.h"
#include "core/recommender.h"
#include "data/click_log.h"
#include "eval/metrics.h"

namespace serenade {

/// Evaluation options.
struct EvalOptions {
  size_t cutoff = 20;            ///< top-N cutoff (the paper uses @20)
  size_t max_sessions = 0;       ///< 0 = all test sessions
  bool record_latency = false;   ///< fill EvalResult::latency_micros
};

/// Metrics plus (optionally) the latency distribution of RecommendNext.
struct EvalResult {
  MetricsAccumulator metrics;
  Histogram latency_micros;
};

/// Replays each test session incrementally: after each click (except the
/// last), asks for `cutoff` recommendations and scores them against the
/// next item / session remainder.
EvalResult EvaluateRecommender(Recommender& recommender, const Dataset& test,
                               const EvalOptions& options);

/// One day's metrics within a multi-day evaluation window.
struct DailyEvalResult {
  size_t day_index = 0;           ///< 0 = first day of the test window
  size_t num_sessions = 0;
  MetricsAccumulator metrics;
};

/// Evaluates day by day (days delimited by the session end timestamp) —
/// the per-day view behind A/B-test style reporting, exposing metric
/// stability across the window.
std::vector<DailyEvalResult> EvaluateRecommenderPerDay(
    Recommender& recommender, const Dataset& test, const EvalOptions& options);

}  // namespace serenade
