// ClusterGateway: the fleet-routing front door of Figure 1. An HTTP
// server that owns a set of Serenade pod endpoints and routes /recommend
// by session key over a consistent-hash ring (sticky sessions), with
// active health checking, bounded retries with exponential backoff and
// jitter against the next ring replica, optional hedged second requests
// for tail latency, and graceful degradation to an in-process popularity
// recommender when the whole fleet is down — the client sees
// {"degraded":true}, never a 5xx.
//
// Observability: every /recommend request carries a Trace; the gateway
// stamps its id onto proxied requests as X-Serenade-Trace-Id, backends
// adopt and echo it, and both tiers emit sampled structured slow-request
// log lines keyed by the same id — a fleet-level p99 outlier can be
// followed gateway -> pod -> stage. All gateway metrics live in one
// MetricsRegistry (src/obs), which renders /metrics.
//
// Routes (versioned /v1 API; unversioned paths remain as deprecated
// aliases stamping `Deprecation: true`, see API.md):
//   GET  /v1/recommend?session_id=<key>&item_id=<id>[...] -> forwarded
//   POST /v1/recommend        body {"session_id":...}     -> forwarded
//   POST /v1/recommend:batch  body {"requests":[...]}
//        -> scatter-gathered: slots are grouped by their session key's
//           ring owner, forwarded as per-backend sub-batches, and merged
//           back in request order; a failed sub-batch degrades or errors
//           only its own slots
//   GET  /v1/healthz  -> gateway liveness + healthy-backend count
//   GET  /v1/stats    -> aggregate + per-backend counters (JSON)
//   GET  /v1/metrics  -> Prometheus text exposition (MetricsRegistry)
//
// Elastic-fleet control plane (versioned, epoch-fenced; see API.md):
//   GET  /v1/admin/cluster         -> ring membership, epoch, per-member
//                                     health + replica lag
//   POST /v1/admin/cluster/join    {"epoch":E,"name":N,"port":P}
//   POST /v1/admin/cluster/drain   {"epoch":E,"name":N}
//   POST /v1/admin/cluster/remove  {"epoch":E,"name":N}
// Mutations must carry the current ring epoch; a stale epoch is rejected
// with 409 + the error envelope (and the current epoch), so two racing
// operators can never fork the ring. With manage_replication on, the
// gateway also orchestrates the data motion: join/drain run the
// snapshot + tail-chase + cutover hand-off on the affected donors before
// the ring flips, and remove promotes the dead pod's replica on its ring
// successor first.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/health.h"
#include "common/status.h"
#include "core/recommender.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/client_pool.h"
#include "serving/http.h"
#include "serving/json.h"

namespace serenade {

struct GatewayConfig {
  uint16_t port = 0;  ///< 0 = ephemeral
  /// Virtual nodes per backend on the placement ring.
  size_t virtual_nodes = 128;
  /// Per-attempt connect + read deadline when forwarding.
  uint64_t forward_timeout_ms = 1000;
  /// Total forwarding attempts per request across ring replicas.
  uint32_t max_attempts = 3;
  /// Base backoff before retry n is backoff * 2^(n-1) plus jitter.
  uint64_t retry_backoff_ms = 2;
  /// Hedge a second request against the next replica when the primary
  /// has not answered within this delay (0 = hedging disabled).
  uint64_t hedge_delay_ms = 0;
  /// Items served by the degraded-mode fallback recommender.
  size_t fallback_items = 21;
  /// Idle keep-alive connections retained per backend.
  size_t max_pooled_clients = 8;
  /// Largest accepted /v1/recommend:batch request (413 beyond).
  size_t max_batch_items = 128;
  HealthCheckerConfig health;
  /// Slow-request logging policy (threshold 0 = disabled).
  TraceConfig trace;
  /// Front-door reactor tuning (connection cap, timeouts, threads).
  HttpServerOptions http;
  /// When set, membership changes orchestrate the replication data plane:
  /// join/drain run session hand-offs on the affected donors, remove
  /// promotes the dead pod's replica, and every change re-pushes each
  /// pod's shipping peer. Off = pure membership mutations (pods without
  /// the replication subsystem attached).
  bool manage_replication = false;
  /// Per-call deadline for control-plane calls to pods (hand-offs move
  /// real data, so this is much larger than forward_timeout_ms).
  uint64_t admin_timeout_ms = 15000;
  /// Retries for a failed hand-off/promote call before the membership
  /// change is abandoned (a donor may 500 mid-transfer and resume).
  uint32_t admin_retry_attempts = 100;
  /// A/B experiment knob: percent of sessions (0-100) bucketed into the
  /// ANN retrieval arm. Buckets are sticky per session key (pure hash of
  /// key + ab_salt, no per-request state), the gateway stamps the bucket
  /// as `engine=` on every forwarded request, and a client-specified
  /// engine always wins over the bucket. 0 = experiment off.
  uint32_t ab_ann_percent = 0;
  /// Salt folded into the bucket hash so re-running the experiment
  /// re-shuffles which sessions land in which arm.
  uint64_t ab_salt = 0;
  /// Sessions tracked for the engagement read-out (shown-items memory);
  /// beyond this, new sessions are served but not quality-tracked.
  size_t ab_engagement_capacity = 65536;
};

/// Aggregate gateway counters (monotonic).
struct GatewayCounters {
  uint64_t forwarded_ok = 0;       ///< requests answered by a backend
  uint64_t degraded = 0;           ///< requests served by the fallback
  uint64_t failed = 0;             ///< requests that returned an error
  uint64_t retries = 0;            ///< extra attempts after the first
  uint64_t hedges = 0;             ///< hedged second requests launched
  uint64_t hedge_wins = 0;         ///< hedges that beat the primary
};

/// Per-arm A/B experiment counters (monotonic; [0]=vmis, [1]=ann, indexed
/// by the engine the gateway assigned to the request).
struct AbCounters {
  uint64_t requests[2] = {0, 0};     ///< forwarded recommend requests
  uint64_t impressions[2] = {0, 0};  ///< responses whose items were tracked
  uint64_t engagements[2] = {0, 0};  ///< next click hit a shown item
  /// ANN-arm requests a pod actually served with VMIS (dead-arm
  /// degradation, detected via the X-Serenade-Engine response header).
  uint64_t fallbacks = 0;
};

/// Per-backend forwarding counters (monotonic).
struct BackendCounters {
  std::string name;
  uint64_t requests = 0;  ///< forwarding attempts sent
  uint64_t errors = 0;    ///< attempts that failed (error status or 5xx)
};

class ClusterGateway {
 public:
  /// `fallback` powers degraded-mode serving; when null, an all-backends-
  /// down request returns 503 instead.
  ClusterGateway(std::vector<BackendEndpoint> backends, GatewayConfig config,
                 std::unique_ptr<Recommender> fallback = nullptr);
  ~ClusterGateway();

  ClusterGateway(const ClusterGateway&) = delete;
  ClusterGateway& operator=(const ClusterGateway&) = delete;

  /// Probes the fleet once, then starts the front door and the health
  /// checker.
  Status Start();
  void Stop();

  uint16_t port() const { return http_ ? http_->port() : 0; }
  HealthChecker& health() { return *health_; }
  uint64_t requests_served() const {
    return http_ ? http_->requests_served() : 0;
  }
  GatewayCounters counters() const;
  std::vector<BackendCounters> backend_counters() const;
  /// A/B experiment read-out (zeros when ab_ann_percent is 0 and no
  /// client ever asked for an explicit engine).
  AbCounters ab_counters() const;

  /// The experiment arm `session_key` is bucketed into ("vmis" | "ann"),
  /// before any client override — the sticky assignment tests assert on.
  const char* AbArmOf(const std::string& session_key) const;

  /// The gateway's metric registry (handed to tests and collectors).
  MetricsRegistry& metrics() { return registry_; }

  /// Current fleet-membership epoch (starts at 1; bumped per change).
  uint64_t ring_epoch() const;

  /// The pod currently owning `session_key` on the live ring ("" for an
  /// empty ring). Resolved under the membership lock — the answer tests
  /// use to find where a session must live after a rebalance.
  std::string OwnerOf(const std::string& session_key) const;

  /// Current members (name + port) under the membership lock.
  std::vector<BackendEndpoint> Members() const;

  /// Pushes each member's shipping peer (its ring successor) and the
  /// current epoch to the fleet. Called automatically at Start() and
  /// after every membership change when manage_replication is set;
  /// exposed so a restarted pod can be rewired explicitly. Best-effort:
  /// returns the first push failure, having attempted every member.
  Status PushReplicationWiring();

  /// Test seam: runs before every retry attempt's candidate
  /// re-resolution in ForwardWithFailover (so tests can mutate
  /// membership between attempts deterministically).
  void set_pre_retry_hook(std::function<void()> hook) {
    pre_retry_hook_ = std::move(hook);
  }

 private:
  struct Backend {
    BackendEndpoint endpoint;
    // Registry-owned forwarding counters (exported with backend=<name>).
    MetricCounter* requests = nullptr;
    MetricCounter* errors = nullptr;
  };

  // Outcome of one forwarding attempt.
  struct AttemptResult {
    bool ok = false;
    HttpResponse response;
    Status error;
  };

  void RegisterMetrics();
  void BuildRoutes();
  void AttachBackendLocked(const BackendEndpoint& endpoint);

  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleRecommendGet(const HttpRequest& request, Trace* trace);
  HttpResponse HandleRecommendPost(const HttpRequest& request, Trace* trace);
  HttpResponse HandleRecommendBatch(const HttpRequest& request, Trace* trace);
  HttpResponse HandleHealthz();
  HttpResponse HandleStats();
  HttpResponse HandleClusterGet(Trace* trace);
  HttpResponse HandleClusterJoin(const HttpRequest& request, Trace* trace);
  HttpResponse HandleClusterDrain(const HttpRequest& request, Trace* trace);
  HttpResponse HandleClusterRemove(const HttpRequest& request, Trace* trace);

  /// Validates the mutation's "epoch" field against the current ring
  /// epoch; a non-null return is the 409 (or 400) rejection to send.
  std::optional<HttpResponse> CheckEpoch(const JsonValue& doc, Trace* trace);
  /// Stamps X-Serenade-Ring-Epoch and returns `response`.
  HttpResponse WithEpochHeader(HttpResponse response) const;

  /// One fresh-connection control-plane POST to a pod (admin deadline).
  StatusOr<HttpResponse> PostAdmin(uint16_t port, const std::string& path,
                                   const std::string& body);
  /// PostAdmin retried until 2xx (bounded by admin_retry_attempts): a
  /// donor that 500s mid-hand-off keeps its transfer state and resumes
  /// on the retried call.
  Status PostAdminRetried(uint16_t port, const std::string& path,
                          const std::string& body);
  /// The hand-off request body for a pending membership.
  std::string HandoffBody(const std::vector<BackendEndpoint>& pending,
                          uint64_t new_epoch) const;

  Backend* FindBackendLocked(const std::string& name);
  /// One forwarding attempt; `headers` carry the trace-context header. A
  /// non-null `post_body` forwards a POST instead of a GET.
  AttemptResult ForwardOnce(Backend& backend, const std::string& target,
                            const std::map<std::string, std::string>& headers,
                            const std::string* post_body);
  /// Primary attempt, optionally racing a hedged attempt on `secondary`.
  AttemptResult ForwardMaybeHedged(
      Backend& primary, Backend* secondary, const std::string& target,
      const std::map<std::string, std::string>& headers,
      const std::string* post_body);
  /// The full routing policy for one session key: ring-ordered healthy
  /// candidates, bounded retries with backoff, optional hedging. Records
  /// the forward span on `trace`; error carries "no healthy backend" when
  /// the candidate list was empty.
  AttemptResult ForwardWithFailover(
      const std::string& session_key, const std::string& target,
      const std::map<std::string, std::string>& headers,
      const std::string* post_body, Trace* trace);
  /// Forwards straight to a port outside the named-backend bookkeeping —
  /// the one-hop follow of a donor's mid-hand-off 307.
  AttemptResult ForwardToPort(uint16_t port, const std::string& target,
                              const std::map<std::string, std::string>& headers,
                              const std::string* post_body);
  /// First healthy candidate for a key on the CURRENT ring ("" if none),
  /// in node-successor order so failover traffic lands on the pod holding
  /// the owner's replica.
  std::string FirstHealthyFor(const std::string& session_key) const;

  /// True when `session_key` hashes into the ANN arm under the current
  /// experiment knobs (false when the experiment is off).
  bool AbAnnBucket(const std::string& session_key) const;
  /// Engagement check: the user just clicked `item_text` — if it was
  /// among the items last shown to this session, credit that arm.
  void AbObserveClick(const std::string& session_key,
                      const std::string& item_text);
  /// Impression record: parses "items" out of a served response body and
  /// remembers them (bounded) as this session's last shown set.
  void AbObserveResponse(const std::string& session_key, int arm,
                         const std::string& body);
  /// Per-arm accounting for one successfully forwarded request: request
  /// counter, latency histogram, and dead-arm fallback detection via the
  /// X-Serenade-Engine header ("" = header absent, e.g. batch slots).
  void AbCountForward(int arm, uint64_t latency_micros,
                      const std::string& served_engine);

  /// Fallback recommendations seeded with the (possibly empty) clicked
  /// item; `item_text` is its decimal form.
  std::vector<ScoredItem> FallbackItems(const std::string& item_text);
  HttpResponse ServeDegraded(const std::string& item_text);
  /// One degraded batch-slot entry ({"items":..,"scores":..,
  /// "degraded":true}); counts into the degraded metric.
  std::string DegradedEntryJson(const std::string& item_text);

  std::unique_ptr<HttpClient> AcquireClient(Backend& backend, Status* status);
  void ReleaseClient(Backend& backend, std::unique_ptr<HttpClient> client,
                     bool reusable);

  // Live membership: backends_, ring_, and ring_epoch_ move together
  // under membership_mutex_ (held briefly — candidate resolution and
  // mutation only, never across network I/O). Removed backends park in
  // retired_backends_ so Backend* held by in-flight forwards and hedge
  // losers stay valid for the gateway's lifetime.
  mutable std::mutex membership_mutex_;
  std::vector<std::unique_ptr<Backend>> backends_;
  std::vector<std::unique_ptr<Backend>> retired_backends_;
  uint64_t ring_epoch_ = 1;
  // Serializes control-plane mutations end to end (epoch check ->
  // hand-off -> ring flip -> rewire); forwarding never takes it.
  std::mutex admin_mutex_;
  GatewayConfig config_;
  // Keep-alive connections to the pods, keyed by backend port (bounded
  // per endpoint; close-on-error).
  std::unique_ptr<HttpClientPool> pool_;
  std::unique_ptr<Recommender> fallback_;
  std::mutex fallback_mutex_;
  HashRing ring_;
  std::unique_ptr<HealthChecker> health_;
  Router router_;
  std::unique_ptr<HttpServer> http_;

  // Shared metrics substrate: /metrics is rendered from this registry.
  MetricsRegistry registry_;
  MetricCounter* forwarded_ok_ = nullptr;
  MetricCounter* degraded_ = nullptr;
  MetricCounter* failed_ = nullptr;
  MetricCounter* retries_ = nullptr;
  MetricCounter* hedges_ = nullptr;
  MetricCounter* hedge_wins_ = nullptr;
  MetricCounter* stale_epoch_rejects_ = nullptr;
  MetricCounter* redirects_followed_ = nullptr;
  // A/B experiment accounting ([0]=vmis, [1]=ann by assigned arm).
  MetricCounter* ab_requests_[2] = {};
  MetricCounter* ab_impressions_[2] = {};
  MetricCounter* ab_engagements_[2] = {};
  MetricCounter* ab_fallbacks_ = nullptr;
  MetricHistogram* ab_latency_micros_[2] = {};
  // Last items shown per session (bounded by ab_engagement_capacity):
  // the next click landing in `shown` is an engagement for `arm`.
  struct AbEngagement {
    int arm = 0;
    std::vector<ItemId> shown;
  };
  mutable std::mutex ab_mutex_;
  std::map<std::string, AbEngagement> ab_sessions_;
  MetricHistogram* forward_latency_micros_ = nullptr;
  MetricHistogram* request_latency_micros_ = nullptr;
  MetricHistogram* reactor_loop_lag_micros_ = nullptr;
  MetricHistogram* stage_micros_[kNumTraceStages] = {};
  SlowRequestLogger slow_logger_;

  // Detached hedge-loser threads still in flight; Stop() waits for zero
  // so they never outlive the state they touch.
  std::atomic<int> inflight_hedges_{0};

  std::function<void()> pre_retry_hook_;
};

/// Percent-encodes a URL query component (inverse of UrlDecode for the
/// characters that matter in query strings).
std::string UrlEncodeComponent(const std::string& text);

}  // namespace serenade
