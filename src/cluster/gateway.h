// ClusterGateway: the fleet-routing front door of Figure 1. An HTTP
// server that owns a set of Serenade pod endpoints and routes /recommend
// by session key over a consistent-hash ring (sticky sessions), with
// active health checking, bounded retries with exponential backoff and
// jitter against the next ring replica, optional hedged second requests
// for tail latency, and graceful degradation to an in-process popularity
// recommender when the whole fleet is down — the client sees
// {"degraded":true}, never a 5xx.
//
// Observability: every /recommend request carries a Trace; the gateway
// stamps its id onto proxied requests as X-Serenade-Trace-Id, backends
// adopt and echo it, and both tiers emit sampled structured slow-request
// log lines keyed by the same id — a fleet-level p99 outlier can be
// followed gateway -> pod -> stage. All gateway metrics live in one
// MetricsRegistry (src/obs), which renders /metrics.
//
// Routes (versioned /v1 API; unversioned paths remain as deprecated
// aliases stamping `Deprecation: true`, see API.md):
//   GET  /v1/recommend?session_id=<key>&item_id=<id>[...] -> forwarded
//   POST /v1/recommend        body {"session_id":...}     -> forwarded
//   POST /v1/recommend:batch  body {"requests":[...]}
//        -> scatter-gathered: slots are grouped by their session key's
//           ring owner, forwarded as per-backend sub-batches, and merged
//           back in request order; a failed sub-batch degrades or errors
//           only its own slots
//   GET  /v1/healthz  -> gateway liveness + healthy-backend count
//   GET  /v1/stats    -> aggregate + per-backend counters (JSON)
//   GET  /v1/metrics  -> Prometheus text exposition (MetricsRegistry)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/health.h"
#include "common/status.h"
#include "core/recommender.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/client_pool.h"
#include "serving/http.h"

namespace serenade {

struct GatewayConfig {
  uint16_t port = 0;  ///< 0 = ephemeral
  /// Virtual nodes per backend on the placement ring.
  size_t virtual_nodes = 128;
  /// Per-attempt connect + read deadline when forwarding.
  uint64_t forward_timeout_ms = 1000;
  /// Total forwarding attempts per request across ring replicas.
  uint32_t max_attempts = 3;
  /// Base backoff before retry n is backoff * 2^(n-1) plus jitter.
  uint64_t retry_backoff_ms = 2;
  /// Hedge a second request against the next replica when the primary
  /// has not answered within this delay (0 = hedging disabled).
  uint64_t hedge_delay_ms = 0;
  /// Items served by the degraded-mode fallback recommender.
  size_t fallback_items = 21;
  /// Idle keep-alive connections retained per backend.
  size_t max_pooled_clients = 8;
  /// Largest accepted /v1/recommend:batch request (413 beyond).
  size_t max_batch_items = 128;
  HealthCheckerConfig health;
  /// Slow-request logging policy (threshold 0 = disabled).
  TraceConfig trace;
  /// Front-door reactor tuning (connection cap, timeouts, threads).
  HttpServerOptions http;
};

/// Aggregate gateway counters (monotonic).
struct GatewayCounters {
  uint64_t forwarded_ok = 0;       ///< requests answered by a backend
  uint64_t degraded = 0;           ///< requests served by the fallback
  uint64_t failed = 0;             ///< requests that returned an error
  uint64_t retries = 0;            ///< extra attempts after the first
  uint64_t hedges = 0;             ///< hedged second requests launched
  uint64_t hedge_wins = 0;         ///< hedges that beat the primary
};

/// Per-backend forwarding counters (monotonic).
struct BackendCounters {
  std::string name;
  uint64_t requests = 0;  ///< forwarding attempts sent
  uint64_t errors = 0;    ///< attempts that failed (error status or 5xx)
};

class ClusterGateway {
 public:
  /// `fallback` powers degraded-mode serving; when null, an all-backends-
  /// down request returns 503 instead.
  ClusterGateway(std::vector<BackendEndpoint> backends, GatewayConfig config,
                 std::unique_ptr<Recommender> fallback = nullptr);
  ~ClusterGateway();

  ClusterGateway(const ClusterGateway&) = delete;
  ClusterGateway& operator=(const ClusterGateway&) = delete;

  /// Probes the fleet once, then starts the front door and the health
  /// checker.
  Status Start();
  void Stop();

  uint16_t port() const { return http_ ? http_->port() : 0; }
  HealthChecker& health() { return *health_; }
  const HashRing& ring() const { return ring_; }
  uint64_t requests_served() const {
    return http_ ? http_->requests_served() : 0;
  }
  GatewayCounters counters() const;
  std::vector<BackendCounters> backend_counters() const;

  /// The gateway's metric registry (handed to tests and collectors).
  MetricsRegistry& metrics() { return registry_; }

 private:
  struct Backend {
    BackendEndpoint endpoint;
    // Registry-owned forwarding counters (exported with backend=<name>).
    MetricCounter* requests = nullptr;
    MetricCounter* errors = nullptr;
  };

  // Outcome of one forwarding attempt.
  struct AttemptResult {
    bool ok = false;
    HttpResponse response;
    Status error;
  };

  void RegisterMetrics();
  void BuildRoutes();

  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleRecommendGet(const HttpRequest& request, Trace* trace);
  HttpResponse HandleRecommendPost(const HttpRequest& request, Trace* trace);
  HttpResponse HandleRecommendBatch(const HttpRequest& request, Trace* trace);
  HttpResponse HandleHealthz();
  HttpResponse HandleStats();

  Backend* FindBackend(const std::string& name);
  /// One forwarding attempt; `headers` carry the trace-context header. A
  /// non-null `post_body` forwards a POST instead of a GET.
  AttemptResult ForwardOnce(Backend& backend, const std::string& target,
                            const std::map<std::string, std::string>& headers,
                            const std::string* post_body);
  /// Primary attempt, optionally racing a hedged attempt on `secondary`.
  AttemptResult ForwardMaybeHedged(
      Backend& primary, Backend* secondary, const std::string& target,
      const std::map<std::string, std::string>& headers,
      const std::string* post_body);
  /// The full routing policy for one session key: ring-ordered healthy
  /// candidates, bounded retries with backoff, optional hedging. Records
  /// the forward span on `trace`; error carries "no healthy backend" when
  /// the candidate list was empty.
  AttemptResult ForwardWithFailover(
      const std::string& session_key, const std::string& target,
      const std::map<std::string, std::string>& headers,
      const std::string* post_body, Trace* trace);

  /// Fallback recommendations seeded with the (possibly empty) clicked
  /// item; `item_text` is its decimal form.
  std::vector<ScoredItem> FallbackItems(const std::string& item_text);
  HttpResponse ServeDegraded(const std::string& item_text);
  /// One degraded batch-slot entry ({"items":..,"scores":..,
  /// "degraded":true}); counts into the degraded metric.
  std::string DegradedEntryJson(const std::string& item_text);

  std::unique_ptr<HttpClient> AcquireClient(Backend& backend, Status* status);
  void ReleaseClient(Backend& backend, std::unique_ptr<HttpClient> client,
                     bool reusable);

  std::vector<std::unique_ptr<Backend>> backends_;
  GatewayConfig config_;
  // Keep-alive connections to the pods, keyed by backend port (bounded
  // per endpoint; close-on-error).
  std::unique_ptr<HttpClientPool> pool_;
  std::unique_ptr<Recommender> fallback_;
  std::mutex fallback_mutex_;
  HashRing ring_;
  std::unique_ptr<HealthChecker> health_;
  Router router_;
  std::unique_ptr<HttpServer> http_;

  // Shared metrics substrate: /metrics is rendered from this registry.
  MetricsRegistry registry_;
  MetricCounter* forwarded_ok_ = nullptr;
  MetricCounter* degraded_ = nullptr;
  MetricCounter* failed_ = nullptr;
  MetricCounter* retries_ = nullptr;
  MetricCounter* hedges_ = nullptr;
  MetricCounter* hedge_wins_ = nullptr;
  MetricHistogram* forward_latency_micros_ = nullptr;
  MetricHistogram* request_latency_micros_ = nullptr;
  MetricHistogram* reactor_loop_lag_micros_ = nullptr;
  MetricHistogram* stage_micros_[kNumTraceStages] = {};
  SlowRequestLogger slow_logger_;

  // Detached hedge-loser threads still in flight; Stop() waits for zero
  // so they never outlive the state they touch.
  std::atomic<int> inflight_hedges_{0};
};

/// Percent-encodes a URL query component (inverse of UrlDecode for the
/// characters that matter in query strings).
std::string UrlEncodeComponent(const std::string& text);

}  // namespace serenade
