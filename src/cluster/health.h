// Active backend health checking for the cluster gateway: a background
// thread probes each pod's /healthz on a fixed interval and maintains an
// ejection/readmission state machine per backend (the in-process stand-in
// for Kubernetes liveness probes plus istio outlier detection in the
// paper's Figure 1 deployment).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace serenade {

class HttpClient;

/// One routable serving pod.
struct BackendEndpoint {
  std::string name;  ///< stable identity used in the ring and metrics
  uint16_t port = 0; ///< 127.0.0.1 port of the pod's HTTP server
};

struct HealthCheckerConfig {
  uint64_t probe_interval_ms = 250;  ///< delay between probe rounds
  uint64_t probe_timeout_ms = 500;   ///< connect + read deadline per probe
  /// Consecutive probe failures before a healthy backend is ejected.
  uint32_t failures_to_eject = 2;
  /// Consecutive probe successes before an ejected backend is readmitted.
  uint32_t successes_to_readmit = 2;
};

/// Point-in-time health view of one backend.
struct BackendHealth {
  std::string name;
  uint16_t port = 0;
  bool healthy = true;
  uint32_t consecutive_failures = 0;
  uint32_t consecutive_successes = 0;
  uint64_t probes_total = 0;
  uint64_t probe_failures_total = 0;
  uint64_t ejections_total = 0;
  /// Index snapshot version the pod reported on its last successful
  /// /healthz probe (0 = not yet observed). During a rolling index swap
  /// the fleet serves mixed versions; this makes the rollout observable
  /// from the gateway's /stats and /metrics.
  uint64_t index_version = 0;
  /// Index freshness (seconds since the newest servable click) the pod
  /// reported on its last successful probe. 0 until the pod applies its
  /// first streaming delta — the gateway aggregate makes a lagging or
  /// stalled builder visible fleet-wide.
  uint64_t index_freshness_seconds = 0;
  /// Probe-connection churn: probes ride a persistent keep-alive
  /// connection, so connects should stay near 1 per healthy backend while
  /// reuses grow with every round.
  uint64_t probe_connects_total = 0;
  uint64_t probe_reuses_total = 0;
  /// Replication lag the pod reported on its last successful probe: WAL
  /// bytes (and seconds) its ring successor has not yet acknowledged.
  /// Zero for pods without replication.
  uint64_t replica_lag_bytes = 0;
  double replica_lag_seconds = 0.0;
  /// Fleet-membership epoch the pod last adopted (0 = none reported). A
  /// pod lagging the gateway's epoch is still rewiring.
  uint64_t ring_epoch = 0;
};

/// Thread-safe health registry + prober. Backends start healthy (the
/// gateway must be able to route before the first probe round lands).
class HealthChecker {
 public:
  HealthChecker(std::vector<BackendEndpoint> backends,
                HealthCheckerConfig config);
  ~HealthChecker();

  HealthChecker(const HealthChecker&) = delete;
  HealthChecker& operator=(const HealthChecker&) = delete;

  /// Starts the background probe loop (idempotent).
  void Start();

  /// Stops and joins the probe loop.
  void Stop();

  /// Probes every backend once, synchronously. Used by tests and by the
  /// gateway at startup so routing decisions never wait a full interval
  /// for the first health signal.
  void ProbeAllOnce();

  /// Whether the named backend is currently routable. Unknown names are
  /// unhealthy.
  bool IsHealthy(const std::string& name) const;

  /// Live-membership maintenance (join/drain/remove on a running fleet).
  /// AddBackend starts the new pod healthy, mirroring construction;
  /// RemoveBackend drops it from future probe rounds (no-op when absent).
  void AddBackend(const BackendEndpoint& endpoint);
  void RemoveBackend(const std::string& name);

  size_t NumHealthy() const;
  size_t NumBackends() const;

  /// Last index version reported by the named backend (0 = unknown).
  uint64_t IndexVersion(const std::string& name) const;

  std::vector<BackendHealth> Snapshot() const;

  /// Reports a forwarding outcome observed on the data path. Passive
  /// signals feed the same ejection counters as active probes, so a
  /// backend that dies between probe rounds is ejected by the very
  /// traffic it fails.
  void ReportResult(const std::string& name, bool success);

 private:
  struct State {
    BackendEndpoint endpoint;
    mutable std::mutex mutex;
    bool healthy = true;
    uint32_t consecutive_failures = 0;
    uint32_t consecutive_successes = 0;
    uint64_t probes_total = 0;
    uint64_t probe_failures_total = 0;
    uint64_t ejections_total = 0;
    uint64_t index_version = 0;
    uint64_t index_freshness_seconds = 0;
    uint64_t probe_connects_total = 0;
    uint64_t probe_reuses_total = 0;
    uint64_t replica_lag_bytes = 0;
    double replica_lag_seconds = 0.0;
    uint64_t ring_epoch = 0;
    /// Persistent keep-alive probe connection (guarded by probe_mutex_,
    /// not this state's mutex: only the serialized probe path touches it).
    /// Dropped on any transport error; redialed on the next round.
    std::unique_ptr<HttpClient> probe_client;
  };

  // Result of one active /healthz probe.
  struct ProbeOutcome {
    bool ok = false;
    uint64_t index_version = 0;  ///< 0 when absent from the response
    uint64_t index_freshness_seconds = 0;  ///< 0 when absent
    uint64_t replica_lag_bytes = 0;
    double replica_lag_seconds = 0.0;
    uint64_t ring_epoch = 0;
  };

  void ProbeLoop();
  ProbeOutcome ProbeBackend(State& state);
  void ApplyResult(State& state, bool success, bool from_probe,
                   const ProbeOutcome& outcome);
  void ApplyResult(State& state, bool success, bool from_probe) {
    ApplyResult(state, success, from_probe, ProbeOutcome{});
  }
  std::shared_ptr<State> FindState(const std::string& name) const;
  std::vector<std::shared_ptr<State>> StatesSnapshot() const;

  HealthCheckerConfig config_;
  // Guards membership of states_; individual State counters have their
  // own mutex, and shared_ptr keeps a State alive across a probe round
  // even if RemoveBackend races it.
  mutable std::mutex states_mutex_;
  std::vector<std::shared_ptr<State>> states_;
  std::atomic<bool> stopping_{true};
  std::thread prober_;
  std::mutex wakeup_mutex_;
  std::condition_variable wakeup_;
  /// Serializes probe rounds: ProbeAllOnce is called from the prober
  /// thread AND externally (gateway startup, tests), and the persistent
  /// probe clients are not thread-safe.
  std::mutex probe_mutex_;
};

}  // namespace serenade
