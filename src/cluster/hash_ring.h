// Consistent-hash ring with virtual nodes — the fleet-placement half of
// the paper's sticky-session routing (Figure 1 / Section 4.2). Unlike the
// modulo placement in StickySessionRouter, adding or removing one pod
// only remaps ~1/N of the session keys, so a rolling deploy or a pod
// failure does not reshuffle (and thereby depersonalise) the whole fleet's
// evolving sessions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace serenade {

/// Maps string keys onto a set of named nodes via consistent hashing.
/// Not thread-safe; callers that mutate the node set concurrently with
/// lookups must synchronise externally (the gateway guards its ring with
/// a membership mutex and rebuilds it on live join/drain/remove).
class HashRing {
 public:
  /// More virtual nodes smooth the load split at the cost of ring size;
  /// 128 keeps the max/min node share within ~2x for small fleets.
  explicit HashRing(size_t virtual_nodes_per_node = 128);

  /// Adds a node (idempotent).
  void AddNode(const std::string& node);

  /// Removes a node (no-op when absent). Keys owned by the removed node
  /// redistribute across the survivors; everyone else's keys stay put.
  void RemoveNode(const std::string& node);

  bool Contains(const std::string& node) const;
  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<std::string>& nodes() const { return nodes_; }

  /// The node owning `key`. Must not be called on an empty ring.
  const std::string& NodeFor(std::string_view key) const;

  /// Up to `max_nodes` distinct nodes in ring order starting at the key's
  /// point: the owner first, then the natural failover successors. The
  /// order is deterministic per key, so every gateway replica agrees on
  /// which backend is "next" when the owner is unhealthy.
  std::vector<std::string> ReplicasFor(std::string_view key,
                                       size_t max_nodes) const;

  /// The next distinct node after `node` in the cyclic order of hashed
  /// node names. This is the node-level successor relation replication
  /// uses: pod P ships its whole WAL to SuccessorOf(P), so on P's death
  /// exactly one peer holds its replica. Returns "" for an unknown node
  /// or a single-node ring.
  std::string SuccessorOf(const std::string& node) const;

  /// All nodes starting at `start` and walking the node-successor cycle
  /// (start first). Used by the gateway to order failover candidates so
  /// traffic for a dead owner lands on the peer holding its replica.
  /// Returns an empty vector when `start` is unknown.
  std::vector<std::string> SuccessorChain(const std::string& start) const;

 private:
  void Rebuild();

  struct Point {
    uint64_t hash;
    uint32_t node_index;
  };

  size_t virtual_nodes_per_node_;
  std::vector<std::string> nodes_;  // sorted for deterministic rebuilds
  std::vector<Point> ring_;         // sorted by hash
};

}  // namespace serenade
