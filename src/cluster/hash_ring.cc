#include "cluster/hash_ring.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace serenade {

HashRing::HashRing(size_t virtual_nodes_per_node)
    : virtual_nodes_per_node_(virtual_nodes_per_node == 0
                                  ? 1
                                  : virtual_nodes_per_node) {}

void HashRing::AddNode(const std::string& node) {
  if (Contains(node)) return;
  nodes_.insert(std::upper_bound(nodes_.begin(), nodes_.end(), node), node);
  Rebuild();
}

void HashRing::RemoveNode(const std::string& node) {
  auto it = std::find(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end()) return;
  nodes_.erase(it);
  Rebuild();
}

bool HashRing::Contains(const std::string& node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

void HashRing::Rebuild() {
  ring_.clear();
  ring_.reserve(nodes_.size() * virtual_nodes_per_node_);
  for (uint32_t index = 0; index < nodes_.size(); ++index) {
    const uint64_t node_hash = Fnv1a(nodes_[index]);
    for (size_t replica = 0; replica < virtual_nodes_per_node_; ++replica) {
      // Each virtual node gets its own well-mixed point; the points of a
      // node depend only on its name, so membership changes leave the
      // surviving nodes' points untouched.
      ring_.push_back(
          Point{Mix64(HashCombine(node_hash, replica)), index});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.node_index < b.node_index);
  });
}

const std::string& HashRing::NodeFor(std::string_view key) const {
  assert(!ring_.empty() && "NodeFor on an empty ring");
  const uint64_t point = Mix64(Fnv1a(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return nodes_[it->node_index];
}

std::vector<std::string> HashRing::ReplicasFor(std::string_view key,
                                               size_t max_nodes) const {
  std::vector<std::string> replicas;
  if (ring_.empty() || max_nodes == 0) return replicas;
  const size_t want = std::min(max_nodes, nodes_.size());
  const uint64_t point = Mix64(Fnv1a(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  std::vector<bool> taken(nodes_.size(), false);
  for (size_t step = 0; step < ring_.size() && replicas.size() < want;
       ++step) {
    if (it == ring_.end()) it = ring_.begin();
    if (!taken[it->node_index]) {
      taken[it->node_index] = true;
      replicas.push_back(nodes_[it->node_index]);
    }
    ++it;
  }
  return replicas;
}

}  // namespace serenade
