#include "cluster/hash_ring.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace serenade {

HashRing::HashRing(size_t virtual_nodes_per_node)
    : virtual_nodes_per_node_(virtual_nodes_per_node == 0
                                  ? 1
                                  : virtual_nodes_per_node) {}

void HashRing::AddNode(const std::string& node) {
  if (Contains(node)) return;
  nodes_.insert(std::upper_bound(nodes_.begin(), nodes_.end(), node), node);
  Rebuild();
}

void HashRing::RemoveNode(const std::string& node) {
  auto it = std::find(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end()) return;
  nodes_.erase(it);
  Rebuild();
}

bool HashRing::Contains(const std::string& node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

void HashRing::Rebuild() {
  ring_.clear();
  ring_.reserve(nodes_.size() * virtual_nodes_per_node_);
  for (uint32_t index = 0; index < nodes_.size(); ++index) {
    const uint64_t node_hash = Fnv1a(nodes_[index]);
    for (size_t replica = 0; replica < virtual_nodes_per_node_; ++replica) {
      // Each virtual node gets its own well-mixed point; the points of a
      // node depend only on its name, so membership changes leave the
      // surviving nodes' points untouched.
      ring_.push_back(
          Point{Mix64(HashCombine(node_hash, replica)), index});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.node_index < b.node_index);
  });
}

const std::string& HashRing::NodeFor(std::string_view key) const {
  assert(!ring_.empty() && "NodeFor on an empty ring");
  const uint64_t point = Mix64(Fnv1a(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return nodes_[it->node_index];
}

std::vector<std::string> HashRing::ReplicasFor(std::string_view key,
                                               size_t max_nodes) const {
  std::vector<std::string> replicas;
  if (ring_.empty() || max_nodes == 0) return replicas;
  const size_t want = std::min(max_nodes, nodes_.size());
  const uint64_t point = Mix64(Fnv1a(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  std::vector<bool> taken(nodes_.size(), false);
  for (size_t step = 0; step < ring_.size() && replicas.size() < want;
       ++step) {
    if (it == ring_.end()) it = ring_.begin();
    if (!taken[it->node_index]) {
      taken[it->node_index] = true;
      replicas.push_back(nodes_[it->node_index]);
    }
    ++it;
  }
  return replicas;
}

namespace {
// Cyclic node order for the successor relation: nodes sorted by the mixed
// hash of their name (ties broken by name). Independent of virtual-node
// points so the successor of a node is stable under vnode-count changes.
std::vector<std::string> HashedNodeOrder(const std::vector<std::string>& nodes) {
  std::vector<std::string> ordered = nodes;
  std::sort(ordered.begin(), ordered.end(),
            [](const std::string& a, const std::string& b) {
              const uint64_t ha = Mix64(Fnv1a(a)), hb = Mix64(Fnv1a(b));
              return ha < hb || (ha == hb && a < b);
            });
  return ordered;
}
}  // namespace

std::string HashRing::SuccessorOf(const std::string& node) const {
  if (nodes_.size() < 2 || !Contains(node)) return std::string();
  const std::vector<std::string> ordered = HashedNodeOrder(nodes_);
  for (size_t i = 0; i < ordered.size(); ++i) {
    if (ordered[i] == node) return ordered[(i + 1) % ordered.size()];
  }
  return std::string();
}

std::vector<std::string> HashRing::SuccessorChain(
    const std::string& start) const {
  std::vector<std::string> chain;
  if (!Contains(start)) return chain;
  const std::vector<std::string> ordered = HashedNodeOrder(nodes_);
  size_t at = 0;
  while (ordered[at] != start) ++at;
  chain.reserve(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    chain.push_back(ordered[(at + i) % ordered.size()]);
  }
  return chain;
}

}  // namespace serenade
