#include "cluster/gateway.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "serving/json.h"
#include "serving/server.h"

namespace serenade {

namespace {

// Equal-jitter exponential backoff: half deterministic, half uniform, so
// retry storms from concurrent request threads spread out in time.
uint64_t BackoffWithJitterMs(uint64_t base_ms, uint32_t retry_number) {
  constexpr uint64_t kMaxBackoffMs = 200;
  thread_local Rng rng(Mix64(static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()))));
  uint64_t delay = base_ms << std::min<uint32_t>(retry_number, 6);
  delay = std::min(delay, kMaxBackoffMs);
  if (delay == 0) return 0;
  return delay / 2 + rng.Below(delay / 2 + 1);
}

// Gateway-side stages exported as gateway_stage_duration_microseconds.
constexpr TraceStage kGatewayStages[] = {
    TraceStage::kParse,
    TraceStage::kForward,
    TraceStage::kSerialize,
};

}  // namespace

std::string UrlEncodeComponent(const std::string& text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    const bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                            c == '.' || c == '~';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    }
  }
  return out;
}

ClusterGateway::ClusterGateway(std::vector<BackendEndpoint> backends,
                               GatewayConfig config,
                               std::unique_ptr<Recommender> fallback)
    : config_(config),
      fallback_(std::move(fallback)),
      ring_(config.virtual_nodes),
      slow_logger_(config.trace) {
  HttpClientPoolConfig pool_config;
  pool_config.max_idle_per_endpoint = config_.max_pooled_clients;
  pool_config.client.connect_timeout_ms = config_.forward_timeout_ms;
  pool_config.client.io_timeout_ms = config_.forward_timeout_ms;
  pool_ = std::make_unique<HttpClientPool>(pool_config);
  RegisterMetrics();
  BuildRoutes();
  backends_.reserve(backends.size());
  for (BackendEndpoint& endpoint : backends) {
    auto backend = std::make_unique<Backend>();
    backend->endpoint = endpoint;
    backend->requests = &registry_.AddCounter(
        "gateway_backend_requests_total",
        "forwarding attempts per backend", "backend", endpoint.name);
    backend->errors = &registry_.AddCounter(
        "gateway_backend_errors_total",
        "failed forwarding attempts per backend", "backend", endpoint.name);
    ring_.AddNode(endpoint.name);
    backends_.push_back(std::move(backend));
  }
  std::vector<BackendEndpoint> endpoints;
  endpoints.reserve(backends.size());
  for (const auto& backend : backends_) endpoints.push_back(backend->endpoint);
  health_ = std::make_unique<HealthChecker>(std::move(endpoints),
                                            config_.health);

  // Health-derived gauges pull from the checker at scrape time, so a
  // scrape always sees the current ejection state, never a cached copy.
  registry_.AddCallback(
      "gateway_backend_healthy", "whether the backend is routable",
      MetricType::kGauge, "backend", [this]() -> std::vector<MetricSample> {
        std::vector<MetricSample> samples;
        for (const BackendHealth& entry : health_->Snapshot()) {
          samples.push_back({entry.name, entry.healthy ? 1u : 0u});
        }
        return samples;
      });
  registry_.AddCallback(
      "gateway_backend_index_version",
      "index snapshot version last reported by the backend",
      MetricType::kGauge, "backend", [this]() -> std::vector<MetricSample> {
        std::vector<MetricSample> samples;
        for (const BackendHealth& entry : health_->Snapshot()) {
          samples.push_back({entry.name, entry.index_version});
        }
        return samples;
      });
  registry_.AddCallback(
      "gateway_backend_index_freshness_seconds",
      "index freshness (age of newest servable click) last reported by "
      "the backend",
      MetricType::kGauge, "backend", [this]() -> std::vector<MetricSample> {
        std::vector<MetricSample> samples;
        for (const BackendHealth& entry : health_->Snapshot()) {
          samples.push_back({entry.name, entry.index_freshness_seconds});
        }
        return samples;
      });
}

ClusterGateway::~ClusterGateway() { Stop(); }

void ClusterGateway::RegisterMetrics() {
  registry_.AddCallback(
      "gateway_requests_total", "requests accepted by the gateway",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", requests_served()}};
      });
  forwarded_ok_ = &registry_.AddCounter("gateway_forwarded_ok_total",
                                        "requests answered by a backend");
  degraded_ = &registry_.AddCounter(
      "gateway_degraded_responses_total",
      "requests served by the popularity fallback");
  failed_ = &registry_.AddCounter("gateway_failed_requests_total",
                                  "requests that exhausted all attempts");
  retries_ = &registry_.AddCounter("gateway_retries_total",
                                   "retry attempts against ring successors");
  hedges_ = &registry_.AddCounter("gateway_hedges_total",
                                  "hedged second requests launched");
  hedge_wins_ = &registry_.AddCounter("gateway_hedge_wins_total",
                                      "hedges that beat the primary");
  registry_.AddCallback(
      "serenade_http_deprecated_requests_total",
      "requests served via deprecated unversioned path aliases",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", router_.deprecated_requests()}};
      });
  registry_.AddCallback(
      "gateway_slow_requests_total",
      "requests over the slow-request threshold", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", slow_logger_.slow_requests_seen()}};
      });
  // Keep-alive reuse on the gateway→pod hop: a warm fleet should show a
  // reuse ratio near 1 (each acquire served by a parked connection).
  registry_.AddCallback(
      "gateway_client_acquires_total",
      "pooled-client checkouts for forwarding attempts", MetricType::kCounter,
      "", [this]() -> std::vector<MetricSample> {
        return {{"", pool_->acquires_total()}};
      });
  registry_.AddCallback(
      "gateway_client_reuses_total",
      "checkouts served by a parked keep-alive connection",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", pool_->reuses_total()}};
      });
  registry_.AddCallback(
      "gateway_client_discards_total",
      "pooled clients dropped (transport error or full shelf)",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", pool_->discards_total()}};
      });
  // Front-door reactor counters (same family as the pod's serenade_*).
  registry_.AddCallback(
      "gateway_open_connections", "currently open HTTP connections",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", http_ ? http_->stats().open_connections : 0}};
      });
  registry_.AddCallback(
      "gateway_shed_connections_total",
      "connections refused with 503 + Retry-After at the connection cap",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", http_ ? http_->stats().shed : 0}};
      });
  registry_.AddCallback(
      "gateway_reactor_loop_iterations_total", "event-loop wakeups",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", http_ ? http_->stats().loop_iterations : 0}};
      });
  registry_.AddCallback(
      "gateway_connection_timeouts_total",
      "connections closed by the timer wheel", MetricType::kCounter, "kind",
      [this]() -> std::vector<MetricSample> {
        const HttpServerStats stats =
            http_ ? http_->stats() : HttpServerStats{};
        return {{"idle", stats.idle_timeouts},
                {"deadline", stats.deadline_timeouts}};
      });
  reactor_loop_lag_micros_ = &registry_.AddHistogram(
      "gateway_reactor_loop_lag_microseconds",
      "time the event loop spent processing one epoll batch");
  forward_latency_micros_ = &registry_.AddHistogram(
      "gateway_forward_latency_microseconds",
      "per-attempt forwarding latency");
  request_latency_micros_ = &registry_.AddHistogram(
      "gateway_request_latency_microseconds",
      "end-to-end /recommend handling latency at the gateway");
  for (TraceStage stage : kGatewayStages) {
    stage_micros_[static_cast<size_t>(stage)] = &registry_.AddHistogram(
        "gateway_stage_duration_microseconds",
        "per-request latency attributed to one gateway stage", "stage",
        TraceStageName(stage));
  }
}

Status ClusterGateway::Start() {
  if (backends_.empty() && fallback_ == nullptr) {
    return Status::InvalidArgument(
        "gateway needs at least one backend or a fallback recommender");
  }
  // Seed the health view before taking traffic so a dead pod configured
  // at startup is never routed to.
  health_->ProbeAllOnce();
  health_->Start();
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); },
      config_.http);
  http_->set_loop_lag_histogram(reactor_loop_lag_micros_);
  Status started = http_->Start(config_.port);
  if (!started.ok()) health_->Stop();
  return started;
}

void ClusterGateway::Stop() {
  if (http_) http_->Stop();
  // Hedge losers hold references into our backend pools; wait them out
  // (each is bounded by forward_timeout_ms).
  while (inflight_hedges_.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (health_) health_->Stop();
}

ClusterGateway::Backend* ClusterGateway::FindBackend(const std::string& name) {
  for (const auto& backend : backends_) {
    if (backend->endpoint.name == name) return backend.get();
  }
  return nullptr;
}

std::unique_ptr<HttpClient> ClusterGateway::AcquireClient(Backend& backend,
                                                          Status* status) {
  auto client = pool_->Acquire(backend.endpoint.port);
  if (!client.ok()) {
    *status = client.status();
    return nullptr;
  }
  return std::move(client).value();
}

void ClusterGateway::ReleaseClient(Backend& backend,
                                   std::unique_ptr<HttpClient> client,
                                   bool reusable) {
  pool_->Release(backend.endpoint.port, std::move(client), reusable);
}

ClusterGateway::AttemptResult ClusterGateway::ForwardOnce(
    Backend& backend, const std::string& target,
    const std::map<std::string, std::string>& headers,
    const std::string* post_body) {
  AttemptResult result;
  backend.requests->Increment();
  Stopwatch stopwatch;

  Status connect_status = Status::Ok();
  auto client = AcquireClient(backend, &connect_status);
  if (client == nullptr) {
    forward_latency_micros_->Record(stopwatch.ElapsedMicros());
    backend.errors->Increment();
    health_->ReportResult(backend.endpoint.name, false);
    result.error = std::move(connect_status);
    return result;
  }

  auto response = post_body != nullptr
                      ? client->Post(target, *post_body, headers)
                      : client->Get(target, headers);
  forward_latency_micros_->Record(stopwatch.ElapsedMicros());
  const bool transport_ok = response.ok();
  // Any parsed HTTP response proves the pod is alive; 5xx bodies are
  // handler bugs, not fleet-membership signals.
  health_->ReportResult(backend.endpoint.name, transport_ok);
  ReleaseClient(backend, std::move(client), transport_ok);

  if (!transport_ok) {
    backend.errors->Increment();
    result.error = response.status();
    return result;
  }
  if (response->status >= 500) {
    backend.errors->Increment();
    result.error = Status::Internal("backend " + backend.endpoint.name +
                                    " returned " +
                                    std::to_string(response->status));
    return result;
  }
  result.ok = true;
  result.response = std::move(response).value();
  return result;
}

ClusterGateway::AttemptResult ClusterGateway::ForwardMaybeHedged(
    Backend& primary, Backend* secondary, const std::string& target,
    const std::map<std::string, std::string>& headers,
    const std::string* post_body) {
  if (config_.hedge_delay_ms == 0 || secondary == nullptr) {
    return ForwardOnce(primary, target, headers, post_body);
  }

  struct SharedState {
    std::mutex mutex;
    std::condition_variable cv;
    int outstanding = 0;
    bool have_winner = false;
    bool winner_was_hedge = false;
    AttemptResult winner;
    AttemptResult last_failure;
  };
  auto state = std::make_shared<SharedState>();

  auto launch = [this, state, &target, &headers, post_body](Backend* backend,
                                                            bool is_hedge) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      ++state->outstanding;
    }
    inflight_hedges_.fetch_add(1);
    // Detached: the winner's caller returns immediately, the loser keeps
    // running (bounded by forward_timeout_ms); Stop() drains via
    // inflight_hedges_. `target`, `headers`, and the body are copied
    // into the thread.
    std::thread([this, state, backend, is_hedge, target_copy = target,
                 headers_copy = headers,
                 body_copy = post_body == nullptr
                     ? std::string()
                     : *post_body,
                 has_body = post_body != nullptr]() mutable {
      AttemptResult result = ForwardOnce(*backend, target_copy, headers_copy,
                                         has_body ? &body_copy : nullptr);
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        --state->outstanding;
        if (result.ok && !state->have_winner) {
          state->have_winner = true;
          state->winner_was_hedge = is_hedge;
          state->winner = std::move(result);
        } else if (!result.ok) {
          state->last_failure = std::move(result);
        }
      }
      state->cv.notify_all();
      inflight_hedges_.fetch_sub(1);
    }).detach();
  };

  launch(&primary, /*is_hedge=*/false);

  std::unique_lock<std::mutex> lock(state->mutex);
  const bool primary_done = state->cv.wait_for(
      lock, std::chrono::milliseconds(config_.hedge_delay_ms),
      [&] { return state->have_winner || state->outstanding == 0; });
  if (!primary_done) {
    lock.unlock();
    hedges_->Increment();
    launch(secondary, /*is_hedge=*/true);
    lock.lock();
  }
  state->cv.wait(lock,
                 [&] { return state->have_winner || state->outstanding == 0; });
  if (state->have_winner) {
    if (state->winner_was_hedge) {
      hedge_wins_->Increment();
    }
    return std::move(state->winner);
  }
  return std::move(state->last_failure);
}

void ClusterGateway::BuildRoutes() {
  router_.Handle("GET", "/v1/recommend",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleRecommendGet(request, trace);
                 });
  router_.Handle("POST", "/v1/recommend",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleRecommendPost(request, trace);
                 });
  router_.Handle("POST", "/v1/recommend:batch",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleRecommendBatch(request, trace);
                 });
  router_.Handle("GET", "/v1/healthz",
                 [this](const HttpRequest&, Trace*) { return HandleHealthz(); });
  router_.Handle("GET", "/v1/stats",
                 [this](const HttpRequest&, Trace*) { return HandleStats(); });
  router_.Handle("GET", "/v1/metrics",
                 [this](const HttpRequest&, Trace*) {
                   return HttpResponse::Text(registry_.RenderPrometheus(),
                                             MetricsRegistry::ContentType());
                 });

  // Pre-/v1 paths: same handlers (byte-identical bodies), marked
  // deprecated on the way out. The forwarded target preserves the path
  // the client used, so legacy traffic stays legacy on the pod hop too.
  router_.Alias("/recommend", "/v1/recommend");
  router_.Alias("/healthz", "/v1/healthz");
  router_.Alias("/stats", "/v1/stats");
  router_.Alias("/metrics", "/v1/metrics");
}

HttpResponse ClusterGateway::Handle(const HttpRequest& request) {
  // Adopt a caller-supplied trace id (e.g. an edge proxy), else mint
  // one; either way the same id follows the request into the fleet.
  const std::string inbound = request.Header(kTraceIdHeader);
  Trace trace = IsValidTraceId(inbound) ? Trace(inbound) : Trace();
  trace.Record(TraceStage::kParse, request.parse_micros);

  HttpResponse response = router_.Dispatch(request, &trace);
  // The backend echoes arrive lower-cased (header names are folded on
  // parse); drop them so the response carries each header exactly once
  // (the router re-adds Deprecation for legacy paths).
  response.headers.erase("x-serenade-trace-id");
  response.headers.erase("deprecation");
  response.headers[kTraceIdHeader] = trace.id();

  // Request-level latency metrics cover the recommend routes only, so
  // metrics scrapes and health probes don't dilute the histograms.
  const std::string& canonical = router_.CanonicalPath(request.path);
  if (canonical == "/v1/recommend" || canonical == "/v1/recommend:batch") {
    request_latency_micros_->Record(trace.TotalMicros());
    for (TraceStage stage : kGatewayStages) {
      if (trace.StageCount(stage) == 0) continue;
      stage_micros_[static_cast<size_t>(stage)]->Record(
          trace.StageMicros(stage));
    }
    slow_logger_.MaybeLog(trace, "gateway", request.path, response.status);
  }
  return response;
}

ClusterGateway::AttemptResult ClusterGateway::ForwardWithFailover(
    const std::string& session_key, const std::string& target,
    const std::map<std::string, std::string>& headers,
    const std::string* post_body, Trace* trace) {
  // Ring order per session key: owner first, then deterministic failover
  // successors; unhealthy pods are skipped, which keeps a session sticky
  // to one pod while the fleet is stable and re-homes only the ejected
  // pod's sessions during an outage.
  const std::vector<std::string> replicas =
      ring_.ReplicasFor(session_key, backends_.size());
  std::vector<Backend*> candidates;
  candidates.reserve(replicas.size());
  for (const std::string& name : replicas) {
    if (!health_->IsHealthy(name)) continue;
    if (Backend* backend = FindBackend(name)) candidates.push_back(backend);
  }

  Span forward_span(trace, TraceStage::kForward);
  AttemptResult last;
  last.error = Status::Unavailable("no healthy backend");
  size_t next_candidate = 0;
  uint32_t attempts = 0;
  while (next_candidate < candidates.size() &&
         attempts < config_.max_attempts) {
    if (attempts > 0) {
      retries_->Increment();
      const uint64_t delay =
          BackoffWithJitterMs(config_.retry_backoff_ms, attempts - 1);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
    Backend* primary = candidates[next_candidate];
    Backend* secondary =
        (attempts == 0 && next_candidate + 1 < candidates.size())
            ? candidates[next_candidate + 1]
            : nullptr;
    const bool hedged = config_.hedge_delay_ms > 0 && secondary != nullptr;
    last = hedged ? ForwardMaybeHedged(*primary, secondary, target, headers,
                                       post_body)
                  : ForwardOnce(*primary, target, headers, post_body);
    if (last.ok) return last;
    // A hedged round consumed the primary and its successor.
    next_candidate += hedged ? 2 : 1;
    attempts += hedged ? 2 : 1;
  }
  return last;
}

HttpResponse ClusterGateway::HandleRecommendGet(const HttpRequest& request,
                                                Trace* trace) {
  const std::string session_key = request.Param("session_id");
  if (session_key.empty()) {
    return ApiError(400, "session_id is required", trace->id());
  }

  // Re-encode the query for forwarding (it arrived percent-decoded).
  std::string target = request.path;
  char separator = '?';
  for (const auto& [key, value] : request.query) {
    target += separator;
    target += UrlEncodeComponent(key);
    target += '=';
    target += UrlEncodeComponent(value);
    separator = '&';
  }

  // Trace-context propagation: the backend adopts this id and echoes it,
  // so the pod's slow-request logs join with ours.
  const std::map<std::string, std::string> forward_headers = {
      {kTraceIdHeader, trace->id()}};
  AttemptResult last = ForwardWithFailover(session_key, target,
                                           forward_headers, nullptr, trace);
  if (last.ok) {
    forwarded_ok_->Increment();
    return std::move(last.response);
  }
  if (fallback_ != nullptr) return ServeDegraded(request.Param("item_id"));
  failed_->Increment();
  return ApiError(503, last.error.ToString(), trace->id());
}

HttpResponse ClusterGateway::HandleRecommendPost(const HttpRequest& request,
                                                 Trace* trace) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "malformed JSON body: " + doc.status().message(),
                    trace->id());
  }
  const JsonValue* session = doc->Find("session_id");
  if (session == nullptr || session->type() != JsonValue::Type::kString ||
      session->AsString().empty()) {
    return ApiError(400, "session_id is required", trace->id());
  }

  const std::map<std::string, std::string> forward_headers = {
      {kTraceIdHeader, trace->id()}};
  AttemptResult last =
      ForwardWithFailover(session->AsString(), request.path, forward_headers,
                          &request.body, trace);
  if (last.ok) {
    forwarded_ok_->Increment();
    return std::move(last.response);
  }
  if (fallback_ != nullptr) {
    std::string item_text;
    if (const JsonValue* item = doc->Find("item_id");
        item != nullptr && item->type() == JsonValue::Type::kNumber) {
      item_text = std::to_string(item->AsInt());
    }
    return ServeDegraded(item_text);
  }
  failed_->Increment();
  return ApiError(503, last.error.ToString(), trace->id());
}

HttpResponse ClusterGateway::HandleRecommendBatch(const HttpRequest& request,
                                                  Trace* trace) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "malformed JSON body: " + doc.status().message(),
                    trace->id());
  }
  const JsonValue* entries = doc->Find("requests");
  if (entries == nullptr || entries->type() != JsonValue::Type::kArray) {
    return ApiError(400, "body must carry a \"requests\" array", trace->id());
  }
  const std::vector<JsonValue>& slots = entries->AsArray();
  if (slots.size() > config_.max_batch_items) {
    return ApiError(413,
                    "batch of " + std::to_string(slots.size()) +
                        " exceeds the limit of " +
                        std::to_string(config_.max_batch_items),
                    trace->id());
  }

  auto error_entry = [&](int status, const std::string& message) {
    JsonWriter writer;
    writer.BeginObject().Key("error").BeginObject();
    writer.Key("code").Value(ApiErrorCode(status));
    writer.Key("message").Value(message);
    writer.Key("trace_id").Value(trace->id());
    writer.EndObject().EndObject();
    return writer.str();
  };
  auto item_text_of = [](const JsonValue& slot) {
    const JsonValue* item = slot.Find("item_id");
    return item != nullptr && item->type() == JsonValue::Type::kNumber
               ? std::to_string(item->AsInt())
               : std::string();
  };

  // Scatter: group slots by their session key's ring owner. Slots whose
  // key can't be read get a per-slot error — they never fail siblings.
  struct Group {
    std::string session_key;    // routes the sub-batch
    std::vector<size_t> slots;  // positions in the client batch
  };
  std::map<std::string, Group> groups;  // backend name (or "") -> group
  std::vector<std::string> merged(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    const JsonValue* session = slots[i].Find("session_id");
    if (session == nullptr || session->type() != JsonValue::Type::kString ||
        session->AsString().empty()) {
      merged[i] = error_entry(400, "session_id is required");
      continue;
    }
    // First healthy replica = the pod this key's micro-batches land on.
    std::string owner;
    for (const std::string& name :
         ring_.ReplicasFor(session->AsString(), backends_.size())) {
      if (health_->IsHealthy(name)) {
        owner = name;
        break;
      }
    }
    Group& group = groups[owner];
    if (group.slots.empty()) group.session_key = session->AsString();
    group.slots.push_back(i);
  }

  // Forward each sub-batch (the "" group has no healthy owner and skips
  // straight to fallback), then gather into the slot order.
  const std::map<std::string, std::string> forward_headers = {
      {kTraceIdHeader, trace->id()}};
  for (auto& [owner, group] : groups) {
    AttemptResult last;
    if (!owner.empty()) {
      // Re-serialising parsed slots (rather than slicing raw text) keeps
      // the forwarded sub-batch canonical JSON whatever the client sent.
      std::string sub = "{\"requests\":[";
      for (size_t j = 0; j < group.slots.size(); ++j) {
        if (j > 0) sub += ',';
        sub += SerializeJson(slots[group.slots[j]]);
      }
      sub += "]}";
      last = ForwardWithFailover(group.session_key, request.path,
                                 forward_headers, &sub, trace);
    }
    if (last.ok) {
      auto sub_doc = ParseJson(last.response.body);
      const JsonValue* results =
          sub_doc.ok() ? sub_doc->Find("results") : nullptr;
      if (results != nullptr &&
          results->type() == JsonValue::Type::kArray &&
          results->AsArray().size() == group.slots.size()) {
        forwarded_ok_->Increment();
        for (size_t j = 0; j < group.slots.size(); ++j) {
          merged[group.slots[j]] = SerializeJson(results->AsArray()[j]);
        }
        continue;
      }
      last.ok = false;
      last.error = Status::Internal("backend returned a malformed batch");
    }
    // The sub-batch failed: its slots degrade (or error) individually.
    for (size_t slot : group.slots) {
      if (fallback_ != nullptr) {
        merged[slot] = DegradedEntryJson(item_text_of(slots[slot]));
      } else {
        merged[slot] = error_entry(503, last.error.ToString());
      }
    }
    if (fallback_ == nullptr) failed_->Increment();
  }

  Span serialize_span(trace, TraceStage::kSerialize);
  std::string body = "{\"results\":[";
  for (size_t i = 0; i < merged.size(); ++i) {
    if (i > 0) body += ',';
    body += merged[i];
  }
  body += "]}";
  return HttpResponse::Json(std::move(body));
}

std::vector<ScoredItem> ClusterGateway::FallbackItems(
    const std::string& item_text) {
  EvolvingSession session;
  uint32_t item = 0;
  const auto parsed = std::from_chars(
      item_text.data(), item_text.data() + item_text.size(), item);
  if (parsed.ec == std::errc() &&
      parsed.ptr == item_text.data() + item_text.size()) {
    session.push_back(item);
  }
  std::lock_guard<std::mutex> lock(fallback_mutex_);
  return fallback_->RecommendNext(session, config_.fallback_items);
}

HttpResponse ClusterGateway::ServeDegraded(const std::string& item_text) {
  degraded_->Increment();
  const std::vector<ScoredItem> items = FallbackItems(item_text);
  JsonWriter writer;
  writer.BeginObject().Key("items").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<uint64_t>(rec.item));
  }
  writer.EndArray().Key("scores").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<double>(rec.score));
  }
  writer.EndArray().Key("degraded").Value(true).EndObject();
  return HttpResponse::Json(writer.str());
}

std::string ClusterGateway::DegradedEntryJson(const std::string& item_text) {
  degraded_->Increment();
  const std::vector<ScoredItem> items = FallbackItems(item_text);
  JsonWriter writer;
  writer.BeginObject().Key("items").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<uint64_t>(rec.item));
  }
  writer.EndArray().Key("scores").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<double>(rec.score));
  }
  writer.EndArray().Key("degraded").Value(true).EndObject();
  return writer.str();
}

HttpResponse ClusterGateway::HandleHealthz() {
  JsonWriter writer;
  writer.BeginObject()
      .Key("status")
      .Value("ok")
      .Key("backends")
      .Value(static_cast<uint64_t>(health_->NumBackends()))
      .Key("healthy_backends")
      .Value(static_cast<uint64_t>(health_->NumHealthy()))
      .EndObject();
  return HttpResponse::Json(writer.str());
}

GatewayCounters ClusterGateway::counters() const {
  GatewayCounters counters;
  counters.forwarded_ok = forwarded_ok_->value();
  counters.degraded = degraded_->value();
  counters.failed = failed_->value();
  counters.retries = retries_->value();
  counters.hedges = hedges_->value();
  counters.hedge_wins = hedge_wins_->value();
  return counters;
}

std::vector<BackendCounters> ClusterGateway::backend_counters() const {
  std::vector<BackendCounters> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) {
    BackendCounters counters;
    counters.name = backend->endpoint.name;
    counters.requests = backend->requests->value();
    counters.errors = backend->errors->value();
    out.push_back(std::move(counters));
  }
  return out;
}

HttpResponse ClusterGateway::HandleStats() {
  const GatewayCounters totals = this->counters();
  JsonWriter writer;
  writer.BeginObject()
      .Key("requests_served")
      .Value(requests_served())
      .Key("forwarded_ok")
      .Value(totals.forwarded_ok)
      .Key("degraded")
      .Value(totals.degraded)
      .Key("failed")
      .Value(totals.failed)
      .Key("retries")
      .Value(totals.retries)
      .Key("hedges")
      .Value(totals.hedges)
      .Key("hedge_wins")
      .Value(totals.hedge_wins)
      .Key("slow_requests")
      .Value(slow_logger_.slow_requests_seen())
      .Key("client_acquires")
      .Value(pool_->acquires_total())
      .Key("client_reuses")
      .Value(pool_->reuses_total())
      .Key("client_reuse_ratio")
      .Value(pool_->ReuseRatio())
      .Key("open_connections")
      .Value(http_ ? http_->stats().open_connections : 0)
      .Key("shed_connections")
      .Value(http_ ? http_->stats().shed : 0)
      .Key("healthy_backends")
      .Value(static_cast<uint64_t>(health_->NumHealthy()))
      .Key("backends")
      .BeginArray();
  const std::vector<BackendHealth> health = health_->Snapshot();
  for (const auto& backend : backends_) {
    const std::string& name = backend->endpoint.name;
    bool healthy = false;
    uint64_t ejections = 0;
    uint64_t index_version = 0;
    uint64_t probe_connects = 0;
    uint64_t probe_reuses = 0;
    for (const BackendHealth& entry : health) {
      if (entry.name == name) {
        healthy = entry.healthy;
        ejections = entry.ejections_total;
        index_version = entry.index_version;
        probe_connects = entry.probe_connects_total;
        probe_reuses = entry.probe_reuses_total;
        break;
      }
    }
    writer.BeginObject()
        .Key("name")
        .Value(name)
        .Key("healthy")
        .Value(healthy)
        .Key("index_version")
        .Value(index_version)
        .Key("requests")
        .Value(backend->requests->value())
        .Key("errors")
        .Value(backend->errors->value())
        .Key("ejections")
        .Value(ejections)
        .Key("probe_connects")
        .Value(probe_connects)
        .Key("probe_reuses")
        .Value(probe_reuses)
        .EndObject();
  }
  writer.EndArray().EndObject();
  return HttpResponse::Json(writer.str());
}

}  // namespace serenade
