#include "cluster/gateway.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <thread>

#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "replication/replication_protocol.h"
#include "serving/json.h"
#include "serving/server.h"

namespace serenade {

namespace {

// Equal-jitter exponential backoff: half deterministic, half uniform, so
// retry storms from concurrent request threads spread out in time.
uint64_t BackoffWithJitterMs(uint64_t base_ms, uint32_t retry_number) {
  constexpr uint64_t kMaxBackoffMs = 200;
  thread_local Rng rng(Mix64(static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()))));
  uint64_t delay = base_ms << std::min<uint32_t>(retry_number, 6);
  delay = std::min(delay, kMaxBackoffMs);
  if (delay == 0) return 0;
  return delay / 2 + rng.Below(delay / 2 + 1);
}

// Gateway-side stages exported as gateway_stage_duration_microseconds.
constexpr TraceStage kGatewayStages[] = {
    TraceStage::kParse,
    TraceStage::kForward,
    TraceStage::kSerialize,
};

}  // namespace

std::string UrlEncodeComponent(const std::string& text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    const bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                            c == '.' || c == '~';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    }
  }
  return out;
}

ClusterGateway::ClusterGateway(std::vector<BackendEndpoint> backends,
                               GatewayConfig config,
                               std::unique_ptr<Recommender> fallback)
    : config_(config),
      fallback_(std::move(fallback)),
      ring_(config.virtual_nodes),
      slow_logger_(config.trace) {
  HttpClientPoolConfig pool_config;
  pool_config.max_idle_per_endpoint = config_.max_pooled_clients;
  pool_config.client.connect_timeout_ms = config_.forward_timeout_ms;
  pool_config.client.io_timeout_ms = config_.forward_timeout_ms;
  pool_ = std::make_unique<HttpClientPool>(pool_config);
  RegisterMetrics();
  BuildRoutes();
  backends_.reserve(backends.size());
  for (const BackendEndpoint& endpoint : backends) {
    AttachBackendLocked(endpoint);
  }
  std::vector<BackendEndpoint> endpoints;
  endpoints.reserve(backends.size());
  for (const auto& backend : backends_) endpoints.push_back(backend->endpoint);
  health_ = std::make_unique<HealthChecker>(std::move(endpoints),
                                            config_.health);

  // Health-derived gauges pull from the checker at scrape time, so a
  // scrape always sees the current ejection state, never a cached copy.
  registry_.AddCallback(
      "gateway_backend_healthy", "whether the backend is routable",
      MetricType::kGauge, "backend", [this]() -> std::vector<MetricSample> {
        std::vector<MetricSample> samples;
        for (const BackendHealth& entry : health_->Snapshot()) {
          samples.push_back({entry.name, entry.healthy ? 1u : 0u});
        }
        return samples;
      });
  registry_.AddCallback(
      "gateway_backend_index_version",
      "index snapshot version last reported by the backend",
      MetricType::kGauge, "backend", [this]() -> std::vector<MetricSample> {
        std::vector<MetricSample> samples;
        for (const BackendHealth& entry : health_->Snapshot()) {
          samples.push_back({entry.name, entry.index_version});
        }
        return samples;
      });
  registry_.AddCallback(
      "gateway_backend_index_freshness_seconds",
      "index freshness (age of newest servable click) last reported by "
      "the backend",
      MetricType::kGauge, "backend", [this]() -> std::vector<MetricSample> {
        std::vector<MetricSample> samples;
        for (const BackendHealth& entry : health_->Snapshot()) {
          samples.push_back({entry.name, entry.index_freshness_seconds});
        }
        return samples;
      });
  // Replication-lag view of the fleet: how far each pod's ring successor
  // trails its WAL, as last reported over /v1/healthz.
  registry_.AddCallback(
      "gateway_backend_replica_lag_bytes",
      "WAL bytes the backend's ring successor has not yet acknowledged",
      MetricType::kGauge, "backend", [this]() -> std::vector<MetricSample> {
        std::vector<MetricSample> samples;
        for (const BackendHealth& entry : health_->Snapshot()) {
          samples.push_back({entry.name, entry.replica_lag_bytes});
        }
        return samples;
      });
  registry_.AddCallback(
      "gateway_backend_ring_epoch",
      "fleet-membership epoch the backend last adopted", MetricType::kGauge,
      "backend", [this]() -> std::vector<MetricSample> {
        std::vector<MetricSample> samples;
        for (const BackendHealth& entry : health_->Snapshot()) {
          samples.push_back({entry.name, entry.ring_epoch});
        }
        return samples;
      });
}

ClusterGateway::~ClusterGateway() { Stop(); }

void ClusterGateway::RegisterMetrics() {
  registry_.AddCallback(
      "gateway_requests_total", "requests accepted by the gateway",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", requests_served()}};
      });
  forwarded_ok_ = &registry_.AddCounter("gateway_forwarded_ok_total",
                                        "requests answered by a backend");
  degraded_ = &registry_.AddCounter(
      "gateway_degraded_responses_total",
      "requests served by the popularity fallback");
  failed_ = &registry_.AddCounter("gateway_failed_requests_total",
                                  "requests that exhausted all attempts");
  retries_ = &registry_.AddCounter("gateway_retries_total",
                                   "retry attempts against ring successors");
  hedges_ = &registry_.AddCounter("gateway_hedges_total",
                                  "hedged second requests launched");
  hedge_wins_ = &registry_.AddCounter("gateway_hedge_wins_total",
                                      "hedges that beat the primary");
  stale_epoch_rejects_ = &registry_.AddCounter(
      "gateway_stale_epoch_rejects_total",
      "cluster mutations rejected for carrying a stale ring epoch");
  // A/B experiment read-out, labelled by the arm the gateway ASSIGNED
  // (the pod's serenade_engine_requests_total counts what actually
  // served; the two disagree exactly when an arm degrades).
  static constexpr const char* kArmNames[2] = {"vmis", "ann"};
  for (int arm = 0; arm < 2; ++arm) {
    ab_requests_[arm] = &registry_.AddCounter(
        "gateway_ab_requests_total",
        "forwarded recommend requests per experiment arm", "engine",
        kArmNames[arm]);
    ab_impressions_[arm] = &registry_.AddCounter(
        "gateway_ab_impressions_total",
        "served responses whose items entered the engagement tracker",
        "engine", kArmNames[arm]);
    ab_engagements_[arm] = &registry_.AddCounter(
        "gateway_ab_engagements_total",
        "clicks that landed on an item the same session was just shown",
        "engine", kArmNames[arm]);
    ab_latency_micros_[arm] = &registry_.AddHistogram(
        "gateway_ab_latency_microseconds",
        "end-to-end forwarding latency per experiment arm", "engine",
        kArmNames[arm]);
  }
  ab_fallbacks_ = &registry_.AddCounter(
      "gateway_ab_fallbacks_total",
      "ANN-arm requests a pod actually served with VMIS (dead arm)");
  redirects_followed_ = &registry_.AddCounter(
      "gateway_redirects_followed_total",
      "mid-hand-off 307 redirects followed to a session's new owner");
  registry_.AddCallback(
      "gateway_ring_epoch", "current fleet-membership epoch",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", ring_epoch()}};
      });
  registry_.AddCallback(
      "serenade_http_deprecated_requests_total",
      "requests served via deprecated unversioned path aliases",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", router_.deprecated_requests()}};
      });
  registry_.AddCallback(
      "gateway_slow_requests_total",
      "requests over the slow-request threshold", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", slow_logger_.slow_requests_seen()}};
      });
  // Keep-alive reuse on the gateway→pod hop: a warm fleet should show a
  // reuse ratio near 1 (each acquire served by a parked connection).
  registry_.AddCallback(
      "gateway_client_acquires_total",
      "pooled-client checkouts for forwarding attempts", MetricType::kCounter,
      "", [this]() -> std::vector<MetricSample> {
        return {{"", pool_->acquires_total()}};
      });
  registry_.AddCallback(
      "gateway_client_reuses_total",
      "checkouts served by a parked keep-alive connection",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", pool_->reuses_total()}};
      });
  registry_.AddCallback(
      "gateway_client_discards_total",
      "pooled clients dropped (transport error or full shelf)",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", pool_->discards_total()}};
      });
  // Front-door reactor counters (same family as the pod's serenade_*).
  registry_.AddCallback(
      "gateway_open_connections", "currently open HTTP connections",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", http_ ? http_->stats().open_connections : 0}};
      });
  registry_.AddCallback(
      "gateway_shed_connections_total",
      "connections refused with 503 + Retry-After at the connection cap",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", http_ ? http_->stats().shed : 0}};
      });
  registry_.AddCallback(
      "gateway_reactor_loop_iterations_total", "event-loop wakeups",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", http_ ? http_->stats().loop_iterations : 0}};
      });
  registry_.AddCallback(
      "gateway_connection_timeouts_total",
      "connections closed by the timer wheel", MetricType::kCounter, "kind",
      [this]() -> std::vector<MetricSample> {
        const HttpServerStats stats =
            http_ ? http_->stats() : HttpServerStats{};
        return {{"idle", stats.idle_timeouts},
                {"deadline", stats.deadline_timeouts}};
      });
  reactor_loop_lag_micros_ = &registry_.AddHistogram(
      "gateway_reactor_loop_lag_microseconds",
      "time the event loop spent processing one epoll batch");
  forward_latency_micros_ = &registry_.AddHistogram(
      "gateway_forward_latency_microseconds",
      "per-attempt forwarding latency");
  request_latency_micros_ = &registry_.AddHistogram(
      "gateway_request_latency_microseconds",
      "end-to-end /recommend handling latency at the gateway");
  for (TraceStage stage : kGatewayStages) {
    stage_micros_[static_cast<size_t>(stage)] = &registry_.AddHistogram(
        "gateway_stage_duration_microseconds",
        "per-request latency attributed to one gateway stage", "stage",
        TraceStageName(stage));
  }
}

void ClusterGateway::AttachBackendLocked(const BackendEndpoint& endpoint) {
  auto backend = std::make_unique<Backend>();
  backend->endpoint = endpoint;
  // AddCounter returns the existing handle when a retired backend's name
  // is reused, so counters survive leave/rejoin cycles.
  backend->requests = &registry_.AddCounter(
      "gateway_backend_requests_total", "forwarding attempts per backend",
      "backend", endpoint.name);
  backend->errors = &registry_.AddCounter(
      "gateway_backend_errors_total",
      "failed forwarding attempts per backend", "backend", endpoint.name);
  ring_.AddNode(endpoint.name);
  backends_.push_back(std::move(backend));
}

uint64_t ClusterGateway::ring_epoch() const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  return ring_epoch_;
}

std::string ClusterGateway::OwnerOf(const std::string& session_key) const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  if (ring_.num_nodes() == 0) return "";
  return ring_.NodeFor(session_key);
}

std::vector<BackendEndpoint> ClusterGateway::Members() const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  std::vector<BackendEndpoint> members;
  members.reserve(backends_.size());
  for (const auto& backend : backends_) members.push_back(backend->endpoint);
  return members;
}

Status ClusterGateway::Start() {
  if (backends_.empty() && fallback_ == nullptr) {
    return Status::InvalidArgument(
        "gateway needs at least one backend or a fallback recommender");
  }
  // Seed the health view before taking traffic so a dead pod configured
  // at startup is never routed to.
  health_->ProbeAllOnce();
  health_->Start();
  if (config_.manage_replication) {
    // Tell every pod who its ring successor is before traffic (and
    // therefore WAL writes) start flowing.
    const Status wired = PushReplicationWiring();
    if (!wired.ok()) {
      LOG_WARNING << "gateway: initial replication wiring incomplete: "
                  << wired.ToString();
    }
  }
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); },
      config_.http);
  http_->set_loop_lag_histogram(reactor_loop_lag_micros_);
  Status started = http_->Start(config_.port);
  if (!started.ok()) health_->Stop();
  return started;
}

void ClusterGateway::Stop() {
  if (http_) http_->Stop();
  // Hedge losers hold references into our backend pools; wait them out
  // (each is bounded by forward_timeout_ms).
  while (inflight_hedges_.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (health_) health_->Stop();
}

ClusterGateway::Backend* ClusterGateway::FindBackendLocked(
    const std::string& name) {
  for (const auto& backend : backends_) {
    if (backend->endpoint.name == name) return backend.get();
  }
  return nullptr;
}

std::unique_ptr<HttpClient> ClusterGateway::AcquireClient(Backend& backend,
                                                          Status* status) {
  auto client = pool_->Acquire(backend.endpoint.port);
  if (!client.ok()) {
    *status = client.status();
    return nullptr;
  }
  return std::move(client).value();
}

void ClusterGateway::ReleaseClient(Backend& backend,
                                   std::unique_ptr<HttpClient> client,
                                   bool reusable) {
  pool_->Release(backend.endpoint.port, std::move(client), reusable);
}

ClusterGateway::AttemptResult ClusterGateway::ForwardOnce(
    Backend& backend, const std::string& target,
    const std::map<std::string, std::string>& headers,
    const std::string* post_body) {
  AttemptResult result;
  backend.requests->Increment();
  Stopwatch stopwatch;

  Status connect_status = Status::Ok();
  auto client = AcquireClient(backend, &connect_status);
  if (client == nullptr) {
    forward_latency_micros_->Record(stopwatch.ElapsedMicros());
    backend.errors->Increment();
    health_->ReportResult(backend.endpoint.name, false);
    result.error = std::move(connect_status);
    return result;
  }

  auto response = post_body != nullptr
                      ? client->Post(target, *post_body, headers)
                      : client->Get(target, headers);
  forward_latency_micros_->Record(stopwatch.ElapsedMicros());
  const bool transport_ok = response.ok();
  // Any parsed HTTP response proves the pod is alive; 5xx bodies are
  // handler bugs, not fleet-membership signals.
  health_->ReportResult(backend.endpoint.name, transport_ok);
  ReleaseClient(backend, std::move(client), transport_ok);

  if (!transport_ok) {
    backend.errors->Increment();
    result.error = response.status();
    return result;
  }
  if (response->status >= 500) {
    backend.errors->Increment();
    result.error = Status::Internal("backend " + backend.endpoint.name +
                                    " returned " +
                                    std::to_string(response->status));
    // Keep the parsed response: a 503 with Retry-After is a donor saying
    // "this key is mid-cutover, ask me again", which the failover loop
    // treats differently from a dead pod.
    result.response = std::move(response).value();
    return result;
  }
  result.ok = true;
  result.response = std::move(response).value();
  return result;
}

ClusterGateway::AttemptResult ClusterGateway::ForwardToPort(
    uint16_t port, const std::string& target,
    const std::map<std::string, std::string>& headers,
    const std::string* post_body) {
  AttemptResult result;
  auto client = pool_->Acquire(port);
  if (!client.ok()) {
    result.error = client.status();
    return result;
  }
  auto http = std::move(client).value();
  auto response = post_body != nullptr ? http->Post(target, *post_body, headers)
                                       : http->Get(target, headers);
  const bool transport_ok = response.ok();
  pool_->Release(port, std::move(http), transport_ok);
  if (!transport_ok) {
    result.error = response.status();
    return result;
  }
  if (response->status >= 500) {
    result.error = Status::Internal("redirect target on port " +
                                    std::to_string(port) + " returned " +
                                    std::to_string(response->status));
    result.response = std::move(response).value();
    return result;
  }
  result.ok = true;
  result.response = std::move(response).value();
  return result;
}

std::string ClusterGateway::FirstHealthyFor(
    const std::string& session_key) const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  if (ring_.num_nodes() == 0) return "";
  for (const std::string& name :
       ring_.SuccessorChain(ring_.NodeFor(session_key))) {
    if (health_->IsHealthy(name)) return name;
  }
  return "";
}

ClusterGateway::AttemptResult ClusterGateway::ForwardMaybeHedged(
    Backend& primary, Backend* secondary, const std::string& target,
    const std::map<std::string, std::string>& headers,
    const std::string* post_body) {
  if (config_.hedge_delay_ms == 0 || secondary == nullptr) {
    return ForwardOnce(primary, target, headers, post_body);
  }

  struct SharedState {
    std::mutex mutex;
    std::condition_variable cv;
    int outstanding = 0;
    bool have_winner = false;
    bool winner_was_hedge = false;
    AttemptResult winner;
    AttemptResult last_failure;
  };
  auto state = std::make_shared<SharedState>();

  auto launch = [this, state, &target, &headers, post_body](Backend* backend,
                                                            bool is_hedge) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      ++state->outstanding;
    }
    inflight_hedges_.fetch_add(1);
    // Detached: the winner's caller returns immediately, the loser keeps
    // running (bounded by forward_timeout_ms); Stop() drains via
    // inflight_hedges_. `target`, `headers`, and the body are copied
    // into the thread.
    std::thread([this, state, backend, is_hedge, target_copy = target,
                 headers_copy = headers,
                 body_copy = post_body == nullptr
                     ? std::string()
                     : *post_body,
                 has_body = post_body != nullptr]() mutable {
      AttemptResult result = ForwardOnce(*backend, target_copy, headers_copy,
                                         has_body ? &body_copy : nullptr);
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        --state->outstanding;
        if (result.ok && !state->have_winner) {
          state->have_winner = true;
          state->winner_was_hedge = is_hedge;
          state->winner = std::move(result);
        } else if (!result.ok) {
          state->last_failure = std::move(result);
        }
      }
      state->cv.notify_all();
      inflight_hedges_.fetch_sub(1);
    }).detach();
  };

  launch(&primary, /*is_hedge=*/false);

  std::unique_lock<std::mutex> lock(state->mutex);
  const bool primary_done = state->cv.wait_for(
      lock, std::chrono::milliseconds(config_.hedge_delay_ms),
      [&] { return state->have_winner || state->outstanding == 0; });
  if (!primary_done) {
    lock.unlock();
    hedges_->Increment();
    launch(secondary, /*is_hedge=*/true);
    lock.lock();
  }
  state->cv.wait(lock,
                 [&] { return state->have_winner || state->outstanding == 0; });
  if (state->have_winner) {
    if (state->winner_was_hedge) {
      hedge_wins_->Increment();
    }
    return std::move(state->winner);
  }
  return std::move(state->last_failure);
}

void ClusterGateway::BuildRoutes() {
  router_.Handle("GET", "/v1/recommend",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleRecommendGet(request, trace);
                 });
  router_.Handle("POST", "/v1/recommend",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleRecommendPost(request, trace);
                 });
  router_.Handle("POST", "/v1/recommend:batch",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleRecommendBatch(request, trace);
                 });
  router_.Handle("GET", "/v1/healthz",
                 [this](const HttpRequest&, Trace*) { return HandleHealthz(); });
  router_.Handle("GET", "/v1/stats",
                 [this](const HttpRequest&, Trace*) { return HandleStats(); });
  router_.Handle("GET", "/v1/metrics",
                 [this](const HttpRequest&, Trace*) {
                   return HttpResponse::Text(registry_.RenderPrometheus(),
                                             MetricsRegistry::ContentType());
                 });

  // Elastic-fleet control plane (epoch-fenced, see API.md).
  router_.Handle("GET", "/v1/admin/cluster",
                 [this](const HttpRequest&, Trace* trace) {
                   return HandleClusterGet(trace);
                 });
  router_.Handle("POST", "/v1/admin/cluster/join",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleClusterJoin(request, trace);
                 });
  router_.Handle("POST", "/v1/admin/cluster/drain",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleClusterDrain(request, trace);
                 });
  router_.Handle("POST", "/v1/admin/cluster/remove",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleClusterRemove(request, trace);
                 });

  // Pre-/v1 paths: same handlers (byte-identical bodies), marked
  // deprecated on the way out. The forwarded target preserves the path
  // the client used, so legacy traffic stays legacy on the pod hop too.
  router_.Alias("/recommend", "/v1/recommend");
  router_.Alias("/healthz", "/v1/healthz");
  router_.Alias("/stats", "/v1/stats");
  router_.Alias("/metrics", "/v1/metrics");
}

HttpResponse ClusterGateway::Handle(const HttpRequest& request) {
  // Adopt a caller-supplied trace id (e.g. an edge proxy), else mint
  // one; either way the same id follows the request into the fleet.
  const std::string inbound = request.Header(kTraceIdHeader);
  Trace trace = IsValidTraceId(inbound) ? Trace(inbound) : Trace();
  trace.Record(TraceStage::kParse, request.parse_micros);

  HttpResponse response = router_.Dispatch(request, &trace);
  // The backend echoes arrive lower-cased (header names are folded on
  // parse); drop them so the response carries each header exactly once
  // (the router re-adds Deprecation for legacy paths).
  response.headers.erase("x-serenade-trace-id");
  response.headers.erase("deprecation");
  response.headers[kTraceIdHeader] = trace.id();

  // Request-level latency metrics cover the recommend routes only, so
  // metrics scrapes and health probes don't dilute the histograms.
  const std::string& canonical = router_.CanonicalPath(request.path);
  if (canonical == "/v1/recommend" || canonical == "/v1/recommend:batch") {
    request_latency_micros_->Record(trace.TotalMicros());
    for (TraceStage stage : kGatewayStages) {
      if (trace.StageCount(stage) == 0) continue;
      stage_micros_[static_cast<size_t>(stage)]->Record(
          trace.StageMicros(stage));
    }
    slow_logger_.MaybeLog(trace, "gateway", request.path, response.status);
  }
  return response;
}

ClusterGateway::AttemptResult ClusterGateway::ForwardWithFailover(
    const std::string& session_key, const std::string& target,
    const std::map<std::string, std::string>& headers,
    const std::string* post_body, Trace* trace) {
  Span forward_span(trace, TraceStage::kForward);
  AttemptResult last;
  last.error = Status::Unavailable("no healthy backend");
  // Candidates are re-resolved from the LIVE ring on every attempt, not
  // precomputed: a join/drain/remove (or an ejection) between attempts
  // must steer the retry at the key's current owner, or a retried click
  // lands on a pod that no longer owns the session. Ring order is the
  // node-successor chain, so failover traffic for a dead owner reaches
  // the pod holding its replica first.
  std::set<std::string> tried;
  uint32_t attempts = 0;
  while (attempts < config_.max_attempts) {
    if (attempts > 0) {
      retries_->Increment();
      const uint64_t delay =
          BackoffWithJitterMs(config_.retry_backoff_ms, attempts - 1);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      if (pre_retry_hook_) pre_retry_hook_();
    }
    Backend* primary = nullptr;
    Backend* secondary = nullptr;
    {
      std::lock_guard<std::mutex> lock(membership_mutex_);
      if (ring_.num_nodes() > 0) {
        for (const std::string& name :
             ring_.SuccessorChain(ring_.NodeFor(session_key))) {
          if (tried.count(name) != 0 || !health_->IsHealthy(name)) continue;
          Backend* backend = FindBackendLocked(name);
          if (backend == nullptr) continue;
          if (primary == nullptr) {
            primary = backend;
          } else {
            secondary = backend;
            break;
          }
        }
      }
    }
    if (primary == nullptr) break;  // no untried healthy candidate left
    // Hedge only on the first round: a retry already proved the fleet
    // slow or unstable, racing a third request just adds load.
    const bool hedged =
        attempts == 0 && config_.hedge_delay_ms > 0 && secondary != nullptr;
    tried.insert(primary->endpoint.name);
    if (hedged) tried.insert(secondary->endpoint.name);
    last = hedged ? ForwardMaybeHedged(*primary, secondary, target, headers,
                                       post_body)
                  : ForwardOnce(*primary, target, headers, post_body);
    attempts += hedged ? 2 : 1;
    if (!last.ok) {
      // 503 + Retry-After is a donor holding this key closed for a
      // moment mid-cutover — the key is still THERE, so the same pod
      // stays a candidate for the next attempt instead of the request
      // wandering to a non-owner.
      if (last.response.status == 503 &&
          !last.response.Header("Retry-After").empty()) {
        tried.erase(primary->endpoint.name);
      }
      continue;
    }
    // A donor answering for an already-cut-over key 307s to the new
    // owner; follow exactly one hop so clients never see the redirect.
    if (last.response.status == 307) {
      uint16_t redirect_port = 0;
      const std::string port_text =
          last.response.Header(repl::kBackendPortHeader);
      std::from_chars(port_text.data(), port_text.data() + port_text.size(),
                      redirect_port);
      if (redirect_port != 0) {
        redirects_followed_->Increment();
        AttemptResult followed =
            ForwardToPort(redirect_port, target, headers, post_body);
        if (followed.ok && followed.response.status != 307) return followed;
        last = std::move(followed);
        if (last.ok) {
          last.ok = false;
          last.error = Status::Internal("redirect loop during hand-off");
        }
        continue;  // treat a failed follow as a failed attempt
      }
    }
    return last;
  }
  return last;
}

HttpResponse ClusterGateway::HandleRecommendGet(const HttpRequest& request,
                                                Trace* trace) {
  const std::string session_key = request.Param("session_id");
  if (session_key.empty()) {
    return ApiError(400, "session_id is required", trace->id());
  }

  // Engine resolution: an explicit engine= from the client wins; else
  // the sticky A/B bucket is stamped onto the forwarded query so the pod
  // serves this session's assigned arm.
  std::string engine = request.Param("engine");
  const bool client_specified = !engine.empty();
  if (!client_specified && config_.ab_ann_percent > 0) {
    engine = AbArmOf(session_key);
  }
  const int arm = engine == "ann" ? 1 : 0;
  if (config_.ab_ann_percent > 0) {
    AbObserveClick(session_key, request.Param("item_id"));
  }

  // Re-encode the query for forwarding (it arrived percent-decoded).
  std::string target = request.path;
  char separator = '?';
  for (const auto& [key, value] : request.query) {
    target += separator;
    target += UrlEncodeComponent(key);
    target += '=';
    target += UrlEncodeComponent(value);
    separator = '&';
  }
  if (!client_specified && !engine.empty()) {
    target += separator;
    target += "engine=";
    target += engine;
  }

  // Trace-context propagation: the backend adopts this id and echoes it,
  // so the pod's slow-request logs join with ours.
  const std::map<std::string, std::string> forward_headers = {
      {kTraceIdHeader, trace->id()}};
  Stopwatch forward_watch;
  AttemptResult last = ForwardWithFailover(session_key, target,
                                           forward_headers, nullptr, trace);
  if (last.ok) {
    forwarded_ok_->Increment();
    AbCountForward(arm, forward_watch.ElapsedMicros(),
                   last.response.Header(kEngineHeader));
    if (config_.ab_ann_percent > 0) {
      AbObserveResponse(session_key, arm, last.response.body);
    }
    return std::move(last.response);
  }
  if (fallback_ != nullptr) return ServeDegraded(request.Param("item_id"));
  failed_->Increment();
  return ApiError(503, last.error.ToString(), trace->id());
}

HttpResponse ClusterGateway::HandleRecommendPost(const HttpRequest& request,
                                                 Trace* trace) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "malformed JSON body: " + doc.status().message(),
                    trace->id());
  }
  const JsonValue* session = doc->Find("session_id");
  if (session == nullptr || session->type() != JsonValue::Type::kString ||
      session->AsString().empty()) {
    return ApiError(400, "session_id is required", trace->id());
  }
  const std::string session_key = session->AsString();

  // Engine resolution mirrors the GET path: an explicit "engine" field
  // wins, else the A/B bucket is stamped into the forwarded body.
  std::string engine;
  if (const JsonValue* field = doc->Find("engine");
      field != nullptr && field->type() == JsonValue::Type::kString) {
    engine = field->AsString();
  }
  const bool client_specified = !engine.empty();
  if (!client_specified && config_.ab_ann_percent > 0) {
    engine = AbArmOf(session_key);
  }
  const int arm = engine == "ann" ? 1 : 0;
  const std::string* forward_body = &request.body;
  std::string stamped_body;
  if (!client_specified && !engine.empty()) {
    std::map<std::string, JsonValue> members = doc->AsObject();
    members["engine"] = JsonValue::String(engine);
    stamped_body = SerializeJson(JsonValue::Object(std::move(members)));
    forward_body = &stamped_body;
  }
  std::string item_text;
  if (const JsonValue* item = doc->Find("item_id");
      item != nullptr && item->type() == JsonValue::Type::kNumber) {
    item_text = std::to_string(item->AsInt());
  }
  if (config_.ab_ann_percent > 0) AbObserveClick(session_key, item_text);

  const std::map<std::string, std::string> forward_headers = {
      {kTraceIdHeader, trace->id()}};
  Stopwatch forward_watch;
  AttemptResult last = ForwardWithFailover(session_key, request.path,
                                           forward_headers, forward_body,
                                           trace);
  if (last.ok) {
    forwarded_ok_->Increment();
    AbCountForward(arm, forward_watch.ElapsedMicros(),
                   last.response.Header(kEngineHeader));
    if (config_.ab_ann_percent > 0) {
      AbObserveResponse(session_key, arm, last.response.body);
    }
    return std::move(last.response);
  }
  if (fallback_ != nullptr) return ServeDegraded(item_text);
  failed_->Increment();
  return ApiError(503, last.error.ToString(), trace->id());
}

HttpResponse ClusterGateway::HandleRecommendBatch(const HttpRequest& request,
                                                  Trace* trace) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "malformed JSON body: " + doc.status().message(),
                    trace->id());
  }
  const JsonValue* entries = doc->Find("requests");
  if (entries == nullptr || entries->type() != JsonValue::Type::kArray) {
    return ApiError(400, "body must carry a \"requests\" array", trace->id());
  }
  const std::vector<JsonValue>& slots = entries->AsArray();
  if (slots.size() > config_.max_batch_items) {
    return ApiError(413,
                    "batch of " + std::to_string(slots.size()) +
                        " exceeds the limit of " +
                        std::to_string(config_.max_batch_items),
                    trace->id());
  }

  auto error_entry = [&](int status, const std::string& message) {
    JsonWriter writer;
    writer.BeginObject().Key("error").BeginObject();
    writer.Key("code").Value(ApiErrorCode(status));
    writer.Key("message").Value(message);
    writer.Key("trace_id").Value(trace->id());
    writer.EndObject().EndObject();
    return writer.str();
  };
  auto item_text_of = [](const JsonValue& slot) {
    const JsonValue* item = slot.Find("item_id");
    return item != nullptr && item->type() == JsonValue::Type::kNumber
               ? std::to_string(item->AsInt())
               : std::string();
  };

  // Scatter: group slots by their session key's ring owner. Slots whose
  // key can't be read get a per-slot error — they never fail siblings.
  struct Group {
    std::string session_key;    // routes the sub-batch
    std::vector<size_t> slots;  // positions in the client batch
  };
  std::map<std::string, Group> groups;  // backend name (or "") -> group
  std::vector<std::string> merged(slots.size());
  // Per-slot A/B arm ([i] meaningful only for grouped slots): a slot's
  // own "engine" field wins, else its session key's sticky bucket is
  // stamped into the forwarded slot JSON.
  std::vector<int> slot_arms(slots.size(), 0);
  std::vector<std::string> slot_bodies(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    const JsonValue* session = slots[i].Find("session_id");
    if (session == nullptr || session->type() != JsonValue::Type::kString ||
        session->AsString().empty()) {
      merged[i] = error_entry(400, "session_id is required");
      continue;
    }
    std::string engine;
    if (const JsonValue* field = slots[i].Find("engine");
        field != nullptr && field->type() == JsonValue::Type::kString) {
      engine = field->AsString();
    }
    if (engine.empty() && config_.ab_ann_percent > 0) {
      engine = AbArmOf(session->AsString());
      std::map<std::string, JsonValue> members = slots[i].AsObject();
      members["engine"] = JsonValue::String(engine);
      slot_bodies[i] = SerializeJson(JsonValue::Object(std::move(members)));
    } else {
      // Re-serialising parsed slots (rather than slicing raw text) keeps
      // the forwarded sub-batch canonical JSON whatever the client sent.
      slot_bodies[i] = SerializeJson(slots[i]);
    }
    slot_arms[i] = engine == "ann" ? 1 : 0;
    // First healthy candidate on the live ring = the pod this key's
    // micro-batches land on (resolved under the membership lock).
    const std::string owner = FirstHealthyFor(session->AsString());
    Group& group = groups[owner];
    if (group.slots.empty()) group.session_key = session->AsString();
    group.slots.push_back(i);
  }

  // Forward each sub-batch (the "" group has no healthy owner and skips
  // straight to fallback), then gather into the slot order.
  const std::map<std::string, std::string> forward_headers = {
      {kTraceIdHeader, trace->id()}};
  for (auto& [owner, group] : groups) {
    AttemptResult last;
    if (!owner.empty()) {
      std::string sub = "{\"requests\":[";
      for (size_t j = 0; j < group.slots.size(); ++j) {
        if (j > 0) sub += ',';
        sub += slot_bodies[group.slots[j]];
      }
      sub += "]}";
      last = ForwardWithFailover(group.session_key, request.path,
                                 forward_headers, &sub, trace);
    }
    if (last.ok) {
      auto sub_doc = ParseJson(last.response.body);
      const JsonValue* results =
          sub_doc.ok() ? sub_doc->Find("results") : nullptr;
      if (results != nullptr &&
          results->type() == JsonValue::Type::kArray &&
          results->AsArray().size() == group.slots.size()) {
        forwarded_ok_->Increment();
        for (size_t j = 0; j < group.slots.size(); ++j) {
          // Per-arm accounting per slot (no per-slot engine header or
          // latency on the batch hop; fallback detection is single-path
          // only).
          ab_requests_[slot_arms[group.slots[j]]]->Increment();
          merged[group.slots[j]] = SerializeJson(results->AsArray()[j]);
        }
        continue;
      }
      last.ok = false;
      last.error = Status::Internal("backend returned a malformed batch");
    }
    // The sub-batch failed: its slots degrade (or error) individually.
    for (size_t slot : group.slots) {
      if (fallback_ != nullptr) {
        merged[slot] = DegradedEntryJson(item_text_of(slots[slot]));
      } else {
        merged[slot] = error_entry(503, last.error.ToString());
      }
    }
    if (fallback_ == nullptr) failed_->Increment();
  }

  Span serialize_span(trace, TraceStage::kSerialize);
  std::string body = "{\"results\":[";
  for (size_t i = 0; i < merged.size(); ++i) {
    if (i > 0) body += ',';
    body += merged[i];
  }
  body += "]}";
  return HttpResponse::Json(std::move(body));
}

// --- A/B experiment layer ---------------------------------------------------

bool ClusterGateway::AbAnnBucket(const std::string& session_key) const {
  if (config_.ab_ann_percent == 0) return false;
  if (config_.ab_ann_percent >= 100) return true;
  // Pure function of (key, salt): sticky across requests and across
  // gateway restarts, with no per-session assignment state to replicate.
  const uint64_t bucket = Mix64(Fnv1a(session_key) ^ config_.ab_salt) % 100;
  return bucket < config_.ab_ann_percent;
}

const char* ClusterGateway::AbArmOf(const std::string& session_key) const {
  return AbAnnBucket(session_key) ? "ann" : "vmis";
}

void ClusterGateway::AbObserveClick(const std::string& session_key,
                                    const std::string& item_text) {
  uint32_t item = 0;
  const auto parsed = std::from_chars(
      item_text.data(), item_text.data() + item_text.size(), item);
  if (parsed.ec != std::errc() ||
      parsed.ptr != item_text.data() + item_text.size()) {
    return;
  }
  std::lock_guard<std::mutex> lock(ab_mutex_);
  auto it = ab_sessions_.find(session_key);
  if (it == ab_sessions_.end()) return;
  for (ItemId shown : it->second.shown) {
    if (shown == item) {
      // Credit the arm that PRODUCED the shown list, not the arm serving
      // this click — the click is the previous recommendation's reward.
      ab_engagements_[it->second.arm]->Increment();
      return;
    }
  }
}

void ClusterGateway::AbObserveResponse(const std::string& session_key, int arm,
                                       const std::string& body) {
  auto doc = ParseJson(body);
  if (!doc.ok()) return;
  const JsonValue* items = doc->Find("items");
  if (items == nullptr || items->type() != JsonValue::Type::kArray) return;
  std::vector<ItemId> shown;
  shown.reserve(items->AsArray().size());
  for (const JsonValue& value : items->AsArray()) {
    if (value.type() == JsonValue::Type::kNumber) {
      shown.push_back(static_cast<ItemId>(value.AsInt()));
    }
  }
  std::lock_guard<std::mutex> lock(ab_mutex_);
  auto it = ab_sessions_.find(session_key);
  if (it == ab_sessions_.end()) {
    // Bounded memory: over capacity, new sessions are served but not
    // quality-tracked (existing sessions keep updating in place).
    if (ab_sessions_.size() >= config_.ab_engagement_capacity) return;
    it = ab_sessions_.emplace(session_key, AbEngagement{}).first;
  }
  it->second.arm = arm;
  it->second.shown = std::move(shown);
  ab_impressions_[arm]->Increment();
}

void ClusterGateway::AbCountForward(int arm, uint64_t latency_micros,
                                    const std::string& served_engine) {
  ab_requests_[arm]->Increment();
  ab_latency_micros_[arm]->Record(latency_micros);
  // The pod stamps what actually served; an ANN-arm request answered by
  // VMIS is the dead-arm safety valve firing, which the experiment
  // read-out must show (an "" engine means the header was absent).
  if (arm == 1 && served_engine == "vmis") ab_fallbacks_->Increment();
}

AbCounters ClusterGateway::ab_counters() const {
  AbCounters counters;
  for (int arm = 0; arm < 2; ++arm) {
    counters.requests[arm] = ab_requests_[arm]->value();
    counters.impressions[arm] = ab_impressions_[arm]->value();
    counters.engagements[arm] = ab_engagements_[arm]->value();
  }
  counters.fallbacks = ab_fallbacks_->value();
  return counters;
}

std::vector<ScoredItem> ClusterGateway::FallbackItems(
    const std::string& item_text) {
  EvolvingSession session;
  uint32_t item = 0;
  const auto parsed = std::from_chars(
      item_text.data(), item_text.data() + item_text.size(), item);
  if (parsed.ec == std::errc() &&
      parsed.ptr == item_text.data() + item_text.size()) {
    session.push_back(item);
  }
  std::lock_guard<std::mutex> lock(fallback_mutex_);
  return fallback_->RecommendNext(session, config_.fallback_items);
}

HttpResponse ClusterGateway::ServeDegraded(const std::string& item_text) {
  degraded_->Increment();
  const std::vector<ScoredItem> items = FallbackItems(item_text);
  JsonWriter writer;
  writer.BeginObject().Key("items").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<uint64_t>(rec.item));
  }
  writer.EndArray().Key("scores").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<double>(rec.score));
  }
  writer.EndArray().Key("degraded").Value(true).EndObject();
  return HttpResponse::Json(writer.str());
}

std::string ClusterGateway::DegradedEntryJson(const std::string& item_text) {
  degraded_->Increment();
  const std::vector<ScoredItem> items = FallbackItems(item_text);
  JsonWriter writer;
  writer.BeginObject().Key("items").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<uint64_t>(rec.item));
  }
  writer.EndArray().Key("scores").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<double>(rec.score));
  }
  writer.EndArray().Key("degraded").Value(true).EndObject();
  return writer.str();
}

// --- elastic-fleet control plane --------------------------------------------

HttpResponse ClusterGateway::WithEpochHeader(HttpResponse response) const {
  response.headers[repl::kRingEpochHeader] = std::to_string(ring_epoch());
  return response;
}

std::optional<HttpResponse> ClusterGateway::CheckEpoch(const JsonValue& doc,
                                                       Trace* trace) {
  const JsonValue* epoch = doc.Find("epoch");
  if (epoch == nullptr || epoch->type() != JsonValue::Type::kNumber) {
    return WithEpochHeader(ApiError(
        400, "mutation must carry the current ring \"epoch\"", trace->id()));
  }
  const uint64_t carried = static_cast<uint64_t>(epoch->AsInt());
  uint64_t current;
  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    current = ring_epoch_;
  }
  if (carried == current) return std::nullopt;
  stale_epoch_rejects_->Increment();
  JsonWriter writer;
  writer.BeginObject().Key("error").BeginObject();
  writer.Key("code").Value(ApiErrorCode(409));
  writer.Key("message").Value("stale ring epoch " + std::to_string(carried) +
                              " (current " + std::to_string(current) + ")");
  writer.Key("trace_id").Value(trace->id());
  writer.EndObject().Key("current_epoch").Value(current).EndObject();
  HttpResponse response = HttpResponse::Json(writer.str());
  response.status = 409;
  return WithEpochHeader(std::move(response));
}

StatusOr<HttpResponse> ClusterGateway::PostAdmin(uint16_t port,
                                                 const std::string& path,
                                                 const std::string& body) {
  // Fresh connection per call: hand-offs move real data, so these calls
  // need their own (much longer) deadline than the pooled forwarding
  // clients are configured with.
  HttpClientOptions options;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = config_.admin_timeout_ms;
  HttpClient client(options);
  const Status connected = client.Connect(port);
  if (!connected.ok()) return connected;
  return client.Post(path, body);
}

Status ClusterGateway::PostAdminRetried(uint16_t port, const std::string& path,
                                        const std::string& body) {
  Status last = Status::Internal("no attempts made");
  const uint32_t attempts = std::max<uint32_t>(1, config_.admin_retry_attempts);
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    auto response = PostAdmin(port, path, body);
    if (!response.ok()) {
      last = response.status();
      continue;
    }
    if (response->status / 100 == 2) return Status::Ok();
    last = Status::Internal(path + " on port " + std::to_string(port) +
                            " returned " + std::to_string(response->status) +
                            ": " + response->body);
    // 4xx is a protocol disagreement, not a transient: retries can't fix
    // a malformed request, so abandon immediately.
    if (response->status / 100 == 4) break;
  }
  return last;
}

std::string ClusterGateway::HandoffBody(
    const std::vector<BackendEndpoint>& pending, uint64_t new_epoch) const {
  JsonWriter writer;
  writer.BeginObject()
      .Key("ring_epoch")
      .Value(new_epoch)
      .Key("virtual_nodes")
      .Value(static_cast<uint64_t>(config_.virtual_nodes))
      .Key("members")
      .BeginArray();
  for (const BackendEndpoint& member : pending) {
    writer.BeginObject()
        .Key("name")
        .Value(member.name)
        .Key("port")
        .Value(static_cast<uint64_t>(member.port))
        .EndObject();
  }
  writer.EndArray().EndObject();
  return writer.str();
}

Status ClusterGateway::PushReplicationWiring() {
  struct Wire {
    BackendEndpoint member;
    uint16_t successor_port = 0;
  };
  std::vector<Wire> wires;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    epoch = ring_epoch_;
    std::map<std::string, uint16_t> ports;
    for (const auto& backend : backends_) {
      ports[backend->endpoint.name] = backend->endpoint.port;
    }
    for (const auto& backend : backends_) {
      Wire wire;
      wire.member = backend->endpoint;
      const std::string successor = ring_.SuccessorOf(backend->endpoint.name);
      // "" = single-node ring: peer_port 0 tells the pod to stop shipping.
      if (!successor.empty()) wire.successor_port = ports[successor];
      wires.push_back(std::move(wire));
    }
  }
  Status first_error = Status::Ok();
  for (const Wire& wire : wires) {
    JsonWriter writer;
    writer.BeginObject()
        .Key("peer_port")
        .Value(static_cast<uint64_t>(wire.successor_port))
        .Key("ring_epoch")
        .Value(epoch)
        .EndObject();
    auto response = PostAdmin(wire.member.port, repl::kPeerPath, writer.str());
    Status status = Status::Ok();
    if (!response.ok()) {
      status = response.status();
    } else if (response->status / 100 != 2) {
      status = Status::Internal("peer push to " + wire.member.name +
                                " returned " +
                                std::to_string(response->status));
    }
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

HttpResponse ClusterGateway::HandleClusterGet(Trace* trace) {
  (void)trace;
  std::vector<BackendEndpoint> members;
  std::map<std::string, std::string> successors;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    epoch = ring_epoch_;
    for (const auto& backend : backends_) {
      members.push_back(backend->endpoint);
      successors[backend->endpoint.name] =
          ring_.SuccessorOf(backend->endpoint.name);
    }
  }
  const std::vector<BackendHealth> health = health_->Snapshot();
  JsonWriter writer;
  writer.BeginObject()
      .Key("ring_epoch")
      .Value(epoch)
      .Key("virtual_nodes")
      .Value(static_cast<uint64_t>(config_.virtual_nodes))
      .Key("replication_managed")
      .Value(config_.manage_replication)
      .Key("members")
      .BeginArray();
  for (const BackendEndpoint& member : members) {
    BackendHealth entry;
    for (const BackendHealth& candidate : health) {
      if (candidate.name == member.name) {
        entry = candidate;
        break;
      }
    }
    writer.BeginObject()
        .Key("name")
        .Value(member.name)
        .Key("port")
        .Value(static_cast<uint64_t>(member.port))
        .Key("healthy")
        .Value(entry.healthy)
        .Key("successor")
        .Value(successors[member.name])
        .Key("replica_lag_bytes")
        .Value(entry.replica_lag_bytes)
        .Key("replica_lag_seconds")
        .Value(entry.replica_lag_seconds)
        .Key("ring_epoch")
        .Value(entry.ring_epoch)
        .EndObject();
  }
  writer.EndArray().EndObject();
  return WithEpochHeader(HttpResponse::Json(writer.str()));
}

HttpResponse ClusterGateway::HandleClusterJoin(const HttpRequest& request,
                                               Trace* trace) {
  // admin_mutex_ serializes the whole mutation (epoch check -> hand-off
  // -> ring flip -> rewire): the epoch cannot move between the check and
  // the flip, so a stale client can never interleave a second change.
  std::lock_guard<std::mutex> admin_lock(admin_mutex_);
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "malformed JSON body: " + doc.status().message(),
                    trace->id());
  }
  if (auto rejected = CheckEpoch(*doc, trace)) return *std::move(rejected);
  const JsonValue* name = doc->Find("name");
  const JsonValue* port = doc->Find("port");
  if (name == nullptr || name->type() != JsonValue::Type::kString ||
      name->AsString().empty() || port == nullptr ||
      port->type() != JsonValue::Type::kNumber) {
    return ApiError(400, "join needs \"name\" and \"port\"", trace->id());
  }
  BackendEndpoint joining;
  joining.name = name->AsString();
  joining.port = static_cast<uint16_t>(port->AsInt());
  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    if (ring_.Contains(joining.name)) {
      return WithEpochHeader(ApiError(
          409, "member \"" + joining.name + "\" is already in the ring",
          trace->id()));
    }
  }

  const std::vector<BackendEndpoint> donors = Members();
  std::vector<BackendEndpoint> pending = donors;
  pending.push_back(joining);
  const uint64_t new_epoch = ring_epoch() + 1;

  if (config_.manage_replication && !donors.empty()) {
    // Every current member donates the key ranges the joiner takes over:
    // snapshot + tail-chase + cutover runs on the donor BEFORE the ring
    // flips, so no click written during the transfer is lost.
    const std::string body = HandoffBody(pending, new_epoch);
    for (const BackendEndpoint& donor : donors) {
      const Status moved =
          PostAdminRetried(donor.port, repl::kHandoffPath, body);
      if (!moved.ok()) {
        LOG_WARNING << "gateway: join of " << joining.name
                    << " abandoned, hand-off on " << donor.name
                    << " failed: " << moved.ToString();
        return WithEpochHeader(ApiError(
            502, "hand-off on donor \"" + donor.name +
                     "\" failed: " + moved.ToString(),
            trace->id()));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    AttachBackendLocked(joining);
    ring_epoch_ = new_epoch;
  }
  health_->AddBackend(joining);
  if (config_.manage_replication) {
    // Finish = donors delete their moved keys and adopt the new epoch.
    // The ring has flipped, so a finish failure only leaves redirects
    // armed longer than needed — never wrong routing.
    for (const BackendEndpoint& donor : donors) {
      const Status finished =
          PostAdminRetried(donor.port, repl::kHandoffFinishPath, "{}");
      if (!finished.ok()) {
        LOG_WARNING << "gateway: hand-off finish on " << donor.name
                    << " failed: " << finished.ToString();
      }
    }
    (void)PushReplicationWiring();
  }
  LOG_INFO << "gateway: " << joining.name << " joined the ring (epoch "
           << new_epoch << ", " << pending.size() << " members)";
  JsonWriter writer;
  writer.BeginObject()
      .Key("ring_epoch")
      .Value(new_epoch)
      .Key("joined")
      .Value(joining.name)
      .Key("members")
      .Value(static_cast<uint64_t>(pending.size()))
      .EndObject();
  return WithEpochHeader(HttpResponse::Json(writer.str()));
}

HttpResponse ClusterGateway::HandleClusterDrain(const HttpRequest& request,
                                                Trace* trace) {
  std::lock_guard<std::mutex> admin_lock(admin_mutex_);
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "malformed JSON body: " + doc.status().message(),
                    trace->id());
  }
  if (auto rejected = CheckEpoch(*doc, trace)) return *std::move(rejected);
  const JsonValue* name = doc->Find("name");
  if (name == nullptr || name->type() != JsonValue::Type::kString ||
      name->AsString().empty()) {
    return ApiError(400, "drain needs \"name\"", trace->id());
  }
  const std::string draining = name->AsString();

  const std::vector<BackendEndpoint> members = Members();
  BackendEndpoint drainee;
  std::vector<BackendEndpoint> pending;
  for (const BackendEndpoint& member : members) {
    if (member.name == draining) {
      drainee = member;
    } else {
      pending.push_back(member);
    }
  }
  if (drainee.name.empty()) {
    return WithEpochHeader(ApiError(
        404, "member \"" + draining + "\" is not in the ring", trace->id()));
  }
  if (pending.empty()) {
    return WithEpochHeader(ApiError(
        409, "cannot drain the last member of the ring", trace->id()));
  }
  const uint64_t new_epoch = ring_epoch() + 1;

  if (config_.manage_replication) {
    // Only the drainee donates: removing one node hands its ranges to
    // the survivors and moves nobody else's keys.
    const Status moved = PostAdminRetried(drainee.port, repl::kHandoffPath,
                                          HandoffBody(pending, new_epoch));
    if (!moved.ok()) {
      LOG_WARNING << "gateway: drain of " << draining
                  << " abandoned: " << moved.ToString();
      return WithEpochHeader(ApiError(
          502, "hand-off on \"" + draining + "\" failed: " + moved.ToString(),
          trace->id()));
    }
  }

  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    ring_.RemoveNode(draining);
    for (auto it = backends_.begin(); it != backends_.end(); ++it) {
      if ((*it)->endpoint.name == draining) {
        // Park, don't destroy: in-flight forwards and hedge losers may
        // still hold this Backend*.
        retired_backends_.push_back(std::move(*it));
        backends_.erase(it);
        break;
      }
    }
    ring_epoch_ = new_epoch;
  }
  health_->RemoveBackend(draining);
  if (config_.manage_replication) {
    const Status finished =
        PostAdminRetried(drainee.port, repl::kHandoffFinishPath, "{}");
    if (!finished.ok()) {
      LOG_WARNING << "gateway: hand-off finish on " << draining
                  << " failed: " << finished.ToString();
    }
    (void)PushReplicationWiring();
  }
  LOG_INFO << "gateway: " << draining << " drained from the ring (epoch "
           << new_epoch << ", " << pending.size() << " members)";
  JsonWriter writer;
  writer.BeginObject()
      .Key("ring_epoch")
      .Value(new_epoch)
      .Key("drained")
      .Value(draining)
      .Key("members")
      .Value(static_cast<uint64_t>(pending.size()))
      .EndObject();
  return WithEpochHeader(HttpResponse::Json(writer.str()));
}

HttpResponse ClusterGateway::HandleClusterRemove(const HttpRequest& request,
                                                 Trace* trace) {
  std::lock_guard<std::mutex> admin_lock(admin_mutex_);
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "malformed JSON body: " + doc.status().message(),
                    trace->id());
  }
  if (auto rejected = CheckEpoch(*doc, trace)) return *std::move(rejected);
  const JsonValue* name = doc->Find("name");
  if (name == nullptr || name->type() != JsonValue::Type::kString ||
      name->AsString().empty()) {
    return ApiError(400, "remove needs \"name\"", trace->id());
  }
  const std::string dead = name->AsString();

  const std::vector<BackendEndpoint> members = Members();
  BackendEndpoint victim;
  std::vector<BackendEndpoint> survivors;
  for (const BackendEndpoint& member : members) {
    if (member.name == dead) {
      victim = member;
    } else {
      survivors.push_back(member);
    }
  }
  if (victim.name.empty()) {
    return WithEpochHeader(ApiError(
        404, "member \"" + dead + "\" is not in the ring", trace->id()));
  }
  if (survivors.empty()) {
    return WithEpochHeader(ApiError(
        409, "cannot remove the last member of the ring", trace->id()));
  }
  const uint64_t new_epoch = ring_epoch() + 1;

  BackendEndpoint successor;
  if (config_.manage_replication) {
    // The dead pod's ring successor holds its replica. Promote it (merge
    // the shadow table into its live store), then let it hand off: the
    // ring flip scatters the dead pod's ranges across ALL survivors, so
    // the successor pushes every adopted session to its new owner.
    std::string successor_name;
    {
      std::lock_guard<std::mutex> lock(membership_mutex_);
      successor_name = ring_.SuccessorOf(dead);
    }
    for (const BackendEndpoint& member : survivors) {
      if (member.name == successor_name) successor = member;
    }
    if (successor.name.empty()) {
      return WithEpochHeader(ApiError(
          502, "no ring successor found for \"" + dead + "\"", trace->id()));
    }
    if (!health_->IsHealthy(successor.name)) {
      return WithEpochHeader(ApiError(
          502, "replica holder \"" + successor.name +
                   "\" is unhealthy; cannot promote",
          trace->id()));
    }
    JsonWriter promote;
    promote.BeginObject().Key("donor").Value(dead).EndObject();
    const Status promoted = PostAdminRetried(
        successor.port, repl::kPromotePath, promote.str());
    if (!promoted.ok()) {
      LOG_WARNING << "gateway: remove of " << dead
                  << " abandoned, promotion on " << successor.name
                  << " failed: " << promoted.ToString();
      return WithEpochHeader(ApiError(
          502, "promotion on \"" + successor.name +
                   "\" failed: " + promoted.ToString(),
          trace->id()));
    }
    const Status moved = PostAdminRetried(successor.port, repl::kHandoffPath,
                                          HandoffBody(survivors, new_epoch));
    if (!moved.ok()) {
      LOG_WARNING << "gateway: remove of " << dead
                  << " abandoned, hand-off on " << successor.name
                  << " failed: " << moved.ToString();
      return WithEpochHeader(ApiError(
          502, "hand-off on \"" + successor.name +
                   "\" failed: " + moved.ToString(),
          trace->id()));
    }
  }

  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    ring_.RemoveNode(dead);
    for (auto it = backends_.begin(); it != backends_.end(); ++it) {
      if ((*it)->endpoint.name == dead) {
        retired_backends_.push_back(std::move(*it));
        backends_.erase(it);
        break;
      }
    }
    ring_epoch_ = new_epoch;
  }
  health_->RemoveBackend(dead);
  if (config_.manage_replication) {
    const Status finished =
        PostAdminRetried(successor.port, repl::kHandoffFinishPath, "{}");
    if (!finished.ok()) {
      LOG_WARNING << "gateway: hand-off finish on " << successor.name
                  << " failed: " << finished.ToString();
    }
    (void)PushReplicationWiring();
  }
  LOG_INFO << "gateway: " << dead << " removed from the ring (epoch "
           << new_epoch << ", " << survivors.size() << " members)";
  JsonWriter writer;
  writer.BeginObject()
      .Key("ring_epoch")
      .Value(new_epoch)
      .Key("removed")
      .Value(dead)
      .Key("members")
      .Value(static_cast<uint64_t>(survivors.size()))
      .EndObject();
  return WithEpochHeader(HttpResponse::Json(writer.str()));
}

HttpResponse ClusterGateway::HandleHealthz() {
  JsonWriter writer;
  writer.BeginObject()
      .Key("status")
      .Value("ok")
      .Key("backends")
      .Value(static_cast<uint64_t>(health_->NumBackends()))
      .Key("healthy_backends")
      .Value(static_cast<uint64_t>(health_->NumHealthy()))
      .Key("ring_epoch")
      .Value(ring_epoch())
      .EndObject();
  return HttpResponse::Json(writer.str());
}

GatewayCounters ClusterGateway::counters() const {
  GatewayCounters counters;
  counters.forwarded_ok = forwarded_ok_->value();
  counters.degraded = degraded_->value();
  counters.failed = failed_->value();
  counters.retries = retries_->value();
  counters.hedges = hedges_->value();
  counters.hedge_wins = hedge_wins_->value();
  return counters;
}

std::vector<BackendCounters> ClusterGateway::backend_counters() const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  std::vector<BackendCounters> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) {
    BackendCounters counters;
    counters.name = backend->endpoint.name;
    counters.requests = backend->requests->value();
    counters.errors = backend->errors->value();
    out.push_back(std::move(counters));
  }
  return out;
}

HttpResponse ClusterGateway::HandleStats() {
  const GatewayCounters totals = this->counters();
  const AbCounters ab = ab_counters();
  JsonWriter writer;
  writer.BeginObject()
      .Key("requests_served")
      .Value(requests_served())
      .Key("forwarded_ok")
      .Value(totals.forwarded_ok)
      .Key("degraded")
      .Value(totals.degraded)
      .Key("failed")
      .Value(totals.failed)
      .Key("retries")
      .Value(totals.retries)
      .Key("hedges")
      .Value(totals.hedges)
      .Key("hedge_wins")
      .Value(totals.hedge_wins)
      .Key("slow_requests")
      .Value(slow_logger_.slow_requests_seen())
      .Key("client_acquires")
      .Value(pool_->acquires_total())
      .Key("client_reuses")
      .Value(pool_->reuses_total())
      .Key("client_reuse_ratio")
      .Value(pool_->ReuseRatio())
      .Key("open_connections")
      .Value(http_ ? http_->stats().open_connections : 0)
      .Key("shed_connections")
      .Value(http_ ? http_->stats().shed : 0)
      .Key("healthy_backends")
      .Value(static_cast<uint64_t>(health_->NumHealthy()))
      .Key("ring_epoch")
      .Value(ring_epoch())
      .Key("ab_ann_percent")
      .Value(static_cast<uint64_t>(config_.ab_ann_percent))
      .Key("ab_requests_vmis")
      .Value(ab.requests[0])
      .Key("ab_requests_ann")
      .Value(ab.requests[1])
      .Key("ab_impressions_vmis")
      .Value(ab.impressions[0])
      .Key("ab_impressions_ann")
      .Value(ab.impressions[1])
      .Key("ab_engagements_vmis")
      .Value(ab.engagements[0])
      .Key("ab_engagements_ann")
      .Value(ab.engagements[1])
      .Key("ab_fallbacks")
      .Value(ab.fallbacks)
      .Key("backends")
      .BeginArray();
  // Snapshot membership under the lock, then serialize outside it.
  struct Row {
    std::string name;
    uint16_t port = 0;
    uint64_t requests = 0;
    uint64_t errors = 0;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    rows.reserve(backends_.size());
    for (const auto& backend : backends_) {
      rows.push_back(Row{backend->endpoint.name, backend->endpoint.port,
                         backend->requests->value(),
                         backend->errors->value()});
    }
  }
  const std::vector<BackendHealth> health = health_->Snapshot();
  for (const Row& row : rows) {
    BackendHealth entry;
    entry.healthy = false;
    for (const BackendHealth& candidate : health) {
      if (candidate.name == row.name) {
        entry = candidate;
        break;
      }
    }
    writer.BeginObject()
        .Key("name")
        .Value(row.name)
        .Key("port")
        .Value(static_cast<uint64_t>(row.port))
        .Key("healthy")
        .Value(entry.healthy)
        .Key("index_version")
        .Value(entry.index_version)
        .Key("requests")
        .Value(row.requests)
        .Key("errors")
        .Value(row.errors)
        .Key("ejections")
        .Value(entry.ejections_total)
        .Key("probe_connects")
        .Value(entry.probe_connects_total)
        .Key("probe_reuses")
        .Value(entry.probe_reuses_total)
        .Key("replica_lag_bytes")
        .Value(entry.replica_lag_bytes)
        .Key("replica_lag_seconds")
        .Value(entry.replica_lag_seconds)
        .Key("ring_epoch")
        .Value(entry.ring_epoch)
        .EndObject();
  }
  writer.EndArray().EndObject();
  return HttpResponse::Json(writer.str());
}

}  // namespace serenade
