#include "cluster/gateway.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "serving/json.h"
#include "serving/server.h"

namespace serenade {

namespace {

// Equal-jitter exponential backoff: half deterministic, half uniform, so
// retry storms from concurrent request threads spread out in time.
uint64_t BackoffWithJitterMs(uint64_t base_ms, uint32_t retry_number) {
  constexpr uint64_t kMaxBackoffMs = 200;
  thread_local Rng rng(Mix64(static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()))));
  uint64_t delay = base_ms << std::min<uint32_t>(retry_number, 6);
  delay = std::min(delay, kMaxBackoffMs);
  if (delay == 0) return 0;
  return delay / 2 + rng.Below(delay / 2 + 1);
}

// Gateway-side stages exported as gateway_stage_duration_microseconds.
constexpr TraceStage kGatewayStages[] = {
    TraceStage::kParse,
    TraceStage::kForward,
    TraceStage::kSerialize,
};

}  // namespace

std::string UrlEncodeComponent(const std::string& text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    const bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                            c == '.' || c == '~';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    }
  }
  return out;
}

ClusterGateway::ClusterGateway(std::vector<BackendEndpoint> backends,
                               GatewayConfig config,
                               std::unique_ptr<Recommender> fallback)
    : config_(config),
      fallback_(std::move(fallback)),
      ring_(config.virtual_nodes),
      slow_logger_(config.trace) {
  RegisterMetrics();
  backends_.reserve(backends.size());
  for (BackendEndpoint& endpoint : backends) {
    auto backend = std::make_unique<Backend>();
    backend->endpoint = endpoint;
    backend->requests = &registry_.AddCounter(
        "gateway_backend_requests_total",
        "forwarding attempts per backend", "backend", endpoint.name);
    backend->errors = &registry_.AddCounter(
        "gateway_backend_errors_total",
        "failed forwarding attempts per backend", "backend", endpoint.name);
    ring_.AddNode(endpoint.name);
    backends_.push_back(std::move(backend));
  }
  std::vector<BackendEndpoint> endpoints;
  endpoints.reserve(backends.size());
  for (const auto& backend : backends_) endpoints.push_back(backend->endpoint);
  health_ = std::make_unique<HealthChecker>(std::move(endpoints),
                                            config_.health);

  // Health-derived gauges pull from the checker at scrape time, so a
  // scrape always sees the current ejection state, never a cached copy.
  registry_.AddCallback(
      "gateway_backend_healthy", "whether the backend is routable",
      MetricType::kGauge, "backend", [this]() -> std::vector<MetricSample> {
        std::vector<MetricSample> samples;
        for (const BackendHealth& entry : health_->Snapshot()) {
          samples.push_back({entry.name, entry.healthy ? 1u : 0u});
        }
        return samples;
      });
  registry_.AddCallback(
      "gateway_backend_index_version",
      "index snapshot version last reported by the backend",
      MetricType::kGauge, "backend", [this]() -> std::vector<MetricSample> {
        std::vector<MetricSample> samples;
        for (const BackendHealth& entry : health_->Snapshot()) {
          samples.push_back({entry.name, entry.index_version});
        }
        return samples;
      });
}

ClusterGateway::~ClusterGateway() { Stop(); }

void ClusterGateway::RegisterMetrics() {
  registry_.AddCallback(
      "gateway_requests_total", "requests accepted by the gateway",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", requests_served()}};
      });
  forwarded_ok_ = &registry_.AddCounter("gateway_forwarded_ok_total",
                                        "requests answered by a backend");
  degraded_ = &registry_.AddCounter(
      "gateway_degraded_responses_total",
      "requests served by the popularity fallback");
  failed_ = &registry_.AddCounter("gateway_failed_requests_total",
                                  "requests that exhausted all attempts");
  retries_ = &registry_.AddCounter("gateway_retries_total",
                                   "retry attempts against ring successors");
  hedges_ = &registry_.AddCounter("gateway_hedges_total",
                                  "hedged second requests launched");
  hedge_wins_ = &registry_.AddCounter("gateway_hedge_wins_total",
                                      "hedges that beat the primary");
  registry_.AddCallback(
      "gateway_slow_requests_total",
      "requests over the slow-request threshold", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", slow_logger_.slow_requests_seen()}};
      });
  forward_latency_micros_ = &registry_.AddHistogram(
      "gateway_forward_latency_microseconds",
      "per-attempt forwarding latency");
  request_latency_micros_ = &registry_.AddHistogram(
      "gateway_request_latency_microseconds",
      "end-to-end /recommend handling latency at the gateway");
  for (TraceStage stage : kGatewayStages) {
    stage_micros_[static_cast<size_t>(stage)] = &registry_.AddHistogram(
        "gateway_stage_duration_microseconds",
        "per-request latency attributed to one gateway stage", "stage",
        TraceStageName(stage));
  }
}

Status ClusterGateway::Start() {
  if (backends_.empty() && fallback_ == nullptr) {
    return Status::InvalidArgument(
        "gateway needs at least one backend or a fallback recommender");
  }
  // Seed the health view before taking traffic so a dead pod configured
  // at startup is never routed to.
  health_->ProbeAllOnce();
  health_->Start();
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); });
  Status started = http_->Start(config_.port);
  if (!started.ok()) health_->Stop();
  return started;
}

void ClusterGateway::Stop() {
  if (http_) http_->Stop();
  // Hedge losers hold references into our backend pools; wait them out
  // (each is bounded by forward_timeout_ms).
  while (inflight_hedges_.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (health_) health_->Stop();
}

ClusterGateway::Backend* ClusterGateway::FindBackend(const std::string& name) {
  for (const auto& backend : backends_) {
    if (backend->endpoint.name == name) return backend.get();
  }
  return nullptr;
}

std::unique_ptr<HttpClient> ClusterGateway::AcquireClient(Backend& backend,
                                                          Status* status) {
  {
    std::lock_guard<std::mutex> lock(backend.pool_mutex);
    if (!backend.pool.empty()) {
      auto client = std::move(backend.pool.back());
      backend.pool.pop_back();
      return client;
    }
  }
  HttpClientOptions options;
  options.connect_timeout_ms = config_.forward_timeout_ms;
  options.io_timeout_ms = config_.forward_timeout_ms;
  auto client = std::make_unique<HttpClient>(options);
  *status = client->Connect(backend.endpoint.port);
  if (!status->ok()) return nullptr;
  return client;
}

void ClusterGateway::ReleaseClient(Backend& backend,
                                   std::unique_ptr<HttpClient> client,
                                   bool reusable) {
  if (!reusable) return;  // drop broken connections on the floor
  std::lock_guard<std::mutex> lock(backend.pool_mutex);
  if (backend.pool.size() < config_.max_pooled_clients) {
    backend.pool.push_back(std::move(client));
  }
}

ClusterGateway::AttemptResult ClusterGateway::ForwardOnce(
    Backend& backend, const std::string& target,
    const std::map<std::string, std::string>& headers) {
  AttemptResult result;
  backend.requests->Increment();
  Stopwatch stopwatch;

  Status connect_status = Status::Ok();
  auto client = AcquireClient(backend, &connect_status);
  if (client == nullptr) {
    forward_latency_micros_->Record(stopwatch.ElapsedMicros());
    backend.errors->Increment();
    health_->ReportResult(backend.endpoint.name, false);
    result.error = std::move(connect_status);
    return result;
  }

  auto response = client->Get(target, headers);
  forward_latency_micros_->Record(stopwatch.ElapsedMicros());
  const bool transport_ok = response.ok();
  // Any parsed HTTP response proves the pod is alive; 5xx bodies are
  // handler bugs, not fleet-membership signals.
  health_->ReportResult(backend.endpoint.name, transport_ok);
  ReleaseClient(backend, std::move(client), transport_ok);

  if (!transport_ok) {
    backend.errors->Increment();
    result.error = response.status();
    return result;
  }
  if (response->status >= 500) {
    backend.errors->Increment();
    result.error = Status::Internal("backend " + backend.endpoint.name +
                                    " returned " +
                                    std::to_string(response->status));
    return result;
  }
  result.ok = true;
  result.response = std::move(response).value();
  return result;
}

ClusterGateway::AttemptResult ClusterGateway::ForwardMaybeHedged(
    Backend& primary, Backend* secondary, const std::string& target,
    const std::map<std::string, std::string>& headers) {
  if (config_.hedge_delay_ms == 0 || secondary == nullptr) {
    return ForwardOnce(primary, target, headers);
  }

  struct SharedState {
    std::mutex mutex;
    std::condition_variable cv;
    int outstanding = 0;
    bool have_winner = false;
    bool winner_was_hedge = false;
    AttemptResult winner;
    AttemptResult last_failure;
  };
  auto state = std::make_shared<SharedState>();

  auto launch = [this, state, &target, &headers](Backend* backend,
                                                 bool is_hedge) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      ++state->outstanding;
    }
    inflight_hedges_.fetch_add(1);
    // Detached: the winner's caller returns immediately, the loser keeps
    // running (bounded by forward_timeout_ms); Stop() drains via
    // inflight_hedges_. `target` and `headers` are copied into the
    // thread.
    std::thread([this, state, backend, is_hedge, target_copy = target,
                 headers_copy = headers]() mutable {
      AttemptResult result = ForwardOnce(*backend, target_copy, headers_copy);
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        --state->outstanding;
        if (result.ok && !state->have_winner) {
          state->have_winner = true;
          state->winner_was_hedge = is_hedge;
          state->winner = std::move(result);
        } else if (!result.ok) {
          state->last_failure = std::move(result);
        }
      }
      state->cv.notify_all();
      inflight_hedges_.fetch_sub(1);
    }).detach();
  };

  launch(&primary, /*is_hedge=*/false);

  std::unique_lock<std::mutex> lock(state->mutex);
  const bool primary_done = state->cv.wait_for(
      lock, std::chrono::milliseconds(config_.hedge_delay_ms),
      [&] { return state->have_winner || state->outstanding == 0; });
  if (!primary_done) {
    lock.unlock();
    hedges_->Increment();
    launch(secondary, /*is_hedge=*/true);
    lock.lock();
  }
  state->cv.wait(lock,
                 [&] { return state->have_winner || state->outstanding == 0; });
  if (state->have_winner) {
    if (state->winner_was_hedge) {
      hedge_wins_->Increment();
    }
    return std::move(state->winner);
  }
  return std::move(state->last_failure);
}

HttpResponse ClusterGateway::Handle(const HttpRequest& request) {
  if (request.method != "GET") {
    return HttpResponse::Error(405, "only GET is supported");
  }
  if (request.path == "/recommend") {
    // Adopt a caller-supplied trace id (e.g. an edge proxy), else mint
    // one; either way the same id follows the request into the fleet.
    const std::string inbound = request.Header(kTraceIdHeader);
    Trace trace = IsValidTraceId(inbound) ? Trace(inbound) : Trace();
    trace.Record(TraceStage::kParse, request.parse_micros);

    HttpResponse response = HandleRecommend(request, &trace);
    // The backend echo arrives lower-cased (header names are folded on
    // parse); drop it so the response carries the id exactly once.
    response.headers.erase("x-serenade-trace-id");
    response.headers[kTraceIdHeader] = trace.id();

    request_latency_micros_->Record(trace.TotalMicros());
    for (TraceStage stage : kGatewayStages) {
      if (trace.StageCount(stage) == 0) continue;
      stage_micros_[static_cast<size_t>(stage)]->Record(
          trace.StageMicros(stage));
    }
    slow_logger_.MaybeLog(trace, "gateway", request.path, response.status);
    return response;
  }
  if (request.path == "/healthz") return HandleHealthz();
  if (request.path == "/stats") return HandleStats();
  if (request.path == "/metrics") {
    return HttpResponse::Text(registry_.RenderPrometheus(),
                              MetricsRegistry::ContentType());
  }
  return HttpResponse::Error(404, "unknown path");
}

HttpResponse ClusterGateway::HandleRecommend(const HttpRequest& request,
                                             Trace* trace) {
  const std::string session_key = request.Param("session_id");
  if (session_key.empty()) {
    return HttpResponse::Error(400, "session_id is required");
  }

  // Re-encode the query for forwarding (it arrived percent-decoded).
  std::string target = request.path;
  char separator = '?';
  for (const auto& [key, value] : request.query) {
    target += separator;
    target += UrlEncodeComponent(key);
    target += '=';
    target += UrlEncodeComponent(value);
    separator = '&';
  }

  // Trace-context propagation: the backend adopts this id and echoes it,
  // so the pod's slow-request logs join with ours.
  const std::map<std::string, std::string> forward_headers = {
      {kTraceIdHeader, trace->id()}};

  // Ring order per session key: owner first, then deterministic failover
  // successors; unhealthy pods are skipped, which keeps a session sticky
  // to one pod while the fleet is stable and re-homes only the ejected
  // pod's sessions during an outage.
  const std::vector<std::string> replicas =
      ring_.ReplicasFor(session_key, backends_.size());
  std::vector<Backend*> candidates;
  candidates.reserve(replicas.size());
  for (const std::string& name : replicas) {
    if (!health_->IsHealthy(name)) continue;
    if (Backend* backend = FindBackend(name)) candidates.push_back(backend);
  }

  Span forward_span(trace, TraceStage::kForward);
  AttemptResult last;
  size_t next_candidate = 0;
  uint32_t attempts = 0;
  while (next_candidate < candidates.size() &&
         attempts < config_.max_attempts) {
    if (attempts > 0) {
      retries_->Increment();
      const uint64_t delay =
          BackoffWithJitterMs(config_.retry_backoff_ms, attempts - 1);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
    Backend* primary = candidates[next_candidate];
    Backend* secondary = (attempts == 0 && next_candidate + 1 < candidates.size())
                             ? candidates[next_candidate + 1]
                             : nullptr;
    const bool hedged = config_.hedge_delay_ms > 0 && secondary != nullptr;
    last = hedged
               ? ForwardMaybeHedged(*primary, secondary, target,
                                    forward_headers)
               : ForwardOnce(*primary, target, forward_headers);
    if (last.ok) {
      forward_span.End();
      forwarded_ok_->Increment();
      return std::move(last.response);
    }
    // A hedged round consumed the primary and its successor.
    next_candidate += hedged ? 2 : 1;
    attempts += hedged ? 2 : 1;
  }
  forward_span.End();

  if (fallback_ != nullptr) return ServeDegraded(request);
  failed_->Increment();
  return HttpResponse::Error(
      503, candidates.empty() ? "no healthy backend"
                              : "all forwarding attempts failed: " +
                                    last.error.ToString());
}

HttpResponse ClusterGateway::ServeDegraded(const HttpRequest& request) {
  degraded_->Increment();

  EvolvingSession session;
  uint32_t item = 0;
  const std::string item_text = request.Param("item_id");
  const auto parsed = std::from_chars(
      item_text.data(), item_text.data() + item_text.size(), item);
  if (parsed.ec == std::errc() &&
      parsed.ptr == item_text.data() + item_text.size()) {
    session.push_back(item);
  }

  std::vector<ScoredItem> items;
  {
    std::lock_guard<std::mutex> lock(fallback_mutex_);
    items = fallback_->RecommendNext(session, config_.fallback_items);
  }

  JsonWriter writer;
  writer.BeginObject().Key("items").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<uint64_t>(rec.item));
  }
  writer.EndArray().Key("scores").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<double>(rec.score));
  }
  writer.EndArray().Key("degraded").Value(true).EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse ClusterGateway::HandleHealthz() {
  JsonWriter writer;
  writer.BeginObject()
      .Key("status")
      .Value("ok")
      .Key("backends")
      .Value(static_cast<uint64_t>(health_->NumBackends()))
      .Key("healthy_backends")
      .Value(static_cast<uint64_t>(health_->NumHealthy()))
      .EndObject();
  return HttpResponse::Json(writer.str());
}

GatewayCounters ClusterGateway::counters() const {
  GatewayCounters counters;
  counters.forwarded_ok = forwarded_ok_->value();
  counters.degraded = degraded_->value();
  counters.failed = failed_->value();
  counters.retries = retries_->value();
  counters.hedges = hedges_->value();
  counters.hedge_wins = hedge_wins_->value();
  return counters;
}

std::vector<BackendCounters> ClusterGateway::backend_counters() const {
  std::vector<BackendCounters> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) {
    BackendCounters counters;
    counters.name = backend->endpoint.name;
    counters.requests = backend->requests->value();
    counters.errors = backend->errors->value();
    out.push_back(std::move(counters));
  }
  return out;
}

HttpResponse ClusterGateway::HandleStats() {
  const GatewayCounters totals = this->counters();
  JsonWriter writer;
  writer.BeginObject()
      .Key("requests_served")
      .Value(requests_served())
      .Key("forwarded_ok")
      .Value(totals.forwarded_ok)
      .Key("degraded")
      .Value(totals.degraded)
      .Key("failed")
      .Value(totals.failed)
      .Key("retries")
      .Value(totals.retries)
      .Key("hedges")
      .Value(totals.hedges)
      .Key("hedge_wins")
      .Value(totals.hedge_wins)
      .Key("slow_requests")
      .Value(slow_logger_.slow_requests_seen())
      .Key("healthy_backends")
      .Value(static_cast<uint64_t>(health_->NumHealthy()))
      .Key("backends")
      .BeginArray();
  const std::vector<BackendHealth> health = health_->Snapshot();
  for (const auto& backend : backends_) {
    const std::string& name = backend->endpoint.name;
    bool healthy = false;
    uint64_t ejections = 0;
    uint64_t index_version = 0;
    for (const BackendHealth& entry : health) {
      if (entry.name == name) {
        healthy = entry.healthy;
        ejections = entry.ejections_total;
        index_version = entry.index_version;
        break;
      }
    }
    writer.BeginObject()
        .Key("name")
        .Value(name)
        .Key("healthy")
        .Value(healthy)
        .Key("index_version")
        .Value(index_version)
        .Key("requests")
        .Value(backend->requests->value())
        .Key("errors")
        .Value(backend->errors->value())
        .Key("ejections")
        .Value(ejections)
        .EndObject();
  }
  writer.EndArray().EndObject();
  return HttpResponse::Json(writer.str());
}

}  // namespace serenade
