#include "cluster/health.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "serving/http.h"
#include "serving/json.h"

namespace serenade {

HealthChecker::HealthChecker(std::vector<BackendEndpoint> backends,
                             HealthCheckerConfig config)
    : config_(config) {
  states_.reserve(backends.size());
  for (const BackendEndpoint& endpoint : backends) {
    auto state = std::make_shared<State>();
    state->endpoint = endpoint;
    states_.push_back(std::move(state));
  }
}

HealthChecker::~HealthChecker() { Stop(); }

void HealthChecker::Start() {
  if (!stopping_.load()) return;  // already running
  stopping_.store(false);
  prober_ = std::thread([this] { ProbeLoop(); });
}

void HealthChecker::Stop() {
  if (stopping_.exchange(true)) {
    if (prober_.joinable()) prober_.join();
    return;
  }
  wakeup_.notify_all();
  if (prober_.joinable()) prober_.join();
}

void HealthChecker::AddBackend(const BackendEndpoint& endpoint) {
  std::lock_guard<std::mutex> lock(states_mutex_);
  for (const auto& state : states_) {
    if (state->endpoint.name == endpoint.name) return;  // idempotent
  }
  auto state = std::make_shared<State>();
  state->endpoint = endpoint;
  states_.push_back(std::move(state));
}

void HealthChecker::RemoveBackend(const std::string& name) {
  std::lock_guard<std::mutex> lock(states_mutex_);
  states_.erase(std::remove_if(states_.begin(), states_.end(),
                               [&name](const std::shared_ptr<State>& state) {
                                 return state->endpoint.name == name;
                               }),
                states_.end());
}

std::vector<std::shared_ptr<HealthChecker::State>>
HealthChecker::StatesSnapshot() const {
  std::lock_guard<std::mutex> lock(states_mutex_);
  return states_;
}

void HealthChecker::ProbeLoop() {
  while (!stopping_.load()) {
    ProbeAllOnce();
    std::unique_lock<std::mutex> lock(wakeup_mutex_);
    wakeup_.wait_for(lock,
                     std::chrono::milliseconds(config_.probe_interval_ms),
                     [this] { return stopping_.load(); });
  }
}

void HealthChecker::ProbeAllOnce() {
  // One probe round at a time: the gateway calls this synchronously at
  // startup while the prober thread may already be mid-round, and the
  // persistent probe clients must not see concurrent I/O.
  std::lock_guard<std::mutex> round_lock(probe_mutex_);
  for (const auto& state : StatesSnapshot()) {
    const ProbeOutcome outcome = ProbeBackend(*state);
    ApplyResult(*state, outcome.ok, /*from_probe=*/true, outcome);
  }
}

HealthChecker::ProbeOutcome HealthChecker::ProbeBackend(State& state) {
  ProbeOutcome outcome;
  if (state.probe_client == nullptr) {
    HttpClientOptions options;
    options.connect_timeout_ms = config_.probe_timeout_ms;
    options.io_timeout_ms = config_.probe_timeout_ms;
    auto client = std::make_unique<HttpClient>(options);
    if (!client->Connect(state.endpoint.port).ok()) return outcome;
    state.probe_client = std::move(client);
    std::lock_guard<std::mutex> lock(state.mutex);
    ++state.probe_connects_total;
  } else {
    std::lock_guard<std::mutex> lock(state.mutex);
    ++state.probe_reuses_total;
  }
  auto response = state.probe_client->Get("/v1/healthz");
  if (!response.ok()) {
    // Transport failure: the connection is gone or desynchronized. Drop
    // it so the next round dials fresh (close-on-error, like the
    // forwarding pool).
    state.probe_client.reset();
    return outcome;
  }
  if (response->status != 200) return outcome;
  // A 200 status line alone is not health: a dying pod (or a middlebox)
  // can deliver the headers and then cut the body short. Only a complete,
  // parseable health document that itself says "ok" counts.
  auto doc = ParseJson(response->body);
  if (!doc.ok()) return outcome;
  const JsonValue* status = doc->Find("status");
  if (status == nullptr || status->AsString() != "ok") return outcome;
  outcome.ok = true;
  // Pods report their published index snapshot version in /v1/healthz; pick
  // it up so the gateway can observe a mid-rollout mixed-version fleet.
  // Older pods (or non-Serenade backends) simply don't carry the field.
  if (const JsonValue* version = doc->Find("index_version")) {
    outcome.index_version = static_cast<uint64_t>(version->AsInt());
  }
  // Freshness-SLO signal (streaming delta pipeline); absent on pods that
  // predate it or have not applied a delta yet.
  if (const JsonValue* freshness = doc->Find("index_freshness_seconds")) {
    outcome.index_freshness_seconds =
        static_cast<uint64_t>(freshness->AsInt());
  }
  // Replication lag + adopted membership epoch; absent on pods without
  // the replication subsystem attached.
  if (const JsonValue* lag = doc->Find("replica_lag_bytes")) {
    outcome.replica_lag_bytes = static_cast<uint64_t>(lag->AsInt());
  }
  if (const JsonValue* lag = doc->Find("replica_lag_seconds")) {
    outcome.replica_lag_seconds = lag->AsNumber();
  }
  if (const JsonValue* epoch = doc->Find("ring_epoch")) {
    outcome.ring_epoch = static_cast<uint64_t>(epoch->AsInt());
  }
  return outcome;
}

void HealthChecker::ApplyResult(State& state, bool success, bool from_probe,
                                const ProbeOutcome& outcome) {
  std::lock_guard<std::mutex> lock(state.mutex);
  if (from_probe) {
    ++state.probes_total;
    if (!success) ++state.probe_failures_total;
  }
  if (success && outcome.index_version != 0) {
    state.index_version = outcome.index_version;
  }
  if (success && from_probe) {
    // 0 is meaningful here (a just-applied delta / zero lag), so
    // overwrite on every successful probe rather than treating 0 as
    // "absent".
    state.index_freshness_seconds = outcome.index_freshness_seconds;
    state.replica_lag_bytes = outcome.replica_lag_bytes;
    state.replica_lag_seconds = outcome.replica_lag_seconds;
    if (outcome.ring_epoch != 0) state.ring_epoch = outcome.ring_epoch;
  }
  if (success) {
    state.consecutive_failures = 0;
    if (!state.healthy &&
        ++state.consecutive_successes >= config_.successes_to_readmit) {
      state.healthy = true;
      state.consecutive_successes = 0;
      LOG_INFO << "backend " << state.endpoint.name << " readmitted";
    }
  } else {
    state.consecutive_successes = 0;
    if (state.healthy &&
        ++state.consecutive_failures >= config_.failures_to_eject) {
      state.healthy = false;
      state.consecutive_failures = 0;
      ++state.ejections_total;
      LOG_WARNING << "backend " << state.endpoint.name << " ejected";
    }
  }
}

std::shared_ptr<HealthChecker::State> HealthChecker::FindState(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(states_mutex_);
  for (const auto& state : states_) {
    if (state->endpoint.name == name) return state;
  }
  return nullptr;
}

bool HealthChecker::IsHealthy(const std::string& name) const {
  const auto state = FindState(name);
  if (state == nullptr) return false;
  std::lock_guard<std::mutex> lock(state->mutex);
  return state->healthy;
}

size_t HealthChecker::NumHealthy() const {
  size_t healthy = 0;
  for (const auto& state : StatesSnapshot()) {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->healthy) ++healthy;
  }
  return healthy;
}

size_t HealthChecker::NumBackends() const {
  std::lock_guard<std::mutex> lock(states_mutex_);
  return states_.size();
}

std::vector<BackendHealth> HealthChecker::Snapshot() const {
  std::vector<BackendHealth> snapshot;
  const auto states = StatesSnapshot();
  snapshot.reserve(states.size());
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mutex);
    BackendHealth health;
    health.name = state->endpoint.name;
    health.port = state->endpoint.port;
    health.healthy = state->healthy;
    health.consecutive_failures = state->consecutive_failures;
    health.consecutive_successes = state->consecutive_successes;
    health.probes_total = state->probes_total;
    health.probe_failures_total = state->probe_failures_total;
    health.ejections_total = state->ejections_total;
    health.index_version = state->index_version;
    health.index_freshness_seconds = state->index_freshness_seconds;
    health.probe_connects_total = state->probe_connects_total;
    health.probe_reuses_total = state->probe_reuses_total;
    health.replica_lag_bytes = state->replica_lag_bytes;
    health.replica_lag_seconds = state->replica_lag_seconds;
    health.ring_epoch = state->ring_epoch;
    snapshot.push_back(std::move(health));
  }
  return snapshot;
}

uint64_t HealthChecker::IndexVersion(const std::string& name) const {
  const auto state = FindState(name);
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state->mutex);
  return state->index_version;
}

void HealthChecker::ReportResult(const std::string& name, bool success) {
  const auto state = FindState(name);
  if (state != nullptr) ApplyResult(*state, success, /*from_probe=*/false);
}

}  // namespace serenade
